#!/usr/bin/env python3
"""Validate a ``REPRO_METRICS_PATH`` JSONL sink (CI gate).

Asserts, over every line of the sink:

* the stable event envelope — ``ts``, ``event``, ``trace_id``, and
  (since PR 4) the emitting process's ``pid``;
* per-process ``ts`` monotonicity — one process appends in wall order,
  so a backwards timestamp within a pid means interleaved writes got
  torn or a clock went haywire (a small epsilon absorbs float noise;
  *cross*-process ordering is deliberately not asserted);
* ``span`` event structure — deterministic identity (``id`` int >= 0,
  ``parent_id`` int or null), ``name``, ``start``/``duration`` floats,
  ``depth`` >= 0, and worker attribution via ``span_pid`` (the process
  the span measured, distinct from the envelope ``pid`` that emitted
  it);
* shape-tier event structure (PR 5) — ``shape_view_build`` carries the
  month plus non-negative ``shapes``/``rows`` counts, ``scan_fallback``
  carries the month and a non-empty ``reason`` string;
* vector-tier event structure (PR 6) — ``vector_path`` carries the
  month and an ``outcome`` (``view_build`` with non-negative
  ``shapes``/``rows``, or ``compile_miss`` with a non-empty
  ``reason``);
* serve event structure (PR 7) — ``http_request`` carries a non-empty
  ``method``/``route``, an integer HTTP ``status`` (100–599), a
  non-negative ``duration``, and ``tier`` either null (no store query
  ran) or a non-empty string naming the answering query tier (the
  ``span_id`` linking the request to its span, added with the live
  telemetry layer, is optional — older sinks stay readable — but must
  be a non-negative int when present);
* live-telemetry event structure (PR 9) — ``histogram_snapshot``
  (emitted per route on each ``/metrics`` scrape) carries a non-empty
  ``name``/``route``, strictly increasing finite ``bounds``,
  monotonically non-decreasing *cumulative* ``buckets`` (one more
  entry than bounds, the last being the +Inf total), a ``count`` equal
  to that total with ``sum >= 0`` (and ``sum == 0`` when empty), and
  ``exemplars`` aligned one-per-bucket, each null or an object with a
  non-empty ``trace_id`` and a numeric ``value`` inside its bucket's
  range;
* at least one terminal event was emitted — ``run_complete`` for a
  batch-run sink, or ``http_request`` for a sink produced by a resident
  server that never ran the batch engine — i.e. the observability layer
  was actually live for whatever produced the file.

Usage: ``python scripts/check_metrics_jsonl.py <path>``; exits 1 on any
violation so CI fails loudly.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path

REQUIRED_KEYS = ("ts", "event", "trace_id", "pid")

#: Allowed backwards slack between consecutive events of one process —
#: absorbs float rounding in ``time.time()`` without masking real
#: ordering violations.
TS_EPSILON = 1e-3

#: ``span`` event fields and their validators.
SPAN_FIELDS = {
    "id": lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
    "parent_id": lambda v: v is None
    or (isinstance(v, int) and not isinstance(v, bool) and v >= 0),
    "name": lambda v: isinstance(v, str) and bool(v),
    "start": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "duration": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool)
    and v >= 0,
    "depth": lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
    "span_pid": lambda v: isinstance(v, int) and not isinstance(v, bool) and v > 0,
}


def _count(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


#: Shape-tier query events (PR 5) and their field validators.
SHAPE_VIEW_BUILD_FIELDS = {
    "month": lambda v: isinstance(v, str) and bool(v),
    "shapes": _count,
    "rows": _count,
}

SCAN_FALLBACK_FIELDS = {
    "month": lambda v: isinstance(v, str) and bool(v),
    "reason": lambda v: isinstance(v, str) and bool(v),
}

#: Vector-tier query events (PR 6).  ``outcome`` selects the variant:
#: ``view_build`` events additionally carry ``shapes``/``rows`` counts,
#: ``compile_miss`` events a non-empty ``reason`` — checked below since
#: per-variant fields can't be expressed in this flat table.
VECTOR_PATH_FIELDS = {
    "month": lambda v: isinstance(v, str) and bool(v),
    "outcome": lambda v: v in ("view_build", "compile_miss"),
}

#: Serve events (PR 7): one per request answered by the resident
#: server.  ``tier`` is null for requests that never queried the store
#: (health checks, errors) and a tier name otherwise.
HTTP_REQUEST_FIELDS = {
    "method": lambda v: isinstance(v, str) and bool(v),
    "route": lambda v: isinstance(v, str) and bool(v),
    "status": lambda v: isinstance(v, int)
    and not isinstance(v, bool)
    and 100 <= v <= 599,
    "duration": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool)
    and v >= 0,
    "tier": lambda v: v is None or (isinstance(v, str) and bool(v)),
}

#: Live-telemetry events (PR 9): one bounded-histogram snapshot per
#: route per ``/metrics`` scrape.  The flat table covers the scalar
#: fields; the cross-field invariants (bucket monotonicity, count/sum
#: consistency, exemplar alignment) live in
#: :func:`check_histogram_snapshot`.
HISTOGRAM_SNAPSHOT_FIELDS = {
    "name": lambda v: isinstance(v, str) and bool(v),
    "route": lambda v: isinstance(v, str) and bool(v),
    "bounds": lambda v: isinstance(v, list),
    "buckets": lambda v: isinstance(v, list),
    "count": _count,
    "sum": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool)
    and v >= 0,
    "exemplars": lambda v: isinstance(v, list),
}

#: event name -> field validators, for events beyond the envelope.
STRUCTURED_EVENTS = {
    "span": SPAN_FIELDS,
    "shape_view_build": SHAPE_VIEW_BUILD_FIELDS,
    "scan_fallback": SCAN_FALLBACK_FIELDS,
    "vector_path": VECTOR_PATH_FIELDS,
    "http_request": HTTP_REQUEST_FIELDS,
    "histogram_snapshot": HISTOGRAM_SNAPSHOT_FIELDS,
}


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_histogram_snapshot(record: dict) -> str | None:
    """Cross-field invariants of one ``histogram_snapshot`` event."""
    bounds, buckets = record["bounds"], record["buckets"]
    if not all(_is_number(b) for b in bounds):
        return "histogram_snapshot bounds contain a non-number"
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        return "histogram_snapshot bounds are not strictly increasing"
    if len(buckets) != len(bounds) + 1:
        return (
            f"histogram_snapshot has {len(buckets)} cumulative bucket(s) "
            f"for {len(bounds)} bound(s); expected bounds+1 (+Inf last)"
        )
    if not all(_count(b) for b in buckets):
        return "histogram_snapshot buckets contain a non-count"
    if any(b2 < b1 for b1, b2 in zip(buckets, buckets[1:])):
        return "histogram_snapshot cumulative buckets decrease"
    if buckets and buckets[-1] != record["count"]:
        return (
            f"histogram_snapshot count {record['count']} != +Inf cumulative "
            f"bucket {buckets[-1]}"
        )
    if record["count"] == 0 and record["sum"] != 0:
        return "histogram_snapshot has sum > 0 with count == 0"
    exemplars = record["exemplars"]
    if len(exemplars) != len(buckets):
        return (
            f"histogram_snapshot has {len(exemplars)} exemplar slot(s) "
            f"for {len(buckets)} bucket(s)"
        )
    for i, exemplar in enumerate(exemplars):
        if exemplar is None:
            continue
        if not isinstance(exemplar, dict):
            return f"histogram_snapshot exemplar[{i}] is not null or object"
        trace = exemplar.get("trace_id")
        if not isinstance(trace, str) or not trace:
            return (
                f"histogram_snapshot exemplar[{i}] trace_id {trace!r} "
                "is not a non-empty string"
            )
        value = exemplar.get("value")
        if not _is_number(value) or value < 0:
            return (
                f"histogram_snapshot exemplar[{i}] value {value!r} "
                "is not a non-negative number"
            )
        lower = bounds[i - 1] if i > 0 else 0.0
        upper = bounds[i] if i < len(bounds) else float("inf")
        if value > upper or (i > 0 and value < lower):
            return (
                f"histogram_snapshot exemplar[{i}] value {value!r} "
                f"outside its bucket range ({lower}, {upper}]"
            )
    return None

#: ``vector_path`` per-outcome extra fields.
VECTOR_OUTCOME_FIELDS = {
    "view_build": {"shapes": _count, "rows": _count},
    "compile_miss": {"reason": lambda v: isinstance(v, str) and bool(v)},
}


def check_record(record: dict, last_ts: dict) -> str | None:
    """One event's violation message, or None when it is clean."""
    missing = [key for key in REQUIRED_KEYS if key not in record]
    if missing:
        return f"missing envelope key(s) {missing}"
    pid = record["pid"]
    if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
        return f"envelope pid {pid!r} is not a positive integer"
    ts = record["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        return f"envelope ts {ts!r} is not a number"
    previous = last_ts.get(pid)
    if previous is not None and ts < previous - TS_EPSILON:
        return (
            f"ts {ts!r} moved backwards within pid {pid} "
            f"(previous {previous!r})"
        )
    last_ts[pid] = max(previous or ts, ts)
    fields = STRUCTURED_EVENTS.get(record["event"])
    if fields is not None:
        event = record["event"]
        for name, valid in fields.items():
            if name not in record:
                return f"{event} event missing field {name!r}"
            if not valid(record[name]):
                return f"{event} field {name}={record[name]!r} fails validation"
        if event == "vector_path":
            for name, valid in VECTOR_OUTCOME_FIELDS[record["outcome"]].items():
                if name not in record:
                    return (
                        f"{event}/{record['outcome']} event missing "
                        f"field {name!r}"
                    )
                if not valid(record[name]):
                    return (
                        f"{event} field {name}={record[name]!r} "
                        "fails validation"
                    )
        if event == "http_request" and "span_id" in record:
            # Optional (older sinks predate it) but strict when present:
            # it must actually address a span.
            span_id = record["span_id"]
            if not _count(span_id):
                return (
                    f"http_request span_id {span_id!r} is not a "
                    "non-negative integer"
                )
        if event == "histogram_snapshot":
            return check_histogram_snapshot(record)
    return None


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_metrics_jsonl.py <path>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.exists():
        print(f"FAIL: metrics sink {path} was never created", file=sys.stderr)
        return 1
    events: Counter = Counter()
    last_ts: dict[int, float] = {}
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"FAIL: {path}:{lineno} is not valid JSON: {exc}", file=sys.stderr)
            return 1
        if not isinstance(record, dict):
            print(f"FAIL: {path}:{lineno} is not a JSON object", file=sys.stderr)
            return 1
        violation = check_record(record, last_ts)
        if violation:
            print(f"FAIL: {path}:{lineno}: {violation}", file=sys.stderr)
            return 1
        events[record["event"]] += 1
    total = sum(events.values())
    if total == 0:
        print(f"FAIL: {path} contains no events", file=sys.stderr)
        return 1
    if events.get("run_complete", 0) == 0 and events.get("http_request", 0) == 0:
        print(
            f"FAIL: {path} has {total} event(s) but no run_complete "
            "or http_request",
            file=sys.stderr,
        )
        return 1
    summary = ", ".join(f"{name}={count}" for name, count in sorted(events.items()))
    print(f"OK: {total} event(s): {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
