#!/usr/bin/env python3
"""Validate a ``REPRO_METRICS_PATH`` JSONL sink (CI gate).

Asserts that every line parses as a JSON object carrying the stable
event envelope (``ts``, ``event``, ``trace_id``) and that at least one
``run_complete`` event was emitted — i.e. the observability layer was
actually live for the run that produced the file.

Usage: ``python scripts/check_metrics_jsonl.py <path>``; exits 1 on any
violation so CI fails loudly.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path

REQUIRED_KEYS = ("ts", "event", "trace_id")


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_metrics_jsonl.py <path>", file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.exists():
        print(f"FAIL: metrics sink {path} was never created", file=sys.stderr)
        return 1
    events: Counter = Counter()
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"FAIL: {path}:{lineno} is not valid JSON: {exc}", file=sys.stderr)
            return 1
        if not isinstance(record, dict):
            print(f"FAIL: {path}:{lineno} is not a JSON object", file=sys.stderr)
            return 1
        missing = [key for key in REQUIRED_KEYS if key not in record]
        if missing:
            print(
                f"FAIL: {path}:{lineno} missing envelope key(s) {missing}",
                file=sys.stderr,
            )
            return 1
        events[record["event"]] += 1
    total = sum(events.values())
    if total == 0:
        print(f"FAIL: {path} contains no events", file=sys.stderr)
        return 1
    if events.get("run_complete", 0) == 0:
        print(
            f"FAIL: {path} has {total} event(s) but no run_complete", file=sys.stderr
        )
        return 1
    summary = ", ".join(f"{name}={count}" for name, count in sorted(events.items()))
    print(f"OK: {total} event(s): {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
