#!/usr/bin/env python3
"""Validate a Prometheus text exposition (the ``/metrics`` CI gate).

Reads exposition text from a file argument (or stdin with ``-``) and
asserts what a real Prometheus scrape would choke on, plus the
histogram algebra the repo's own histograms must satisfy:

* every line parses under the text-format 0.0.4 grammar
  (:func:`repro.obs.live.parse_prometheus` — the same parser ``repro
  top`` renders from, so the dashboard and this gate can't drift);
* ``# HELP`` / ``# TYPE`` lines precede their family's samples, and no
  family declares TYPE twice;
* no duplicate series — the same sample name with the same label set
  exposed twice is an aggregation bug upstream;
* histogram families are internally consistent per label set:
  ``le``-bucketed cumulative counts are non-decreasing as bounds
  increase, the ``+Inf`` bucket exists and equals ``_count``, and
  ``_sum`` is present and non-negative;
* at least one sample was exposed at all.

Usage::

    python scripts/check_prometheus_text.py metrics.txt
    curl -s http://host:port/metrics | python scripts/check_prometheus_text.py -

Exits 1 on any violation so CI fails loudly.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Runnable from a bare checkout (the smoke script, a curl pipe) without
# an installed package or PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.live import PrometheusParseError, parse_prometheus  # noqa: E402


def _check_ordering(text: str) -> str | None:
    """HELP/TYPE must precede samples; TYPE at most once per family."""
    sampled: set[str] = set()
    typed: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if name in sampled:
                    return (
                        f"line {lineno}: # {parts[1]} {name} appears after "
                        "that family's samples"
                    )
                if parts[1] == "TYPE":
                    if name in typed:
                        return f"line {lineno}: duplicate # TYPE for {name}"
                    typed.add(name)
            continue
        name = line.split("{", 1)[0].split(None, 1)[0]
        # Fold histogram/summary suffixes onto the declaring family so
        # a _bucket sample counts as "the family has samples".
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                name = name[: -len(suffix)]
                break
        sampled.add(name)
    return None


def _series_key(family: str, labels: dict) -> tuple:
    return (family, tuple(sorted(labels.items())))


def _check_histogram(name: str, family: dict) -> str | None:
    """Bucket monotonicity + sum/count consistency per label set."""
    groups: dict[tuple, dict] = {}
    for labels, value in family["samples"]:
        suffix = labels.get("__suffix__")
        base = {
            k: v for k, v in labels.items() if k not in ("__suffix__", "le")
        }
        group = groups.setdefault(
            tuple(sorted(base.items())),
            {"buckets": [], "sum": None, "count": None},
        )
        if suffix == "_bucket":
            le = labels.get("le")
            if le is None:
                return f"{name}: _bucket sample without an le label"
            bound = float("inf") if le == "+Inf" else float(le)
            group["buckets"].append((bound, value))
        elif suffix == "_sum":
            group["sum"] = value
        elif suffix == "_count":
            group["count"] = value
        else:
            return f"{name}: bare sample on a histogram family"
    for key, group in groups.items():
        where = f"{name}{dict(key) if key else ''}"
        if not group["buckets"]:
            return f"{where}: histogram with no _bucket samples"
        if group["sum"] is None:
            return f"{where}: histogram missing _sum"
        if group["count"] is None:
            return f"{where}: histogram missing _count"
        if group["sum"] < 0:
            return f"{where}: _sum {group['sum']} is negative"
        buckets = sorted(group["buckets"])
        bounds = [b for b, _ in buckets]
        if len(set(bounds)) != len(bounds):
            return f"{where}: duplicate le bound"
        counts = [c for _, c in buckets]
        if any(c2 < c1 for c1, c2 in zip(counts, counts[1:])):
            return f"{where}: cumulative bucket counts decrease"
        if buckets[-1][0] != float("inf"):
            return f"{where}: no +Inf bucket"
        if buckets[-1][1] != group["count"]:
            return (
                f"{where}: +Inf bucket {buckets[-1][1]} != _count "
                f"{group['count']}"
            )
        if group["count"] == 0 and group["sum"] != 0:
            return f"{where}: sum > 0 with count == 0"
    return None


def check_text(text: str) -> str | None:
    """The first violation in an exposition, or None when clean."""
    violation = _check_ordering(text)
    if violation:
        return violation
    try:
        families = parse_prometheus(text)
    except PrometheusParseError as exc:
        return str(exc)
    seen: set[tuple] = set()
    total = 0
    for name, family in families.items():
        for labels, _value in family["samples"]:
            total += 1
            key = _series_key(name, labels)
            if key in seen:
                return f"duplicate series {name}{labels}"
            seen.add(key)
        if family["type"] == "histogram":
            violation = _check_histogram(name, family)
            if violation:
                return violation
    if total == 0:
        return "exposition contains no samples"
    return None


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: check_prometheus_text.py <path|->", file=sys.stderr)
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
        where = "<stdin>"
    else:
        path = Path(argv[0])
        if not path.exists():
            print(f"FAIL: {path} does not exist", file=sys.stderr)
            return 1
        text = path.read_text(encoding="utf-8")
        where = str(path)
    violation = check_text(text)
    if violation:
        print(f"FAIL: {where}: {violation}", file=sys.stderr)
        return 1
    families = parse_prometheus(text)
    samples = sum(len(f["samples"]) for f in families.values())
    print(f"OK: {len(families)} metric(s), {samples} sample(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
