#!/usr/bin/env bash
# Smoke test for `repro serve` exactly as an operator runs it:
# start the server on a small window, parse the announced port (the
# server binds port 0 — nothing here hard-codes one), poll /healthz
# until the dataset is ready, fetch one figure and assert it is valid
# JSON with the expected shape, then SIGTERM and assert the shutdown
# is clean.  Runs twice: once on the default threaded path and once
# with --query-workers 2 (the multi-process query pool), asserting the
# pool actually dispatched.  Used by the CI `serve` job; also runnable
# locally.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_CACHE_DIR="${REPRO_CACHE_DIR:-$(mktemp -d)}"

run_pass() {
    local label="$1"; shift

    local OUT SERVER_PID URL
    OUT="$(mktemp)"
    python -m repro serve --start 2016-04-01 --end 2016-05-01 "$@" >"$OUT" 2>&1 &
    SERVER_PID=$!
    trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

    # The port is announced before the dataset loads.
    URL=""
    for _ in $(seq 1 100); do
        URL="$(sed -n 's/^serving on \(http:\/\/[^ ]*\)$/\1/p' "$OUT" | head -1)"
        [ -n "$URL" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL($label): server died before announcing"; cat "$OUT"; exit 1; }
        sleep 0.1
    done
    [ -n "$URL" ] && echo "announced($label): $URL" || { echo "FAIL($label): no announce line"; cat "$OUT"; exit 1; }

    # /healthz answers immediately (503 while loading) and flips to ready.
    local READY=0 BODY
    for _ in $(seq 1 600); do
        BODY="$(curl -s "$URL/healthz" || true)"
        if printf '%s' "$BODY" | python -c 'import json,sys; sys.exit(0 if json.load(sys.stdin).get("ready") else 1)' 2>/dev/null; then
            READY=1
            break
        fi
        sleep 0.5
    done
    [ "$READY" = 1 ] || { echo "FAIL($label): /healthz never became ready"; cat "$OUT"; exit 1; }
    echo "healthz($label): ready"

    # One figure over HTTP must be JSON with the figure's series in it.
    curl -sf "$URL/figures/fig1" | python -c '
import json, sys
payload = json.load(sys.stdin)
assert payload["api"] == 1, payload
assert payload["figure"] == "fig1", payload
series = payload["series"]
assert series and all(points for points in series.values()), "empty series"
print(f"fig1: {len(series)} series over HTTP")
'

    # /metrics must be a valid Prometheus text exposition — the full
    # grammar/ordering/histogram-consistency gate, not just an HTTP 200.
    curl -sf "$URL/metrics" | python scripts/check_prometheus_text.py -
    echo "metrics($label): valid exposition"

    # A malformed query must answer 400, not 5xx.
    local STATUS
    STATUS="$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"kind":"bogus"}' "$URL/query")"
    [ "$STATUS" = 400 ] || { echo "FAIL($label): malformed query answered $STATUS, wanted 400"; exit 1; }
    echo "malformed query($label): 400"

    # In pool mode, /stats must show the figure (and the 400) actually
    # went through pre-warmed replicas, not the threaded fallback.
    if [ "$label" = "query-pool" ]; then
        curl -sf "$URL/stats" | python -c '
import json, sys
counters = json.load(sys.stdin)["counters"]
dispatches = counters["query_pool_dispatches"]
assert dispatches >= 1, counters
print("query pool: %d dispatch(es)" % dispatches)
'
    fi

    # Clean shutdown on SIGTERM.
    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    trap - EXIT
    grep -q '^shutdown: clean$' "$OUT" || { echo "FAIL($label): no clean shutdown line"; cat "$OUT"; exit 1; }
    echo "shutdown($label): clean"
}

run_pass "threaded"
run_pass "query-pool" --query-workers 2
echo "smoke_serve: OK"
