#!/usr/bin/env python3
"""Run a command under a hard address-space ceiling.

The CI ``scale`` job's enforcement half: ``repro run --scale 50`` must
complete inside a fixed memory budget, proving the streaming ingest
path really is out-of-core — a regression that materializes a scaled
month's record objects blows the ceiling and the child dies with
``MemoryError`` instead of quietly eating the runner.

Usage::

    python scripts/check_rss.py --limit-mb 1024 -- python -m repro run --scale 50

The limit is applied with ``resource.setrlimit`` in the child via
``preexec_fn``.  ``RLIMIT_AS`` (total address space) is used rather
than ``RLIMIT_RSS`` because Linux has not enforced the latter for two
decades; address space over-counts RSS (maps, guard pages, the
interpreter image), so pick the ceiling with ~2x headroom over the
intended resident budget.

On success the child's peak RSS (``ru_maxrss`` of reaped children) is
printed, so CI logs double as a coarse memory trajectory.
"""

from __future__ import annotations

import argparse
import resource
import subprocess
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run a command under an RLIMIT_AS ceiling"
    )
    parser.add_argument(
        "--limit-mb", type=int, required=True, metavar="MB",
        help="address-space ceiling for the child, in MiB",
    )
    parser.add_argument(
        "command", nargs=argparse.REMAINDER,
        help="command to run (prefix with -- to separate)",
    )
    args = parser.parse_args(argv)
    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given; usage: check_rss.py --limit-mb N -- cmd ...")
    limit = args.limit_mb * 1024 * 1024

    def _apply_limit() -> None:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    proc = subprocess.run(command, preexec_fn=_apply_limit)
    peak_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    print(
        f"check_rss: exit {proc.returncode}, ceiling {args.limit_mb} MiB, "
        f"child peak RSS {peak_kb / 1024:.1f} MiB",
        file=sys.stderr,
    )
    return proc.returncode


if __name__ == "__main__":
    raise SystemExit(main())
