#!/usr/bin/env python3
"""Fail on broad exception handlers that swallow silently.

The engine's resilience story depends on failures being *recoverable
and attributable*: a ``try/except Exception`` that neither logs nor
re-raises turns a degraded run into one that looks clean — exactly the
bug class PR 3 swept out of the runner, cache, and partition codec.
This check keeps it out.

A handler is flagged when it catches ``Exception`` / ``BaseException`` /
everything (bare ``except:``) and its body contains none of:

* a logging call (``log.warning(...)``, ``logger.exception(...)``, …),
* a ``raise``,
* a :mod:`repro.obs` metrics emission (``emit_event(...)`` / ``emit(...)``).

Narrow handlers (``except OSError:``) are out of scope — catching a
specific expected error is a policy decision, not a swallow.  A flagged
site that is genuinely intentional can carry ``# lint: allow-swallow``
on its ``except`` line.

Usage: ``python scripts/lint_swallowed_exceptions.py [paths...]``
(default: ``src/repro``).  Exits 1 when violations exist.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Method names that count as "the failure was reported".
_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "error",
    "exception",
    "critical",
    "log",
}

#: Bare function names that count as reporting (obs metrics sink).
_REPORT_FUNCTIONS = {"emit", "emit_event"}

#: Exception names whose handlers are broad enough to audit.
_BROAD = {"Exception", "BaseException"}

ALLOW_MARKER = "lint: allow-swallow"


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD:
            return True
    return False


def _reports_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
                return True
            if isinstance(func, ast.Name) and func.id in _REPORT_FUNCTIONS:
                return True
    return False


def check_file(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: unparseable: {exc.msg}"]
    lines = source.splitlines()
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if ALLOW_MARKER in line:
            continue
        if _reports_failure(node):
            continue
        caught = "bare except" if node.type is None else "except Exception"
        violations.append(
            f"{path}:{node.lineno}: {caught} swallows silently "
            f"(add a logger call, a raise, or '# {ALLOW_MARKER}')"
        )
    return violations


def main(argv: list[str]) -> int:
    roots = [Path(p) for p in argv] or [
        Path(__file__).resolve().parent.parent / "src" / "repro"
    ]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    violations: list[str] = []
    for path in files:
        violations.extend(check_file(path))
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} swallowed-exception site(s) found")
        return 1
    print(f"OK: {len(files)} file(s), no silently swallowed exceptions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
