#!/usr/bin/env python3
"""Fingerprint survey: build the database, label traffic, study lifetimes.

Reproduces the §4 workflow: harvest fingerprints from known clients,
match them against passive traffic, report the per-category coverage of
Table 2, and compute the lifetime statistics of §4.1 on day-resolution
samples (including the one-day fingerprint blow-up caused by clients
with unstable cipher order).

Run:  python examples/fingerprint_survey.py
"""

from repro.core import tables
from repro.core.stats import duration_summary, top_fingerprint_concentration
from repro.simulation import default_model


def main() -> None:
    model = default_model()
    db = model.database()
    store = model.passive_store()

    print(f"Fingerprint database: {len(db)} labelled fingerprints")
    print(f"\nTable 2 — fingerprint summary (paper: 1,684 fingerprints, 69.23% coverage):")
    print(f"{'category':<26} {'#FPs':>5} {'coverage':>9}")
    records = [r for r in store.records() if r.fingerprint is not None]
    for category, count, coverage in tables.table2_fingerprint_summary(db, records):
        print(f"{category:<26} {count:>5} {coverage:>8.2f}%")

    print(
        "\nTop-10 fingerprint concentration (paper: 25.9%): "
        f"{top_fingerprint_concentration(store, 10) * 100:.1f}%"
    )

    print("\n§4.1 lifetime statistics (Monte-Carlo, day resolution)...")
    mc = model.montecarlo_store(connections_per_month=1200)
    summary = duration_summary(mc)
    print(f"  usable fingerprints : {summary.fingerprints}")
    print(f"  max duration        : {summary.max_days} days (paper: 1,235)")
    print(f"  median duration     : {summary.median_days:.0f} day(s) (paper: 1)")
    print(f"  mean / q3 / std     : {summary.mean_days:.1f} / {summary.q3_days:.1f} / {summary.std_days:.1f} days")
    print(
        f"  single-day FPs      : {summary.single_day} "
        f"({summary.single_day / summary.fingerprints:.0%} of FPs, "
        f"{summary.single_day_connections / summary.total_connections:.2%} of connections)"
    )
    print(
        f"  >=1200-day FPs      : {summary.long_lived} "
        f"carrying {summary.long_lived_connections_share:.1%} of connections "
        "(paper: 1,203 FPs, 21.75%)"
    )


if __name__ == "__main__":
    main()
