#!/usr/bin/env python3
"""Internet-wide scanning: the Censys side of the paper (§3.2, §5).

Runs the three scheduled scan types over the 2015-2018 Censys window
and prints the server-side series the paper reports: SSL 3 support,
servers choosing RC4 / CBC / 3DES against the Chrome-2015 probe,
Heartbeat support and residual Heartbleed vulnerability, and export
acceptance.  Also demonstrates a sampled (per-host) sweep with zgrab.

Run:  python examples/internet_scan.py
"""

import datetime as dt

from repro.scanner import CensysArchive, chrome_2015_probe, grab
from repro.scanner.zmap import AddressSpaceScanner
from repro.servers import ServerPopulation


def show(series, label, scale=100.0, unit="%"):
    first_date, first = series[0]
    last_date, last = series[-1]
    print(
        f"  {label:<28} {first * scale:6.2f}{unit} ({first_date})"
        f"  ->  {last * scale:6.2f}{unit} ({last_date})"
    )


def main() -> None:
    servers = ServerPopulation()
    archive = CensysArchive(servers)
    print("Running scheduled scans (Chrome-2015 / SSL3-only / export probes)...")
    for probe in ("chrome2015", "ssl3", "export"):
        archive.run_schedule(probe, interval_days=28)

    print("\nServer-side longitudinal series (first scan -> last scan):")
    show(archive.series("ssl3", "handshake"), "SSL 3 supported (45->25)")
    show(archive.series("chrome2015", "rc4"), "chose RC4 (11.2->3.4)")
    show(archive.series("chrome2015", "cbc"), "chose CBC (54->35)")
    show(archive.series("chrome2015", "3des"), "chose 3DES (0.54->0.25)")
    show(archive.series("chrome2015", "fs"), "chose forward secrecy")
    show(archive.series("chrome2015", "heartbeat"), "heartbeat supported (34)")
    show(archive.series("chrome2015", "heartbleed"), "Heartbleed vulnerable (0.32)")
    show(archive.series("export", "handshake"), "accepts export ciphers")

    # A sampled sweep: grab individual hosts the zgrab way.
    print("\nSampled sweep, 12 hosts on 2016-06-01:")
    scanner = AddressSpaceScanner(servers, seed=99)
    probe = chrome_2015_probe()
    for host in scanner.scan(dt.date(2016, 6, 1), 12):
        result = grab(host.profile, probe, check_heartbleed=True)
        if result.success:
            flags = []
            if result.heartbeat_acknowledged:
                flags.append("hb")
            if result.heartbleed_vulnerable:
                flags.append("VULNERABLE")
            extra = f" [{', '.join(flags)}]" if flags else ""
            print(f"  {host.ip:<16} {result.version.pretty:<8} {result.suite.name}{extra}")
        else:
            print(f"  {host.ip:<16} handshake failed ({result.alert})")


if __name__ == "__main__":
    main()
