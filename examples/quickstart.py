#!/usr/bin/env python3
"""Quickstart: fingerprint a Client Hello and run a one-year mini-study.

Demonstrates the three layers of the library:

1. the TLS substrate — build a hello, put it on the wire, parse it back,
   negotiate against a server profile;
2. the fingerprinting core — extract and label a fingerprint;
3. the measurement pipeline — run a small passive simulation and read a
   monthly series out of it.

Run:  python examples/quickstart.py
"""

import datetime as dt
import random

from repro import build_default_database, extract
from repro.clients import chrome
from repro.notary import PassiveMonitor, TrafficGenerator
from repro.clients.population import default_population
from repro.servers import ServerPopulation
from repro.servers.archetypes import TLS12_ECDHE_GCM
from repro.tls.wire import frame_client_hello, parse_client_hello_record


def main() -> None:
    # --- 1. the TLS substrate ------------------------------------------------
    release = chrome.family().release("49")
    hello = release.build_hello(rng=random.Random(1))
    print(f"Client:   {release.label} offering {len(hello.cipher_suites)} suites")

    wire = frame_client_hello(hello)
    print(f"Wire:     {len(wire)} bytes, record type {wire[0]} (handshake)")
    parsed = parse_client_hello_record(wire)
    assert parsed.cipher_suites == hello.cipher_suites

    result = TLS12_ECDHE_GCM.respond(parsed)
    print(
        f"Server:   negotiated {result.suite.name} "
        f"under {result.version.pretty} (forward secret: {result.forward_secret})"
    )

    # --- 2. fingerprinting ----------------------------------------------------
    fingerprint = extract(parsed)
    database = build_default_database()
    label = database.match(fingerprint)
    print(f"Fingerprint: {fingerprint.digest}")
    print(f"Labelled as: {label.software} {label.version_range} ({label.category})")

    # --- 3. a mini passive measurement -----------------------------------------
    monitor = PassiveMonitor()
    generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
    generator.run_expectation(dt.date(2015, 1, 1), dt.date(2015, 12, 1))
    store = monitor.store

    print("\nRC4 negotiated during 2015 (percent of monthly connections):")
    for month, value in store.monthly_fraction(
        lambda r: r.negotiated_mode_class == "RC4", within=lambda r: r.established
    ):
        bar = "#" * int(value * 200)
        print(f"  {month}  {value * 100:5.1f}%  {bar}")


if __name__ == "__main__":
    main()
