#!/usr/bin/env python3
"""The Notary pipeline end to end: bytes -> monitor -> ssl.log -> analysis.

Shows the operational shape of §3.1's collection: raw first flights hit
the wire-level monitor (including malformed garbage and an SSL 2 relic),
records land in the store, get exported as a Zeek-style ssl.log, and the
analysis layer runs unchanged on the re-imported log.

Run:  python examples/notary_pipeline.py
"""

import datetime as dt
import random
import tempfile
from pathlib import Path

from repro.clients import chrome, firefox
from repro.clients.libraries import openssl_family
from repro.core import figures
from repro.notary.monitor import PassiveMonitor
from repro.notary.zeeklog import export_ssl_log, import_ssl_log
from repro.servers.archetypes import NAGIOS_SERVER, TLS12_ECDHE_GCM, TLS12_RSA_CBC
from repro.tls.ssl2 import Ssl2ClientHello, encode_client_hello as encode_ssl2
from repro.tls.wire import frame_client_hello, frame_server_hello


def main() -> None:
    monitor = PassiveMonitor()
    rng = random.Random(7)
    day = dt.date(2016, 4, 12)

    # 1. Well-formed connections from three client stacks.
    for family, server in (
        (chrome.family(), TLS12_ECDHE_GCM),
        (firefox.family(), TLS12_ECDHE_GCM),
        (openssl_family(), TLS12_RSA_CBC),
    ):
        release = family.current_release(day)
        for _ in range(5):
            hello = release.build_hello(rng=rng)
            result = server.respond(hello)
            monitor.observe_wire(
                day,
                frame_client_hello(hello),
                frame_server_hello(result.server_hello) if result.ok else None,
                server_profile=server.name,
                server_port=443,
            )

    # 2. An SSL 2 relic probing a Nagios box (§5.1).
    monitor.observe_wire(
        day,
        encode_ssl2(Ssl2ClientHello()),
        server_profile=NAGIOS_SERVER.name,
        server_port=5666,
    )

    # 3. Garbage on the wire — dropped, best-effort (§3.1).
    dropped = monitor.observe_wire(day, b"\x16\x03\x01\xff\xff not a hello")
    assert dropped is None

    print(f"records captured: {len(monitor.store)}")

    # 4. Export as a Zeek ssl.log and read it back.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ssl.log"
        rows = export_ssl_log(monitor.store, path)
        print(f"exported {rows} rows to {path.name}")
        print("--- first log lines ---")
        for line in path.read_text().splitlines()[:9]:
            print(" ", line[:110])
        restored = import_ssl_log(path)

    # 5. The analysis layer runs on the re-imported store.
    month = day.replace(day=1)
    aead = restored.fraction(
        month, lambda r: r.negotiated_mode_class == "AEAD",
        within=lambda r: r.established,
    )
    ssl2 = restored.fraction(month, lambda r: r.negotiated_version == "SSLv2")
    print(f"\nfrom the re-imported log: AEAD negotiated {aead:.0%}, SSLv2 share {ssl2:.1%}")
    print("\nfigure series also work on imported data (CSV excerpt):")
    print(figures.to_csv(figures.fig2_negotiated_modes(restored)))


if __name__ == "__main__":
    main()
