#!/usr/bin/env python3
"""POODLE mechanics: the downgrade dance under active attack (§2.2, §5.1).

Walks through the attack the way the paper describes it: a MITM drops
handshake attempts until the browser's fallback ladder reaches SSL 3,
where CBC padding is exploitable.  Then shows the two mitigations the
ecosystem deployed — TLS_FALLBACK_SCSV and outright removal of the
SSL 3 rung (Table 6) — and which browser generations each one saved.

Run:  python examples/downgrade_attack.py
"""

from repro.clients import chrome, firefox
from repro.servers.archetypes import TLS10_CBC
from repro.servers.config import ServerProfile
from repro.clients import suites as cs
from repro.tls.fallback import downgrade_dance, fallback_ladder, poodle_attack_succeeds
from repro.tls.versions import SSL3, TLS10


def describe(result):
    version = f"{result.negotiated_wire:#06x}" if result.negotiated_wire else "none"
    exposed = "  << POODLE-exploitable" if result.poodle_exposed else ""
    return (
        f"outcome={result.outcome.value:<13} attempts={result.attempts} "
        f"version={version}{exposed}"
    )


def main() -> None:
    victim = chrome.family().release("33")   # pre-mitigation Chrome
    patched = chrome.family().release("39")  # SSL 3 fallback removed
    target = TLS10_CBC                        # SSL3-capable, CBC-preferring

    print("Client ladder of Chrome 33:", [hex(v) for v in fallback_ladder(victim)])
    print("Client ladder of Chrome 39:", [hex(v) for v in fallback_ladder(patched)])
    print()

    print("1. No attacker — the handshake succeeds at the top version:")
    print("  ", describe(downgrade_dance(victim, target)))
    print()

    print("2. A MITM drops the first three flights (POODLE's forcing move):")
    result = downgrade_dance(victim, target, attacker_drops=3, send_scsv=False)
    print("  ", describe(result))
    print()

    print("3. Same attack, but the client sends TLS_FALLBACK_SCSV and the")
    print("   server understands it (RFC 7507):")
    modern = ServerProfile(
        name="scsv-aware",
        supported_versions=frozenset({SSL3.wire, TLS10.wire, 0x0302, 0x0303}),
        suite_preference=(cs.RSA_AES128_SHA,),
    )
    result = downgrade_dance(victim, modern, attacker_drops=3, send_scsv=True)
    print("  ", describe(result))
    print()

    print("4. Chrome 39 (fallback removed) against the same legacy server:")
    result = downgrade_dance(patched, target, attacker_drops=3, send_scsv=False)
    print("  ", describe(result))
    print()

    print("POODLE viability by browser generation (vs a legacy CBC server):")
    for module in (chrome, firefox):
        family = module.family()
        for release in family.releases:
            verdict = "EXPOSED" if poodle_attack_succeeds(release, target) else "safe"
            print(f"  {family.name:<8} {release.version:<6} {release.released}  {verdict}")


if __name__ == "__main__":
    main()
