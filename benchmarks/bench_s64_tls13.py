"""§6.4: TLS 1.3 deployment before standardization."""

import datetime as dt

import _paper


def _advertised(store, month):
    return store.fraction(month, lambda r: r.offered_tls13)


def test_s64_tls13_advertisement_ramp(benchmark, passive_store, report):
    feb = benchmark(_advertised, passive_store, dt.date(2018, 2, 1)) * 100
    mar = _advertised(passive_store, dt.date(2018, 3, 1)) * 100
    apr = _advertised(passive_store, dt.date(2018, 4, 1)) * 100

    # §6.4: 0.5% (Feb) -> 9.8% (Mar) -> 23.6% (Apr): a steep ramp driven
    # by staged browser rollouts.  Our scaled client mix lands lower in
    # absolute terms but preserves the month-over-month explosion.
    assert feb < 3
    assert mar > feb * 2
    assert apr > mar * 1.8
    assert apr > 8

    negotiated = (
        passive_store.fraction(
            dt.date(2018, 4, 1),
            lambda r: r.negotiated_version == "TLSv13",
            within=lambda r: r.established,
        )
        * 100
    )
    # §6.4: only 1.3% of connections actually negotiated TLS 1.3.
    assert 0.2 < negotiated < 3
    assert negotiated < apr / 3

    report(
        "§6.4 — TLS 1.3 advertisement and negotiation",
        [
            _paper.row("advertised, Feb 2018", _paper.TLS13_ADVERTISED["2018-02"], feb),
            _paper.row("advertised, Mar 2018", _paper.TLS13_ADVERTISED["2018-03"], mar),
            _paper.row("advertised, Apr 2018", _paper.TLS13_ADVERTISED["2018-04"], apr),
            _paper.row("negotiated, Apr 2018", _paper.TLS13_NEGOTIATED_APR2018, negotiated),
        ],
    )


def test_s64_draft_version_mix(benchmark, passive_store, report):
    """The advertised-version breakdown: Google's 0x7e02 dominates."""
    month = dt.date(2018, 4, 1)

    def version_mix():
        google = 0.0
        draft28 = 0.0
        total = 0.0
        for record in passive_store.records(month):
            if not record.offered_tls13:
                continue
            total += record.weight
            if 0x7E02 in record.offered_tls13_versions:
                google += record.weight
            if 0x7F1C in record.offered_tls13_versions:
                draft28 += record.weight
        return google / total * 100, draft28 / total * 100

    google_share, draft_share = benchmark(version_mix)

    # §6.4: 0x7e02 in 82.3% of extension-bearing connections; official
    # drafts are the minority.
    assert google_share > 55
    assert draft_share < 45
    assert google_share > draft_share

    report(
        "§6.4 — TLS 1.3 advertised version mix (Apr 2018)",
        [
            _paper.row("Google 0x7e02 share", _paper.GOOGLE_VARIANT_SHARE, google_share),
            f"official draft-28 share: {draft_share:.1f}% "
            f"(paper: draft-18 at {_paper.DRAFT18_SHARE}% was the top official draft)",
        ],
    )
