"""Figure 7: clients advertising Export, NULL, or Anonymous suites."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig7_weak_advertised(benchmark, passive_store, report):
    series = benchmark(figures.fig7_weak_advertised, passive_store)

    export_2012 = figures.value_at(series["Export"], dt.date(2012, 2, 1))
    export_2018 = figures.value_at(series["Export"], dt.date(2018, 2, 1))
    anon_before = figures.value_at(series["Anonymous"], dt.date(2015, 4, 1))
    anon_peak = max(
        v for m, v in series["Anonymous"] if dt.date(2015, 5, 1) <= m <= dt.date(2015, 10, 1)
    )
    null_2018 = figures.value_at(series["Null"], dt.date(2018, 2, 1))
    null_spike = figures.value_at(series["Null"], dt.date(2015, 7, 1))
    null_before = figures.value_at(series["Null"], dt.date(2015, 3, 1))

    # §5.5: export advertised 28.19% (2012) -> 1.03% (2018).
    assert 20 < export_2012 < 38
    assert export_2018 < 5
    # §6.2: anon spike from 5.8% to 12.9% in mid-2015.
    assert 3 < anon_before < 9
    assert anon_peak > anon_before * 1.5
    assert anon_peak > 9
    # §6.2: the anon spike "correlates in time with a spike in NULL".
    assert null_spike > null_before * 1.5
    # §6.1: NULL advertisement is small by 2018.
    assert null_2018 < 4

    report(
        "Figure 7 — Export / NULL / Anonymous advertised",
        [
            _paper.row("Export advertised, 2012", _paper.EXPORT_ADVERTISED_2012, export_2012),
            _paper.row("Export advertised, 2018", _paper.EXPORT_ADVERTISED_2018, export_2018),
            _paper.row("Anon before spike (2015-04)", _paper.ANON_SPIKE_BEFORE, anon_before),
            _paper.row("Anon spike peak (mid-2015)", _paper.ANON_SPIKE_AFTER, anon_peak),
            f"NULL advertised 2018: {null_2018:.2f}% (spikes with anon in mid-2015: "
            f"{null_before:.1f}% -> {null_spike:.1f}%)",
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 1, 1) for y in range(2012, 2019)]
                + [dt.date(2015, 7, 1)],
            ),
        ],
    )
