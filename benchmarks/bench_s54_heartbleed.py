"""§5.4: Heartbleed — vulnerability decay and Heartbeat usage."""

import datetime as dt

import _paper
from repro.core.figures import value_at
from repro.servers import ServerPopulation


def test_s54_heartbleed_vulnerability_decay(benchmark, report):
    pop = ServerPopulation()

    def vulnerable(on):
        return pop.support_fraction(on, lambda p: p.heartbleed_vulnerable)

    at_disclosure = benchmark(vulnerable, dt.date(2014, 4, 6))
    month_later = vulnerable(dt.date(2014, 5, 10))
    may_2018 = vulnerable(dt.date(2018, 5, 1))

    # §5.4: ~23.7% vulnerable at disclosure, <2% within a month,
    # 0.32% still vulnerable in May 2018 (long tail).
    assert 0.18 < at_disclosure < 0.30
    assert month_later < 0.025
    assert 0.001 < may_2018 < 0.008

    report(
        "§5.4 — Heartbleed vulnerability decay",
        [
            _paper.row("vulnerable at disclosure", _paper.VULNERABLE_AT_DISCLOSURE, at_disclosure * 100),
            f"one month after disclosure: {month_later * 100:.2f}% (paper: <2%)",
            _paper.row("vulnerable, May 2018", _paper.VULNERABLE_MAY2018, may_2018 * 100),
        ],
    )


def test_s54_heartbeat_support_and_usage(benchmark, censys, passive_store, report):
    hb_series = benchmark(censys.series, "chrome2015", "heartbeat")
    support_2018 = value_at(hb_series, dt.date(2018, 5, 1)) * 100

    used_2018 = (
        passive_store.fraction(
            dt.date(2018, 3, 1),
            lambda r: r.heartbeat_negotiated,
            within=lambda r: r.established,
        )
        * 100
    )

    # §5.4: 34% of servers support the Heartbeat extension in 2018, and
    # 3% of observed negotiations still use it — odd, since it is a
    # DTLS keep-alive feature with no purpose over TCP.
    assert 28 < support_2018 < 42
    assert 0.3 < used_2018 < 6

    report(
        "§5.4 — Heartbeat extension",
        [
            _paper.row("server heartbeat support, 2018", _paper.HEARTBEAT_SUPPORT_2018, support_2018),
            _paper.row("negotiations using heartbeat", _paper.HEARTBEAT_USED_2018, used_2018),
            "heartbeat users are OpenSSL-1.0.x-era client stacks meeting",
            "heartbeat-enabled servers — both modelled explicitly.",
        ],
    )
