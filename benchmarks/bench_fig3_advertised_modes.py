"""Figure 3: clients advertising RC4, DES, 3DES, or AEAD suites."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig3_advertised_modes(benchmark, passive_store, report):
    series = benchmark(figures.fig3_advertised_modes, passive_store)

    tdes_2018 = figures.value_at(series["3DES"], dt.date(2018, 3, 1))
    tdes_2016 = figures.value_at(series["3DES"], dt.date(2016, 10, 1))
    des_2012 = figures.value_at(series["DES"], dt.date(2012, 3, 1))
    des_2018 = figures.value_at(series["DES"], dt.date(2018, 3, 1))
    aead_2014 = figures.value_at(series["AEAD"], dt.date(2014, 6, 1))
    rc4_2014 = figures.value_at(series["RC4"], dt.date(2014, 6, 1))
    rc4_2018 = figures.value_at(series["RC4"], dt.date(2018, 3, 1))
    cbc_min = min(v for _, v in series["CBC"])

    # §5.6: almost all clients advertised 3DES up to end-2016; >69% today.
    assert tdes_2016 > 90
    assert tdes_2018 > 65
    # DES advertisement declines steeply with the export-era clients.
    assert des_2012 > 25
    assert des_2018 < 12
    # RC4 advertised near-universal in 2014, a minority by 2018.
    assert rc4_2014 > 85
    assert rc4_2018 < 35
    # AEAD advertisement majority by mid-2014 (TLS 1.2 clients).
    assert aead_2014 > 40
    # Figure 3 caption: total CBC-mode is always above 99%.
    assert cbc_min > 97

    report(
        "Figure 3 — advertised RC4 / DES / 3DES / AEAD",
        [
            _paper.row("3DES advertised, 2018", _paper.TRIPLE_DES_ADVERTISED_2018, tdes_2018),
            _paper.row("CBC advertised floor", _paper.CBC_ADVERTISED_FLOOR, cbc_min),
            f"DES 2012: {des_2012:.1f}% -> 2018: {des_2018:.1f}%",
            f"RC4 2014: {rc4_2014:.1f}% -> 2018: {rc4_2018:.1f}%",
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 1, 1) for y in range(2012, 2019)],
            ),
        ],
    )
