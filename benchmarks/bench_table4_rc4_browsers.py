"""Table 4: changes in RC4 cipher-suite support by major browsers."""

from repro.core.tables import table4_rc4_changes

# (browser, version, after-count) count rows from Table 4.
PAPER_COUNT_ROWS = {
    ("Firefox", "27", 4),
    ("Firefox", "36", 0),   # fallback only
    ("Chrome", "29", 4),
    ("Chrome", "43", 0),
    ("Opera", "15", 6),     # increased on the Chromium switch
    ("Opera", "16", 4),
    ("Opera", "30", 0),
    ("IE/Edge", "13", 0),
    ("Safari", "6", 6),
    ("Safari", "9", 4),
    ("Safari", "10.1", 0),
}

PAPER_POLICY_ROWS = {
    ("Firefox", "36", "fallback only"),
    ("Firefox", "38", "whitelist only"),
    ("Firefox", "44", "removed completely"),
}


def test_table4_rc4_changes(benchmark, report):
    rows = benchmark(table4_rc4_changes)
    measured_counts = {(r.browser, r.version, r.after) for r in rows}
    measured_policies = {(r.browser, r.version, r.note) for r in rows if r.note}

    missing = PAPER_COUNT_ROWS - measured_counts
    assert not missing, f"missing Table 4 count rows: {missing}"
    missing_policies = PAPER_POLICY_ROWS - measured_policies
    assert not missing_policies, f"missing Table 4 policy rows: {missing_policies}"

    report(
        "Table 4 — RC4 suite support changes",
        [str(r) for r in rows] + ["all paper count and policy rows reproduced"],
    )
