"""Figure 5: average relative position of the first suite of each class."""

import datetime as dt

from repro.core import figures


def test_fig5_cipher_positions(benchmark, passive_store, report):
    series = benchmark(figures.fig5_cipher_positions, passive_store)

    month = dt.date(2016, 1, 1)
    aead = figures.value_at(series["AEAD"], month)
    cbc = figures.value_at(series["CBC"], month)
    rc4 = figures.value_at(series["RC4"], month)
    tdes = figures.value_at(series["3DES"], month)
    des = figures.value_at(series["DES"], month)

    # Figure 5's ordering: AEAD and CBC near the head of preference
    # lists, RC4 mid-list, DES and 3DES near the tail.
    assert aead < 25
    assert cbc < 35
    assert aead < rc4 < tdes
    assert tdes > 60
    assert des > 50

    # §5.2: "little change in the relative position of the first offered
    # CBC-mode cipher suite over time."
    cbc_values = [v for _, v in series["CBC"]]
    assert max(cbc_values) - min(cbc_values) < 35

    report(
        "Figure 5 — average relative position of first suite per class",
        [
            f"at {month}: AEAD={aead:.0f}% CBC={cbc:.0f}% RC4={rc4:.0f}% DES={des:.0f}% 3DES={tdes:.0f}%",
            "paper shape: AEAD/CBC at top of list, DES/3DES at bottom — reproduced",
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 2, 1) for y in range(2014, 2019)],
            ),
        ],
    )
