"""Figure 2: connections negotiated with RC4, CBC, or AEAD suites."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig2_negotiated_modes(benchmark, passive_store, report):
    series = benchmark(figures.fig2_negotiated_modes, passive_store)

    rc4_aug13 = figures.value_at(series["RC4"], dt.date(2013, 8, 1))
    rc4_mar18 = figures.value_at(series["RC4"], dt.date(2018, 3, 1))
    cbc_mid15 = figures.value_at(series["CBC"], dt.date(2015, 7, 1))
    cbc_2018 = figures.value_at(series["CBC"], dt.date(2018, 3, 1))
    aead_2018 = figures.value_at(series["AEAD"], dt.date(2018, 3, 1))

    # Shape: RC4 peaks ~60% around Aug 2013 then collapses; CBC holds
    # until ~Aug 2015 then declines; AEAD wins by a large margin in 2018.
    assert 40 < rc4_aug13 < 70
    assert rc4_mar18 < 1.5
    assert cbc_mid15 > 40
    assert cbc_2018 < 25
    assert aead_2018 > 70
    # RC4's maximum falls in 2013 (post-BEAST RC4 enforcement).
    peak_month = max(series["RC4"], key=lambda p: p[1])[0]
    assert dt.date(2012, 9, 1) <= peak_month <= dt.date(2014, 6, 1)

    report(
        "Figure 2 — negotiated RC4 / CBC / AEAD",
        [
            _paper.row("RC4 negotiated, Aug 2013", _paper.RC4_NEGOTIATED_AUG2013, rc4_aug13),
            _paper.row("RC4 negotiated, Mar 2018", _paper.RC4_NEGOTIATED_MAR2018, rc4_mar18),
            f"RC4 peak month: {peak_month}",
            f"CBC mid-2015: {cbc_mid15:.1f}%, CBC 2018: {cbc_2018:.1f}%, AEAD 2018: {aead_2018:.1f}%",
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 1, 1) for y in range(2012, 2019)],
            ),
        ],
    )
