"""Figure 9: negotiated AEAD breakdown (AES-GCM sizes, ChaCha20)."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig9_negotiated_aead(benchmark, passive_store, report):
    series = benchmark(figures.fig9_negotiated_aead, passive_store)

    month = dt.date(2018, 3, 1)
    total = figures.value_at(series["AEAD Total"], month)
    aes128 = figures.value_at(series["AES128-GCM"], month)
    aes256 = figures.value_at(series["AES256-GCM"], month)
    chacha = figures.value_at(series["ChaCha20-Poly1305"], month)
    uptick_2013 = figures.value_at(series["AEAD Total"], dt.date(2013, 10, 1))
    uptick_2014 = figures.value_at(series["AEAD Total"], dt.date(2014, 10, 1))

    # §6.3.2: sharp uptick from late 2013; AES128-GCM dominates AES256;
    # ChaCha20 visible but small (1.7% Mar 2018).
    assert uptick_2014 > uptick_2013 + 10
    assert total > 70
    assert aes128 > aes256
    assert aes128 > 50
    assert 0.5 < chacha < 8

    report(
        "Figure 9 — negotiated AEAD breakdown",
        [
            f"AEAD total Mar 2018: {total:.1f}%",
            f"AES128-GCM: {aes128:.1f}%  AES256-GCM: {aes256:.1f}% "
            "(paper: 128-bit keys dominate)",
            _paper.row("ChaCha20 negotiated, Mar 2018", _paper.CHACHA_NEGOTIATED_MAR2018, chacha),
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 1, 1) for y in range(2013, 2019)],
            ),
        ],
    )
