"""Figure 8: negotiated RSA vs DHE vs ECDHE key exchange (Snowden shift)."""

import datetime as dt

import _paper
from repro.core import figures
from repro.simulation.timeline import SNOWDEN


def test_fig8_key_exchange(benchmark, passive_store, report):
    series = benchmark(figures.fig8_key_exchange, passive_store)

    rsa_2012 = figures.value_at(series["RSA"], dt.date(2012, 6, 1))
    ecdhe_2012 = figures.value_at(series["ECDHE"], dt.date(2012, 6, 1))
    ecdhe_2018 = figures.value_at(series["ECDHE"], dt.date(2018, 3, 1))
    rsa_2018 = figures.value_at(series["RSA"], dt.date(2018, 3, 1))
    dhe_peak = max(v for _, v in series["DHE"])

    # Shape: RSA dominates 2012 (>60% non-FS, §1), ECDHE dominates 2018
    # (>90% FS connections, §1); DHE "never found much use".
    assert rsa_2012 > 70
    assert ecdhe_2012 < 15
    assert ecdhe_2018 > 80
    assert rsa_2018 < 15
    assert dhe_peak < 15

    # The Snowden revelations coincide with the FS inflection: the
    # 12-month ECDHE growth after June 2013 far exceeds the 12 months
    # before.
    before = figures.value_at(series["ECDHE"], SNOWDEN.date) - figures.value_at(
        series["ECDHE"], SNOWDEN.date - dt.timedelta(days=365)
    )
    after = figures.value_at(
        series["ECDHE"], SNOWDEN.date + dt.timedelta(days=365)
    ) - figures.value_at(series["ECDHE"], SNOWDEN.date)
    assert after > before * 1.5

    # Crossover (ECDHE > RSA) lands in 2014-2015 as in the paper's figure.
    crossover = next(
        m for m, v in series["ECDHE"] if v > dict(series["RSA"])[m]
    )
    assert dt.date(2014, 1, 1) <= crossover <= dt.date(2015, 12, 1)

    report(
        "Figure 8 — negotiated key exchange (RSA / DHE / ECDHE)",
        [
            f"RSA 2012: {rsa_2012:.1f}%  ->  RSA 2018: {rsa_2018:.1f}%",
            f"ECDHE 2012: {ecdhe_2012:.1f}%  ->  ECDHE 2018: {ecdhe_2018:.1f}% (paper: >90% FS)",
            f"DHE peak: {dhe_peak:.1f}% (paper: never found much use)",
            f"ECDHE growth 12mo pre-Snowden: {before:+.1f} pts, post: {after:+.1f} pts",
            f"ECDHE/RSA crossover: {crossover}",
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 1, 1) for y in range(2012, 2019)],
            ),
        ],
    )
