"""§4.1: how long individual fingerprints are seen."""

import _paper
from repro.core.stats import (
    duration_summary,
    long_lived_software,
    top_fingerprint_concentration,
)


def test_s41_fingerprint_durations(benchmark, montecarlo_store, report):
    summary = benchmark(duration_summary, montecarlo_store)

    # Shape assertions (§4.1): median 1 day (the extreme single-day
    # bias), single-day fingerprints carry almost no traffic, a small
    # set of very long-lived fingerprints carries a disproportionate
    # connection share, max duration is bounded by the fingerprint era.
    assert summary.median_days <= 2
    assert summary.single_day / summary.fingerprints > 0.4
    assert summary.single_day_connections / summary.total_connections < 0.02
    assert summary.long_lived > 0
    assert summary.long_lived_connections_share > 0.10
    assert summary.max_days <= 1600

    top10 = top_fingerprint_concentration(montecarlo_store, 10)
    assert 0.15 < top10 < 0.8  # paper: 25.9%

    report(
        "§4.1 — fingerprint lifetime statistics",
        [
            _paper.row("median duration (days)", _paper.DURATION_MEDIAN, summary.median_days, ""),
            _paper.row("mean duration (days)", _paper.DURATION_MEAN, summary.mean_days, ""),
            _paper.row("max duration (days)", _paper.DURATION_MAX, float(summary.max_days), ""),
            f"single-day FPs: {summary.single_day}/{summary.fingerprints} "
            f"({summary.single_day / summary.fingerprints:.0%}; paper: 42,188/69,874 = 60%)",
            f"single-day connection share: "
            f"{summary.single_day_connections / summary.total_connections:.3%} "
            "(paper: 801,232 of 191B = 0.0004%)",
            _paper.row(
                ">=1200-day FP connection share",
                _paper.LONG_LIVED_CONNECTION_SHARE,
                summary.long_lived_connections_share * 100,
            ),
            _paper.row("top-10 FP concentration", _paper.TOP10_CONCENTRATION, top10 * 100),
            "note: our MC sample is ~90k connections vs the paper's 191B, so",
            "      absolute fingerprint counts scale down by construction.",
        ],
    )


def test_s41_long_lived_software(benchmark, montecarlo_store, database, report):
    """§4.1: who the longest-lived fingerprints belong to."""
    ranked = benchmark(long_lived_software, montecarlo_store, database)

    assert ranked  # identifiable software exists among long-lived FPs
    names = [software for software, _ in ranked]
    # The paper's list is led by OS libraries and browsers; ours must be
    # drawn from the same kinds of software.
    assert any(
        n in ("Apple SecureTransport", "Android SDK", "Safari", "Chrome", "Firefox", "Apple Mail")
        for n in names
    )

    report(
        "§4.1 — software behind >=1200-day fingerprints",
        [f"{software:<26} {share:6.1%} of long-lived traffic" for software, share in ranked]
        + [
            "paper: 'iPad Air (library), Safari, Android SDK, as well as",
            "Chrome, Firefox, and the MacOs Mail App'",
        ],
    )
