"""Figure 6: percent of connections where the client advertises RC4."""

import datetime as dt

from repro.core import figures
from repro.simulation.timeline import BROWSER_RC4_REMOVAL


def test_fig6_rc4_advertised(benchmark, passive_store, report):
    series = benchmark(figures.fig6_rc4_advertised, passive_store)["RC4 advertised"]
    lookup = dict(series)

    early_2014 = figures.value_at(series, dt.date(2014, 6, 1))
    early_2015 = figures.value_at(series, dt.date(2015, 1, 1))
    early_2016 = figures.value_at(series, dt.date(2016, 1, 1))
    mar_2018 = figures.value_at(series, dt.date(2018, 3, 1))

    # Shape: near-universal until the big drop that begins in 2015 when
    # Chrome, Firefox and IE/Edge remove RC4, with a long residual tail.
    assert early_2014 > 85
    assert early_2015 > 75
    assert early_2016 < early_2015 - 10
    assert 5 < mar_2018 < 35  # residual population that does not update

    # The steepest year-over-year drop happens in 2015/2016.
    yearly = {
        year: figures.value_at(series, dt.date(year, 6, 1)) for year in range(2012, 2019)
    }
    drops = {year: yearly[year] - yearly[year + 1] for year in range(2012, 2018)}
    steepest = max(drops, key=drops.get)
    assert steepest in (2014, 2015, 2016)

    report(
        "Figure 6 — RC4 advertised by clients",
        [
            f"2014-06: {early_2014:.1f}%  2015-01: {early_2015:.1f}%  "
            f"2016-01: {early_2016:.1f}%  2018-03: {mar_2018:.1f}%",
            f"steepest annual drop: {steepest} -> {steepest + 1} "
            f"({drops[steepest]:.1f} points; paper: drop begins early 2015)",
            "browser removal dates (Figure 6's dots): "
            + ", ".join(f"{e.name.split()[0]} {e.date}" for e in BROWSER_RC4_REMOVAL),
        ],
    )
