"""Table 6: browser TLS protocol-support milestones."""

from repro.core.tables import table6_protocol_support

PAPER_MILESTONES = {
    ("Firefox", "TLS 1.1/1.2 supported"),
    ("Firefox", "SSL 3 fallback removed"),
    ("Firefox", "TLS 1.3 supported"),
    ("Chrome", "TLS 1.1 supported"),
    ("Chrome", "TLS 1.2 supported"),
    ("Chrome", "SSL 3 fallback removed"),
    ("IE/Edge", "TLS 1.1/1.2 supported"),
    ("Opera", "TLS 1.1 supported"),
    ("Opera", "SSL 3 fallback removed"),
    ("Safari", "TLS 1.1/1.2 supported"),
    ("Safari", "SSL 3 fallback removed"),
}

PAPER_DATES = {
    ("Firefox", "TLS 1.1/1.2 supported"): "2014-02-04",
    ("Chrome", "TLS 1.1 supported"): "2012-09-25",
    ("Chrome", "TLS 1.2 supported"): "2013-08-20",
    ("Chrome", "SSL 3 fallback removed"): "2014-11-18",
    ("IE/Edge", "TLS 1.1/1.2 supported"): "2013-11-01",
    ("Opera", "TLS 1.1 supported"): "2013-08-27",
    ("Opera", "SSL 3 fallback removed"): "2015-01-22",
    ("Safari", "TLS 1.1/1.2 supported"): "2013-10-22",
    ("Safari", "SSL 3 fallback removed"): "2015-09-30",
}


def test_table6_protocol_support(benchmark, report):
    rows = benchmark(table6_protocol_support)
    measured = {(r.browser, r.change) for r in rows}
    missing = PAPER_MILESTONES - measured
    assert not missing, f"missing Table 6 milestones: {missing}"

    dated = {(r.browser, r.change): r.date for r in rows}
    for key, date in PAPER_DATES.items():
        assert dated[key] == date, (key, dated[key], date)

    report(
        "Table 6 — browser TLS version support",
        [str(r) for r in rows] + ["all paper milestones reproduced (dates match)"],
    )
