"""§4 methodology: restricted (4-field) vs extended fingerprint fields.

The paper applies its restricted field set to the corpus of prior work
and finds collisions rise from 2.4% to 7.3% — fewer fields, less
distinct fingerprints.  We reproduce the comparison over every client
configuration in the substrate, plus synthetic pairs engineered to
differ only in the fields the restricted method drops.
"""

import random

from repro.clients.population import default_population
from repro.core.fingerprint import collision_rate


def _all_hellos():
    hellos = []
    for family in default_population().families():
        for release in family.releases:
            if release.shuffle_suites:
                continue
            variants = [False, True] if release.supported_versions else [False]
            for tls13 in variants:
                hellos.append(
                    release.build_hello(rng=random.Random(1), include_tls13=tls13)
                )
    # Synthetic near-duplicates: same suites/extensions/curves, but
    # different legacy versions — exactly the information the Notary
    # did not record (§4).  Based on a configuration no other release
    # shares, so the restricted method merges them while the extended
    # method keeps them apart.
    import dataclasses

    base = (
        default_population()
        .family("Safari")
        .release("9")
        .build_hello(rng=random.Random(1))
    )
    for version in (0x0301, 0x0302):
        hellos.append(dataclasses.replace(base, legacy_version=version))
    return hellos


def test_s4_field_restriction_increases_collisions(benchmark, report):
    hellos = _all_hellos()
    restricted, extended = benchmark(collision_rate, hellos)

    # Restricted fields can only merge fingerprints, never split them.
    assert restricted >= extended
    # The engineered version-only variants collide under the restricted
    # method and not under the extended one.
    assert restricted > 0
    assert restricted - extended > 0

    report(
        "§4 — fingerprint field restriction",
        [
            f"configurations fingerprinted: {len(hellos)}",
            f"collision rate, restricted 4-field method: {restricted:.1%} "
            "(paper: 7.3% on the corpus of [22])",
            f"collision rate, extended method: {extended:.1%} (paper: 2.4%)",
            "dropping the client-version/compression fields merges otherwise",
            "distinct clients — 'slightly less distinct results' (§4).",
        ],
    )
