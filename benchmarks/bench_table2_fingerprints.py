"""Table 2: fingerprint database summary — counts and coverage per category."""

import _paper
from repro.core.stats import most_common_unlabeled_share, top_fingerprint_concentration
from repro.core.tables import table2_fingerprint_summary


def test_table2_fingerprint_summary(benchmark, database, passive_store, report):
    records = [r for r in passive_store.records() if r.fingerprint is not None]
    rows = benchmark(table2_fingerprint_summary, database, records)

    measured = {category: (count, coverage) for category, count, coverage in rows}
    all_count, all_coverage = measured["All"]

    # Shape: coverage in the right band; Libraries the top coverage
    # category; every paper category represented.
    assert 55.0 < all_coverage < 85.0  # paper: 69.23%
    assert measured["Libraries"][1] == max(
        cov for cat, (_, cov) in measured.items() if cat != "All"
    )
    for category in _paper.TABLE2:
        assert category in measured, category

    lines = [f"{'category':<26} {'paper #FP':>9} {'paper cov':>9}   {'ours #FP':>8} {'ours cov':>8}"]
    for category, count, coverage in rows:
        p_count, p_cov = _paper.TABLE2[category]
        lines.append(
            f"{category:<26} {p_count:>9} {p_cov:>8.2f}%   {count:>8} {coverage:>7.2f}%"
        )
    top10 = top_fingerprint_concentration(passive_store, 10) * 100
    unlabeled_top = most_common_unlabeled_share(passive_store, database) * 100
    lines.append(
        f"top-10 fingerprint concentration (§4.0.1, paper 25.9%): {top10:.1f}%"
    )
    lines.append(
        "most common unlabeled fingerprint's share of unlabeled traffic "
        f"(§4.0.1, paper ~1% of remaining): {unlabeled_top:.1f}%"
    )
    lines.append(
        "note: our database is release-granular, the paper's is "
        "build-granular (1,684 FPs); coverage shape is the target."
    )
    report("Table 2 — fingerprint summary", lines)
