"""§5.6: Sweet32 — 3DES negotiation and server-side 3DES choice."""

import datetime as dt

import _paper
from repro.core.figures import value_at


def _negotiated_3des(store, month):
    return store.fraction(
        month,
        lambda r: r.suite is not None and r.suite.is_3des,
        within=lambda r: r.established,
    )


def test_s56_3des_negotiated(benchmark, passive_store, report):
    value_2012 = benchmark(_negotiated_3des, passive_store, dt.date(2012, 7, 1))
    value_2018 = _negotiated_3des(passive_store, dt.date(2018, 2, 1))
    peak = max(
        _negotiated_3des(passive_store, m) for m in passive_store.months()
    )

    # §5.6: 1.4% in mid-2012, 0.3% in 2018, peaks never beyond ~5%.
    assert 0.005 < value_2012 < 0.05
    assert value_2018 < 0.012
    assert peak < 0.06
    assert value_2018 < value_2012

    report(
        "§5.6 — 3DES negotiated (passive)",
        [
            _paper.row("3DES negotiated, mid-2012", _paper.TDES_NEGOTIATED_2012, value_2012 * 100),
            _paper.row("3DES negotiated, 2018", _paper.TDES_NEGOTIATED_2018, value_2018 * 100),
            f"all-time peak: {peak * 100:.2f}% (paper: highest peaks ~5%)",
        ],
    )


def test_s56_3des_chosen_by_servers(benchmark, censys, report):
    series = benchmark(censys.series, "chrome2015", "3des")
    aug15 = value_at(series, dt.date(2015, 8, 22)) * 100
    may18 = value_at(series, dt.date(2018, 5, 1)) * 100

    # §5.6: 0.54% (Aug 2015) -> 0.25% (May 2018) of servers choose the
    # bottom-of-list 3DES suite despite stronger offers.
    assert 0.3 < aug15 < 0.9
    assert 0.1 < may18 < 0.5
    assert may18 < aug15

    report(
        "§5.6 — servers choosing 3DES (Chrome-2015 probe)",
        [
            _paper.row("chose 3DES, Aug 2015", _paper.TDES_CHOSEN_AUG2015, aug15),
            _paper.row("chose 3DES, May 2018", _paper.TDES_CHOSEN_MAY2018, may18),
            "a small but persistent server tail keeps 3DES alive as the",
            "clients' cipher of last resort (§5.6's justification).",
        ],
    )
