"""Ablation: GREASE stripping in the fingerprint pipeline (§4).

The paper strips GREASE values before fingerprinting because Chrome
randomizes them per connection.  This ablation quantifies the damage of
skipping that step: without stripping, every GREASE-ing connection
mints a fresh fingerprint and database matching collapses for exactly
that population.
"""

import random

from repro.clients import chrome
from repro.core.fingerprint import Fingerprint
from repro.notary.events import FingerprintFields
from repro.tls.messages import ClientHello


def _raw_fingerprint(hello: ClientHello) -> Fingerprint:
    """A fingerprint WITHOUT GREASE stripping (the ablated pipeline)."""
    return Fingerprint(
        FingerprintFields(
            cipher_suites=hello.cipher_suites,
            extensions=hello.extension_types(),
            curves=hello.supported_groups,
            ec_point_formats=tuple(hello.ec_point_formats),
        )
    )


def _distinct_counts(samples: int = 300):
    release = chrome.family().release("65")
    rng = random.Random(4)
    hellos = [release.build_hello(rng=rng, include_tls13=True) for _ in range(samples)]
    stripped = {Fingerprint.from_client_hello(h).digest for h in hellos}
    raw = {_raw_fingerprint(h).digest for h in hellos}
    return len(stripped), len(raw), samples


def test_ablation_grease_stripping(benchmark, report):
    stripped_count, raw_count, samples = benchmark(_distinct_counts)

    # With stripping: one stable fingerprint for the release.  Without:
    # the fingerprint space explodes toward one per connection.
    assert stripped_count == 1
    assert raw_count > samples * 0.5

    report(
        "Ablation — GREASE stripping in fingerprint extraction",
        [
            f"{samples} Chrome 65 connections:",
            f"  with GREASE stripping (§4 method): {stripped_count} distinct fingerprint(s)",
            f"  without stripping (ablated):       {raw_count} distinct fingerprints",
            "without the §4 GREASE rule, every Chrome connection mints a new",
            "fingerprint and the database cannot label the dominant browser.",
        ],
    )
