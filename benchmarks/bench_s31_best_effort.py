"""§3.1: the best-effort collection argument, quantified.

The paper accepts outages and packet drops and argues the aggregate is
still "representative of many properties of real-world SSL/TLS
activity".  This bench degrades the dataset the way those artifacts
would and measures how far the headline series move.
"""

import datetime as dt
import random

from repro.notary.quality import apply_outage, apply_uniform_loss, robustness_gap


def test_s31_representativeness_under_loss(benchmark, passive_store, report):
    degraded = benchmark(
        apply_uniform_loss, passive_store, 0.35, random.Random(31)
    )

    gaps = {
        "RC4 negotiated": robustness_gap(
            passive_store, degraded,
            lambda r: r.negotiated_mode_class == "RC4",
            within=lambda r: r.established,
        ),
        "TLS 1.2 negotiated": robustness_gap(
            passive_store, degraded,
            lambda r: r.negotiated_version == "TLSv12",
            within=lambda r: r.established,
        ),
        "3DES advertised": robustness_gap(
            passive_store, degraded, lambda r: r.advertises("3des")
        ),
        "export advertised": robustness_gap(
            passive_store, degraded, lambda r: r.advertises("export")
        ),
    }
    # 35% uniform loss moves every headline fraction by under 2 points.
    assert all(gap < 0.02 for gap in gaps.values())

    with_outages = apply_outage(
        apply_outage(passive_store, dt.date(2013, 5, 1)), dt.date(2016, 11, 1)
    )
    outage_gap = robustness_gap(
        passive_store, with_outages,
        lambda r: r.negotiated_mode_class == "AEAD",
        within=lambda r: r.established,
    )
    assert outage_gap == 0.0  # surviving months unaffected

    report(
        "§3.1 — best-effort collection, quantified",
        [
            f"{name:<20} max monthly deviation under 35% loss: {gap * 100:.3f} pts"
            for name, gap in gaps.items()
        ]
        + [
            "two whole-month outages: surviving months deviate 0.000 pts",
            "uniform artifacts leave the aggregates representative (§3.1);",
            "only *biased* loss would distort (tests/test_quality.py).",
        ],
    )
