"""Throughput benchmarks of the hot substrate paths.

Not paper experiments — these are the library's own performance
envelope: wire encode/decode, negotiation, and fingerprint extraction
all sit on the expectation-mode inner loop, and regressions here make
the full 76-month simulation visibly slower.
"""

import random

from repro.clients import chrome
from repro.core.fingerprint import Fingerprint
from repro.servers.archetypes import TLS12_ECDHE_GCM
from repro.tls.wire import decode_client_hello, encode_client_hello

_HELLO = chrome.family().release("49").build_hello(rng=random.Random(1))
_WIRE = encode_client_hello(_HELLO)


def test_perf_encode_client_hello(benchmark):
    wire = benchmark(encode_client_hello, _HELLO)
    assert wire == _WIRE


def test_perf_decode_client_hello(benchmark):
    decoded = benchmark(decode_client_hello, _WIRE)
    assert decoded.cipher_suites == _HELLO.cipher_suites


def test_perf_negotiate(benchmark):
    result = benchmark(TLS12_ECDHE_GCM.respond, _HELLO)
    assert result.ok


def test_perf_fingerprint_extraction(benchmark):
    fingerprint = benchmark(Fingerprint.from_client_hello, _HELLO)
    assert len(fingerprint.digest) == 32


def test_perf_expectation_month(benchmark):
    """One full expectation-mode month (cold caches)."""
    import datetime as dt

    from repro.clients.population import default_population
    from repro.notary import PassiveMonitor, TrafficGenerator
    from repro.servers import ServerPopulation

    def run_month():
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        generator.run_expectation_month(dt.date(2016, 6, 1))
        return len(monitor.store)

    records = benchmark(run_month)
    assert records > 1000
