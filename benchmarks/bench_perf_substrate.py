"""Throughput benchmarks of the hot substrate paths.

Not paper experiments — these are the library's own performance
envelope: wire encode/decode, negotiation, and fingerprint extraction
all sit on the expectation-mode inner loop, and regressions here make
the full 76-month simulation visibly slower.
"""

import random

from repro.clients import chrome
from repro.core.fingerprint import Fingerprint
from repro.servers.archetypes import TLS12_ECDHE_GCM
from repro.tls.wire import decode_client_hello, encode_client_hello

_HELLO = chrome.family().release("49").build_hello(rng=random.Random(1))
_WIRE = encode_client_hello(_HELLO)


def test_perf_encode_client_hello(benchmark):
    wire = benchmark(encode_client_hello, _HELLO)
    assert wire == _WIRE


def test_perf_decode_client_hello(benchmark):
    decoded = benchmark(decode_client_hello, _WIRE)
    assert decoded.cipher_suites == _HELLO.cipher_suites


def test_perf_negotiate(benchmark):
    result = benchmark(TLS12_ECDHE_GCM.respond, _HELLO)
    assert result.ok


def test_perf_fingerprint_extraction(benchmark):
    fingerprint = benchmark(Fingerprint.from_client_hello, _HELLO)
    assert len(fingerprint.digest) == 32


def test_perf_expectation_month(benchmark):
    """One full expectation-mode month (cold caches)."""
    import datetime as dt

    from repro.clients.population import default_population
    from repro.notary import PassiveMonitor, TrafficGenerator
    from repro.servers import ServerPopulation

    def run_month():
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        generator.run_expectation_month(dt.date(2016, 6, 1))
        return len(monitor.store)

    records = benchmark(run_month)
    assert records > 1000


# ---- run engine ------------------------------------------------------------
#
# A short three-month window keeps these affordable in CI; the serial and
# parallel variants bracket the sharding overhead (on multi-core hardware
# the parallel run should approach serial/cores + merge cost).

_ENGINE_WINDOW = None  # (clients, servers, start, end), built lazily


def _engine_window():
    global _ENGINE_WINDOW
    if _ENGINE_WINDOW is None:
        import datetime as dt

        from repro.clients.population import default_population
        from repro.servers import ServerPopulation

        _ENGINE_WINDOW = (
            default_population(),
            ServerPopulation(),
            dt.date(2016, 4, 1),
            dt.date(2016, 6, 1),
        )
    return _ENGINE_WINDOW


def test_perf_engine_run_serial(benchmark):
    from repro.engine import runner

    clients, servers, start, end = _engine_window()

    def run():
        return len(runner.run_expectation(clients, servers, start, end, workers=0))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert records > 3000


def test_perf_engine_run_parallel(benchmark):
    from repro.engine import runner

    clients, servers, start, end = _engine_window()
    if not runner.fork_available():
        import pytest

        pytest.skip("no fork start method on this platform")

    def run():
        return len(runner.run_expectation(clients, servers, start, end, workers=2))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert records > 3000


def test_perf_dataset_cache_load(benchmark, tmp_path, monkeypatch):
    """Warm cache load of a packed window — the repeat-CLI hot path."""
    from repro.engine import cache as dataset_cache
    from repro.engine import runner

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clients, servers, start, end = _engine_window()
    store = runner.run_expectation(clients, servers, start, end, workers=0)
    key = dataset_cache.dataset_key(clients, servers, start, end)
    dataset_cache.save_store(store, key)

    warm = benchmark(lambda: dataset_cache.load_store(key))
    assert warm is not None
    assert len(warm) == len(store)


def test_perf_indexed_aggregation(benchmark):
    """Figure 1 series off the aggregate index (post-warmup: O(1)/month)."""
    from repro.core import figures
    from repro.engine import runner

    clients, servers, start, end = _engine_window()
    store = runner.run_expectation(clients, servers, start, end, workers=0)
    series = benchmark(figures.fig1_negotiated_versions, store)
    assert series["TLSv12"]
