"""Ablation: does the long-tail adoption model cause the paper's tails?

DESIGN.md calls the heavy-tailed upgrade-lag model the mechanism behind
the paper's residual-RC4 and 3DES findings (§4.1, §7.2).  This ablation
replaces every family's adoption model with an instant-upgrade one and
compares the 2018 advertisement levels: with instant upgrades the RC4
tail collapses, confirming the attribution.
"""

import dataclasses
import datetime as dt

from repro.clients.population import default_population
from repro.clients.profile import AdoptionModel

#: Near-instant upgrades: everyone on the newest release within days.
_INSTANT = AdoptionModel(fast_days=3.0, tail=0.0, slow_days=4.0)


def _instant_population():
    population = default_population()
    for family, _ in population.members:
        family.adoption = _INSTANT
    return population


def test_ablation_adoption_lag(benchmark, report):
    lagged = default_population()
    instant = benchmark(_instant_population)

    day = dt.date(2018, 3, 1)
    rc4 = lambda s: s.is_rc4  # noqa: E731
    exp = lambda s: s.is_export  # noqa: E731

    rc4_lagged = lagged.advertised_fraction(day, rc4) * 100
    rc4_instant = instant.advertised_fraction(day, rc4) * 100
    export_lagged = lagged.advertised_fraction(day, exp) * 100
    export_instant = instant.advertised_fraction(day, exp) * 100

    # The tails are largely adoption-lag artifacts: with instant
    # upgrades the 2018 RC4 advertisement collapses, and the export
    # advertisement falls to the deliberate residue (Zbot's static
    # OpenSSL, Shodan's everything-list, Nagios probes).
    assert rc4_instant < rc4_lagged / 3
    assert export_instant < export_lagged / 2
    assert rc4_instant < 6
    assert export_instant < 1.5

    # But 3DES survives the ablation: it is a deliberate configuration
    # choice of *current* releases ("cipher of last resort", §5.6), not
    # an upgrade-lag effect.
    tdes = lambda s: s.is_3des  # noqa: E731
    tdes_lagged = lagged.advertised_fraction(day, tdes) * 100
    tdes_instant = instant.advertised_fraction(day, tdes) * 100
    assert tdes_instant > 40

    report(
        "Ablation — adoption lag on/off (advertised, Mar 2018)",
        [
            f"{'metric':<18} {'lagged (default)':>17} {'instant upgrades':>17}",
            f"{'RC4 advertised':<18} {rc4_lagged:>16.1f}% {rc4_instant:>16.1f}%",
            f"{'export advertised':<18} {export_lagged:>16.1f}% {export_instant:>16.1f}%",
            f"{'3DES advertised':<18} {tdes_lagged:>16.1f}% {tdes_instant:>16.1f}%",
            "RC4/export tails are upgrade-lag artifacts (collapse when lag is",
            "removed); 3DES is a deliberate choice of current releases (§5.6).",
        ],
    )
