"""POODLE mechanics: downgrade-dance exposure across browser history.

Not a paper figure, but the causal mechanism behind §5.1/§5.2's SSL 3
story: which client generations a POODLE MITM could actually force to
SSL 3, and how Table 6's mitigations (fallback removal, SCSV) close the
window.
"""

import datetime as dt

from repro.clients import chrome, firefox, opera, safari
from repro.servers import archetypes as arch
from repro.tls.fallback import poodle_attack_succeeds


def _exposure_timeline():
    """For each browser release: is a POODLE MITM viable against a
    legacy SSL3-capable server?"""
    rows = []
    # The target is a CBC-preferring SSL3-capable host: RC4-enforcing
    # servers would hand the attacker RC4 instead of exploitable CBC.
    target = arch.TLS10_CBC
    for module in (chrome, firefox, opera, safari):
        family = module.family()
        for release in family.releases:
            exposed = poodle_attack_succeeds(release, target)
            rows.append((family.name, release.version, release.released, exposed))
    return rows


def test_poodle_exposure_timeline(benchmark, report):
    rows = benchmark(_exposure_timeline)

    by_family: dict[str, list] = {}
    for family, version, released, exposed in rows:
        by_family.setdefault(family, []).append((version, released, exposed))

    # Every browser is exposed at the POODLE disclosure date and safe by
    # the end of the window — and the flip matches Table 6's dates.
    poodle_day = dt.date(2014, 10, 14)
    for family, releases in by_family.items():
        at_disclosure = [r for r in releases if r[1] <= poodle_day][-1]
        assert at_disclosure[2], f"{family} should be exposed at disclosure"
        assert not releases[-1][2], f"{family} should be safe by 2018"

    flips = {
        family: next(v for v, _, exposed in releases if not exposed)
        for family, releases in by_family.items()
    }
    assert flips["Chrome"] == "39"
    assert flips["Firefox"] == "37"
    assert flips["Opera"] == "27"
    assert flips["Safari"] == "9"

    lines = [
        f"{family:<8} first safe release: {version} "
        f"(Table 6's 'SSL 3 fallback removed' row)"
        for family, version in flips.items()
    ]
    lines.append("")
    lines.append("SCSV alone defeats the dance on updated servers but not on")
    lines.append("SSL3-only relics — removing the fallback rung is the real fix.")
    report("POODLE downgrade-dance exposure (mechanism bench)", lines)
