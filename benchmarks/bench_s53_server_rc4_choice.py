"""§5.3 / §5.2: servers choosing RC4 (and CBC) on the Chrome-2015 probe."""

import datetime as dt

import _paper
from repro.core.figures import value_at


def test_s53_server_rc4_and_cbc_choice(benchmark, censys, report):
    rc4_series = benchmark(censys.series, "chrome2015", "rc4")
    cbc_series = censys.series("chrome2015", "cbc")

    rc4_sep15 = value_at(rc4_series, dt.date(2015, 9, 1)) * 100
    rc4_may18 = value_at(rc4_series, dt.date(2018, 5, 1)) * 100
    cbc_sep15 = value_at(cbc_series, dt.date(2015, 9, 1)) * 100
    cbc_may18 = value_at(cbc_series, dt.date(2018, 5, 1)) * 100

    # §5.3: 11.2% of servers chose RC4 over stronger suites in Sep 2015,
    # 3.4% in May 2018.  §5.2: CBC chosen drops 54% -> 35%, with the
    # largest drop between late-2016 and mid-2017.
    assert 8 < rc4_sep15 < 18
    assert 2 < rc4_may18 < 7
    assert rc4_may18 < rc4_sep15 / 2
    assert 45 < cbc_sep15 < 65
    assert 28 < cbc_may18 < 45

    cbc_late16 = value_at(cbc_series, dt.date(2016, 10, 1)) * 100
    cbc_mid17 = value_at(cbc_series, dt.date(2017, 7, 1)) * 100
    assert cbc_late16 - cbc_mid17 > 3  # the 2016/2017 drop exists

    report(
        "§5.3 / §5.2 — servers choosing RC4 / CBC (Chrome-2015 probe)",
        [
            _paper.row("chose RC4, Sep 2015", _paper.RC4_CHOSEN_SEP2015, rc4_sep15),
            _paper.row("chose RC4, May 2018", _paper.RC4_CHOSEN_MAY2018, rc4_may18),
            _paper.row("chose CBC, Sep 2015", _paper.CBC_CHOSEN_SEP2015, cbc_sep15),
            _paper.row("chose CBC, May 2018", _paper.CBC_CHOSEN_MAY2018, cbc_may18),
            f"CBC drop late-2016 -> mid-2017: {cbc_late16:.1f}% -> {cbc_mid17:.1f}%",
        ],
    )


def test_s53_rc4_preferring_server_behaviour(benchmark, report):
    """The bankmellat.ir anecdote: RC4 chosen despite stronger offers,
    modern AEAD chosen once RC4 is removed from the list."""
    from repro.clients import suites as cs
    from repro.servers.archetypes import TLS12_RC4_PREF
    from repro.tls.messages import ClientHello

    with_rc4 = ClientHello(
        legacy_version=0x0303, random=b"\0" * 32,
        cipher_suites=(cs.ECDHE_RSA_AES128_GCM, cs.RSA_RC4_128_SHA),
        supported_groups=(23,),
    )
    without_rc4 = ClientHello(
        legacy_version=0x0303, random=b"\0" * 32,
        cipher_suites=(cs.ECDHE_RSA_AES128_GCM,),
        supported_groups=(23,),
    )
    chose_rc4 = benchmark(TLS12_RC4_PREF.respond, with_rc4)
    chose_aead = TLS12_RC4_PREF.respond(without_rc4)
    assert chose_rc4.suite.is_rc4
    assert chose_aead.suite.is_aead

    report(
        "§5.3 — RC4-preferring server anecdote",
        [
            f"offer with RC4    -> {chose_rc4.suite.name}",
            f"offer without RC4 -> {chose_aead.suite.name}",
            "matches the paper's bankmellat.ir observation",
        ],
    )
