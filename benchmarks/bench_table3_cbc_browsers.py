"""Table 3: changes in the number of CBC cipher suites offered by browsers."""

from repro.core.tables import table3_cbc_changes

# (browser, version, after-count) rows from the paper's Table 3.
PAPER_ROWS = {
    ("Firefox", "27", 17),
    ("Firefox", "33", 10),
    ("Firefox", "37", 9),
    ("Firefox", "60b", 5),
    ("Chrome", "29", 16),
    ("Chrome", "31", 10),
    ("Chrome", "41", 9),
    ("Chrome", "49", 7),
    ("Chrome", "56", 5),
    ("Opera", "15", 29),
    ("Opera", "16", 16),
    ("Opera", "18", 10),
    ("Opera", "28", 9),
    ("Opera", "30", 7),
    ("Opera", "43", 5),
    ("Safari", "7.1", 30),
    ("Safari", "9", 15),
    ("Safari", "10.1", 12),
}


def test_table3_cbc_changes(benchmark, report):
    rows = benchmark(table3_cbc_changes)
    measured = {(r.browser, r.version, r.after) for r in rows}
    missing = PAPER_ROWS - measured
    assert not missing, f"missing Table 3 rows: {missing}"

    report(
        "Table 3 — CBC suite count changes",
        [str(r) for r in rows if (r.browser, r.version, r.after) in PAPER_ROWS]
        + ["all 18 paper rows reproduced exactly"],
    )
