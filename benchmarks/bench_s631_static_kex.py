"""§6.3.1 (static key exchange) and §5.1 (SSL 2 remnant) in-text numbers."""

import datetime as dt

from repro.tls.ciphers import KexFamily


def _mean_fraction(store, predicate):
    months = store.months()
    return sum(
        store.fraction(m, predicate, within=lambda r: r.established) for m in months
    ) / len(months)


def test_s631_static_ecdh(benchmark, passive_store, report):
    ecdh = benchmark(
        _mean_fraction,
        passive_store,
        lambda r: r.negotiated_kex == KexFamily.ECDH,
    ) * 100
    dh = _mean_fraction(
        passive_store, lambda r: r.negotiated_kex == KexFamily.DH
    ) * 100

    # §6.3.1: static DH 0.00%, static ECDH 0.27% of connections.
    assert 0.05 < ecdh < 0.6
    assert dh < 0.01

    # "ECDH nearly exclusively at Splunk servers on port 9997".
    month = dt.date(2017, 6, 1)
    ecdh_records = [
        r
        for r in passive_store.records(month)
        if r.established and r.negotiated_kex == KexFamily.ECDH
    ]
    assert ecdh_records
    assert all(r.server_port == 9997 for r in ecdh_records)
    assert all(r.server_profile == "splunk-server" for r in ecdh_records)

    report(
        "§6.3.1 — static (non-forward-secret) key exchange",
        [
            f"static ECDH: paper 0.27%   measured {ecdh:.2f}% (dataset mean)",
            f"static DH:   paper 0.00%   measured {dh:.3f}%",
            "all ECDH connections terminate at splunk-server:9997, as in",
            "the paper ('nearly exclusively at Splunk servers on port 9997').",
        ],
    )


def test_s51_ssl2_remnant(benchmark, passive_store, report):
    ssl2 = benchmark(
        passive_store.fraction,
        dt.date(2018, 2, 1),
        lambda r: r.negotiated_version == "SSLv2",
    ) * 100

    # §5.1: 1.2K SSL 2 connections in Feb 2018 — vanishingly small but
    # present, all at one university's Nagios endpoints.
    assert 0 < ssl2 < 0.001
    destinations = {
        (r.server_profile, r.server_port)
        for r in passive_store.records(dt.date(2018, 2, 1))
        if r.negotiated_version == "SSLv2"
    }
    assert destinations == {("nagios-server", 5666)}

    report(
        "§5.1 — SSL 2 remnant",
        [
            f"SSL 2 share, Feb 2018: {ssl2:.6f}% "
            "(paper: 1.2K connections of ~billions)",
            "all SSL 2 flights terminate at Nagios endpoints (port 5666),",
            "matching the paper's single-university observation.",
        ],
    )
