"""§9 outlook: RIE deployment and Encrypt-then-MAC uptake."""

import datetime as dt

from repro.core.extensions_analysis import encrypt_then_mac_uptake, rie_deployment
from repro.core.figures import value_at


def test_s9_rie_deployment(benchmark, passive_store, report):
    series = benchmark(rie_deployment, passive_store)

    offered_2012 = value_at(series["RIE offered"], dt.date(2012, 6, 1))
    offered_2018 = value_at(series["RIE offered"], dt.date(2018, 3, 1))
    negotiated_2018 = value_at(series["RIE negotiated"], dt.date(2018, 3, 1))

    # The renegotiation-attack response: RIE (RFC 5746, 2010) is already
    # broadly deployed at the start of the window and near-universal
    # among maintained stacks by 2018.
    assert offered_2012 > 50
    assert offered_2018 > offered_2012
    assert negotiated_2018 > 40

    report(
        "§9 — renegotiation-info (RIE) deployment",
        [
            f"offered 2012: {offered_2012:.1f}%  ->  2018: {offered_2018:.1f}%",
            f"negotiated 2018: {negotiated_2018:.1f}%",
            "paper: 'we are able to track the response to the TLS",
            "renegotiation attack through the deployment of the RIE extension'",
        ],
    )


def test_s9_encrypt_then_mac(benchmark, passive_store, report):
    series = benchmark(encrypt_then_mac_uptake, passive_store)

    offered_2015 = value_at(series["EtM offered"], dt.date(2015, 6, 1))
    offered_2018 = value_at(series["EtM offered"], dt.date(2018, 3, 1))
    negotiated_2018 = value_at(series["EtM negotiated"], dt.date(2018, 3, 1))

    # §9: "very limited take up of the Encrypt-then-MAC extension as a
    # response to the Lucky 13 attack" — zero before OpenSSL 1.1.0,
    # single-digit afterwards.
    assert offered_2015 < 1
    assert 0.2 < offered_2018 < 15
    assert 0 < negotiated_2018 < offered_2018

    report(
        "§9 — Encrypt-then-MAC uptake",
        [
            f"offered 2015: {offered_2015:.2f}%  ->  2018: {offered_2018:.2f}%",
            f"negotiated 2018: {negotiated_2018:.2f}%",
            "paper: 'very limited take up' — reproduced (OpenSSL 1.1.0+",
            "clients only, acknowledged by OpenSSL-based servers).",
        ],
    )
