"""§5.1: server-side SSL 3 support (Censys SSL3-only scans)."""

import datetime as dt

import _paper
from repro.core.figures import value_at


def test_s51_ssl3_server_support(benchmark, censys, report):
    series = benchmark(censys.series, "ssl3", "handshake")

    sep15 = value_at(series, dt.date(2015, 9, 1)) * 100
    may18 = value_at(series, dt.date(2018, 5, 1)) * 100

    # §5.1: >45% in Sep 2015, <25% in May 2018 — still "embarrassingly
    # high" given POODLE, i.e. far from zero.
    assert 38 < sep15 < 55
    assert may18 < 25
    assert may18 > 8
    # Monotone-ish decline: every later scan at or below +2pts of earlier.
    values = [v for _, v in series]
    assert all(b <= a + 0.02 for a, b in zip(values, values[1:]))

    # Passive side (§5.1): SSL 3 connections negligible since mid-2014.
    report(
        "§5.1 — SSL 3 server support (Censys SSL3-only probe)",
        [
            _paper.row("SSL 3 support, Sep 2015", _paper.SSL3_SERVERS_SEP2015, sep15),
            _paper.row("SSL 3 support, May 2018", f"<{_paper.SSL3_SERVERS_MAY2018}", may18),
            "decline is monotone with a heavy never-patching tail (POODLE",
            "remediation curve), matching the paper's qualitative finding.",
        ],
    )
