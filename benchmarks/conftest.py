"""Shared state for the benchmark harness.

One :class:`EcosystemModel` is simulated per session; each bench then
regenerates its table/figure from the cached datasets and prints a
paper-vs-measured comparison (EXPERIMENTS.md records the same numbers).
"""

from __future__ import annotations

import pytest

from repro.simulation.ecosystem import EcosystemModel


@pytest.fixture(scope="session")
def model():
    return EcosystemModel()


@pytest.fixture(scope="session")
def passive_store(model):
    return model.passive_store()


@pytest.fixture(scope="session")
def censys(model):
    return model.censys(interval_days=28)


@pytest.fixture(scope="session")
def montecarlo_store(model):
    return model.montecarlo_store(connections_per_month=1200)


@pytest.fixture(scope="session")
def database(model):
    return model.database()


@pytest.fixture
def report(capsys):
    """Print a block to the real terminal, bypassing capture."""

    def _report(title: str, lines) -> None:
        with capsys.disabled():
            print()
            print(f"=== {title} ===")
            for line in lines:
                print(f"  {line}")

    return _report
