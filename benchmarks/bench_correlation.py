"""Contribution (i): correlating series changes with attack timing.

The paper's analytical method, mechanized: detect where each headline
series accelerates hardest and name the nearest timeline event.  This
bench checks that the simulation reproduces the paper's two clearest
correlations (Snowden -> forward secrecy; the 2015 browser removals ->
RC4 advertisement collapse).
"""

import datetime as dt

from repro.core import figures
from repro.core.changepoint import correlate_with_events
from repro.simulation.timeline import ATTACK_TIMELINE, BROWSER_RC4_REMOVAL, SNOWDEN


def test_correlation_snowden_forward_secrecy(benchmark, passive_store, report):
    """§6.3.1: the FS shift coincides with the Snowden revelations."""
    series = figures.fig8_key_exchange(passive_store)["ECDHE"]
    # Focus the detector on the pre-2015 era where the shift begins.
    window = [(m, v) for m, v in series if m <= dt.date(2015, 6, 1)]
    correlation = benchmark(
        correlate_with_events, window, ATTACK_TIMELINE, 3, True
    )

    assert correlation.event.name in ("Snowden", "RC4")
    assert correlation.within_months < 13
    lag = (correlation.changepoint.month - SNOWDEN.date).days

    report(
        "Correlation — Snowden vs the forward-secrecy shift (§6.3.1)",
        [
            f"ECDHE acceleration detected: {correlation.changepoint.month}",
            f"nearest event: {correlation.event.name} ({correlation.event.date}),"
            f" lag {correlation.lag_days} days",
            f"lag vs Snowden specifically: {lag} days",
            "paper: 'the Snowden revelations coincide with the start of a",
            "significant shift to use of FS cipher suites' — reproduced;",
            "as the paper notes, correlation in time is not causality.",
        ],
    )


def test_correlation_rc4_advertisement_collapse(benchmark, passive_store, report):
    """§5.3/Figure 6: the advertised-RC4 drop tracks the browser removals."""
    series = figures.fig6_rc4_advertised(passive_store)["RC4 advertised"]
    correlation = benchmark(
        correlate_with_events, series, BROWSER_RC4_REMOVAL, 3, False
    )

    # The collapse is driven by the 2015/2016 removals.
    assert correlation.changepoint.direction == "deceleration"
    assert dt.date(2014, 10, 1) <= correlation.changepoint.month <= dt.date(2016, 12, 1)
    assert correlation.within_months < 10

    report(
        "Correlation — browser RC4 removals vs advertised RC4 (Figure 6)",
        [
            f"steepest advertised-RC4 drop: {correlation.changepoint.month}",
            f"nearest removal: {correlation.event.name} ({correlation.event.date}),"
            f" lag {correlation.lag_days} days",
            "paper: 'a big drop ... at the beginning of 2015, correlating in",
            "time with the decision of Chrome, Firefox and IE/Edge to",
            "completely remove support for RC4' — reproduced.",
        ],
    )
