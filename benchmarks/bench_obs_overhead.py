"""Overhead envelope of the observability layer.

The :mod:`repro.obs` contract is "observe, never perturb" — which only
holds if its cost is negligible against the simulation inner loop.
These benchmarks pin that down: raw span enter/exit cost, a disabled
metrics emit (the common case — no ``REPRO_METRICS_PATH``), an enabled
JSONL emit, a full instrumented engine run against the bare serial
figure from :mod:`bench_perf_substrate`, and — the PR 4 acceptance
envelope — a paired bare-vs-instrumented comparison that bounds the
layer's *total* tax at 3%.
"""

import datetime as dt

from repro import obs
from repro.obs import metrics


def test_perf_span_enter_exit(benchmark):
    """One span with scalar attrs — the per-month instrumentation cost."""
    obs.TRACE.reset()

    def one_span():
        obs.reset_spans()
        with obs.span("bench", month="2016-06-01", attempt=1):
            pass

    benchmark(one_span)


def test_perf_nested_spans(benchmark):
    """The runner's real shape: run > chunk > month, three levels deep."""
    obs.TRACE.reset()

    def nest():
        obs.reset_spans()
        with obs.span("run"):
            with obs.span("chunk", chunk=0):
                with obs.span("month", month="2016-06-01"):
                    pass

    benchmark(nest)


def test_perf_emit_disabled(benchmark, monkeypatch):
    """Metrics emit with no sink configured — must be near-free."""
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    benchmark(metrics.emit, "bench_event", month="2016-06-01", records=1234)


def test_perf_emit_enabled(benchmark, tmp_path, monkeypatch):
    """One JSONL append (open/write/close — the fork-safe discipline)."""
    monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path / "metrics.jsonl"))
    obs.TRACE.reset()
    benchmark(metrics.emit, "bench_event", month="2016-06-01", records=1234)


def test_perf_engine_run_instrumented(benchmark, tmp_path, monkeypatch):
    """Serial engine run with spans live and the JSONL sink enabled;
    compare against test_perf_engine_run_serial for the layer's tax."""
    from repro.clients.population import default_population
    from repro.engine import runner
    from repro.servers import ServerPopulation

    monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path / "metrics.jsonl"))
    clients = default_population()
    servers = ServerPopulation()

    def run():
        obs.TRACE.reset()
        return len(
            runner.run_expectation(
                clients, servers, dt.date(2016, 4, 1), dt.date(2016, 6, 1),
                workers=0,
            )
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert records > 3000
    assert (tmp_path / "metrics.jsonl").exists()


def test_total_overhead_within_three_percent(monkeypatch):
    """The acceptance envelope: spans + JSONL sink + attribution rows,
    all live at once, cost <= 3% of a bare serial engine run.

    :func:`repro.bench.measure_obs_overhead` interleaves bare and
    instrumented rounds (so machine drift hits both arms equally) and
    takes the min of each (discarding scheduler noise); it clears
    ``REPRO_METRICS_PATH`` for the bare arm and suppresses any ambient
    fault plan, so the comparison stays honest under the CI fault
    matrix.  The assertion carries headroom over the measured ~1%
    because CI machines are noisy; a genuine per-record cost would blow
    past 3% immediately (the sink writes are per-*event*, not
    per-record, which is the design property this pins).
    """
    from repro.bench import measure_obs_overhead

    measured = measure_obs_overhead(rounds=3, months=2)
    assert measured["bare_seconds"] > 0
    assert measured["overhead_ratio"] <= 1.03, (
        f"observability tax {100 * (measured['overhead_ratio'] - 1):.2f}% "
        f"exceeds the 3% envelope "
        f"(bare {measured['bare_seconds']:.3f}s, "
        f"instrumented {measured['instrumented_seconds']:.3f}s)"
    )
