"""Overhead envelope of the observability layer.

The :mod:`repro.obs` contract is "observe, never perturb" — which only
holds if its cost is negligible against the simulation inner loop.
These benchmarks pin that down: raw span enter/exit cost, a disabled
metrics emit (the common case — no ``REPRO_METRICS_PATH``), an enabled
JSONL emit, a full instrumented engine run against the bare serial
figure from :mod:`bench_perf_substrate`, and — the PR 4 acceptance
envelope — a paired bare-vs-instrumented comparison that bounds the
layer's *total* tax at 3%.
"""

import datetime as dt

from repro import obs
from repro.obs import metrics


def test_perf_span_enter_exit(benchmark):
    """One span with scalar attrs — the per-month instrumentation cost."""
    obs.TRACE.reset()

    def one_span():
        obs.reset_spans()
        with obs.span("bench", month="2016-06-01", attempt=1):
            pass

    benchmark(one_span)


def test_perf_nested_spans(benchmark):
    """The runner's real shape: run > chunk > month, three levels deep."""
    obs.TRACE.reset()

    def nest():
        obs.reset_spans()
        with obs.span("run"):
            with obs.span("chunk", chunk=0):
                with obs.span("month", month="2016-06-01"):
                    pass

    benchmark(nest)


def test_perf_emit_disabled(benchmark, monkeypatch):
    """Metrics emit with no sink configured — must be near-free."""
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    benchmark(metrics.emit, "bench_event", month="2016-06-01", records=1234)


def test_perf_emit_enabled(benchmark, tmp_path, monkeypatch):
    """One JSONL append (open/write/close — the fork-safe discipline)."""
    monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path / "metrics.jsonl"))
    obs.TRACE.reset()
    benchmark(metrics.emit, "bench_event", month="2016-06-01", records=1234)


def test_perf_engine_run_instrumented(benchmark, tmp_path, monkeypatch):
    """Serial engine run with spans live and the JSONL sink enabled;
    compare against test_perf_engine_run_serial for the layer's tax."""
    from repro.clients.population import default_population
    from repro.engine import runner
    from repro.servers import ServerPopulation

    monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path / "metrics.jsonl"))
    clients = default_population()
    servers = ServerPopulation()

    def run():
        obs.TRACE.reset()
        return len(
            runner.run_expectation(
                clients, servers, dt.date(2016, 4, 1), dt.date(2016, 6, 1),
                workers=0,
            )
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert records > 3000
    assert (tmp_path / "metrics.jsonl").exists()


def test_total_overhead_within_three_percent(monkeypatch):
    """The acceptance envelope: spans + JSONL sink + attribution rows,
    all live at once, cost <= 3% of a bare serial engine run.

    :func:`repro.bench.measure_obs_overhead` interleaves bare and
    instrumented rounds (so machine drift hits both arms equally) and
    takes the min of each (discarding scheduler noise); it clears
    ``REPRO_METRICS_PATH`` for the bare arm and suppresses any ambient
    fault plan, so the comparison stays honest under the CI fault
    matrix.  The assertion carries headroom over the measured ~1%
    because CI machines are noisy; a genuine per-record cost would blow
    past 3% immediately (the sink writes are per-*event*, not
    per-record, which is the design property this pins).
    """
    from repro.bench import measure_obs_overhead

    measured = measure_obs_overhead(rounds=3, months=2)
    assert measured["bare_seconds"] > 0
    assert measured["overhead_ratio"] <= 1.03, (
        f"observability tax {100 * (measured['overhead_ratio'] - 1):.2f}% "
        f"exceeds the 3% envelope "
        f"(bare {measured['bare_seconds']:.3f}s, "
        f"instrumented {measured['instrumented_seconds']:.3f}s)"
    )


def test_serve_observe_path_within_three_percent(monkeypatch):
    """The serve-path acceptance envelope: everything
    ``observe_request`` does per request — complete-span record, trace
    exemplar assembly, histogram-backed route ledger, sliding-window
    telemetry — costs <= 3% of an actually-served request.

    Both arms are measured on this machine in this process: the
    numerator is the min-of-rounds per-call cost of the full observe
    path (min discards scheduler noise), the denominator the median
    end-to-end latency of a real served figure over a keep-alive
    connection.  A slower CI box inflates both arms together, so the
    ratio is stable where a wall-clock bound would flake.
    """
    import http.client
    import socket
    import statistics
    import time

    from repro.clients.population import default_population
    from repro.engine.partition import PackedDataset, pack_records
    from repro.engine.perf import PerfCounters
    from repro.notary import PassiveMonitor, TrafficGenerator
    from repro.notary.store import NotaryStore
    from repro.obs import live
    from repro.serve.server import start_server
    from repro.servers import ServerPopulation

    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)

    # Numerator: the per-request observe path, min over rounds.
    telemetry = live.LiveTelemetry()
    perf = PerfCounters()
    calls = 5000
    per_call = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        for _ in range(calls):
            span_id = obs.TRACE.record_complete(
                "http_request", 0.0, 4e-4, route="/figures/<name>", status=200
            )
            exemplar = {
                "trace_id": obs.trace_id(),
                "span_id": span_id,
                "route": "/figures/<name>",
                "value": 4e-4,
                "ts": 1.0,
            }
            perf.observe_http("/figures/<name>", 4e-4, 200, exemplar=exemplar)
            telemetry.observe(
                "/figures/<name>", 4e-4, 200, tier="index", exemplar=exemplar
            )
        per_call = min(per_call, (time.perf_counter() - started) / calls)

    # Denominator: a real request served end to end (2 packed months).
    monitor = PassiveMonitor()
    TrafficGenerator(
        default_population(), ServerPopulation(), monitor
    ).run_expectation(dt.date(2016, 4, 1), dt.date(2016, 6, 1))
    store = NotaryStore()
    store.attach_packed(PackedDataset(pack_records(monitor.store.records())))
    handle = start_server(store=store)
    try:
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        conn.connect()
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        latencies = []
        for _ in range(300):
            started = time.perf_counter()
            conn.request("GET", "/figures/fig1")
            response = conn.getresponse()
            response.read()
            latencies.append(time.perf_counter() - started)
        conn.close()
    finally:
        handle.close()
    request_seconds = statistics.median(latencies)

    ratio = per_call / request_seconds
    assert ratio <= 0.03, (
        f"serve-path telemetry costs {per_call * 1e6:.2f} us/request — "
        f"{100 * ratio:.2f}% of a {request_seconds * 1e3:.3f} ms served "
        f"request, over the 3% envelope"
    )
