"""Overhead envelope of the observability layer.

The :mod:`repro.obs` contract is "observe, never perturb" — which only
holds if its cost is negligible against the simulation inner loop.
These benchmarks pin that down: raw span enter/exit cost, a disabled
metrics emit (the common case — no ``REPRO_METRICS_PATH``), an enabled
JSONL emit, and a full instrumented engine run against the bare serial
figure from :mod:`bench_perf_substrate`.
"""

import datetime as dt

from repro import obs
from repro.obs import metrics


def test_perf_span_enter_exit(benchmark):
    """One span with scalar attrs — the per-month instrumentation cost."""
    obs.TRACE.reset()

    def one_span():
        obs.reset_spans()
        with obs.span("bench", month="2016-06-01", attempt=1):
            pass

    benchmark(one_span)


def test_perf_nested_spans(benchmark):
    """The runner's real shape: run > chunk > month, three levels deep."""
    obs.TRACE.reset()

    def nest():
        obs.reset_spans()
        with obs.span("run"):
            with obs.span("chunk", chunk=0):
                with obs.span("month", month="2016-06-01"):
                    pass

    benchmark(nest)


def test_perf_emit_disabled(benchmark, monkeypatch):
    """Metrics emit with no sink configured — must be near-free."""
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    benchmark(metrics.emit, "bench_event", month="2016-06-01", records=1234)


def test_perf_emit_enabled(benchmark, tmp_path, monkeypatch):
    """One JSONL append (open/write/close — the fork-safe discipline)."""
    monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path / "metrics.jsonl"))
    obs.TRACE.reset()
    benchmark(metrics.emit, "bench_event", month="2016-06-01", records=1234)


def test_perf_engine_run_instrumented(benchmark, tmp_path, monkeypatch):
    """Serial engine run with spans live and the JSONL sink enabled;
    compare against test_perf_engine_run_serial for the layer's tax."""
    from repro.clients.population import default_population
    from repro.engine import runner
    from repro.servers import ServerPopulation

    monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path / "metrics.jsonl"))
    clients = default_population()
    servers = ServerPopulation()

    def run():
        obs.TRACE.reset()
        return len(
            runner.run_expectation(
                clients, servers, dt.date(2016, 4, 1), dt.date(2016, 6, 1),
                workers=0,
            )
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    assert records > 3000
    assert (tmp_path / "metrics.jsonl").exists()
