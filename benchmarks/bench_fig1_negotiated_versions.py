"""Figure 1: negotiated SSL/TLS versions over 2012-2018."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig1_negotiated_versions(benchmark, passive_store, report):
    series = benchmark(figures.fig1_negotiated_versions, passive_store)

    tls10_2012 = figures.value_at(series["TLSv10"], dt.date(2012, 2, 1))
    tls10_2018 = figures.value_at(series["TLSv10"], dt.date(2018, 2, 1))
    tls12_2018 = figures.value_at(series["TLSv12"], dt.date(2018, 2, 1))
    ssl3_2012 = figures.value_at(series["SSLv3"], dt.date(2012, 2, 1))
    ssl3_2015 = figures.value_at(series["SSLv3"], dt.date(2015, 1, 1))
    tls11_peak = max(v for m, v in series["TLSv11"] if m < dt.date(2014, 1, 1))

    # Shape assertions: who wins and where the crossovers fall.
    assert tls10_2012 > 85          # paper: ~90-100% on TLS 1.0 in 2012
    assert tls10_2018 < 12          # paper: 2.8% in Feb 2018
    assert tls12_2018 > 85          # paper: ~90% on TLS 1.2 today
    assert ssl3_2015 < 0.5          # SSL 3 negligible since mid-2014
    assert tls11_peak > 3           # the BEAST-era TLS 1.1 bump exists
    # TLS 1.2 overtakes TLS 1.0 during 2014 (paper: late 2013 / 2014).
    crossover = next(
        m
        for m, v in series["TLSv12"]
        if v > dict(series["TLSv10"])[m]
    )
    assert dt.date(2013, 6, 1) <= crossover <= dt.date(2015, 6, 1)

    report(
        "Figure 1 — negotiated SSL/TLS versions",
        [
            _paper.row("TLS 1.0 share, Feb 2012", _paper.TLS10_SHARE_2012, tls10_2012),
            _paper.row("TLS 1.0 share, Feb 2018", _paper.TLS10_SHARE_FEB2018, tls10_2018),
            _paper.row("TLS 1.2 share, Feb 2018", _paper.TLS12_SHARE_TODAY, tls12_2018),
            f"TLS 1.2 / 1.0 crossover month: {crossover}",
            "",
            figures.render_series(
                {k: v for k, v in series.items() if k != "SSLv2"},
                sample_months=[dt.date(y, 1, 1) for y in range(2012, 2019)]
                + [dt.date(2018, 4, 1)],
            ),
        ],
    )
