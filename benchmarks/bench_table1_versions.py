"""Table 1: release dates of all SSL/TLS versions."""

from repro.core.tables import table1_version_dates

PAPER_TABLE1 = [
    ("SSL 2", "Feb. 1995"),
    ("SSL 3", "Nov. 1996"),
    ("TLS 1.0", "Jan. 1999"),
    ("TLS 1.1", "Apr. 2006"),
    ("TLS 1.2", "Aug. 2008"),
    ("TLS 1.3", "Aug. 2018"),
]


def test_table1_version_dates(benchmark, report):
    rows = benchmark(table1_version_dates)
    assert rows == PAPER_TABLE1
    report(
        "Table 1 — SSL/TLS release dates",
        [f"{name:<8} {date}   (matches paper exactly)" for name, date in rows],
    )
