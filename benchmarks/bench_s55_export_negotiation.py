"""§5.5: export ciphers — essentially never negotiated, and the anomalies."""

import datetime as dt


def _export_negotiated(store, month):
    return store.fraction(
        month,
        lambda r: r.suite is not None and r.suite.is_export,
        within=lambda r: r.established,
    )


def test_s55_export_negotiation(benchmark, passive_store, report):
    value_2018 = benchmark(_export_negotiated, passive_store, dt.date(2018, 2, 1))

    # §5.5: export suites are basically not negotiated (677 connections
    # out of ~10B/month in 2018 — a sub-0.1% trace population).
    assert value_2018 < 0.001

    # Every export negotiation traces to the two §5.5 sources: the
    # university's Nagios endpoints and Interwise conferencing.
    sources = {
        r.client_family
        for r in passive_store.records(dt.date(2018, 2, 1))
        if r.established and r.suite is not None and r.suite.is_export
    }
    assert sources <= {"Nagios NRPE", "Interwise"}
    assert sources  # the anomaly population exists

    # Interwise's protocol violation: the negotiated suite was never
    # offered, yet sessions complete (§5.5).
    interwise = [
        r
        for r in passive_store.records(dt.date(2018, 2, 1))
        if r.client_family == "Interwise"
    ]
    assert interwise
    assert all(r.server_chose_unoffered and r.established for r in interwise)

    report(
        "§5.5 — export cipher negotiation",
        [
            f"export negotiated, Feb 2018: {value_2018 * 100:.4f}% "
            "(paper: 677 connections in all of 2018)",
            f"sources: {', '.join(sorted(sources))} "
            "(paper: university Nagios + Interwise)",
            "Interwise sessions established with an unoffered export suite",
            "(EXP_RC4_40_MD5 chosen against an RC4_128_SHA-only offer).",
        ],
    )
