"""§6.3.3: elliptic-curve usage in negotiated connections."""

import datetime as dt

import _paper
from repro.tls.curves import curve_by_code


def _curve_shares(store):
    weights: dict[int, float] = {}
    total = 0.0
    for record in store.records():
        if record.established and record.negotiated_curve is not None:
            weights[record.negotiated_curve] = (
                weights.get(record.negotiated_curve, 0.0) + record.weight
            )
            total += record.weight
    return {code: w / total for code, w in weights.items()}


def test_s633_curve_distribution(benchmark, passive_store, report):
    shares = benchmark(_curve_shares, passive_store)
    named = {curve_by_code(code).name: share * 100 for code, share in shares.items()}

    secp256r1 = named.get("secp256r1", 0.0)
    secp384r1 = named.get("secp384r1", 0.0)
    x25519 = named.get("x25519", 0.0)

    # §6.3.3: secp256r1 dominates (84.4%), secp384r1 and x25519 follow.
    assert secp256r1 > 60
    assert secp256r1 > 5 * x25519
    assert x25519 > 1

    # x25519 reaches ~22% of connections by Feb 2018, driven by the
    # mid-2017 server-side shift.
    feb18 = passive_store.fraction(
        dt.date(2018, 2, 1),
        lambda r: r.negotiated_curve == 29,
        within=lambda r: r.established and r.negotiated_curve is not None,
    ) * 100
    mid17 = passive_store.fraction(
        dt.date(2017, 6, 1),
        lambda r: r.negotiated_curve == 29,
        within=lambda r: r.established and r.negotiated_curve is not None,
    ) * 100
    assert 12 < feb18 < 35
    assert feb18 > mid17

    rows = [
        f"{name:<12} paper: {_paper.CURVE_SHARES_OVERALL.get(name, 0.0):>5.1f}%   "
        f"measured: {share:5.1f}%"
        for name, share in sorted(named.items(), key=lambda kv: -kv[1])[:5]
    ]
    report(
        "§6.3.3 — negotiated curve distribution (whole dataset)",
        rows
        + [
            _paper.row("x25519 share, Feb 2018", _paper.X25519_FEB2018, feb18),
            f"x25519 mid-2017: {mid17:.1f}% -> Feb 2018: {feb18:.1f}% "
            "(rising since mid-2017, as in the paper)",
        ],
    )
