"""Figure 10: clients advertising AES-GCM, ChaCha20-Poly1305, AES-CCM."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig10_advertised_aead(benchmark, passive_store, report):
    series = benchmark(figures.fig10_advertised_aead, passive_store)

    aes128_2018 = figures.value_at(series["AES128-GCM"], dt.date(2018, 3, 1))
    aes128_2012 = figures.value_at(series["AES128-GCM"], dt.date(2012, 6, 1))
    chacha_2015 = figures.value_at(series["ChaCha20-Poly1305"], dt.date(2015, 1, 1))
    chacha_2018 = figures.value_at(series["ChaCha20-Poly1305"], dt.date(2018, 3, 1))
    ccm_max = max(v for _, v in series["AES-CCM"])

    # Shape: GCM advertisement goes from near-zero to near-universal;
    # ChaCha20 appears ~2014 and climbs past half of connections;
    # AES-CCM stays marginal (0.3% of offers overall in the paper).
    assert aes128_2012 < 15
    assert aes128_2018 > 80
    assert chacha_2015 > 5
    assert chacha_2018 > 25
    assert chacha_2018 > chacha_2015 * 2
    assert 0 < ccm_max < 5

    report(
        "Figure 10 — advertised AEAD algorithms",
        [
            f"AES128-GCM advertised 2012: {aes128_2012:.1f}% -> 2018: {aes128_2018:.1f}%",
            f"ChaCha20 advertised 2015: {chacha_2015:.1f}% -> 2018: {chacha_2018:.1f}%",
            _paper.row("AES-CCM advertised (max)", _paper.AESCCM_ADVERTISED_OVERALL, ccm_max),
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 1, 1) for y in range(2012, 2019)],
            ),
        ],
    )
