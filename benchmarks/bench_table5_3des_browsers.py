"""Table 5: changes in the number of 3DES cipher suites offered by browsers."""

from repro.core.tables import table5_3des_changes

PAPER_ROWS = {
    ("Firefox", "27", 8, 3),
    ("Firefox", "33", 3, 1),
    ("Chrome", "29", 8, 1),
    ("Opera", "16", 8, 1),
    ("Safari", "7.1", 7, 6),   # Safari 6.2 ships alongside 7.1
    ("Safari", "9", 6, 3),
}


def test_table5_3des_changes(benchmark, report):
    rows = benchmark(table5_3des_changes)
    measured = {(r.browser, r.version, r.before, r.after) for r in rows}
    missing = PAPER_ROWS - measured
    assert not missing, f"missing Table 5 rows: {missing}"

    report(
        "Table 5 — 3DES suite count changes",
        [str(r) for r in rows] + ["all paper rows reproduced exactly"],
    )
