"""§7.3: hosts that choose cipher suites the client never offered."""

import datetime as dt

from repro.core.figures import unoffered_choice_series


def test_s73_unoffered_suite_choices(benchmark, passive_store, report):
    series = benchmark(unoffered_choice_series, passive_store)

    values = [v for _, v in series]
    # A small but persistent population across the whole window (§7.3:
    # "an alarming number of systems ... running custom TLS
    # implementations with questionable security").
    assert all(0 < v < 1 for v in values)

    month = dt.date(2017, 6, 1)
    violators = [
        r
        for r in passive_store.records(month)
        if r.server_chose_unoffered and r.negotiated_suite is not None
    ]
    assert violators
    suites = {r.suite.name for r in violators if r.suite is not None}
    # The two §5.5/§7.3 populations: GOST responders and Interwise.
    assert "TLS_GOSTR341001_WITH_28147_CNT_IMIT" in suites
    assert "TLS_RSA_EXPORT_WITH_RC4_40_MD5" in suites

    # GOST handshakes never complete (standard clients abort); the
    # Interwise ones do (§5.5's Change Cipher Spec observation).
    gost = [r for r in violators if r.suite and r.suite.name.startswith("TLS_GOST")]
    interwise = [r for r in violators if r.suite and r.suite.is_export]
    assert gost and not any(r.established for r in gost)
    assert interwise and all(r.established for r in interwise)

    report(
        "§7.3 — servers choosing unoffered suites",
        [
            f"share of answered connections (Jun 2017): "
            f"{dict(series)[dt.date(2017, 6, 1)]:.3f}%",
            f"violator suites observed: {', '.join(sorted(suites))}",
            "GOST responders never complete a handshake; Interwise sessions",
            "do — both as the paper observed.",
        ],
    )
