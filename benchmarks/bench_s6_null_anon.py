"""§6.1 / §6.2: NULL and anonymous cipher suites in actual negotiations."""

import datetime as dt

import _paper


def _fraction(store, month, predicate):
    return store.fraction(
        month, predicate, within=lambda r: r.established
    )


def test_s61_null_negotiation(benchmark, passive_store, report):
    null_2018 = benchmark(
        _fraction,
        passive_store,
        dt.date(2018, 2, 1),
        lambda r: r.suite is not None and r.suite.is_null_encryption,
    )
    overall = [
        _fraction(passive_store, m, lambda r: r.suite is not None and r.suite.is_null_encryption)
        for m in passive_store.months()
    ]
    overall_mean = sum(overall) / len(overall)

    # §6.1: 2.84% of all connections ever used NULL; 0.42% in 2018.
    assert 0.005 < overall_mean < 0.06
    assert 0.001 < null_2018 < 0.015

    # Nearly all NULL-encrypted traffic is GRID data movement.
    grid_weight = 0.0
    null_weight = 0.0
    for record in passive_store.records(dt.date(2018, 2, 1)):
        if record.established and record.suite is not None and record.suite.is_null_encryption:
            null_weight += record.weight
            if record.client_family == "GridFTP":
                grid_weight += record.weight
    assert grid_weight / null_weight > 0.9  # paper: 99.99%

    # The NULL_WITH_NULL_NULL oddity terminates at Nagios endpoints.
    null_null_sources = {
        r.client_family
        for r in passive_store.records(dt.date(2018, 2, 1))
        if r.established and r.suite is not None and r.suite.is_null_null
    }
    assert null_null_sources == {"Nagios NRPE"}

    report(
        "§6.1 — NULL cipher negotiation",
        [
            _paper.row("NULL negotiated, dataset mean", _paper.NULL_NEGOTIATED_OVERALL, overall_mean * 100),
            _paper.row("NULL negotiated, 2018", _paper.NULL_NEGOTIATED_2018, null_2018 * 100),
            f"GRID share of NULL traffic: {grid_weight / null_weight:.2%} (paper: 99.99%)",
            "NULL_WITH_NULL_NULL terminates at Nagios endpoints (as in §6.1)",
        ],
    )


def test_s62_anonymous_negotiation(benchmark, passive_store, report):
    anon_2018 = benchmark(
        _fraction,
        passive_store,
        dt.date(2018, 2, 1),
        lambda r: r.suite is not None and r.suite.is_anonymous and not r.suite.is_null_null,
    )
    overall = [
        _fraction(
            passive_store,
            m,
            lambda r: r.suite is not None and r.suite.is_anonymous and not r.suite.is_null_null,
        )
        for m in passive_store.months()
    ]
    overall_mean = sum(overall) / len(overall)

    # §6.2: 0.17% of all connections, 0.60% in 2018 — tiny relative to
    # the advertised share, and nearly all Nagios.
    assert overall_mean < 0.02
    assert 0.001 < anon_2018 < 0.02

    sources = {
        r.client_family
        for r in passive_store.records(dt.date(2018, 2, 1))
        if r.established
        and r.suite is not None
        and r.suite.is_anonymous
        and not r.suite.is_null_null
    }
    assert sources == {"Nagios NRPE"}

    report(
        "§6.2 — anonymous cipher negotiation",
        [
            _paper.row("anon negotiated, dataset mean", _paper.ANON_NEGOTIATED_OVERALL, overall_mean * 100),
            _paper.row("anon negotiated, 2018", _paper.ANON_NEGOTIATED_2018, anon_2018 * 100),
            f"negotiating client: {', '.join(sources)} (paper: nearly all Nagios)",
        ],
    )
