"""Paper-reported anchor values, collected in one place.

Every benchmark compares its measured value against these constants and
prints both; EXPERIMENTS.md is generated from the same numbers.  Values
are percentages unless noted.
"""

import datetime as dt

# --- Figure 1 / §1: negotiated versions -------------------------------------
TLS10_SHARE_2012 = 90.0          # "In 2012, 90% of TLS connections used TLS 1.0"
TLS10_SHARE_FEB2018 = 2.8        # §5.2
TLS12_SHARE_TODAY = 90.0         # "today 90% use TLS 1.2"

# --- Figure 2 / §5.3: negotiated cipher classes ------------------------------
RC4_NEGOTIATED_AUG2013 = 60.0    # "drop of RC4 usage from 60% in August 2013"
RC4_NEGOTIATED_MAR2018 = 0.5     # "to almost zero in March 2018"
CBC_DECLINE_START = dt.date(2015, 8, 1)  # CBC starts declining Aug 2015

# --- Figure 3 / §5.6: advertised classes -------------------------------------
TRIPLE_DES_ADVERTISED_2018 = 69.0  # "still stands at more than 69%"
CBC_ADVERTISED_FLOOR = 99.0        # "Total CBC-mode is always above 99%"

# --- Figure 4 / §5.3 ----------------------------------------------------------
RC4_FINGERPRINTS_MAR2018 = 39.9  # "39.9% of the observed fingerprints still support RC4"

# --- Figure 7 / §5.5, §6.1, §6.2 ----------------------------------------------
EXPORT_ADVERTISED_2012 = 28.19
EXPORT_ADVERTISED_2018 = 1.03
ANON_SPIKE_BEFORE = 5.8
ANON_SPIKE_AFTER = 12.9

# --- Figure 8 / §6.3.1 ----------------------------------------------------------
FS_CLIENT_SUPPORT_2012 = 80.0    # ">80% of clients supported FS in 2012"

# --- Figure 9 / §6.3.2 ----------------------------------------------------------
CHACHA_NEGOTIATED_MAR2018 = 1.7
AESCCM_ADVERTISED_OVERALL = 0.3

# --- §4 fingerprinting -----------------------------------------------------------
COVERAGE_ALL = 69.23
FP_COUNT = 1684
TOP10_CONCENTRATION = 25.9
# §4.1 durations (days)
DURATION_MAX = 1235
DURATION_MEDIAN = 1
DURATION_MEAN = 158.8
DURATION_Q3 = 171
DURATION_STD = 302.31
SINGLE_DAY_FPS = 42188
SINGLE_DAY_SHARE_OF_FPS = 60.4   # 42,188 / 69,874
LONG_LIVED_FPS = 1203
LONG_LIVED_CONNECTION_SHARE = 21.75

# --- Table 2 coverage by category -----------------------------------------------
TABLE2 = {
    "Libraries": (700, 46.49),
    "Browsers": (193, 15.63),
    "OS Tools and Services": (13, 2.29),
    "Mobile apps": (489, 1.35),
    "Dev. tools": (12, 0.88),
    "AV": (44, 0.85),
    "Cloud Storage": (29, 0.71),
    "Email": (33, 0.58),
    "Malware & PUP": (49, 0.48),
    "All": (1684, 69.23),
}

# --- §5.1: SSL 3 server support ---------------------------------------------------
SSL3_SERVERS_SEP2015 = 45.0
SSL3_SERVERS_MAY2018 = 25.0      # "less than 25%"

# --- §5.3 / §5.2 / §5.6: Censys choice series --------------------------------------
RC4_CHOSEN_SEP2015 = 11.2
RC4_CHOSEN_MAY2018 = 3.4
CBC_CHOSEN_SEP2015 = 54.0
CBC_CHOSEN_MAY2018 = 35.0
TDES_CHOSEN_AUG2015 = 0.54
TDES_CHOSEN_MAY2018 = 0.25

# --- §5.4: Heartbleed ---------------------------------------------------------------
VULNERABLE_AT_DISCLOSURE = 23.7
VULNERABLE_MAY2018 = 0.32
HEARTBEAT_SUPPORT_2018 = 34.0
HEARTBEAT_USED_2018 = 3.0

# --- §5.6: 3DES negotiated ----------------------------------------------------------
TDES_NEGOTIATED_2012 = 1.4
TDES_NEGOTIATED_2018 = 0.3

# --- §6.1 / §6.2: NULL and anonymous negotiation -----------------------------------
NULL_NEGOTIATED_OVERALL = 2.84
NULL_NEGOTIATED_2018 = 0.42
ANON_NEGOTIATED_OVERALL = 0.17
ANON_NEGOTIATED_2018 = 0.60

# --- §6.3.3: curves ------------------------------------------------------------------
CURVE_SHARES_OVERALL = {
    "secp256r1": 84.4,
    "secp384r1": 8.6,
    "x25519": 6.7,
}
X25519_FEB2018 = 22.2

# --- §6.4: TLS 1.3 --------------------------------------------------------------------
TLS13_ADVERTISED = {"2018-02": 0.5, "2018-03": 9.8, "2018-04": 23.6}
TLS13_NEGOTIATED_APR2018 = 1.3
GOOGLE_VARIANT_SHARE = 82.3
DRAFT18_SHARE = 13.4


def row(label: str, paper, measured, unit: str = "%") -> str:
    """One aligned paper-vs-measured output row."""
    return f"{label:<44} paper: {paper:>8}{unit}   measured: {measured:8.2f}{unit}"
