"""Figure 4: suite-class support per distinct monthly fingerprint."""

import datetime as dt

import _paper
from repro.core import figures


def test_fig4_fingerprint_support(benchmark, passive_store, report):
    series = benchmark(figures.fig4_fingerprint_support, passive_store)

    # Fingerprint fields exist only from Feb 2014 (§4.0.1).
    first_month = min(m for pts in series.values() for m, _ in pts)
    assert first_month >= dt.date(2014, 2, 1)

    rc4_mar18 = figures.value_at(series["RC4"], dt.date(2018, 3, 1))
    rc4_2014 = figures.value_at(series["RC4"], dt.date(2014, 6, 1))
    cbc_min = min(v for _, v in series["CBC"])
    tdes_2018 = figures.value_at(series["3DES"], dt.date(2018, 3, 1))

    # §5.3: fingerprint-counted RC4 removal is much slower than the
    # traffic-weighted one; 39.9% of fingerprints still offer RC4 in
    # March 2018.  Our release-granular fingerprint set is coarser, so
    # the residual sits higher, but the slow-decline shape holds: the
    # fingerprint share stays several times the sub-2% traffic share.
    assert rc4_2014 > 60
    assert 25 < rc4_mar18 < 75
    assert rc4_mar18 < rc4_2014 - 15
    # Figure 4 caption: CBC-mode support is near universal.
    assert cbc_min > 90
    # §5.6: >70% of fingerprinted clients still offer 3DES today.
    assert tdes_2018 > 60

    report(
        "Figure 4 — fingerprint-level suite support",
        [
            _paper.row("RC4 fingerprints, Mar 2018", _paper.RC4_FINGERPRINTS_MAR2018, rc4_mar18),
            f"3DES fingerprints, Mar 2018: {tdes_2018:.1f}% (paper: >70%)",
            f"CBC support floor: {cbc_min:.1f}% (paper: near universal)",
            "",
            figures.render_series(
                series,
                sample_months=[dt.date(y, 2, 1) for y in range(2014, 2019)],
            ),
        ],
    )
