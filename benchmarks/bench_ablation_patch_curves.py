"""Ablation: patch-curve parameters vs the paper's server-side tails.

Sweeps the POODLE remediation curve's never-patching floor and shows
how the 2018 SSL 3 support level depends on it — the quantitative
version of §7.4's claim that the long tail, not the patch speed,
explains "embarrassingly high" 2018 SSL 3 support.
"""

import dataclasses
import datetime as dt

from repro.servers.curves import PatchCurve
from repro.servers.population import ServerAttributeCurves, ServerPopulation
from repro.tls.versions import SSL3

_POODLE = dt.date(2014, 10, 14)


def _population(never_patched: float, half_life: float = 420.0) -> ServerPopulation:
    attributes = dataclasses.replace(
        ServerAttributeCurves(),
        ssl3_removal=PatchCurve(
            disclosed=_POODLE, half_life_days=half_life, never_patched=never_patched
        ),
    )
    return ServerPopulation(attributes=attributes)


def _ssl3_support(population: ServerPopulation, on: dt.date) -> float:
    return population.support_fraction(
        on, lambda p: p.supports_version(SSL3.wire), "hosts"
    )


def test_ablation_ssl3_patch_floor(benchmark, report):
    day = dt.date(2018, 5, 1)
    floors = (0.0, 0.25, 0.55, 0.8)
    values = {
        floor: benchmark(_ssl3_support, _population(floor), day)
        if floor == 0.55
        else _ssl3_support(_population(floor), day)
        for floor in floors
    }

    # Monotone in the floor, and only a substantial never-patching
    # population reproduces the paper's ~20% 2018 level.
    ordered = [values[f] for f in floors]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))
    assert values[0.0] < 0.12          # fast patchers alone: SSL 3 dies
    assert 0.12 < values[0.55] < 0.25  # the calibrated default
    assert values[0.8] > 0.22

    # Patch *speed* barely matters by 2018: halving the half-life moves
    # the result far less than the floor does.
    fast = _ssl3_support(_population(0.55, half_life=210.0), day)
    assert abs(fast - values[0.55]) < 0.05

    report(
        "Ablation — POODLE remediation floor vs 2018 SSL 3 support",
        [
            f"never_patched={floor:.2f}  ->  SSL 3 support May 2018: {value:.1%}"
            for floor, value in values.items()
        ]
        + [
            f"half-life 420d -> 210d at floor 0.55: {values[0.55]:.1%} -> {fast:.1%}",
            "the 2018 tail is set by who never patches, not by patch speed (§7.4)",
        ],
    )
