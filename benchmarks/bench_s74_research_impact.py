"""§7.4: the impact of security research — fast, slow, or absent."""

from repro.core.attacks import exposure_series, reaction_report


def test_s74_reaction_verdicts(benchmark, passive_store, report):
    reactions = benchmark(reaction_report, passive_store)
    verdicts = {r.attack: r for r in reactions}

    # Events within a year of the window edge are excluded by design
    # (BEAST 2011, Lucky13 Dec 2012 vs a Jan 2012 window start).
    assert "BEAST" not in verdicts

    # §7.4's qualitative claims, asserted quantitatively:
    # RC4's first attack (2013) was "rather easy to dismiss": decline
    # starts but does not collapse within a year.
    assert verdicts["RC4"].verdict in ("none", "slow")
    assert verdicts["RC4"].after < verdicts["RC4"].at_disclosure
    # POODLE: the direct SSL3+CBC exposure was already near zero and
    # gone after.
    assert verdicts["POODLE"].after < 0.2
    # Heartbleed: passive heartbeat *usage* did not stop — the fast
    # reaction was server patching (see bench_s54); §5.4 finds usage
    # "odd"ly persistent, which is exactly a none/slow passive verdict.
    assert verdicts["Heartbleed"].verdict in ("none", "slow")
    # Sweet32's 64-bit-block exposure was small and keeps shrinking.
    assert verdicts["Sweet32"].after <= verdicts["Sweet32"].at_disclosure + 0.05

    # Lucky 13 predates the safe window; check its claim directly:
    # "we do not see a clear shift in traffic" — CBC exposure one year
    # after the Dec 2012 disclosure is not lower than at disclosure.
    import datetime as dt

    from repro.core.figures import value_at

    cbc = exposure_series(passive_store, "Lucky13")
    at = value_at(cbc, dt.date(2012, 12, 1))
    after = value_at(cbc, dt.date(2013, 12, 1))
    assert after > at * 0.7  # no collapse

    lines = [
        f"{r.attack:<10} disclosed {r.disclosed}  "
        f"{r.before:6.2f}% -> {r.at_disclosure:6.2f}% -> {r.after:6.2f}%   verdict: {r.verdict}"
        for r in reactions
    ]
    lines += [
        f"Lucky13    CBC exposure 2012-12: {at:.1f}% -> 2013-12: {after:.1f}% (no shift)",
        "(exposure 12mo before -> at disclosure -> 12mo after)",
        "paper §7.4: RC4 took years; CBC attacks produced no traffic",
        "shift; Heartbleed's fast reaction was server-side (bench_s54).",
    ]
    report("§7.4 — reaction to disclosures", lines)


def test_s74_rc4_exposure_long_tail(benchmark, passive_store, report):
    series = benchmark(exposure_series, passive_store, "RC4")
    import datetime as dt

    from repro.core.figures import value_at

    at_attack = value_at(series, dt.date(2013, 3, 1))
    two_years = value_at(series, dt.date(2015, 3, 1))
    end = value_at(series, dt.date(2018, 3, 1))

    # "it still took several years for RC4 usage to reduce significantly"
    assert two_years > at_attack * 0.4  # still large two years on
    assert end < 1.0                     # eventually near zero

    report(
        "§7.4 — RC4's slow death",
        [
            f"RC4 exposure at first attack (2013-03): {at_attack:.1f}%",
            f"two years later: {two_years:.1f}% (still substantial)",
            f"March 2018: {end:.2f}% (finally gone)",
        ],
    )
