"""§5.3: SSL Pulse RC4 survey of popular sites."""

import datetime as dt

from repro.scanner.sslpulse import SslPulse


def test_sslpulse_rc4_survey(benchmark, report):
    pulse = SslPulse()
    first = benchmark(pulse.survey, dt.date(2013, 10, 1))
    last = pulse.survey(dt.date(2018, 3, 1))

    # §5.3: RC4 supported by 92.8% of surveyed sites in Oct 2013, 19.1%
    # in 2018; RC4-only sites fall from 4,248 (2.6%) to a single site.
    assert first.rc4_supported > 0.7
    assert 0.1 < last.rc4_supported < 0.3
    assert 0.01 < first.rc4_only < 0.04
    assert last.rc4_only < 0.002

    report(
        "§5.3 — SSL Pulse RC4 survey (popular sites)",
        [
            f"RC4 supported, Oct 2013: paper 92.8%   measured {first.rc4_supported:.1%}",
            f"RC4 supported, 2018:     paper 19.1%   measured {last.rc4_supported:.1%}",
            f"RC4-only sites, Oct 2013: paper 2.6%   measured {first.rc4_only:.2%}",
            f"RC4-only sites, 2018:    paper ~0 (1 site)   measured {last.rc4_only:.3%}",
        ],
    )
