"""Golden-structure test for the versioned ``stats --json`` document.

Downstream consumers (the trace analyzer, bench trajectory tooling, CI
scripts) parse this document; this module pins its exact top-level
shape so any change — adding, removing, or retyping a key — fails here
first and forces a deliberate ``STATS_SCHEMA`` bump.

The rule the docstring on ``STATS_SCHEMA`` states: bump on any
backwards-incompatible key change.  These tests are the enforcement.
"""

from __future__ import annotations

import datetime as dt
import json

import pytest

from repro import obs
from repro.engine import faults
from repro.engine.perf import PERF, PerfCounters

#: The pinned top-level contract: key -> allowed types.  Editing this
#: dict is the deliberate act that must accompany a STATS_SCHEMA bump.
GOLDEN_TOP_LEVEL = {
    "schema": int,
    "dataset": dict,
    "counters": dict,
    "derived": dict,
    "trace": dict,
    "profile": (dict, type(None)),
    "histograms": dict,
    "window": (dict, type(None)),
}

GOLDEN_DATASET = {
    "start": str,
    "end": str,
    "months": int,
    "records": int,
    "wall_seconds": float,
}

GOLDEN_TRACE = {
    "trace_id": str,
    "spans": list,
    "dropped_spans": int,
}

#: Per-span record contract (PR 4 added the deterministic identity).
GOLDEN_SPAN = {
    "name": str,
    "id": int,
    "parent_id": (int, type(None)),
    "pid": int,
    "trace_id": str,
    "ts": float,
    "duration": float,
    "depth": int,
    "parent": (str, type(None)),
}

#: Schema 5: the serve counters every document must now carry inside
#: ``counters`` (the resident server's request accounting), with the
#: per-route latency ledger as a dict.
GOLDEN_SERVE_COUNTERS = {
    "http_requests": int,
    "http_errors": int,
    "http_route_latency": dict,
}

#: Schema 6: the shape of one mergeable histogram snapshot — the value
#: type of the top-level ``histograms`` section and of each route
#: ledger entry's ``histogram`` key.
GOLDEN_HISTOGRAM_SNAPSHOT = {
    "bounds": list,
    "counts": list,
    "count": int,
    "sum": (int, float),
    "max": (int, float),
    "min": (int, float, type(None)),
    "exemplars": list,
}

#: The version these golden dicts describe.  If you bumped STATS_SCHEMA
#: without updating the golden structure (or vice versa), the mismatch
#: fails here with instructions rather than silently downstream.
GOLDEN_SCHEMA_VERSION = 6

#: Every schema revision this repo has ever published; consumers and
#: the metrics validator keep accepting all of them.
KNOWN_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6)


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    obs.TRACE.reset()
    obs.profile.configure(None)
    faults.clear()
    yield
    obs.TRACE.reset()
    obs.profile.configure(None)
    faults.clear()


@pytest.fixture
def small_model(monkeypatch):
    from repro.simulation import ecosystem

    small = ecosystem.EcosystemModel(
        start=dt.date(2014, 6, 1),
        end=dt.date(2014, 7, 1),
        use_cache=False,
        workers=0,
    )
    monkeypatch.setattr(ecosystem, "_DEFAULT_MODEL", small)
    PERF.reset()
    return small


def stats_document(capsys, *flags: str) -> dict:
    from repro.cli import main

    assert main([*flags, "stats", "--json"]) == 0
    return json.loads(capsys.readouterr().out)


def assert_shape(document: dict, golden: dict, where: str) -> None:
    assert set(document) == set(golden), (
        f"{where}: keys changed "
        f"(added {set(document) - set(golden)}, "
        f"removed {set(golden) - set(document)}) — "
        "update the golden structure AND bump STATS_SCHEMA"
    )
    for key, types in golden.items():
        assert isinstance(document[key], types), (
            f"{where}.{key}: expected {types}, got {type(document[key])}"
        )


class TestGoldenStructure:
    def test_version_and_golden_agree(self):
        from repro.cli import STATS_SCHEMA

        assert STATS_SCHEMA == GOLDEN_SCHEMA_VERSION, (
            "STATS_SCHEMA changed: update the GOLDEN_* dicts in this "
            "file to describe the new layout, then set "
            "GOLDEN_SCHEMA_VERSION to match"
        )
        assert GOLDEN_SCHEMA_VERSION == KNOWN_SCHEMA_VERSIONS[-1], (
            "append the new version to KNOWN_SCHEMA_VERSIONS — "
            "earlier schemas stay accepted, never replaced"
        )

    def test_top_level_shape(self, capsys, small_model):
        document = stats_document(capsys)
        assert_shape(document, GOLDEN_TOP_LEVEL, "document")
        assert document["schema"] == GOLDEN_SCHEMA_VERSION

    def test_dataset_shape(self, capsys, small_model):
        document = stats_document(capsys)
        assert_shape(document["dataset"], GOLDEN_DATASET, "dataset")
        dt.date.fromisoformat(document["dataset"]["start"])
        dt.date.fromisoformat(document["dataset"]["end"])

    def test_counters_mirror_the_dataclass_exactly(self, capsys, small_model):
        document = stats_document(capsys)
        assert set(document["counters"]) == set(
            PerfCounters.__dataclass_fields__
        )

    def test_serve_counters_present(self, capsys, small_model):
        """Schema 5 golden case (still honored by 6): the serve fields
        exist with their pinned types even in a process that never
        served a request — consumers can rely on the keys, not probe
        for them."""
        document = stats_document(capsys)
        assert document["schema"] == GOLDEN_SCHEMA_VERSION
        counters = document["counters"]
        for key, types in GOLDEN_SERVE_COUNTERS.items():
            assert key in counters, f"counters.{key} missing (schema 5)"
            assert isinstance(counters[key], types)
        assert counters["http_requests"] == 0
        assert counters["http_route_latency"] == {}

    def test_schema6_route_ledger_shape_after_serving(
        self, capsys, small_model
    ):
        """After real served traffic the ledger carries per-route
        entries with the pinned keys — schema 6 swapped the unbounded
        ``samples`` list for a bounded ``histogram`` snapshot."""
        from repro.engine.partition import PackedDataset, pack_records
        from repro.notary.store import NotaryStore
        from repro.serve.server import start_server
        from repro.serve.loadtest import run_loadtest

        packed = NotaryStore()
        packed.attach_packed(
            PackedDataset(pack_records(small_model.passive_store().records()))
        )
        handle = start_server(store=packed)
        try:
            report = run_loadtest(handle.url, requests=40, concurrency=4)
        finally:
            handle.close()
        assert report["errors"] == 0
        capsys.readouterr()  # drop any earlier output
        document = stats_document(capsys)
        counters = document["counters"]
        assert counters["http_requests"] >= 40
        for route, entry in counters["http_route_latency"].items():
            assert isinstance(route, str)
            assert {
                "count",
                "errors",
                "total_seconds",
                "max_seconds",
                "histogram",
            } == set(entry), f"route ledger keys changed for {route}"
            assert entry["count"] >= 1
            assert_shape(
                entry["histogram"],
                GOLDEN_HISTOGRAM_SNAPSHOT,
                f"route {route} histogram",
            )
            assert sum(entry["histogram"]["counts"]) == entry["count"]

    def test_schema6_histograms_and_window_sections(
        self, capsys, small_model
    ):
        """Schema 6 golden case: a batch document carries the named
        duration histograms of the run (per-month simulation at least)
        and a null ``window`` (only the resident server fills it)."""
        document = stats_document(capsys)
        assert document["schema"] == 6
        assert document["window"] is None
        histograms = document["histograms"]
        assert "simulate_month_seconds" in histograms
        for name, snap in histograms.items():
            assert_shape(
                snap, GOLDEN_HISTOGRAM_SNAPSHOT, f"histograms.{name}"
            )
            assert len(snap["counts"]) == len(snap["bounds"]) + 1
            assert len(snap["exemplars"]) == len(snap["counts"])
            assert sum(snap["counts"]) == snap["count"]
        months = document["dataset"]["months"]
        assert histograms["simulate_month_seconds"]["count"] == months

    def test_trace_and_span_shape(self, capsys, small_model):
        document = stats_document(capsys)
        assert_shape(document["trace"], GOLDEN_TRACE, "trace")
        spans = document["trace"]["spans"]
        assert spans, "a fresh run must record spans"
        for span in spans:
            missing = set(GOLDEN_SPAN) - set(span)
            assert not missing, f"span missing field(s) {missing}"
            for key, types in GOLDEN_SPAN.items():
                assert isinstance(span[key], types), (
                    f"span.{key}: expected {types}, got {type(span[key])}"
                )
        # attrs/origin are optional but JSON-safe when present.
        json.dumps(spans)

    def test_profile_null_without_flag(self, capsys, small_model):
        assert stats_document(capsys)["profile"] is None

    def test_profile_populates_under_flag(self, capsys, small_model):
        document = stats_document(capsys, "--profile", "cprofile")
        profile = document["profile"]
        assert profile["mode"] == "cprofile"
        phases = {p["name"]: p for p in profile["phases"]}
        assert "run_expectation" in phases
        phase = phases["run_expectation"]
        assert phase["wall_seconds"] > 0
        assert phase["top"], "no hotspots captured"
        top = phase["top"][0]
        assert {"func", "calls", "tottime", "cumtime"} <= set(top)

    def test_profile_tracemalloc_reports_peaks(self, capsys, small_model):
        document = stats_document(capsys, "--profile", "tracemalloc")
        profile = document["profile"]
        assert profile["mode"] == "tracemalloc"
        phases = {p["name"]: p for p in profile["phases"]}
        phase = phases["run_expectation"]
        assert phase["peak_bytes"] > 0
        assert phase["top"], "no allocation sites captured"
        assert {"site", "size_bytes", "count"} <= set(phase["top"][0])
