"""Tests for the §9 extension-deployment analyses."""

import datetime as dt

import pytest

from repro.core.extensions_analysis import (
    encrypt_then_mac_uptake,
    extension_popularity,
    negotiated_series,
    offered_series,
    rie_deployment,
)
from repro.tls.extensions import ExtensionType


class TestRecordPlumbing:
    def test_records_carry_client_extensions(self, small_window_store):
        records = small_window_store.records(dt.date(2015, 1, 1))
        assert any(
            int(ExtensionType.SERVER_NAME) in r.client_extensions for r in records
        )

    def test_records_carry_server_extensions(self, small_window_store):
        records = [
            r for r in small_window_store.records(dt.date(2015, 1, 1)) if r.established
        ]
        assert any(r.server_extensions for r in records)

    def test_negotiated_requires_both_sides(self, small_window_store):
        for record in small_window_store.records(dt.date(2015, 1, 1)):
            code = int(ExtensionType.RENEGOTIATION_INFO)
            if record.negotiated_extension(code):
                assert record.offers_extension(code)
                assert code in record.server_extensions


class TestRie:
    def test_rie_widely_deployed(self, small_window_store):
        series = rie_deployment(small_window_store)
        offered = dict(series["RIE offered"])[dt.date(2015, 1, 1)]
        negotiated = dict(series["RIE negotiated"])[dt.date(2015, 1, 1)]
        # Nearly every post-2010 client sends RIE; most servers ack it.
        assert offered > 60
        assert negotiated > 30
        assert negotiated <= offered


class TestEncryptThenMac:
    def test_no_etm_before_2016(self, small_window_store):
        series = encrypt_then_mac_uptake(small_window_store)
        for _, value in series["EtM offered"]:
            assert value < 1.0  # OpenSSL 1.1.0 not yet released

    def test_limited_uptake_in_2018(self, late_window_store):
        series = encrypt_then_mac_uptake(late_window_store)
        offered = dict(series["EtM offered"])[dt.date(2018, 3, 1)]
        negotiated = dict(series["EtM negotiated"])[dt.date(2018, 3, 1)]
        # §9: "very limited take up" — present but small.
        assert 0.2 < offered < 15
        assert 0 < negotiated < offered


class TestPopularity:
    def test_popularity_ranked(self, small_window_store):
        ranked = extension_popularity(small_window_store, dt.date(2015, 1, 1), top=5)
        assert len(ranked) == 5
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        names = [n for n, _ in ranked]
        assert "renegotiation_info" in names or "server_name" in names

    def test_empty_month(self, small_window_store):
        assert extension_popularity(small_window_store, dt.date(1999, 1, 1)) == []


class TestSeriesHelpers:
    def test_offered_series_months(self, small_window_store):
        series = offered_series(small_window_store, ExtensionType.HEARTBEAT)
        assert [m for m, _ in series] == small_window_store.months()

    def test_heartbeat_offered_by_openssl_population(self, small_window_store):
        series = dict(offered_series(small_window_store, ExtensionType.HEARTBEAT))
        assert series[dt.date(2015, 1, 1)] > 2  # OpenSSL 1.0.1/1.0.2 stacks

    def test_negotiated_series_below_offered(self, small_window_store):
        month = dt.date(2015, 1, 1)
        offered = dict(offered_series(small_window_store, ExtensionType.HEARTBEAT))
        negotiated = dict(
            negotiated_series(small_window_store, ExtensionType.HEARTBEAT)
        )
        assert negotiated[month] <= offered[month] + 1e-9
        assert negotiated[month] > 0
