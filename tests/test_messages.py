"""ClientHello / ServerHello model accessor tests."""

import pytest

from repro.tls.extensions import Extension, ExtensionType
from repro.tls.messages import (
    Alert,
    AlertDescription,
    ClientHello,
    ServerHello,
    build_supported_versions_extension,
    parse_supported_versions_extension,
)
from repro.tls.versions import TLS12, TLS13


def hello(**kw):
    kw.setdefault("cipher_suites", (0xC02F, 0x002F, 0x000A))
    return ClientHello(random=b"\0" * 32, **kw)


class TestClientHelloAccessors:
    def test_extension_types_in_order(self):
        h = hello(extensions=(Extension(0), Extension(10), Extension(11)))
        assert h.extension_types() == (0, 10, 11)

    def test_has_extension(self):
        h = hello(extensions=(Extension(int(ExtensionType.HEARTBEAT)),))
        assert h.has_extension(ExtensionType.HEARTBEAT)
        assert not h.has_extension(ExtensionType.SERVER_NAME)

    def test_extension_lookup(self):
        ext = Extension(int(ExtensionType.SERVER_NAME), b"x")
        h = hello(extensions=(ext,))
        assert h.extension(ExtensionType.SERVER_NAME) is ext
        assert h.extension(ExtensionType.HEARTBEAT) is None

    def test_known_suites_strips_grease_and_unknown(self):
        h = hello(cipher_suites=(0x0A0A, 0xC02F, 0xEEEE))
        assert [s.code for s in h.known_suites()] == [0xC02F]

    def test_known_curves(self):
        h = hello(supported_groups=(0x0A0A, 23, 9999))
        assert [c.name for c in h.known_curves()] == ["secp256r1"]

    def test_offered_versions_legacy(self):
        h = hello(legacy_version=TLS12.wire)
        assert h.offered_versions() == (TLS12.wire,)
        assert h.max_offered_version() == TLS12.wire

    def test_offered_versions_with_extension(self):
        h = hello(supported_versions=(0x7E02, TLS12.wire))
        assert h.offered_versions() == (0x7E02, TLS12.wire)
        assert h.max_offered_version() == 0x7E02

    def test_offered_versions_strips_grease(self):
        h = hello(supported_versions=(0x0A0A, TLS13.wire, TLS12.wire))
        assert h.offered_versions() == (TLS13.wire, TLS12.wire)


class TestAdvertisementHelpers:
    def test_advertises(self):
        h = hello()
        assert h.advertises(lambda s: s.is_aead)
        assert h.advertises(lambda s: s.is_3des)
        assert not h.advertises(lambda s: s.is_rc4)

    def test_first_index(self):
        h = hello()
        assert h.first_index(lambda s: s.is_aead) == 0
        assert h.first_index(lambda s: s.is_3des) == 2
        assert h.first_index(lambda s: s.is_rc4) is None

    def test_relative_position_endpoints(self):
        h = hello()
        assert h.relative_position(lambda s: s.is_aead) == 0.0
        assert h.relative_position(lambda s: s.is_3des) == 1.0

    def test_relative_position_middle(self):
        h = hello()
        assert h.relative_position(lambda s: s.is_cbc) == pytest.approx(0.5)

    def test_relative_position_missing(self):
        assert hello().relative_position(lambda s: s.is_rc4) is None

    def test_relative_position_single_suite(self):
        h = hello(cipher_suites=(0xC02F,))
        assert h.relative_position(lambda s: s.is_aead) == 0.0


class TestServerHello:
    def test_negotiated_version_prefers_extension(self):
        sh = ServerHello(version=TLS12.wire, selected_version=0x7E02, cipher_suite=0x1301)
        assert sh.negotiated_version == 0x7E02

    def test_negotiated_protocol_none_for_draft(self):
        sh = ServerHello(version=TLS12.wire, selected_version=0x7E02, cipher_suite=0x1301)
        assert sh.negotiated_protocol() is None

    def test_negotiated_protocol_classic(self):
        sh = ServerHello(version=TLS12.wire, cipher_suite=0x002F)
        assert sh.negotiated_protocol() is TLS12

    def test_suite_lookup(self):
        sh = ServerHello(version=TLS12.wire, cipher_suite=0x002F)
        assert sh.suite.name == "TLS_RSA_WITH_AES_128_CBC_SHA"
        assert ServerHello(version=TLS12.wire, cipher_suite=0xEEEE).suite is None


class TestSupportedVersionsExtension:
    def test_roundtrip(self):
        ext = build_supported_versions_extension([0x7E02, TLS12.wire])
        assert parse_supported_versions_extension(ext) == (0x7E02, TLS12.wire)

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError):
            parse_supported_versions_extension(Extension(0, b""))


class TestAlert:
    def test_str(self):
        alert = Alert(AlertDescription.HANDSHAKE_FAILURE)
        assert "handshake_failure" in str(alert)
        assert alert.level == 2
