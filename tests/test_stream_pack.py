"""Streaming-pack equivalence suite (the `--scale` byte-identity half).

The scaling architecture rests on three exact-equality claims, each
proven here rather than assumed:

* ``pack_stream`` over *any* chunking of a record sequence — one record
  per chunk, ragged chunks, one whole-sequence chunk, lazy generators —
  finishes with a payload **byte-identical** to ``pack_records`` over
  the concatenation.  Chunk boundaries bound how many record objects
  are alive at once; they must never leak into the output.
* The merge/remap machinery (``PackedMerge`` / ``remap_month``) that
  the out-of-core spill and the cache writer consume is byte-identical
  to re-packing the concatenated record streams sorted by month — the
  translated shape summaries carry the same floats bit for bit.
* The vectorized index construction (numpy ``cumsum`` folds) equals the
  pure-Python row loop equals the record-scan build — not approximately,
  ``==`` on every counter.

Comparisons use ``array.tobytes()`` and ``float.hex()`` so a ULP of
drift fails loudly instead of hiding inside ``pytest.approx``.
"""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.notary.events import ConnectionRecord
from repro.notary.store import NotaryStore, _MonthIndex, month_of
from repro.notary import vector as _vector
from repro.engine.partition import (
    PackedDataset,
    PackedMerge,
    merge_packed,
    pack_records,
    pack_stream,
    remap_month,
)


def _record(month, weight, established, variant=0, day=None):
    """A record whose shape varies with ``variant`` (so chunking and
    remapping exercise multi-shape tables, not a single-row degenerate)."""
    return ConnectionRecord(
        month=month,
        weight=weight,
        client_family="x",
        client_version=str(variant),
        client_category="",
        client_in_database=False,
        fingerprint=None,
        advertised=frozenset(),
        positions={},
        suite_count=1 + variant,
        offered_tls13=False,
        offered_tls13_versions=(),
        established=established,
        negotiated_version="TLSv12" if established else None,
        negotiated_wire=0x0303 if established else None,
        negotiated_suite=0x002F if established else None,
        negotiated_curve=None,
        heartbeat_negotiated=False,
        server_chose_unoffered=False,
        day=day,
    )


_months = st.dates(min_value=dt.date(2012, 1, 1), max_value=dt.date(2018, 4, 30)).map(
    month_of
)
_record_specs = st.lists(
    st.tuples(
        _months,
        st.floats(min_value=0.001, max_value=100),
        st.booleans(),
        st.integers(min_value=0, max_value=3),
        st.one_of(st.none(), st.integers(min_value=0, max_value=27)),
    ),
    min_size=0,
    max_size=60,
)


def _records_of(specs):
    return [
        _record(
            month,
            weight,
            established,
            variant,
            None if day_off is None else month + dt.timedelta(days=day_off),
        )
        for month, weight, established, variant, day_off in specs
    ]


def _chunk(records, sizes):
    """Cut ``records`` into chunks cycling through ``sizes`` (ragged)."""
    if not sizes:
        return [records]
    chunks, pos, i = [], 0, 0
    while pos < len(records):
        size = sizes[i % len(sizes)]
        chunks.append(records[pos : pos + size])
        pos += size
        i += 1
    return chunks


def _summary_blob(summary):
    return (
        summary["order"].tobytes(),
        summary["sums"].tobytes(),
        summary["last"].tobytes(),
        summary["total"].hex(),
        summary["established"].hex(),
    )


def _column_blob(columns):
    return (
        bytes(memoryview(columns["weights"])),
        bytes(memoryview(columns["shape_idx"])),
        columns["days"],
        _summary_blob(columns["shape_summary"]),
    )


def assert_payloads_identical(a, b):
    """Byte-identity between two packed payloads, component by component."""
    assert a["format"] == b["format"]
    assert a["shapes"] == b["shapes"]
    assert sorted(a["months"]) == sorted(b["months"])
    for month_ord in a["months"]:
        assert _column_blob(a["months"][month_ord]) == _column_blob(
            b["months"][month_ord]
        ), dt.date.fromordinal(month_ord)
    fields_a = a["shape_matrix"]["fields"]
    fields_b = b["shape_matrix"]["fields"]
    assert set(fields_a) == set(fields_b)
    for name in fields_a:
        assert fields_a[name]["vocab"] == fields_b[name]["vocab"], name
        assert (
            fields_a[name]["codes"].tobytes() == fields_b[name]["codes"].tobytes()
        ), name


class TestChunkingProperty:
    @given(_record_specs, st.lists(st.integers(min_value=1, max_value=9), max_size=8))
    @settings(max_examples=100)
    def test_any_chunking_matches_batch_pack(self, specs, sizes):
        records = _records_of(specs)
        streamed = pack_stream(_chunk(records, sizes))
        assert_payloads_identical(streamed, pack_records(records))

    @given(_record_specs)
    @settings(max_examples=50)
    def test_one_record_chunks(self, specs):
        records = _records_of(specs)
        streamed = pack_stream([r] for r in records)
        assert_payloads_identical(streamed, pack_records(records))

    @given(_record_specs)
    @settings(max_examples=50)
    def test_single_whole_chunk_and_generator_chunks(self, specs):
        records = _records_of(specs)
        batch = pack_records(records)
        assert_payloads_identical(pack_stream([records]), batch)
        # Generator chunks: records built on the fly, never a list.
        assert_payloads_identical(
            pack_stream((r for r in records[i : i + 3]) for i in range(0, len(records), 3)),
            batch,
        )

    def test_scaled_stream_replicas_share_the_identity_memo(self):
        # A scaled stream yields the *same* frozen record object N times
        # in a row; the packer's identity memo must not change output.
        base = _record(dt.date(2015, 1, 1), 0.25, True)
        replicas = [base] * 5 + [_record(dt.date(2015, 1, 1), 0.5, False)] * 3
        assert_payloads_identical(
            pack_stream([[r] for r in replicas]), pack_records(replicas)
        )


class TestMergeProperty:
    @given(_record_specs)
    @settings(max_examples=60)
    def test_merge_of_per_month_packs_matches_sorted_batch(self, specs):
        records = _records_of(specs)
        by_month: dict[dt.date, list] = {}
        for record in records:
            by_month.setdefault(record.month, []).append(record)
        payloads = [pack_records(group) for group in by_month.values()]
        merged = merge_packed(payloads)
        flat = [r for month in sorted(by_month) for r in by_month[month]]
        assert_payloads_identical(merged, pack_records(flat))

    @given(_record_specs)
    @settings(max_examples=40)
    def test_streaming_merge_yields_the_materialized_merge(self, specs):
        records = _records_of(specs)
        by_month: dict[dt.date, list] = {}
        for record in records:
            by_month.setdefault(record.month, []).append(record)
        payloads = [pack_records(group) for group in by_month.values()]
        merged = merge_packed([dict(p) for p in payloads])
        merge = PackedMerge(payloads)
        streamed = dict(merge.months())
        assert sorted(streamed) == sorted(merged["months"])
        for month_ord, columns in streamed.items():
            assert _column_blob(columns) == _column_blob(merged["months"][month_ord])
        assert merge.shapes == merged["shapes"]

    def test_duplicate_month_across_payloads_rejected(self):
        payload = pack_records([_record(dt.date(2015, 1, 1), 1.0, True)])
        with pytest.raises(ValueError, match="more than one payload"):
            PackedMerge([payload, payload])


class TestRemapSummaryTranslation:
    @given(_record_specs)
    @settings(max_examples=60)
    def test_translated_summary_equals_rebuilt_summary(self, specs):
        # remap_month translates a pack-time summary through the index
        # remap (O(shapes)) instead of re-folding rows (O(rows)); the
        # two paths must produce identical bytes.
        records = _records_of(specs)
        by_month: dict[dt.date, list] = {}
        for record in records:
            by_month.setdefault(record.month, []).append(record)
        for group in by_month.values():
            payload = pack_records(group)
            (month_ord,) = payload["months"]
            columns = payload["months"][month_ord]
            shapes_a: list = []
            translated = remap_month(columns, payload["shapes"], shapes_a, {})
            stripped = dict(columns)
            stripped.pop("shape_summary")
            shapes_b: list = []
            rebuilt = remap_month(stripped, payload["shapes"], shapes_b, {})
            assert shapes_a == shapes_b
            assert _column_blob(translated) == _column_blob(rebuilt)


class TestScaleSemantics:
    """The generator-side contract of ``--scale`` (satellite of the
    tentpole): record counts multiply, weights divide, totals hold."""

    @pytest.fixture(scope="class")
    def month(self):
        return dt.date(2014, 6, 1)

    def test_scale_1_stream_equals_batch_store(
        self, client_population, server_population, month
    ):
        from repro.notary import PassiveMonitor, TrafficGenerator

        monitor = PassiveMonitor()
        generator = TrafficGenerator(client_population, server_population, monitor)
        streamed = pack_stream([generator.stream_expectation_month(month)])
        generator.run_expectation_month(month)
        assert_payloads_identical(
            streamed, pack_records(monitor.store.records(month))
        )

    def test_scaled_stream_multiplies_counts_not_totals(
        self, client_population, server_population, month
    ):
        from repro.notary import PassiveMonitor, TrafficGenerator

        scale = 7
        base_gen = TrafficGenerator(
            client_population, server_population, PassiveMonitor()
        )
        scaled_gen = TrafficGenerator(
            client_population, server_population, PassiveMonitor(), scale=scale
        )
        base = pack_stream([base_gen.stream_expectation_month(month)])
        scaled = pack_stream([scaled_gen.stream_expectation_month(month)])
        # Same shape table: scaling replicates records, never invents new ones.
        assert scaled["shapes"] == base["shapes"]
        (base_cols,) = base["months"].values()
        (scaled_cols,) = scaled["months"].values()
        assert len(scaled_cols["weights"]) == scale * len(base_cols["weights"])
        base_store, scaled_store = NotaryStore(), NotaryStore()
        base_store.attach_packed(PackedDataset(base))
        scaled_store.attach_packed(PackedDataset(scaled))
        assert scaled_store.total_weight(month) == pytest.approx(
            base_store.total_weight(month), rel=1e-9
        )
        assert scaled_store.fraction(month, lambda r: r.established) == pytest.approx(
            base_store.fraction(month, lambda r: r.established), rel=1e-9
        )


class TestIndexVectorization:
    """Satellite: numpy counter construction ≡ pure-Python row loop ≡
    record-scan build — asserted with ``==``, never ``approx``."""

    @pytest.fixture(scope="class")
    def dataset(self, small_window_store):
        return PackedDataset(pack_records(small_window_store.records()))

    @pytest.mark.skipif(not _vector.available(), reason="numpy not installed")
    def test_vector_path_equals_python_path_equals_scan(
        self, dataset, small_window_store, monkeypatch
    ):
        for month in dataset.months():
            vectorized = _MonthIndex.from_columns(dataset, month)
            monkeypatch.setattr(_vector, "available", lambda: False)
            try:
                row_loop = _MonthIndex.from_columns(dataset, month)
            finally:
                monkeypatch.undo()
            scan = _MonthIndex.from_records(small_window_store.records(month))
            for a, b in ((vectorized, row_loop), (vectorized, scan)):
                assert a.total == b.total
                assert a.established == b.established
                assert a.weights == b.weights
                assert a.established_weights == b.established_weights

    def test_vector_path_handles_empty_month(self, dataset):
        index = _MonthIndex.from_columns(dataset, dt.date(1999, 1, 1))
        assert index.total == 0.0
        assert index.weights == {}
