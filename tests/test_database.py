"""Fingerprint-database tests: collision rules, matching, coverage."""

import datetime as dt

import pytest

from repro.clients.profile import (
    CATEGORY_BROWSERS,
    CATEGORY_EMAIL,
    CATEGORY_LIBRARIES,
)
from repro.core.database import (
    FingerprintDatabase,
    FingerprintLabel,
    build_default_database,
)
from repro.core.fingerprint import Fingerprint

FP_A = Fingerprint.from_raw((0xC02F, 0x002F), (0, 10, 11), (23,), (0,))
FP_B = Fingerprint.from_raw((0x002F, 0xC02F), (0, 10, 11), (23,), (0,))

BROWSER = FingerprintLabel("SomeBrowser", "1", CATEGORY_BROWSERS, library="NSS")
OTHER_BROWSER = FingerprintLabel("OtherBrowser", "2", CATEGORY_BROWSERS, library="NSS")
LIBRARY = FingerprintLabel("Android SDK", "5.0", CATEGORY_LIBRARIES, library="Android SDK")
MAIL = FingerprintLabel("Some Mail", "9", CATEGORY_EMAIL, library="SecureTransport")


class TestCollisionRules:
    def test_simple_add_and_match(self):
        db = FingerprintDatabase()
        assert db.add(FP_A, BROWSER)
        assert db.match(FP_A) == BROWSER
        assert FP_A in db
        assert len(db) == 1

    def test_no_match_for_unknown(self):
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        assert db.match(FP_B) is None

    def test_same_software_merges_version_ranges(self):
        db = FingerprintDatabase()
        db.add(FP_A, FingerprintLabel("SomeBrowser", "1", CATEGORY_BROWSERS))
        db.add(FP_A, FingerprintLabel("SomeBrowser", "2", CATEGORY_BROWSERS))
        label = db.match(FP_A)
        assert label.version_range == "1, 2"
        assert len(db) == 1

    def test_software_software_collision_removes(self):
        # §4: "When a collision with a different kind of software ...
        # occurs we remove the fingerprint from the database."
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        assert not db.add(FP_A, OTHER_BROWSER)
        assert db.match(FP_A) is None
        assert len(db) == 0

    def test_removed_fingerprint_stays_removed(self):
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        db.add(FP_A, OTHER_BROWSER)
        # Re-adding after removal must not resurrect it.
        assert not db.add(FP_A, BROWSER)
        assert db.match(FP_A) is None

    def test_software_then_library_resolves_to_library(self):
        # §4: "When a collision between a specific software and a library
        # occurs we assume that the software uses the library."
        db = FingerprintDatabase()
        db.add(FP_A, MAIL)
        assert db.add(FP_A, LIBRARY)
        assert db.match(FP_A).software == "Android SDK"

    def test_library_then_software_keeps_library(self):
        db = FingerprintDatabase()
        db.add(FP_A, LIBRARY)
        assert db.add(FP_A, MAIL)
        assert db.match(FP_A).software == "Android SDK"

    def test_match_accepts_fields(self):
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        assert db.match(FP_A.fields) == BROWSER


class TestCoverage:
    def _record(self, fingerprint, weight):
        from repro.notary.events import ConnectionRecord

        return ConnectionRecord(
            month=dt.date(2015, 1, 1),
            weight=weight,
            client_family="x",
            client_version="1",
            client_category="",
            client_in_database=True,
            fingerprint=fingerprint.fields if fingerprint else None,
            advertised=frozenset(),
            positions={},
            suite_count=2,
            offered_tls13=False,
            offered_tls13_versions=(),
            established=True,
            negotiated_version="TLSv12",
            negotiated_wire=0x0303,
            negotiated_suite=0xC02F,
            negotiated_curve=None,
            heartbeat_negotiated=False,
            server_chose_unoffered=False,
        )

    def test_coverage_fractions(self):
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        records = [
            self._record(FP_A, 3.0),
            self._record(FP_B, 1.0),
        ]
        coverage = db.coverage(records)
        assert coverage["All"] == pytest.approx(0.75)
        assert coverage[CATEGORY_BROWSERS] == pytest.approx(0.75)

    def test_records_without_fingerprint_ignored(self):
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        records = [self._record(FP_A, 1.0), self._record(None, 5.0)]
        assert db.coverage(records)["All"] == pytest.approx(1.0)

    def test_empty(self):
        db = FingerprintDatabase()
        assert db.coverage([]) == {"All": 0.0}

    def test_count_by_category(self):
        db = FingerprintDatabase()
        db.add(FP_A, BROWSER)
        db.add(FP_B, LIBRARY)
        assert db.count_by_category() == {
            CATEGORY_BROWSERS: 1,
            CATEGORY_LIBRARIES: 1,
        }


class TestDefaultDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return build_default_database()

    def test_covers_all_nine_categories(self, db):
        from repro.clients.profile import ALL_CATEGORIES

        counts = db.count_by_category()
        for category in ALL_CATEGORIES:
            assert counts.get(category, 0) >= 1, category

    def test_libraries_largest_category(self, db):
        # Table 2: Libraries hold the most fingerprints... in our scaled
        # database Browsers may win on count, but Libraries must be top-2.
        counts = db.count_by_category()
        ranked = sorted(counts, key=counts.get, reverse=True)
        assert "Libraries" in ranked[:2]

    def test_shuffling_and_unknown_clients_not_in_db(self, db):
        for label in db.labels().values():
            assert label.software != "Shuffling client"
            assert label.software != "Unknown long tail"
            assert label.software != "Unidentified anon SDK"

    def test_chrome_release_matchable(self, db):
        import random

        from repro.clients import chrome
        from repro.core.fingerprint import extract

        hello = chrome.family().release("49").build_hello(rng=random.Random(3))
        label = db.match(extract(hello))
        assert label is not None
        assert label.software == "Chrome"

    def test_coverage_on_simulated_traffic(self, db, small_window_store):
        records = [
            r for r in small_window_store.records() if r.fingerprint is not None
        ]
        coverage = db.coverage(records)
        # Table 2 anchor: 69.23% of fingerprintable connections labelled.
        assert 0.55 < coverage["All"] < 0.9
