"""Collection-quality tests: §3.1's best-effort argument, quantified."""

import datetime as dt
import random

import pytest

from repro.notary.quality import (
    apply_biased_loss,
    apply_outage,
    apply_uniform_loss,
    robustness_gap,
)


class TestOperators:
    def test_uniform_loss_reduces_weight(self, small_window_store):
        degraded = apply_uniform_loss(small_window_store, 0.4, random.Random(1))
        month = dt.date(2015, 1, 1)
        assert degraded.total_weight(month) < small_window_store.total_weight(month)

    def test_uniform_loss_bounds(self, small_window_store):
        with pytest.raises(ValueError):
            apply_uniform_loss(small_window_store, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            apply_uniform_loss(small_window_store, -0.1, random.Random(1))

    def test_outage_removes_month(self, small_window_store):
        degraded = apply_outage(small_window_store, dt.date(2015, 1, 15))
        assert degraded.total_weight(dt.date(2015, 1, 1)) == 0
        assert degraded.total_weight(dt.date(2014, 12, 1)) > 0

    def test_montecarlo_loss_drops_records(self, montecarlo_store):
        degraded = apply_uniform_loss(montecarlo_store, 0.5, random.Random(2))
        assert len(degraded) < len(montecarlo_store)
        assert len(degraded) > 0


class TestRepresentativeness:
    """§3.1: best-effort collection still yields representative aggregates."""

    def test_fractions_robust_to_uniform_loss(self, small_window_store):
        degraded = apply_uniform_loss(small_window_store, 0.35, random.Random(3))
        gap = robustness_gap(
            small_window_store,
            degraded,
            lambda r: r.negotiated_mode_class == "RC4",
            within=lambda r: r.established,
        )
        # Uniform loss barely moves monthly fractions.
        assert gap < 0.02

    def test_fractions_robust_to_outage(self, small_window_store):
        degraded = apply_outage(small_window_store, dt.date(2015, 2, 1))
        gap = robustness_gap(
            small_window_store,
            degraded,
            lambda r: r.advertises("3des"),
        )
        # Surviving months are untouched.
        assert gap == pytest.approx(0.0)

    def test_biased_loss_does_distort(self, small_window_store):
        """The converse: a biased artifact is *not* harmless."""
        degraded = apply_biased_loss(
            small_window_store, 0.9, random.Random(4), threshold=25
        )
        gap = robustness_gap(
            small_window_store,
            degraded,
            lambda r: r.suite_count >= 25,
        )
        assert gap > 0.05  # large-hello share visibly depressed

    def test_montecarlo_fractions_survive_loss(self, montecarlo_store):
        degraded = apply_uniform_loss(montecarlo_store, 0.3, random.Random(5))
        gap = robustness_gap(
            montecarlo_store,
            degraded,
            lambda r: r.advertises("rc4"),
        )
        assert gap < 0.12  # sampling noise scale, not systematic shift

    def test_no_overlap_raises(self, small_window_store):
        empty = apply_outage(small_window_store, dt.date(2014, 6, 1))
        for month in list(small_window_store.months()):
            empty = apply_outage(empty, month)
        with pytest.raises(ValueError):
            robustness_gap(small_window_store, empty, lambda r: True)
