"""Negotiation-engine tests: versions, suites, curves, SCSV, anomalies."""

import pytest

from repro.tls.ciphers import suite_by_code, suite_by_name
from repro.tls.extensions import Extension, ExtensionType
from repro.tls.handshake import (
    FALLBACK_SCSV,
    RENEGOTIATION_INFO_SCSV,
    HandshakeFailure,
    SelectionAnomaly,
    SelectionPolicy,
    negotiate,
    suite_usable_at,
)
from repro.tls.messages import AlertDescription, ClientHello
from repro.tls.versions import SSL3, TLS10, TLS11, TLS12, TLS13, tls13_draft

AES_GCM = 0xC02F
AES_CBC = 0x002F
RC4_SHA = 0x0005
TDES = 0x000A
T13_AES = 0x1301


def hello(suites, version=TLS12.wire, groups=(), versions=(), extensions=()):
    return ClientHello(
        legacy_version=version,
        random=b"\0" * 32,
        cipher_suites=tuple(suites),
        supported_groups=tuple(groups),
        supported_versions=tuple(versions),
        extensions=tuple(extensions),
    )


class TestVersionSelection:
    def test_picks_highest_mutual_classic(self):
        result = negotiate(hello([AES_CBC]), {TLS10.wire, TLS11.wire, TLS12.wire}, [AES_CBC])
        assert result.version_wire == TLS12.wire

    def test_capped_by_client(self):
        result = negotiate(
            hello([AES_CBC], version=TLS10.wire),
            {TLS10.wire, TLS12.wire},
            [AES_CBC],
        )
        assert result.version_wire == TLS10.wire

    def test_no_overlap_protocol_version_alert(self):
        result = negotiate(
            hello([AES_CBC], version=SSL3.wire), {TLS12.wire}, [AES_CBC]
        )
        assert not result.ok
        assert result.alert.description is AlertDescription.PROTOCOL_VERSION

    def test_ssl3_only_client_against_ssl3_server(self):
        result = negotiate(
            hello([RC4_SHA], version=SSL3.wire), {SSL3.wire, TLS10.wire}, [RC4_SHA]
        )
        assert result.ok
        assert result.version is SSL3

    def test_strict_mode_raises(self):
        with pytest.raises(HandshakeFailure):
            negotiate(
                hello([AES_CBC], version=SSL3.wire),
                {TLS12.wire},
                [AES_CBC],
                strict=True,
            )


class TestTls13Negotiation:
    def test_supported_versions_wins(self):
        result = negotiate(
            hello([T13_AES, AES_GCM], groups=(29,), versions=(TLS13.wire, TLS12.wire)),
            {TLS12.wire, TLS13.wire},
            [T13_AES, AES_GCM],
            supported_groups=[29],
        )
        assert result.version is TLS13
        assert result.suite.code == T13_AES
        # Legacy version field stays 1.2; real version in the extension.
        assert result.server_hello.version == TLS12.wire
        assert result.server_hello.selected_version == TLS13.wire

    def test_draft_version_negotiated(self):
        draft = tls13_draft(18)
        result = negotiate(
            hello([T13_AES], groups=(29,), versions=(draft, TLS12.wire)),
            {TLS12.wire, draft},
            [T13_AES, AES_GCM],
            supported_groups=[29],
        )
        assert result.version_wire == draft
        assert result.version is TLS13  # drafts normalize to TLS 1.3

    def test_falls_back_to_12_when_no_13_overlap(self):
        result = negotiate(
            hello([T13_AES, AES_GCM], groups=(29,), versions=(tls13_draft(18), TLS12.wire)),
            {TLS12.wire, tls13_draft(28)},
            [T13_AES, AES_GCM],
            supported_groups=[29],
        )
        assert result.version is TLS12
        assert result.suite.code == AES_GCM

    def test_tls13_suite_never_chosen_below_13(self):
        result = negotiate(
            hello([T13_AES, AES_CBC]), {TLS12.wire}, [T13_AES, AES_CBC]
        )
        assert result.suite.code == AES_CBC


class TestSuiteUsability:
    def test_aead_requires_tls12(self):
        gcm = suite_by_code(AES_GCM)
        assert suite_usable_at(gcm, TLS12.wire)
        assert not suite_usable_at(gcm, TLS11.wire)

    def test_sha256_cbc_requires_tls12(self):
        suite = suite_by_name("TLS_RSA_WITH_AES_128_CBC_SHA256")
        assert not suite_usable_at(suite, TLS10.wire)
        assert suite_usable_at(suite, TLS12.wire)

    def test_classic_cbc_usable_everywhere_classic(self):
        suite = suite_by_code(AES_CBC)
        for wire in (SSL3.wire, TLS10.wire, TLS12.wire):
            assert suite_usable_at(suite, wire)
        assert not suite_usable_at(suite, TLS13.wire)

    def test_aead_unavailable_below_12_in_negotiation(self):
        result = negotiate(
            hello([AES_GCM, AES_CBC], version=TLS11.wire, groups=(23,)),
            {TLS10.wire, TLS11.wire},
            [AES_GCM, AES_CBC],
            supported_groups=[23],
        )
        assert result.suite.code == AES_CBC


class TestPreferenceOrder:
    def test_server_preference_default(self):
        result = negotiate(
            hello([RC4_SHA, AES_CBC]), {TLS12.wire}, [AES_CBC, RC4_SHA]
        )
        assert result.suite.code == AES_CBC

    def test_client_preference_policy(self):
        result = negotiate(
            hello([RC4_SHA, AES_CBC]),
            {TLS12.wire},
            [AES_CBC, RC4_SHA],
            policy=SelectionPolicy(server_preference=False),
        )
        assert result.suite.code == RC4_SHA

    def test_no_common_suite(self):
        result = negotiate(hello([RC4_SHA]), {TLS12.wire}, [AES_CBC])
        assert not result.ok
        assert result.alert.description is AlertDescription.HANDSHAKE_FAILURE

    def test_grease_in_offer_ignored(self):
        result = negotiate(
            hello([0x0A0A, AES_CBC]), {TLS12.wire}, [AES_CBC]
        )
        assert result.ok
        assert result.suite.code == AES_CBC


class TestCurveAgreement:
    def test_ec_suite_requires_common_group(self):
        result = negotiate(
            hello([AES_GCM, AES_CBC], groups=(29,)),
            {TLS12.wire},
            [AES_GCM, AES_CBC],
            supported_groups=[23, 24],
        )
        # No common curve: the ECDHE suite is skipped, RSA CBC chosen.
        assert result.suite.code == AES_CBC
        assert result.curve is None

    def test_server_curve_preference(self):
        result = negotiate(
            hello([AES_GCM], groups=(23, 29)),
            {TLS12.wire},
            [AES_GCM],
            supported_groups=[29, 23],
        )
        assert result.curve == 29

    def test_clients_without_groups_get_default_curve(self):
        result = negotiate(
            hello([AES_GCM]), {TLS12.wire}, [AES_GCM], supported_groups=[23]
        )
        assert result.ok
        assert result.curve == 23


class TestFallbackScsv:
    def test_fallback_refused_when_higher_available(self):
        result = negotiate(
            hello([AES_CBC, FALLBACK_SCSV], version=TLS10.wire),
            {TLS10.wire, TLS12.wire},
            [AES_CBC],
        )
        assert not result.ok
        assert result.alert.description is AlertDescription.INAPPROPRIATE_FALLBACK

    def test_fallback_accepted_at_server_max(self):
        result = negotiate(
            hello([AES_CBC, FALLBACK_SCSV], version=TLS10.wire),
            {SSL3.wire, TLS10.wire},
            [AES_CBC],
        )
        assert result.ok

    def test_scsv_never_selected_as_suite(self):
        result = negotiate(
            hello([FALLBACK_SCSV, AES_CBC]), {TLS12.wire}, [AES_CBC, FALLBACK_SCSV]
        )
        assert result.suite.code == AES_CBC


class TestExtensions:
    def test_heartbeat_echoed_when_offered_and_supported(self):
        result = negotiate(
            hello([AES_CBC], extensions=(Extension(int(ExtensionType.HEARTBEAT), b"\x01"),)),
            {TLS12.wire},
            [AES_CBC],
            echo_extensions=[int(ExtensionType.HEARTBEAT)],
        )
        assert result.heartbeat_negotiated

    def test_heartbeat_not_echoed_without_server_support(self):
        result = negotiate(
            hello([AES_CBC], extensions=(Extension(int(ExtensionType.HEARTBEAT), b"\x01"),)),
            {TLS12.wire},
            [AES_CBC],
        )
        assert not result.heartbeat_negotiated

    def test_heartbeat_not_echoed_when_not_offered(self):
        result = negotiate(
            hello([AES_CBC]),
            {TLS12.wire},
            [AES_CBC],
            echo_extensions=[int(ExtensionType.HEARTBEAT)],
        )
        assert not result.heartbeat_negotiated

    def test_renegotiation_scsv_triggers_extension(self):
        result = negotiate(
            hello([AES_CBC, RENEGOTIATION_INFO_SCSV]),
            {TLS12.wire},
            [AES_CBC],
            echo_extensions=[int(ExtensionType.RENEGOTIATION_INFO)],
        )
        assert result.server_hello.has_extension(ExtensionType.RENEGOTIATION_INFO)


class TestAnomalies:
    def test_choose_unoffered_export_suite(self):
        result = negotiate(
            hello([RC4_SHA]),
            {TLS10.wire},
            [0x0003],
            policy=SelectionPolicy(
                anomaly=SelectionAnomaly.CHOOSE_UNOFFERED, anomaly_suite=0x0003
            ),
        )
        assert result.ok
        assert result.suite.code == 0x0003
        assert result.client_aborts  # standard clients abort
        assert not result.established

    def test_choose_gost(self):
        result = negotiate(
            hello([AES_CBC]),
            {TLS12.wire},
            [0x0081],
            policy=SelectionPolicy(anomaly=SelectionAnomaly.CHOOSE_GOST),
        )
        assert result.suite.code == 0x0081
        assert result.client_aborts

    def test_anomaly_that_matches_offer_is_accepted(self):
        result = negotiate(
            hello([RC4_SHA]),
            {TLS10.wire},
            [RC4_SHA],
            policy=SelectionPolicy(
                anomaly=SelectionAnomaly.CHOOSE_UNOFFERED, anomaly_suite=RC4_SHA
            ),
        )
        assert result.established


class TestResultProperties:
    def test_forward_secret_and_kex(self):
        result = negotiate(
            hello([AES_GCM], groups=(23,)), {TLS12.wire}, [AES_GCM], supported_groups=[23]
        )
        assert result.forward_secret
        assert result.kex_family.value == "ECDHE"
        assert result.mode_class == "AEAD"

    def test_failed_result_properties_are_none(self):
        result = negotiate(hello([RC4_SHA]), {TLS12.wire}, [AES_CBC])
        assert result.suite is None
        assert result.version is None
        assert result.mode_class is None
        assert not result.established
