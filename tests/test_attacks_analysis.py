"""Tests for the attack-exposure and reaction-analysis module."""

import datetime as dt

import pytest

from repro.core.attacks import (
    EXPOSURE_PREDICATES,
    Reaction,
    beast_exposed,
    classify_reaction,
    exposure_series,
    freak_exposed,
    heartbleed_exposed,
    poodle_exposed,
    reaction_report,
    sweet32_exposed,
)
from repro.notary.events import ConnectionRecord


def record(**kw):
    defaults = dict(
        month=dt.date(2014, 6, 1),
        weight=1.0,
        client_family="x",
        client_version="1",
        client_category="",
        client_in_database=False,
        fingerprint=None,
        advertised=frozenset(),
        positions={},
        suite_count=1,
        offered_tls13=False,
        offered_tls13_versions=(),
        established=True,
        negotiated_version="TLSv12",
        negotiated_wire=0x0303,
        negotiated_suite=0xC02F,
        negotiated_curve=None,
        heartbeat_negotiated=False,
        server_chose_unoffered=False,
    )
    defaults.update(kw)
    return ConnectionRecord(**defaults)


class TestPredicates:
    def test_beast_needs_cbc_and_old_version(self):
        assert beast_exposed(
            record(negotiated_wire=0x0301, negotiated_suite=0x002F)
        )
        assert not beast_exposed(
            record(negotiated_wire=0x0303, negotiated_suite=0x002F)
        )  # TLS 1.1+ immune
        assert not beast_exposed(
            record(negotiated_wire=0x0301, negotiated_suite=0x0005)
        )  # RC4, not CBC

    def test_poodle_needs_ssl3_cbc(self):
        assert poodle_exposed(record(negotiated_wire=0x0300, negotiated_suite=0x002F))
        assert not poodle_exposed(record(negotiated_wire=0x0300, negotiated_suite=0x0005))
        assert not poodle_exposed(record(negotiated_wire=0x0301, negotiated_suite=0x002F))

    def test_heartbleed_tracks_heartbeat(self):
        assert heartbleed_exposed(record(heartbeat_negotiated=True))
        assert not heartbleed_exposed(record())

    def test_sweet32_small_blocks(self):
        assert sweet32_exposed(record(negotiated_suite=0x000A))  # 3DES
        assert sweet32_exposed(record(negotiated_suite=0x0009))  # DES
        assert not sweet32_exposed(record(negotiated_suite=0x002F))  # AES

    def test_freak_export(self):
        assert freak_exposed(record(negotiated_suite=0x0003))
        assert not freak_exposed(record())

    def test_failed_connection_never_exposed(self):
        failed = record(
            established=False, negotiated_suite=None, negotiated_wire=None
        )
        for predicate in EXPOSURE_PREDICATES.values():
            assert not predicate(failed)


class TestSeries:
    def test_unknown_attack_rejected(self, small_window_store):
        with pytest.raises(KeyError, match="unknown attack"):
            exposure_series(small_window_store, "QUANTUM")

    def test_rc4_exposure_matches_fig2(self, small_window_store):
        from repro.core import figures

        month = dt.date(2015, 1, 1)
        exposure = figures.value_at(
            exposure_series(small_window_store, "RC4"), month
        )
        fig2 = figures.value_at(
            figures.fig2_negotiated_modes(small_window_store)["RC4"], month
        )
        assert exposure == pytest.approx(fig2)

    def test_values_are_percentages(self, small_window_store):
        for attack in EXPOSURE_PREDICATES:
            for _, value in exposure_series(small_window_store, attack):
                assert 0.0 <= value <= 100.0


class TestClassifier:
    def test_fast(self):
        assert classify_reaction(10, 10, 3) == "fast"

    def test_slow(self):
        assert classify_reaction(10, 10, 7.5) == "slow"

    def test_none_flat(self):
        assert classify_reaction(10, 10, 10) == "none"

    def test_none_rising(self):
        assert classify_reaction(5, 10, 12) == "none"

    def test_zero_exposure(self):
        assert classify_reaction(0, 0, 0) == "none"


class TestReport:
    def test_small_window_excludes_out_of_range_events(self, small_window_store):
        # 2014-06..2015-06 window: no event has a full year on each side.
        assert reaction_report(small_window_store) == []

    def test_reaction_dataclass_trends(self):
        reaction = Reaction(
            attack="X", disclosed=dt.date(2015, 1, 1),
            before=10.0, at_disclosure=12.0, after=6.0, verdict="fast",
        )
        assert reaction.pre_trend == pytest.approx(2.0)
        assert reaction.post_trend == pytest.approx(-6.0)
