"""Bench harness tests: record structure, trajectory persistence, and
the baseline regression gate (including a synthetic perturbation that
must trip it — the acceptance criterion for the perf gate).

The full harness runs the engine; tests here use a tiny ``scale`` and
the cheap benches so the suite stays fast.  Gate logic is exercised on
real run records, perturbed in-memory.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro import bench, obs
from repro.engine import faults

#: The cheapest real selection: micro-benches only, no engine run.
FAST = ["substrate.encode_hello", "substrate.fingerprint"]


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    obs.TRACE.reset()
    faults.clear()
    yield
    obs.TRACE.reset()
    faults.clear()


@pytest.fixture(scope="module")
def fast_run():
    return bench.run_benches(FAST, scale=0.01)


class TestSelection:
    def test_quick_subset_is_a_subset(self):
        quick = bench.select_benches(quick=True)
        assert set(quick) < set(bench.BENCHES)
        assert "engine.parallel" not in quick
        assert "obs.overhead" not in quick

    def test_explicit_names_pass_through(self):
        assert bench.select_benches(FAST) == FAST

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="nope"):
            bench.select_benches(["nope"])


class TestRunRecord:
    def test_record_structure(self, fast_run):
        assert fast_run["schema"] == bench.TRAJECTORY_SCHEMA
        assert fast_run["python"]
        assert len(fast_run["records"]) == len(FAST)
        for record in fast_run["records"]:
            assert record["bench"] in FAST
            assert record["wall_seconds"] > 0
            assert record["records_per_second"] > 0
            assert "counters" in record and "anchors" in record
        json.dumps(fast_run)  # the whole document is JSON-safe

    def test_profile_disabled_by_default(self, fast_run):
        assert fast_run["profile"] is None

    def test_profiled_run_captures_phases(self):
        run = bench.run_benches(
            ["substrate.fingerprint"], scale=0.01, profile_mode="cprofile"
        )
        assert run["profile"]["mode"] == "cprofile"
        names = [p["name"] for p in run["profile"]["phases"]]
        assert "bench:substrate.fingerprint" in names


class TestTrajectory:
    def test_write_creates_dated_file(self, fast_run, tmp_path):
        path = bench.write_trajectory(fast_run, tmp_path)
        assert path.name == f"BENCH_{fast_run['timestamp'][:10].replace('-', '')}.json"
        document = json.loads(path.read_text())
        assert document["schema"] == bench.TRAJECTORY_SCHEMA
        assert len(document["runs"]) == 1

    def test_same_day_runs_append(self, fast_run, tmp_path):
        bench.write_trajectory(fast_run, tmp_path)
        path = bench.write_trajectory(fast_run, tmp_path)
        document = json.loads(path.read_text())
        assert len(document["runs"]) == 2


class TestBaselineGate:
    def test_self_baseline_passes(self, fast_run):
        baseline = bench.make_baseline(fast_run)
        assert bench.diff_baseline(fast_run, baseline) == []

    def test_synthetic_wall_regression_fails(self, fast_run):
        """The acceptance perturbation: shrink the baseline wall so the
        current run reads as a >2.5x slowdown."""
        baseline = bench.make_baseline(fast_run)
        baseline["records"][0]["wall_seconds"] /= 100.0
        failures = bench.diff_baseline(fast_run, baseline)
        assert len(failures) == 1
        assert "wall_seconds" in failures[0]

    def test_synthetic_throughput_regression_fails(self, fast_run):
        baseline = bench.make_baseline(fast_run)
        baseline["records"][0]["records_per_second"] *= 100.0
        failures = bench.diff_baseline(fast_run, baseline)
        assert any("records_per_second" in f for f in failures)

    def test_anchor_drift_fails_at_1e6(self, fast_run):
        """Anchors are deterministic scientific outputs: drift beyond
        relative 1e-6 is a regression even when perf is fine."""
        run = copy.deepcopy(fast_run)
        run["records"][0]["anchors"] = {"share": 90.0}
        baseline = bench.make_baseline(run)
        assert bench.diff_baseline(run, baseline) == []
        run["records"][0]["anchors"]["share"] = 90.0 + 1e-3
        failures = bench.diff_baseline(run, baseline)
        assert any("drifted" in f for f in failures)
        # Sub-tolerance float noise does not trip the gate.
        run["records"][0]["anchors"]["share"] = 90.0 + 1e-8
        assert bench.diff_baseline(run, baseline) == []

    def test_missing_anchor_fails(self, fast_run):
        run = copy.deepcopy(fast_run)
        run["records"][0]["anchors"] = {"share": 1.0}
        baseline = bench.make_baseline(run)
        run["records"][0]["anchors"] = {}
        failures = bench.diff_baseline(run, baseline)
        assert any("missing" in f for f in failures)

    def test_wall_jitter_within_tolerance_passes(self, fast_run):
        baseline = bench.make_baseline(fast_run)
        for record in baseline["records"]:
            record["wall_seconds"] *= 0.7  # current is ~1.4x: inside 2.5x
        assert bench.diff_baseline(fast_run, baseline) == []

    def test_skipped_benches_never_gate(self, fast_run):
        run = copy.deepcopy(fast_run)
        baseline = bench.make_baseline(run)
        run["records"][0] = {"bench": run["records"][0]["bench"],
                             "skipped": "platform"}
        assert bench.diff_baseline(run, baseline) == []

    def test_baseline_tolerance_override_wins(self, fast_run):
        baseline = bench.make_baseline(fast_run)
        baseline["records"][0]["wall_seconds"] /= 2.0  # 2x: inside default
        baseline["tolerances"]["wall_seconds"] = 0.5   # now only 1.5x allowed
        failures = bench.diff_baseline(fast_run, baseline)
        assert any("wall_seconds" in f for f in failures)

    def test_load_missing_baseline_is_none(self, tmp_path):
        assert bench.load_baseline(tmp_path / "absent.json") is None


class TestBenchCli:
    def test_cli_writes_trajectory_and_gates(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert main([
            "bench", *FAST, "--scale", "0.01",
            "--baseline", str(baseline_path), "--update-baseline",
        ]) == 0
        assert baseline_path.exists()
        assert list(tmp_path.glob("BENCH_*.json"))
        capsys.readouterr()

        # Second run gates against the pinned baseline and passes.
        assert main([
            "bench", *FAST, "--scale", "0.01",
            "--baseline", str(baseline_path),
        ]) == 0
        assert "gate: OK" in capsys.readouterr().out

    def test_cli_exits_1_on_regression(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert main([
            "bench", *FAST, "--scale", "0.01",
            "--baseline", str(baseline_path), "--update-baseline",
        ]) == 0
        # Perturb the committed baseline: pretend the past was 1000x
        # faster, so the present reads as a huge regression.
        document = json.loads(baseline_path.read_text())
        for record in document["records"]:
            record["wall_seconds"] /= 1000.0
        baseline_path.write_text(json.dumps(document))
        capsys.readouterr()
        assert main([
            "bench", *FAST, "--scale", "0.01",
            "--baseline", str(baseline_path),
        ]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_cli_unknown_bench_exits_2(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "not.a.bench"]) == 2
        assert "unknown bench" in capsys.readouterr().err

    def test_missing_baseline_skips_gate(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main([
            "bench", *FAST, "--scale", "0.01",
            "--baseline", str(tmp_path / "absent.json"),
        ]) == 0
        assert "gate skipped" in capsys.readouterr().err
