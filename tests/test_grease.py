"""Unit and property tests for GREASE handling."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tls.grease import (
    GREASE_VALUES,
    grease_values,
    inject_grease,
    is_grease,
    random_grease,
    strip_grease,
)


class TestValues:
    def test_sixteen_values(self):
        assert len(GREASE_VALUES) == 16
        assert len(set(GREASE_VALUES)) == 16

    def test_pattern(self):
        # RFC 8701: 0x0a0a, 0x1a1a, ..., 0xfafa.
        for value in GREASE_VALUES:
            high = value >> 8
            low = value & 0xFF
            assert high == low
            assert high & 0x0F == 0x0A

    def test_first_and_last(self):
        assert GREASE_VALUES[0] == 0x0A0A
        assert GREASE_VALUES[-1] == 0xFAFA

    def test_grease_values_accessor(self):
        assert grease_values() == GREASE_VALUES


class TestPredicates:
    @pytest.mark.parametrize("value", [0x0A0A, 0x1A1A, 0xFAFA])
    def test_is_grease_true(self, value):
        assert is_grease(value)

    @pytest.mark.parametrize("value", [0x0000, 0x1301, 0xC02F, 0x0A1A, 0xABAB])
    def test_is_grease_false(self, value):
        assert not is_grease(value)


class TestStripInject:
    def test_strip_removes_all_grease(self):
        values = (0x0A0A, 0xC02F, 0x2A2A, 0x002F)
        assert strip_grease(values) == (0xC02F, 0x002F)

    def test_strip_preserves_order(self):
        values = (0xC030, 0x0A0A, 0xC02F, 0x002F)
        assert strip_grease(values) == (0xC030, 0xC02F, 0x002F)

    def test_inject_prepends_one(self):
        rng = random.Random(1)
        out = inject_grease((0xC02F, 0x002F), rng)
        assert len(out) == 3
        assert is_grease(out[0])
        assert out[1:] == (0xC02F, 0x002F)

    def test_random_grease_is_grease(self):
        rng = random.Random(2)
        for _ in range(50):
            assert is_grease(random_grease(rng))


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF)))
    def test_strip_idempotent(self, values):
        once = strip_grease(values)
        assert strip_grease(once) == once

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF)), st.integers())
    def test_inject_then_strip_roundtrip(self, values, seed):
        clean = strip_grease(values)
        rng = random.Random(seed)
        assert strip_grease(inject_grease(clean, rng)) == clean

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF)))
    def test_strip_output_contains_no_grease(self, values):
        assert not any(is_grease(v) for v in strip_grease(values))
