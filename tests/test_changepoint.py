"""Change-point detector tests on synthetic and simulated series."""

import datetime as dt

import pytest

from repro.core.changepoint import (
    ChangePoint,
    correlate_with_events,
    detect_changepoint,
)
from repro.simulation.timeline import ATTACK_TIMELINE, Event


def months(start, values):
    cursor = dt.date.fromisoformat(start)
    out = []
    for value in values:
        out.append((cursor, float(value)))
        cursor = (cursor.replace(day=28) + dt.timedelta(days=4)).replace(day=1)
    return out


class TestDetector:
    def test_finds_kink_in_piecewise_line(self):
        # Flat for 6 months, then rising: the kink is the change point.
        series = months("2015-01-01", [10] * 6 + [10 + 5 * i for i in range(1, 7)])
        cp = detect_changepoint(series, smooth_window=1, rising=True)
        assert dt.date(2015, 5, 1) <= cp.month <= dt.date(2015, 8, 1)
        assert cp.direction == "acceleration"

    def test_finds_downward_kink(self):
        series = months("2015-01-01", [50] * 6 + [50 - 4 * i for i in range(1, 7)])
        cp = detect_changepoint(series, smooth_window=1, rising=False)
        assert dt.date(2015, 5, 1) <= cp.month <= dt.date(2015, 8, 1)
        assert cp.direction == "deceleration"

    def test_magnitude_mode(self):
        series = months("2015-01-01", [0, 0, 0, 0, 0, 30, 60, 60, 60, 60])
        cp = detect_changepoint(series, smooth_window=1)
        assert cp.month in (dt.date(2015, 5, 1), dt.date(2015, 6, 1), dt.date(2015, 7, 1))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            detect_changepoint(months("2015-01-01", [1, 2, 3]))

    def test_smoothing_tolerates_noise(self):
        values = [10 + (1 if i % 2 else -1) for i in range(8)]
        values += [10 + 6 * i + (1 if i % 2 else -1) for i in range(1, 9)]
        series = months("2014-01-01", values)
        cp = detect_changepoint(series, smooth_window=3, rising=True)
        assert dt.date(2014, 6, 1) <= cp.month <= dt.date(2014, 11, 1)


class TestCorrelation:
    def test_nearest_event_named(self):
        series = months("2013-01-01", [5] * 5 + [5 + 8 * i for i in range(1, 8)])
        correlation = correlate_with_events(
            series, ATTACK_TIMELINE, smooth_window=1, rising=True
        )
        # The kink lands mid-2013; the nearest event is Snowden (June 2013).
        assert correlation.event.name == "Snowden"
        assert correlation.within_months < 4

    def test_lag_sign(self):
        event = Event("E", dt.date(2015, 3, 1), "attack")
        series = months("2015-01-01", [0] * 5 + [10 * i for i in range(1, 6)])
        correlation = correlate_with_events(series, [event], smooth_window=1, rising=True)
        assert correlation.lag_days > 0  # change after the event


class TestOnSimulation:
    def test_fs_shift_correlates_with_snowden(self, client_population, server_population):
        """§6.3.1: the FS shift 'coincides with' the Snowden revelations."""
        import datetime as dtm

        from repro.core import figures
        from repro.notary import PassiveMonitor, TrafficGenerator

        monitor = PassiveMonitor()
        generator = TrafficGenerator(client_population, server_population, monitor)
        generator.run_expectation(dtm.date(2012, 6, 1), dtm.date(2014, 12, 1))
        series = figures.fig8_key_exchange(monitor.store)["ECDHE"]
        correlation = correlate_with_events(series, ATTACK_TIMELINE, rising=True)
        assert correlation.event.name in ("Snowden", "RC4")
        assert correlation.within_months < 13
