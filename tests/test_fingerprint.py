"""Fingerprint extraction tests (§4), including GREASE-stability properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fingerprint import Fingerprint, extract
from repro.tls.extensions import Extension
from repro.tls.grease import GREASE_VALUES
from repro.tls.messages import ClientHello
from repro.tls.versions import TLS12


def hello(suites=(0xC02F, 0x002F), exts=(0, 10, 11), groups=(29, 23), formats=(0,)):
    return ClientHello(
        legacy_version=TLS12.wire,
        random=b"\0" * 32,
        cipher_suites=tuple(suites),
        extensions=tuple(Extension(t) for t in exts),
        supported_groups=tuple(groups),
        ec_point_formats=tuple(formats),
    )


class TestExtraction:
    def test_four_fields(self):
        fp = extract(hello())
        assert fp.fields.cipher_suites == (0xC02F, 0x002F)
        assert fp.fields.extensions == (0, 10, 11)
        assert fp.fields.curves == (29, 23)
        assert fp.fields.ec_point_formats == (0,)

    def test_grease_stripped_from_all_fields(self):
        fp = extract(
            hello(
                suites=(0x0A0A, 0xC02F),
                exts=(0x1A1A, 0, 10),
                groups=(0x2A2A, 29),
            )
        )
        assert fp.fields.cipher_suites == (0xC02F,)
        assert fp.fields.extensions == (0, 10)
        assert fp.fields.curves == (29,)

    def test_order_matters(self):
        a = extract(hello(suites=(0xC02F, 0x002F)))
        b = extract(hello(suites=(0x002F, 0xC02F)))
        assert a.digest != b.digest

    def test_unknown_values_kept(self):
        # Unknown (non-GREASE) code points are part of the fingerprint.
        a = extract(hello(suites=(0xC02F, 0xEE00)))
        b = extract(hello(suites=(0xC02F,)))
        assert a.digest != b.digest

    def test_random_and_session_id_irrelevant(self):
        a = ClientHello(
            random=b"\x01" * 32, session_id=b"aa", cipher_suites=(0xC02F,)
        )
        b = ClientHello(
            random=b"\x02" * 32, session_id=b"bb", cipher_suites=(0xC02F,)
        )
        assert extract(a).digest == extract(b).digest


class TestDigest:
    def test_hex_md5(self):
        digest = extract(hello()).digest
        assert len(digest) == 32
        int(digest, 16)  # valid hex

    def test_stable(self):
        assert extract(hello()).digest == extract(hello()).digest

    def test_canonical_format(self):
        fp = Fingerprint.from_raw((1, 2), (3,), (4,), (0,))
        assert fp.canonical == "1-2,3,4,0"

    def test_empty_fields_distinct(self):
        a = Fingerprint.from_raw((), (1,), (), ())
        b = Fingerprint.from_raw((1,), (), (), ())
        assert a.digest != b.digest


class TestAdvertises:
    def test_advertises_rc4(self):
        fp = extract(hello(suites=(0x0005, 0x002F)))
        assert fp.advertises(lambda s: s.is_rc4)
        assert not fp.advertises(lambda s: s.is_aead)

    def test_scsv_not_counted(self):
        fp = extract(hello(suites=(0x5600,)))
        assert not fp.advertises(lambda s: True)


class TestGreaseStabilityProperty:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=0xFFFF).filter(
                lambda v: v not in set(GREASE_VALUES)
            ),
            max_size=30,
        ),
        st.integers(),
    )
    @settings(max_examples=100)
    def test_digest_invariant_under_grease_injection(self, suites, seed):
        rng = random.Random(seed)
        clean = extract(hello(suites=tuple(suites)))
        position = rng.randrange(len(suites) + 1)
        injected = list(suites)
        injected.insert(position, rng.choice(GREASE_VALUES))
        greased = extract(hello(suites=tuple(injected)))
        assert clean.digest == greased.digest

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=30))
    @settings(max_examples=100)
    def test_digest_deterministic(self, suites):
        a = extract(hello(suites=tuple(suites)))
        b = extract(hello(suites=tuple(suites)))
        assert a.digest == b.digest


class TestExtendedFingerprint:
    def test_version_distinguishes(self):
        from repro.core.fingerprint import ExtendedFingerprint

        a = hello()
        import dataclasses

        b = dataclasses.replace(a, legacy_version=0x0301)
        assert extract(a).digest == extract(b).digest  # restricted merges
        assert (
            ExtendedFingerprint.from_client_hello(a).digest
            != ExtendedFingerprint.from_client_hello(b).digest
        )

    def test_canonical_includes_version_and_compression(self):
        from repro.core.fingerprint import ExtendedFingerprint

        canonical = ExtendedFingerprint.from_client_hello(hello()).canonical
        assert canonical.startswith("771,")  # 0x0303
        assert canonical.endswith(",0")      # null compression

    def test_collision_rate_ordering(self):
        import dataclasses

        from repro.core.fingerprint import collision_rate

        base = hello()
        variant = dataclasses.replace(base, legacy_version=0x0302)
        other = hello(suites=(0x002F,))
        restricted, extended = collision_rate([base, variant, other])
        assert restricted == pytest.approx(2 / 3)
        assert extended == 0.0

    def test_collision_rate_empty(self):
        from repro.core.fingerprint import collision_rate

        assert collision_rate([]) == (0.0, 0.0)


class TestRealClientFingerprints:
    def test_chrome_grease_stable_fingerprint(self):
        from repro.clients import chrome

        release = chrome.family().release("65")
        digests = {
            extract(release.build_hello(rng=random.Random(i), include_tls13=True)).digest
            for i in range(6)
        }
        assert len(digests) == 1  # GREASE varies, fingerprint does not

    def test_distinct_browsers_distinct_fingerprints(self):
        from repro.clients import chrome, firefox

        c = chrome.family().release("49").build_hello(rng=random.Random(0))
        f = firefox.family().release("47").build_hello(rng=random.Random(0))
        assert extract(c).digest != extract(f).digest
