"""CLI smoke tests (argument parsing and fast commands).

Slow commands that run the full simulation (figure/table 2) are covered
by the examples and benches; here we exercise the cheap paths and the
parser itself.
"""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig1"])
        assert args.name == "fig1"
        assert not args.all_months

    def test_scan_probe_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "quic"])

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["--workers", "4", "--no-cache", "--rebuild", "--resume",
             "--faults", "worker_crash:0.1,seed:3", "stats"]
        )
        assert args.workers == 4
        assert args.no_cache
        assert args.rebuild
        assert args.resume
        assert args.faults == "worker_crash:0.1,seed:3"

    def test_engine_flags_default_off(self):
        args = build_parser().parse_args(["stats"])
        assert args.workers is None
        assert not args.no_cache
        assert not args.rebuild
        assert not args.resume
        assert args.faults is None


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "TLS 1.2" in out and "Aug. 2008" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "Chrome" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table", "6"]) == 0
        assert "SSL 3 fallback removed" in capsys.readouterr().out

    def test_table_out_of_range(self, capsys):
        assert main(["table", "9"]) == 2

    def test_timeline(self, capsys):
        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "Heartbleed" in out
        assert "POODLE" in out

    def test_timeline_with_browsers(self, capsys):
        assert main(["timeline", "--browsers"]) == 0
        assert "drops RC4" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_fingerprint_unknown_family(self, capsys):
        assert main(["fingerprint", "Netscape", "4"]) == 2

    def test_scan_ssl3(self, capsys):
        assert main(["scan", "ssl3", "--interval", "400"]) == 0
        out = capsys.readouterr().out
        assert "%" in out
        assert "2015-08-22" in out

    def test_pulse(self, capsys):
        assert main(["pulse", "--interval", "600"]) == 0
        assert "rc4 supported" in capsys.readouterr().out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "CALIBRATION SHEET" in out
        assert "ssl3_removal" in out


class TestStats:
    def test_stats_reports_dataset_and_counters(self, capsys, monkeypatch):
        """``stats`` prints the dataset summary and engine perf counters.

        The process-wide default model is swapped for a tiny two-month
        window so the command stays fast, and the dataset cache is off
        so the run is hermetic.
        """
        import datetime as dt

        from repro.simulation import ecosystem

        small = ecosystem.EcosystemModel(
            start=dt.date(2014, 6, 1),
            end=dt.date(2014, 7, 1),
            use_cache=False,
            workers=0,
        )
        monkeypatch.setattr(ecosystem, "_DEFAULT_MODEL", small)
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "months              : 2" in out
        assert "ENGINE PERF COUNTERS" in out
        assert "negotiations" in out
        assert "records/s" in out
        # Resilience counters are always reported, even when zero.
        assert "chunk retries" in out
        assert "chunk timeouts" in out
        assert "resumed months" in out
        assert "cache evictions" in out

    def test_commands_share_one_default_model(self, monkeypatch):
        """Chained commands must reuse the process-wide model instance."""
        from repro.simulation import ecosystem

        monkeypatch.setattr(ecosystem, "_DEFAULT_MODEL", None)
        first = ecosystem.default_model(workers=0, use_cache=False)
        assert ecosystem.default_model() is first
