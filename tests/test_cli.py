"""CLI smoke tests (argument parsing and fast commands).

Slow commands that run the full simulation (figure/table 2) are covered
by the examples and benches; here we exercise the cheap paths and the
parser itself.
"""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig1"])
        assert args.name == "fig1"
        assert not args.all_months

    def test_scan_probe_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "quic"])


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "TLS 1.2" in out and "Aug. 2008" in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        assert "Chrome" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table", "6"]) == 0
        assert "SSL 3 fallback removed" in capsys.readouterr().out

    def test_table_out_of_range(self, capsys):
        assert main(["table", "9"]) == 2

    def test_timeline(self, capsys):
        assert main(["timeline"]) == 0
        out = capsys.readouterr().out
        assert "Heartbleed" in out
        assert "POODLE" in out

    def test_timeline_with_browsers(self, capsys):
        assert main(["timeline", "--browsers"]) == 0
        assert "drops RC4" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_fingerprint_unknown_family(self, capsys):
        assert main(["fingerprint", "Netscape", "4"]) == 2

    def test_scan_ssl3(self, capsys):
        assert main(["scan", "ssl3", "--interval", "400"]) == 0
        out = capsys.readouterr().out
        assert "%" in out
        assert "2015-08-22" in out

    def test_pulse(self, capsys):
        assert main(["pulse", "--interval", "600"]) == 0
        assert "rc4 supported" in capsys.readouterr().out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "CALIBRATION SHEET" in out
        assert "ssl3_removal" in out
