"""Observability-layer tests: spans, JSONL metrics, diagnostic logging,
and the fleet-accounting fixes in :mod:`repro.engine.perf`.

The layer's contract is *zero behaviour drift*: tracing, metrics, and
logging may only observe, so every differential test here compares the
instrumented dataset to a bare serial run with ``==`` — and the JSONL
event stream must reconcile exactly with the merged perf counters.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import json
import logging
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro import obs
from repro.engine import cache as dataset_cache
from repro.engine import faults, perf, runner
from repro.engine.partition import validate_payload
from repro.engine.perf import PERF, PerfCounters
from repro.obs import diag, metrics

START = dt.date(2014, 6, 1)
END = dt.date(2014, 9, 1)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    """Fresh span collector, no leaked fault plan or metrics sink."""
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    obs.TRACE.reset()
    faults.clear()
    yield
    obs.TRACE.reset()
    faults.clear()


@pytest.fixture(scope="module")
def baseline(client_population, server_population):
    """A bare serial run: no metrics sink, the equivalence yardstick."""
    return runner.run_expectation(
        client_population, server_population, START, END, workers=0
    )


def read_events(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines() if line]


# ---- spans ------------------------------------------------------------------


class TestSpans:
    def test_nesting_depth_and_completion_order(self):
        with obs.span("outer", kind="parent"):
            with obs.span("inner"):
                pass
            with obs.span("sibling"):
                pass
        names = [s["name"] for s in obs.snapshot_spans()]
        assert names == ["inner", "sibling", "outer"]  # completion order
        spans = {s["name"]: s for s in obs.snapshot_spans()}
        assert spans["outer"]["depth"] == 0 and spans["outer"]["parent"] is None
        assert spans["inner"]["depth"] == 1 and spans["inner"]["parent"] == "outer"
        assert spans["sibling"]["parent"] == "outer"
        assert spans["outer"]["duration"] >= spans["inner"]["duration"]

    def test_attrs_are_json_safe_scalars(self):
        with obs.span("work", month=dt.date(2015, 1, 1), n=3, flag=True):
            pass
        attrs = obs.snapshot_spans()[0]["attrs"]
        assert attrs == {"month": "2015-01-01", "n": 3, "flag": True}
        json.dumps(attrs)  # must not raise

    def test_span_records_even_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        assert [s["name"] for s in obs.snapshot_spans()] == ["doomed"]

    def test_all_spans_share_the_trace_id(self):
        tid = obs.new_trace()
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        assert {s["trace_id"] for s in obs.snapshot_spans()} == {tid}

    def test_reset_spans_keeps_trace_identity(self):
        tid = obs.new_trace()
        with obs.span("a"):
            pass
        obs.reset_spans()
        assert obs.snapshot_spans() == []
        assert obs.trace_id() == tid

    def test_begin_run_mints_a_fresh_trace_per_run(self):
        first = obs.begin_run("expectation")
        second = obs.begin_run("expectation")
        assert first != second

    def test_cap_degrades_to_drop_counter(self, monkeypatch):
        from repro.obs import trace

        monkeypatch.setattr(trace, "MAX_SPANS", 2)
        for _ in range(4):
            with obs.span("x"):
                pass
        assert len(obs.TRACE.spans) == 2
        assert obs.TRACE.dropped == 2

    def test_deterministic_ids_and_parent_ids(self):
        """Identity is structural, not name-based: ids count up in open
        order within the process, parent_id references the enclosing
        span's id, and every record carries the owning pid — the triple
        the trace analyzer needs to rebuild sibling spans with repeated
        names unambiguously."""
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("sibling"):
                pass
        spans = {s["name"]: s for s in obs.snapshot_spans()}
        assert spans["outer"]["id"] == 0
        assert spans["inner"]["id"] == 1
        assert spans["sibling"]["id"] == 2
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["parent_id"] == spans["outer"]["id"]
        assert spans["sibling"]["parent_id"] == spans["outer"]["id"]
        assert {s["pid"] for s in spans.values()} == {os.getpid()}
        # The name-based fields survive for backward compatibility.
        assert spans["inner"]["parent"] == "outer"
        assert spans["inner"]["depth"] == 1

    def test_reset_spans_keeps_ids_unique_across_chunks(self):
        """reset_spans drops records but not the id counter, so spans
        from successive chunks in one worker process never collide."""
        with obs.span("a"):
            pass
        first = obs.snapshot_spans()[0]["id"]
        obs.reset_spans()
        with obs.span("b"):
            pass
        assert obs.snapshot_spans()[0]["id"] > first

    def test_full_reset_restarts_the_id_counter(self):
        with obs.span("a"):
            pass
        obs.TRACE.reset()
        with obs.span("b"):
            pass
        assert obs.snapshot_spans()[0]["id"] == 0


# ---- perf-counter accounting (the bugfix sweep) -----------------------------


class TestMergeWorker:
    def test_every_field_is_classified(self):
        """Regression gate: a new PerfCounters field must be exactly one
        of a summable int counter (merged from workers by default), a
        PARENT_ONLY_FIELDS member, or a HISTOGRAM_FIELDS member (merged
        bucket-by-bucket) — anything else is a new silent accounting
        hole."""
        fresh = PerfCounters()
        for field in dataclasses.fields(PerfCounters):
            if field.name in perf.PARENT_ONLY_FIELDS:
                continue
            if field.name in perf.HISTOGRAM_FIELDS:
                assert getattr(fresh, field.name) == {}, (
                    f"PerfCounters.{field.name} is histogram-classified "
                    "but does not start as an empty name->Histogram dict"
                )
                continue
            value = getattr(fresh, field.name)
            assert isinstance(value, int) and not isinstance(value, bool), (
                f"PerfCounters.{field.name} is neither a summable int counter "
                f"nor listed in perf.PARENT_ONLY_FIELDS / "
                f"perf.HISTOGRAM_FIELDS — classify it"
            )
        assert perf.PARENT_ONLY_FIELDS <= set(PerfCounters.__dataclass_fields__)
        assert perf.HISTOGRAM_FIELDS <= set(PerfCounters.__dataclass_fields__)
        assert not perf.PARENT_ONLY_FIELDS & perf.HISTOGRAM_FIELDS

    def test_merge_folds_every_summable_field(self):
        worker = PerfCounters()
        expected = {}
        for i, field in enumerate(dataclasses.fields(PerfCounters)):
            if field.name in perf.PARENT_ONLY_FIELDS:
                continue
            if field.name in perf.HISTOGRAM_FIELDS:
                continue
            setattr(worker, field.name, i + 1)
            expected[field.name] = i + 1
        parent = PerfCounters()
        parent.merge_worker(worker.snapshot(), wall=0.25)
        for name, value in expected.items():
            assert getattr(parent, name) == value, name
        assert parent.worker_wall_times == [0.25]

    def test_previously_dropped_counters_now_merge(self):
        """The old six-name list dropped these outright."""
        worker = PerfCounters(
            cache_write_failures=2,
            cache_corrupt_deleted=3,
            dataset_cache_hits=4,
            dataset_cache_misses=5,
        )
        parent = PerfCounters()
        parent.merge_worker(worker.snapshot(), wall=0.1)
        assert parent.cache_write_failures == 2
        assert parent.cache_corrupt_deleted == 3
        assert parent.dataset_cache_hits == 4
        assert parent.dataset_cache_misses == 5

    def test_parent_only_fields_never_fold(self):
        worker = PerfCounters(run_seconds=99.0, load_seconds=42.0, workers=7)
        parent = PerfCounters()
        parent.merge_worker(worker.snapshot(), wall=0.1)
        assert parent.run_seconds == 0.0
        assert parent.load_seconds == 0.0
        assert parent.workers == 0

    def test_merge_tolerates_old_snapshots_missing_fields(self):
        parent = PerfCounters(records=5)
        parent.merge_worker({"records": 2}, wall=0.1)
        assert parent.records == 7
        assert parent.negotiations == 0


class TestRecordsPerSecond:
    def test_simulated_run_uses_run_seconds(self):
        counters = PerfCounters(records=100, run_seconds=4.0, load_seconds=1.0)
        assert counters.records_per_second() == pytest.approx(25.0)

    def test_warm_cache_run_reports_load_throughput(self):
        """Regression: a warm load (run_seconds == 0, nothing observed)
        used to hide throughput entirely."""
        counters = PerfCounters(
            records_loaded=100, run_seconds=0.0, load_seconds=0.5
        )
        assert counters.records_per_second() == pytest.approx(200.0)

    def test_observed_records_win_over_loaded(self):
        counters = PerfCounters(
            records=100, records_loaded=999, run_seconds=0.0, load_seconds=0.5
        )
        assert counters.records_per_second() == pytest.approx(200.0)

    def test_no_records_or_no_wall_is_none(self):
        assert PerfCounters().records_per_second() is None
        assert PerfCounters(records=10).records_per_second() is None
        assert PerfCounters(run_seconds=1.0).records_per_second() is None


# ---- JSONL metrics sink -----------------------------------------------------


class TestMetricsSink:
    def test_disabled_without_env(self, tmp_path):
        metrics.emit("nothing", detail=1)
        assert not metrics.enabled()
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_event_envelope(self, tmp_path, monkeypatch):
        sink = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        tid = obs.new_trace()
        metrics.emit("unit_test", month=dt.date(2015, 1, 1), n=2)
        (event,) = read_events(sink)
        assert event["event"] == "unit_test"
        assert event["trace_id"] == tid
        assert isinstance(event["ts"], float)
        assert event["pid"] == os.getpid()
        assert event["month"] == "2015-01-01" and event["n"] == 2

    def test_rotation_moves_existing_file_aside(self, tmp_path, monkeypatch):
        sink = tmp_path / "metrics.jsonl"
        sink.write_text('{"event": "old"}\n')
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        monkeypatch.setattr(metrics, "_ROTATED", False)
        rotated = metrics.rotate_existing()
        assert rotated == tmp_path / "metrics.jsonl.1"
        assert rotated.read_text() == '{"event": "old"}\n'
        assert not sink.exists()
        metrics.emit("fresh")
        assert [e["event"] for e in read_events(sink)] == ["fresh"]

    def test_rotation_picks_next_free_suffix(self, tmp_path, monkeypatch):
        sink = tmp_path / "metrics.jsonl"
        sink.write_text("current\n")
        (tmp_path / "metrics.jsonl.1").write_text("oldest\n")
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        monkeypatch.setattr(metrics, "_ROTATED", False)
        rotated = metrics.rotate_existing()
        assert rotated == tmp_path / "metrics.jsonl.2"
        assert (tmp_path / "metrics.jsonl.1").read_text() == "oldest\n"

    def test_rotation_is_once_per_process(self, tmp_path, monkeypatch):
        sink = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        monkeypatch.setattr(metrics, "_ROTATED", False)
        metrics.emit("first")
        metrics.rotate_existing()
        # Second call (a chained in-process command) must not rotate the
        # file the first command just started.
        metrics.emit("second")
        assert metrics.rotate_existing() is None
        assert [e["event"] for e in read_events(sink)] == ["second"]
        assert (tmp_path / "metrics.jsonl.1").exists()

    def test_emit_failure_is_swallowed_and_logged(
        self, tmp_path, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_METRICS_PATH", str(tmp_path))  # a directory
        with caplog.at_level(logging.WARNING, logger="repro.obs.metrics"):
            metrics.emit("doomed")
        assert any("not written" in r.message for r in caplog.records)


# ---- span persistence (the analyzer's input contract) -----------------------


class TestSpanPersistence:
    def test_end_run_ships_the_trace_spans(self, tmp_path, monkeypatch):
        sink = tmp_path / "m.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        obs.begin_run("unit")
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.end_run("unit")
        events = read_events(sink)
        assert events[-1]["event"] == "run_complete"
        by_name = {e["name"]: e for e in events if e["event"] == "span"}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["id"]
        assert by_name["inner"]["span_pid"] == os.getpid()
        assert by_name["inner"]["duration"] >= 0
        assert by_name["inner"]["start"] >= by_name["outer"]["start"]

    def test_prior_runs_spans_are_not_reemitted(self, tmp_path, monkeypatch):
        sink = tmp_path / "m.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        obs.begin_run("first")
        with obs.span("first_work"):
            pass
        obs.end_run("first")
        obs.begin_run("second")
        with obs.span("second_work"):
            pass
        obs.end_run("second")
        events = read_events(sink)
        names = [e["name"] for e in events if e["event"] == "span"]
        assert names.count("first_work") == 1
        assert names.count("second_work") == 1

    def test_span_drop_overflow_is_reported(self, tmp_path, monkeypatch):
        from repro.obs import trace

        sink = tmp_path / "m.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        monkeypatch.setattr(trace, "MAX_SPANS", 1)
        obs.begin_run("unit")
        for _ in range(3):
            with obs.span("x"):
                pass
        obs.end_run("unit")
        (dropped,) = [
            e for e in read_events(sink) if e["event"] == "spans_dropped"
        ]
        assert dropped["count"] == 2


# ---- diagnostic logging -----------------------------------------------------


class TestDiagnostics:
    def test_get_logger_prefixes_the_hierarchy(self):
        assert diag.get_logger("engine.runner").name == "repro.engine.runner"
        assert diag.get_logger("repro.engine.cache").name == "repro.engine.cache"

    def test_level_precedence(self, monkeypatch):
        assert diag.resolve_level() == logging.WARNING
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        assert diag.resolve_level() == logging.DEBUG
        assert diag.resolve_level("ERROR") == logging.ERROR
        assert diag.resolve_level(15) == 15
        monkeypatch.setenv("REPRO_LOG_LEVEL", "not-a-level")
        assert diag.resolve_level() == logging.WARNING

    def test_configure_is_idempotent(self):
        logger = diag.configure_logging("INFO")
        before = [h for h in logger.handlers if getattr(h, "_repro_diag", False)]
        diag.configure_logging("DEBUG")
        after = [h for h in logger.handlers if getattr(h, "_repro_diag", False)]
        assert len(before) == len(after) == 1
        assert logger.level == logging.DEBUG


# ---- swallow sites are now attributable -------------------------------------


class TestSwallowSites:
    def test_validate_payload_logs_and_counts(self, caplog):
        PERF.reset()
        with caplog.at_level(logging.WARNING, logger="repro.engine.partition"):
            assert validate_payload("not a payload", [START]) is False
        assert PERF.validation_errors == 1
        assert any("rejected" in r.message for r in caplog.records)

    def test_corrupt_blob_read_logs_and_counts(self, tmp_path, caplog):
        path = dataset_cache.store_path("0" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage that fails the footer")
        PERF.reset()
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            assert dataset_cache.load_store("0" * 64) is None
        assert PERF.cache_read_errors == 1
        assert PERF.cache_corrupt_deleted == 1
        assert any("rejected" in r.message for r in caplog.records)

    def test_worker_failures_log_and_count(
        self, client_population, server_population, baseline, caplog
    ):
        PERF.reset()
        with caplog.at_level(logging.WARNING, logger="repro.engine.runner"):
            store = runner.run_expectation(
                client_population, server_population, START, END,
                workers=2, faults_spec="worker_crash:0.7,seed:1",
            )
        assert PERF.worker_errors > 0
        assert PERF.worker_errors <= PERF.chunk_retries
        assert any("failed in worker" in r.message for r in caplog.records)
        assert store.records() == baseline.records()


# ---- stats --json -----------------------------------------------------------


class TestStatsJson:
    @pytest.fixture
    def small_model(self, monkeypatch):
        from repro.simulation import ecosystem

        small = ecosystem.EcosystemModel(
            start=dt.date(2014, 6, 1),
            end=dt.date(2014, 7, 1),
            use_cache=False,
            workers=0,
        )
        monkeypatch.setattr(ecosystem, "_DEFAULT_MODEL", small)
        PERF.reset()
        return small

    def test_schema_and_counter_completeness(self, capsys, small_model):
        from repro.cli import STATS_SCHEMA, main

        assert main(["stats", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == STATS_SCHEMA
        assert set(document) == {
            "schema", "dataset", "counters", "derived", "trace", "profile",
            "histograms", "window",
        }
        assert document["profile"] is None  # no --profile flag given
        assert set(document["dataset"]) == {
            "start", "end", "months", "records", "wall_seconds",
        }
        # Every perf counter — including the ones merge_worker used to
        # drop — is present, keyed exactly like the dataclass.
        assert set(document["counters"]) == set(PerfCounters.__dataclass_fields__)
        assert document["dataset"]["months"] == 2
        assert document["dataset"]["records"] == document["counters"]["records"] > 0
        assert document["derived"]["records_per_second"] > 0
        assert document["trace"]["trace_id"]
        span_names = {s["name"] for s in document["trace"]["spans"]}
        assert "run_expectation" in span_names
        assert "passive_store" in span_names

    def test_text_stats_unchanged(self, capsys, small_model):
        from repro.cli import main

        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "ENGINE PERF COUNTERS" in out
        assert "records/s" in out


# ---- the acceptance scenario ------------------------------------------------


class TestFaultedRunReconciles:
    def test_events_reconcile_and_dataset_is_byte_identical(
        self, client_population, server_population, baseline, tmp_path, monkeypatch
    ):
        """A parallel faulted run with the sink enabled must (a) leave a
        JSONL trail whose retry/timeout/fallback events match the merged
        counters exactly, and (b) produce a store byte-identical to the
        bare serial baseline — tracing observes, never perturbs."""
        sink = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        PERF.reset()
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=4, chunk_months=1, faults_spec="worker_crash:0.2,seed:11",
        )

        events = read_events(sink)
        counts = Counter(e["event"] for e in events)
        assert counts["run_start"] == 1
        assert counts["run_complete"] == 1
        assert counts["chunk_retry"] == PERF.chunk_retries
        assert counts["chunk_timeout"] == PERF.chunk_timeouts
        assert counts["inline_fallback"] == PERF.inline_fallbacks
        assert counts["chunk_failed"] == PERF.worker_errors
        # Fault events are emitted *before* the injected crash kills the
        # worker, so the trail can only ever exceed the merged counter.
        assert counts["fault"] >= PERF.faults_injected
        assert counts["fault"] > 0  # the schedule did fire

        (complete,) = [e for e in events if e["event"] == "run_complete"]
        assert complete["records"] == len(store)
        assert complete["chunk_retries"] == PERF.chunk_retries
        assert complete["worker_errors"] == PERF.worker_errors

        # One trace ID across parent and worker events alike.
        assert len({e["trace_id"] for e in events}) == 1

        # Every merged chunk left an attribution row (the worker join
        # table) and a matching chunk_done event in the trail.
        assert counts["chunk_done"] == len(PERF.chunk_attribution)
        for row in PERF.chunk_attribution:
            assert set(row) >= {"chunk", "attempt", "months", "pid", "worker"}

        # The parent persisted the span tree: every span event belongs
        # to this run's trace, and the run root span is among them.
        span_events = [e for e in events if e["event"] == "span"]
        assert any(e["name"] == "run_expectation" for e in span_events)
        assert all("id" in e and "span_pid" in e for e in span_events)

        # Zero drift: byte-identical to the untraced serial baseline.
        assert store.months() == baseline.months()
        assert store.records() == baseline.records()

    def test_worker_spans_round_trip_through_the_pool(
        self, client_population, server_population
    ):
        obs.TRACE.reset()
        runner.run_expectation(
            client_population, server_population, START, END, workers=2
        )
        spans = obs.snapshot_spans()
        worker_spans = [s for s in spans if s.get("origin") == "worker"]
        assert worker_spans, "no spans shipped back from the fork pool"
        simulated = {
            s["attrs"]["month"]
            for s in worker_spans
            if s["name"] == "simulate_month"
        }
        assert simulated == {"2014-06-01", "2014-07-01", "2014-08-01", "2014-09-01"}
        # Workers adopted the parent's trace: one ID across the fleet.
        assert len({s["trace_id"] for s in spans}) == 1
        parents = {s["name"]: s.get("parent") for s in worker_spans}
        assert parents["simulate_month"] == "run_chunk"


# ---- lint gate --------------------------------------------------------------


class TestSwallowLint:
    SCRIPT = REPO_ROOT / "scripts" / "lint_swallowed_exceptions.py"

    def run_lint(self, *paths: Path):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *map(str, paths)],
            capture_output=True, text=True,
        )

    def test_repo_source_is_clean(self):
        result = self.run_lint(REPO_ROOT / "src" / "repro")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_silent_swallow_is_flagged(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    work()\nexcept Exception:\n    pass\n"
        )
        result = self.run_lint(bad)
        assert result.returncode == 1
        assert "bad.py:3" in result.stdout

    def test_logged_handler_passes(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            "try:\n    work()\nexcept Exception as exc:\n"
            "    log.warning('failed: %s', exc)\n"
        )
        assert self.run_lint(good).returncode == 0

    def test_allow_marker_suppresses(self, tmp_path):
        marked = tmp_path / "marked.py"
        marked.write_text(
            "try:\n    work()\n"
            "except Exception:  # lint: allow-swallow\n    pass\n"
        )
        assert self.run_lint(marked).returncode == 0

    def test_bare_except_is_flagged(self, tmp_path):
        bad = tmp_path / "bare.py"
        bad.write_text("try:\n    work()\nexcept:\n    x = 1\n")
        result = self.run_lint(bad)
        assert result.returncode == 1
        assert "bare except" in result.stdout
