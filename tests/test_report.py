"""Study-report rendering tests."""

import datetime as dt

import pytest

from repro.core.report import build_report
from repro.simulation.ecosystem import EcosystemModel


@pytest.fixture(scope="module")
def small_report():
    model = EcosystemModel(start=dt.date(2017, 10, 1), end=dt.date(2018, 4, 1))
    return build_report(model)


class TestReport:
    def test_contains_all_sections(self, small_report):
        for heading in (
            "Protocol versions",
            "Cipher classes",
            "Forward secrecy",
            "Weak options",
            "Attack timeline",
            "Fingerprinting",
        ):
            assert heading in small_report

    def test_mentions_key_attacks(self, small_report):
        for name in ("BEAST", "Heartbleed", "POODLE", "Sweet32"):
            assert name in small_report

    def test_contains_measured_percentages(self, small_report):
        assert small_report.count("%") > 10

    def test_plain_text(self, small_report):
        assert "<" not in small_report
        assert small_report.endswith("\n")

    def test_deterministic(self):
        model = EcosystemModel(start=dt.date(2018, 1, 1), end=dt.date(2018, 4, 1))
        first = build_report(model)
        second = build_report(model)
        assert first == second
