"""Extension and named-curve registry tests."""

import pytest

from repro.tls.curves import (
    CURVE_REGISTRY,
    SECP256R1,
    X25519,
    UnknownCurve,
    curve_by_code,
    curve_by_name,
)
from repro.tls.extensions import (
    EXTENSION_REGISTRY,
    Extension,
    ExtensionType,
    decode_supported_versions,
    encode_supported_versions,
)


class TestExtensionRegistry:
    def test_has_at_least_28_standardized(self):
        # §2.1: "As of March 2018, 28 TLS extensions have been standardized."
        iana = [t for t in EXTENSION_REGISTRY if t < 0xFF00 and t < 13000]
        assert len(iana) >= 28

    def test_heartbeat_note_mentions_heartbleed(self):
        info = EXTENSION_REGISTRY[ExtensionType.HEARTBEAT]
        assert "Heartbleed" in info.note

    def test_supported_versions_is_tls13(self):
        assert EXTENSION_REGISTRY[ExtensionType.SUPPORTED_VERSIONS].tls13_relevant

    def test_renegotiation_info_code_point(self):
        assert int(ExtensionType.RENEGOTIATION_INFO) == 65281

    def test_extension_name(self):
        assert Extension(0).name == "server_name"
        assert Extension(64222).name == "unknown_64222"

    def test_supported_versions_codec_roundtrip(self):
        body = encode_supported_versions([0x0304, 0x0303])
        assert decode_supported_versions(body) == [0x0304, 0x0303]

    def test_supported_versions_empty_rejected(self):
        with pytest.raises(ValueError):
            decode_supported_versions(b"")

    def test_supported_versions_odd_length_rejected(self):
        with pytest.raises(ValueError):
            decode_supported_versions(b"\x03\x03\x04\x03")

    def test_supported_versions_truncated_rejected(self):
        body = encode_supported_versions([0x0304])
        with pytest.raises(ValueError):
            decode_supported_versions(body[:-1])


class TestCurveRegistry:
    def test_the_paper_top5_are_registered(self):
        # §6.3.3's top five curves.
        for name in ("secp256r1", "secp384r1", "x25519", "sect571r1", "secp521r1"):
            assert curve_by_name(name).name == name

    def test_curve25519_alias(self):
        assert curve_by_name("curve25519") is X25519

    def test_prime256v1_alias(self):
        assert curve_by_name("prime256v1") is SECP256R1

    def test_code_points(self):
        assert curve_by_code(23).name == "secp256r1"
        assert curve_by_code(29).name == "x25519"

    def test_x25519_not_nist(self):
        assert not X25519.nist_backed
        assert SECP256R1.nist_backed

    def test_unknown_code_raises(self):
        with pytest.raises(UnknownCurve):
            curve_by_code(4242)

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownCurve):
            curve_by_name("secp999r9")

    def test_ffdhe_groups_present(self):
        assert curve_by_code(256).kind == "ffdhe"

    def test_registry_codes_match(self):
        for code, curve in CURVE_REGISTRY.items():
            assert curve.code == code
