"""Tests for ServerProfile's derived-variant helpers and intolerance."""

import pytest

from repro.clients import suites as cs
from repro.servers import archetypes as arch
from repro.servers.config import ServerProfile
from repro.tls.messages import AlertDescription, ClientHello
from repro.tls.handshake import HandshakeFailure
from repro.tls.versions import SSL3, TLS10, TLS12


def hello(suites, version=TLS12.wire):
    return ClientHello(
        legacy_version=version,
        random=b"\0" * 32,
        cipher_suites=tuple(suites),
        supported_groups=(23,),
    )


class TestWithoutSuites:
    def test_removes_matching(self):
        profile = arch.TLS12_RSA_CBC.without_suites(lambda s: s.is_rc4, "rc4")
        assert not any(
            code in (cs.RSA_RC4_128_SHA, cs.RSA_RC4_128_MD5)
            for code in profile.suite_preference
        )
        assert cs.RSA_AES128_SHA in profile.suite_preference

    def test_name_tagged(self):
        profile = arch.TLS12_RSA_CBC.without_suites(lambda s: s.is_rc4, "rc4")
        assert profile.name.endswith("-norc4")

    def test_behavioural_effect(self):
        base = arch.TLS12_RSA_CBC
        stripped = base.without_suites(lambda s: s.is_rc4, "rc4")
        rc4_only = hello([cs.RSA_RC4_128_SHA])
        assert base.respond(rc4_only).ok
        assert not stripped.respond(rc4_only).ok

    def test_unregistered_code_raises(self):
        profile = ServerProfile(
            name="bogus",
            supported_versions=frozenset({TLS12.wire}),
            suite_preference=(0xEEEE,),
        )
        with pytest.raises(KeyError):
            profile.without_suites(lambda s: s.is_rc4, "rc4")


class TestVersionIntolerance:
    def _intolerant(self):
        return ServerProfile(
            name="intolerant",
            supported_versions=frozenset({SSL3.wire, TLS10.wire}),
            suite_preference=(cs.RSA_AES128_SHA,),
            intolerant_above=TLS10.wire,
        )

    def test_aborts_above_threshold(self):
        result = self._intolerant().respond(hello([cs.RSA_AES128_SHA], TLS12.wire))
        assert not result.ok
        assert result.alert.description is AlertDescription.PROTOCOL_VERSION
        assert "intolerant" in result.reason

    def test_accepts_at_threshold(self):
        result = self._intolerant().respond(hello([cs.RSA_AES128_SHA], TLS10.wire))
        assert result.ok
        assert result.version_wire == TLS10.wire

    def test_strict_mode_raises(self):
        with pytest.raises(HandshakeFailure):
            self._intolerant().respond(hello([cs.RSA_AES128_SHA], TLS12.wire), strict=True)

    def test_tolerant_by_default(self):
        assert arch.LEGACY_SSL3_RC4.intolerant_above is None


class TestRc4RemovalWave:
    def test_population_contains_norc4_variants_post_2015(self):
        import datetime as dt

        from repro.servers import ServerPopulation

        pop = ServerPopulation()
        names_2014 = {p.name for p, _ in pop.mix(dt.date(2014, 6, 1), "hosts")}
        names_2017 = {p.name for p, _ in pop.mix(dt.date(2017, 6, 1), "hosts")}
        assert not any("-norc4" in n for n in names_2014)
        assert any("-norc4" in n for n in names_2017)

    def test_rc4_preferring_archetypes_never_stripped(self):
        import datetime as dt

        from repro.servers import ServerPopulation

        pop = ServerPopulation()
        names = {p.name for p, _ in pop.mix(dt.date(2017, 6, 1), "hosts")}
        assert not any(n.startswith("tls12-rc4-pref-norc4") for n in names)
        assert not any(n.startswith("rc4-only-norc4") for n in names)
