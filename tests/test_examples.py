"""Smoke tests: the fast examples must run cleanly end-to-end.

The two simulation-heavy examples (fingerprint_survey, internet_scan,
vulnerability_timeline) are exercised by the benches that compute the
same quantities; here we run the quick ones as real subprocesses so a
packaging or import regression cannot hide.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestFastExamples:
    def test_downgrade_attack(self):
        out = _run("downgrade_attack.py")
        assert "POODLE-exploitable" in out
        assert "refused_scsv" in out
        assert "EXPOSED" in out and "safe" in out

    def test_notary_pipeline(self):
        out = _run("notary_pipeline.py")
        assert "records captured" in out
        assert "#fields" in out
        assert "AEAD negotiated" in out

    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Labelled as: Chrome" in out
        assert "RC4 negotiated during 2015" in out
