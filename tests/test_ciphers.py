"""Unit tests for the cipher-suite registry and its classification."""

import pytest

from repro.tls.ciphers import (
    REGISTRY,
    Authentication,
    CipherMode,
    CipherSuite,
    Encryption,
    KexFamily,
    KeyExchange,
    MAC,
    SuiteNameError,
    UnknownCipherSuite,
    classify_codes,
    parse_suite_name,
    suite_by_code,
    suite_by_name,
    suites_by_predicate,
)


class TestRegistryIntegrity:
    def test_size_is_substantial(self):
        # IANA has ~200 non-reserved suites in the study window; ours
        # covers the deployed subset plus signalling values.
        assert len(REGISTRY) >= 200

    def test_codes_unique_and_match_keys(self):
        for code, suite in REGISTRY.items():
            assert suite.code == code

    def test_names_unique(self):
        names = [s.name for s in REGISTRY.values()]
        assert len(names) == len(set(names))

    def test_every_suite_parses_from_its_own_name(self):
        for suite in REGISTRY.values():
            reparsed = parse_suite_name(suite.code, suite.name)
            assert reparsed == suite


class TestLookups:
    def test_by_code(self):
        assert suite_by_code(0x002F).name == "TLS_RSA_WITH_AES_128_CBC_SHA"

    def test_by_name(self):
        assert suite_by_name("TLS_RSA_WITH_AES_128_CBC_SHA").code == 0x002F

    def test_unknown_code_raises(self):
        with pytest.raises(UnknownCipherSuite):
            suite_by_code(0xEEEE)

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownCipherSuite):
            suite_by_name("TLS_NO_SUCH_SUITE")

    def test_suites_by_predicate_sorted(self):
        rc4 = suites_by_predicate(lambda s: s.is_rc4)
        assert rc4 == sorted(rc4, key=lambda s: s.code)
        assert all(s.is_rc4 for s in rc4)
        assert len(rc4) >= 15


class TestClassification:
    @pytest.mark.parametrize(
        "name,mode_class",
        [
            ("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", "AEAD"),
            ("TLS_RSA_WITH_AES_128_CCM", "AEAD"),
            ("TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", "AEAD"),
            ("TLS_RSA_WITH_AES_128_CBC_SHA", "CBC"),
            ("TLS_RSA_WITH_3DES_EDE_CBC_SHA", "CBC"),
            ("TLS_RSA_WITH_RC4_128_MD5", "RC4"),
            ("TLS_RSA_WITH_NULL_SHA", "NULL"),
            ("TLS_AES_128_GCM_SHA256", "AEAD"),
        ],
    )
    def test_mode_class(self, name, mode_class):
        assert suite_by_name(name).mode_class == mode_class

    @pytest.mark.parametrize(
        "name",
        [
            "TLS_RSA_EXPORT_WITH_RC4_40_MD5",
            "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA",
            "TLS_DH_anon_EXPORT_WITH_RC4_40_MD5",
            "TLS_KRB5_EXPORT_WITH_RC4_40_SHA",
        ],
    )
    def test_export_flag(self, name):
        assert suite_by_name(name).is_export

    def test_non_export(self):
        assert not suite_by_name("TLS_RSA_WITH_RC4_128_MD5").is_export

    @pytest.mark.parametrize(
        "name,anonymous",
        [
            ("TLS_DH_anon_WITH_AES_128_CBC_SHA", True),
            ("TLS_ECDH_anon_WITH_AES_128_CBC_SHA", True),
            ("TLS_RSA_WITH_AES_128_CBC_SHA", False),
            ("TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", False),
        ],
    )
    def test_anonymous(self, name, anonymous):
        assert suite_by_name(name).is_anonymous is anonymous

    def test_null_null_is_special(self):
        suite = suite_by_code(0x0000)
        assert suite.is_null_null
        assert suite.is_null_encryption
        assert suite.is_anonymous

    def test_null_encryption_but_authenticated(self):
        suite = suite_by_name("TLS_RSA_WITH_NULL_SHA")
        assert suite.is_null_encryption
        assert not suite.is_anonymous
        assert not suite.is_null_null

    @pytest.mark.parametrize(
        "name,fs",
        [
            ("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", True),
            ("TLS_DHE_RSA_WITH_AES_128_CBC_SHA", True),
            ("TLS_AES_128_GCM_SHA256", True),  # TLS 1.3 is always FS
            ("TLS_RSA_WITH_AES_128_GCM_SHA256", False),
            ("TLS_ECDH_RSA_WITH_AES_128_CBC_SHA", False),
            ("TLS_DH_RSA_WITH_AES_128_CBC_SHA", False),
        ],
    )
    def test_forward_secret(self, name, fs):
        assert suite_by_name(name).forward_secret is fs

    @pytest.mark.parametrize(
        "name,family",
        [
            ("TLS_RSA_WITH_AES_128_CBC_SHA", KexFamily.RSA),
            ("TLS_DHE_RSA_WITH_AES_128_CBC_SHA", KexFamily.DHE),
            ("TLS_DH_RSA_WITH_AES_128_CBC_SHA", KexFamily.DH),
            ("TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", KexFamily.ECDHE),
            ("TLS_ECDH_ECDSA_WITH_AES_128_CBC_SHA", KexFamily.ECDH),
            ("TLS_DH_anon_WITH_AES_128_CBC_SHA", KexFamily.ANON),
            ("TLS_PSK_WITH_AES_128_CBC_SHA", KexFamily.OTHER),
            ("TLS_AES_128_GCM_SHA256", KexFamily.ECDHE),
        ],
    )
    def test_kex_family(self, name, family):
        assert suite_by_name(name).kex_family is family

    @pytest.mark.parametrize(
        "name,small",
        [
            ("TLS_RSA_WITH_3DES_EDE_CBC_SHA", True),
            ("TLS_RSA_WITH_DES_CBC_SHA", True),
            ("TLS_RSA_WITH_IDEA_CBC_SHA", True),
            ("TLS_RSA_WITH_AES_128_CBC_SHA", False),
            ("TLS_RSA_WITH_RC4_128_SHA", False),  # stream: Sweet32 n/a
        ],
    )
    def test_sweet32_small_block(self, name, small):
        assert suite_by_name(name).uses_small_block is small

    @pytest.mark.parametrize(
        "name,algo",
        [
            ("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256", "AES128-GCM"),
            ("TLS_RSA_WITH_AES_256_GCM_SHA384", "AES256-GCM"),
            ("TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", "ChaCha20-Poly1305"),
            ("TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_OLD", "ChaCha20-Poly1305"),
            ("TLS_RSA_WITH_AES_128_CCM", "AES128-CCM"),
            ("TLS_RSA_WITH_AES_128_CCM_8", "AES128-CCM"),
            ("TLS_RSA_WITH_AES_128_CBC_SHA", None),
        ],
    )
    def test_aead_algorithm(self, name, algo):
        assert suite_by_name(name).aead_algorithm == algo

    def test_des_vs_3des_distinct(self):
        des = suite_by_name("TLS_RSA_WITH_DES_CBC_SHA")
        tdes = suite_by_name("TLS_RSA_WITH_3DES_EDE_CBC_SHA")
        assert des.is_des and not des.is_3des
        assert tdes.is_3des and not tdes.is_des

    def test_export_des40_counts_as_des(self):
        assert suite_by_name("TLS_RSA_EXPORT_WITH_DES40_CBC_SHA").is_des


class TestScsv:
    @pytest.mark.parametrize("code", [0x00FF, 0x5600])
    def test_scsv_flag(self, code):
        suite = suite_by_code(code)
        assert suite.scsv
        assert suite.mode_class == "OTHER"
        assert not suite.is_anonymous
        assert not suite.is_null_encryption


class TestTls13Suites:
    @pytest.mark.parametrize("code", [0x1301, 0x1302, 0x1303, 0x1304, 0x1305])
    def test_tls13_only(self, code):
        suite = suite_by_code(code)
        assert suite.tls13_only
        assert suite.is_aead
        assert suite.kex is KeyExchange.TLS13

    def test_exactly_five(self):
        # §6.4: TLS 1.3 reduces the suite count "to just 5".
        tls13 = suites_by_predicate(lambda s: s.tls13_only)
        assert len(tls13) == 5


class TestGost:
    def test_gost_suite(self):
        suite = suite_by_code(0x0081)
        assert suite.kex is KeyExchange.GOST
        assert suite.encryption is Encryption.GOST_28147
        assert suite.mode is CipherMode.CNT
        assert suite.mac is MAC.IMIT


class TestParserErrors:
    def test_not_tls_prefix(self):
        with pytest.raises(SuiteNameError):
            parse_suite_name(0x9999, "SSL_RSA_WITH_RC4_128_MD5")

    def test_unknown_kex(self):
        with pytest.raises(SuiteNameError):
            parse_suite_name(0x9999, "TLS_FOO_WITH_AES_128_CBC_SHA")

    def test_unknown_cipher(self):
        with pytest.raises(SuiteNameError):
            parse_suite_name(0x9999, "TLS_RSA_WITH_BLOWFISH_CBC_SHA")

    def test_unknown_mac(self):
        with pytest.raises(SuiteNameError):
            parse_suite_name(0x9999, "TLS_RSA_WITH_AES_128_CBC_CRC32")

    def test_unparseable_tls13_body(self):
        with pytest.raises(SuiteNameError):
            parse_suite_name(0x9999, "TLS_NOT_A_REAL_BODY")


class TestClassifyCodes:
    def test_counts(self):
        counts = classify_codes([0x002F, 0x0035, 0x0005, 0xC02F, 0xEEEE])
        assert counts == {"CBC": 2, "RC4": 1, "AEAD": 1, "UNKNOWN": 1}

    def test_empty(self):
        assert classify_codes([]) == {}


class TestEncryptionMetadata:
    @pytest.mark.parametrize(
        "enc,key_bits,block_bits",
        [
            (Encryption.RC4_128, 128, 0),
            (Encryption.TRIPLE_DES, 112, 64),
            (Encryption.DES, 56, 64),
            (Encryption.AES_256, 256, 128),
            (Encryption.CHACHA20, 256, 0),
        ],
    )
    def test_bits(self, enc, key_bits, block_bits):
        assert enc.key_bits == key_bits
        assert enc.block_bits == block_bits
