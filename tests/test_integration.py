"""Cross-module integration tests: the paper's anchors on simulated data.

These use the shared session fixtures (small windows), so the full
2012-2018 run stays in the benchmarks; the assertions here check the
same *shape* statements at the window scale.
"""

import datetime as dt

import pytest

from repro.core import figures
from repro.tls.ciphers import KexFamily


class TestPassiveWindow2014_2015:
    def test_rc4_negotiated_declines_through_window(self, small_window_store):
        series = figures.fig2_negotiated_modes(small_window_store)["RC4"]
        start = series[0][1]
        end = series[-1][1]
        assert start > 20  # RC4 still a major share mid-2014
        assert end < start  # declining after the RC4 attacks

    def test_aead_rises_through_window(self, small_window_store):
        series = figures.fig2_negotiated_modes(small_window_store)["AEAD"]
        assert series[-1][1] > series[0][1]

    def test_fs_crossover_near_2015(self, small_window_store):
        series = figures.fig8_key_exchange(small_window_store)
        rsa_end = figures.value_at(series["RSA"], dt.date(2015, 6, 1))
        ecdhe_end = figures.value_at(series["ECDHE"], dt.date(2015, 6, 1))
        # Post-Snowden shift: by mid-2015 ECDHE has overtaken RSA.
        assert ecdhe_end > rsa_end

    def test_null_negotiated_tiny_and_grid(self, small_window_store):
        month = dt.date(2015, 1, 1)
        null_frac = small_window_store.fraction(
            month,
            lambda r: r.suite is not None and r.suite.is_null_encryption,
            within=lambda r: r.established,
        )
        assert 0.001 < null_frac < 0.06
        for record in small_window_store.records(month):
            if (
                record.established
                and record.suite is not None
                and record.suite.is_null_encryption
                and not record.suite.is_null_null
            ):
                assert record.client_family == "GridFTP"

    def test_anon_negotiated_is_nagios(self, small_window_store):
        month = dt.date(2015, 1, 1)
        for record in small_window_store.records(month):
            if (
                record.established
                and record.suite is not None
                and record.suite.is_anonymous
                and not record.suite.is_null_null
            ):
                assert record.client_family == "Nagios NRPE"

    def test_export_negotiations_are_nagios_or_interwise(self, small_window_store):
        for record in small_window_store.records():
            if (
                record.established
                and record.suite is not None
                and record.suite.is_export
            ):
                assert record.client_family in ("Nagios NRPE", "Interwise")

    def test_heartbeat_usage_present(self, small_window_store):
        month = dt.date(2015, 1, 1)
        value = small_window_store.fraction(
            month, lambda r: r.heartbeat_negotiated, within=lambda r: r.established
        )
        assert value > 0.005  # OpenSSL-client x heartbeat-server traffic


class TestTls13Window2018:
    def test_advertisement_ramps_up(self, late_window_store):
        months = late_window_store.months()
        series = [
            late_window_store.fraction(m, lambda r: r.offered_tls13) for m in months
        ]
        # §6.4: 0.5% (Feb) -> 9.8% (Mar) -> 23.6% (Apr): steep ramp.
        assert series[-1] > series[0] * 3
        assert series[-1] > 0.08

    def test_negotiated_much_lower_than_advertised(self, late_window_store):
        month = dt.date(2018, 4, 1)
        advertised = late_window_store.fraction(month, lambda r: r.offered_tls13)
        negotiated = late_window_store.fraction(
            month,
            lambda r: r.negotiated_version == "TLSv13",
            within=lambda r: r.established,
        )
        assert negotiated < advertised / 3
        assert negotiated > 0.001

    def test_google_variant_dominates_advertised_versions(self, late_window_store):
        # §6.4: 0x7e02 in 82.3% of connections with the extension.
        month = dt.date(2018, 3, 1)
        with_ext = [
            r
            for r in late_window_store.records(month)
            if r.offered_tls13
        ]
        assert with_ext
        google = sum(
            r.weight for r in with_ext if 0x7E02 in r.offered_tls13_versions
        )
        total = sum(r.weight for r in with_ext)
        assert google / total > 0.5

    def test_rc4_negotiated_near_zero_2018(self, late_window_store):
        month = dt.date(2018, 3, 1)
        value = late_window_store.fraction(
            month,
            lambda r: r.negotiated_mode_class == "RC4",
            within=lambda r: r.established,
        )
        assert value < 0.01

    def test_x25519_share_2018(self, late_window_store):
        month = dt.date(2018, 2, 1)
        value = late_window_store.fraction(
            month,
            lambda r: r.negotiated_curve == 29,
            within=lambda r: r.established and r.negotiated_curve is not None,
        )
        # §6.3.3: x25519 at 22.2% of connections in Feb 2018.
        assert 0.10 < value < 0.40

    def test_chacha_negotiated_2018(self, late_window_store):
        month = dt.date(2018, 3, 1)
        value = late_window_store.fraction(
            month,
            lambda r: r.negotiated_aead_algorithm == "ChaCha20-Poly1305",
            within=lambda r: r.established,
        )
        # §6.3.2: 1.7% in March 2018 (we land in the same few-percent band).
        assert 0.005 < value < 0.08


class TestEarlyWindow2012:
    def test_tls10_dominates(self, early_window_store):
        month = dt.date(2012, 3, 1)
        value = early_window_store.fraction(
            month,
            lambda r: r.negotiated_version == "TLSv10",
            within=lambda r: r.established,
        )
        assert value > 0.85  # §1: "In 2012, 90% of connections used TLS 1.0"

    def test_no_fingerprints_before_2014(self, early_window_store):
        assert all(r.fingerprint is None for r in early_window_store.records())

    def test_export_advertised_high(self, early_window_store):
        month = dt.date(2012, 3, 1)
        value = early_window_store.fraction(month, lambda r: r.advertises("export"))
        assert value > 0.2  # 28.19% in 2012

    def test_rsa_key_transport_dominates(self, early_window_store):
        month = dt.date(2012, 3, 1)
        value = early_window_store.fraction(
            month,
            lambda r: r.negotiated_kex == KexFamily.RSA,
            within=lambda r: r.established,
        )
        assert value > 0.6


class TestActivePassiveConsistency:
    def test_server_populations_share_archetypes(self):
        """The scanner and the Notary see the same server substrate."""
        from repro.scanner.zmap import AddressSpaceScanner
        from repro.servers import ServerPopulation

        pop = ServerPopulation()
        scan_names = {
            p.name for p, _ in AddressSpaceScanner(pop).expectation_mix(dt.date(2016, 1, 1))
        }
        notary_names = {p.name for p, _ in pop.mix(dt.date(2016, 1, 1), "traffic")}
        assert scan_names & notary_names

    def test_fingerprint_db_labels_simulated_traffic(
        self, fingerprint_db, small_window_store
    ):
        hits = 0
        misses = 0
        for record in small_window_store.records(dt.date(2015, 1, 1)):
            if record.fingerprint is None:
                continue
            if fingerprint_db.match(record.fingerprint) is not None:
                hits += record.weight
            else:
                misses += record.weight
        assert hits > misses  # most traffic is labelled (Table 2: 69%)

    def test_ground_truth_agreement(self, fingerprint_db, small_window_store):
        """Labels must agree with the generating client when present."""
        for record in small_window_store.records(dt.date(2015, 1, 1)):
            if record.fingerprint is None or not record.client_in_database:
                continue
            label = fingerprint_db.match(record.fingerprint)
            if label is None:
                continue
            # Either the exact family, or the library it links against
            # (the §4 collision rule folds software into its library).
            assert label.software == record.client_family or label.describes_library()
