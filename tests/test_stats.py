"""§4.1 fingerprint-lifetime statistics tests."""

import datetime as dt

import pytest

from repro.core.fingerprint import Fingerprint
from repro.core.stats import (
    FingerprintLifetime,
    _quantile,
    duration_summary,
    fingerprint_lifetimes,
    top_fingerprint_concentration,
)
from repro.notary.events import ConnectionRecord
from repro.notary.store import NotaryStore


def record(day, fingerprint, weight=1.0):
    return ConnectionRecord(
        month=day.replace(day=1),
        weight=weight,
        client_family="x",
        client_version="1",
        client_category="",
        client_in_database=False,
        fingerprint=fingerprint.fields,
        advertised=frozenset(),
        positions={},
        suite_count=1,
        offered_tls13=False,
        offered_tls13_versions=(),
        established=True,
        negotiated_version="TLSv12",
        negotiated_wire=0x0303,
        negotiated_suite=0x002F,
        negotiated_curve=None,
        heartbeat_negotiated=False,
        server_chose_unoffered=False,
        day=day,
    )


FP1 = Fingerprint.from_raw((1, 2), (0,), (), ())
FP2 = Fingerprint.from_raw((3, 4), (0,), (), ())
FP3 = Fingerprint.from_raw((5,), (0,), (), ())


def build_store():
    store = NotaryStore()
    # FP1: long-lived, many connections.
    store.add(record(dt.date(2014, 2, 1), FP1, weight=10))
    store.add(record(dt.date(2017, 8, 1), FP1, weight=10))
    # FP2: one day only.
    store.add(record(dt.date(2015, 5, 5), FP2))
    # FP3: two sightings a week apart.
    store.add(record(dt.date(2016, 1, 1), FP3))
    store.add(record(dt.date(2016, 1, 8), FP3))
    return store


class TestLifetimes:
    def test_windows(self):
        windows = fingerprint_lifetimes(build_store())
        assert len(windows) == 3
        fp1 = windows[FP1.digest]
        assert fp1.first_seen == dt.date(2014, 2, 1)
        assert fp1.last_seen == dt.date(2017, 8, 1)
        assert fp1.connections == 20

    def test_inclusive_duration(self):
        lifetime = FingerprintLifetime(dt.date(2015, 1, 1), dt.date(2015, 1, 1), 1)
        assert lifetime.duration_days == 1
        week = FingerprintLifetime(dt.date(2015, 1, 1), dt.date(2015, 1, 8), 1)
        assert week.duration_days == 8

    def test_records_without_day_ignored(self):
        store = build_store()
        no_day = record(dt.date(2015, 1, 1), FP1)
        object.__setattr__(no_day, "day", None)
        store.add(no_day)
        assert len(fingerprint_lifetimes(store)) == 3


class TestDurationSummary:
    def test_counts(self):
        summary = duration_summary(build_store())
        assert summary.fingerprints == 3
        assert summary.single_day == 1
        assert summary.single_day_connections == 1
        assert summary.max_days == (dt.date(2017, 8, 1) - dt.date(2014, 2, 1)).days + 1

    def test_long_lived_share(self):
        summary = duration_summary(build_store(), long_lived_days=1000)
        assert summary.long_lived == 1
        assert summary.long_lived_connections_share == pytest.approx(20 / 23)

    def test_median(self):
        summary = duration_summary(build_store())
        assert summary.median_days == 8.0  # durations 1, 8, 1277

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            duration_summary(NotaryStore())


class TestQuantile:
    def test_median_odd(self):
        assert _quantile([1.0, 2.0, 9.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert _quantile([1.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        values = [1.0, 2.0, 3.0]
        assert _quantile(values, 0.0) == 1.0
        assert _quantile(values, 1.0) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _quantile([], 0.5)


class TestConcentration:
    def test_top1(self):
        store = build_store()
        assert top_fingerprint_concentration(store, top=1) == pytest.approx(20 / 23)

    def test_top_all(self):
        store = build_store()
        assert top_fingerprint_concentration(store, top=10) == pytest.approx(1.0)

    def test_empty(self):
        assert top_fingerprint_concentration(NotaryStore()) == 0.0


class TestUnlabeledShare:
    def test_share_relative_to_unlabeled_traffic(self):
        from repro.core.database import FingerprintDatabase, FingerprintLabel
        from repro.core.stats import most_common_unlabeled_share

        store = build_store()
        db = FingerprintDatabase()
        db.add(FP1, FingerprintLabel("Soft", "1", "Browsers"))
        # Unlabeled traffic: FP2 (1 conn) + FP3 (2 conns) -> top share 2/3.
        assert most_common_unlabeled_share(store, db) == pytest.approx(2 / 3)

    def test_everything_labeled(self):
        from repro.core.database import FingerprintDatabase, FingerprintLabel
        from repro.core.stats import most_common_unlabeled_share

        store = build_store()
        db = FingerprintDatabase()
        for i, fp in enumerate((FP1, FP2, FP3)):
            db.add(fp, FingerprintLabel(f"S{i}", "1", "Browsers"))
        assert most_common_unlabeled_share(store, db) == 0.0


class TestLongLivedSoftware:
    def test_identifies_labeled_long_lived(self):
        from repro.core.database import FingerprintDatabase, FingerprintLabel
        from repro.core.stats import long_lived_software

        store = build_store()
        db = FingerprintDatabase()
        db.add(FP1, FingerprintLabel("LongSoft", "1", "Libraries", library="L"))
        ranked = long_lived_software(store, db, min_days=1000)
        assert ranked == [("LongSoft", pytest.approx(1.0))]

    def test_empty_when_no_long_lived(self):
        from repro.core.database import FingerprintDatabase
        from repro.core.stats import long_lived_software

        store = build_store()
        assert long_lived_software(store, FingerprintDatabase(), min_days=5000) == []

    def test_unlabeled_long_lived_not_listed(self):
        from repro.core.database import FingerprintDatabase
        from repro.core.stats import long_lived_software

        store = build_store()
        ranked = long_lived_software(store, FingerprintDatabase(), min_days=1000)
        assert ranked == []  # long-lived traffic exists but is unlabeled


class TestOnSimulatedData:
    def test_montecarlo_has_single_day_population(self, montecarlo_store):
        summary = duration_summary(montecarlo_store, long_lived_days=200)
        # §4.1's extreme bias toward briefly-seen fingerprints: the
        # shuffling client guarantees single-day fingerprints exist, and
        # they carry almost no traffic.
        assert summary.single_day > 0
        assert summary.single_day_connections < summary.total_connections * 0.05

    def test_top10_concentration_significant(self, montecarlo_store):
        # §4.0.1: the 10 most common fingerprints explain 25.9% of traffic.
        value = top_fingerprint_concentration(montecarlo_store, 10)
        assert 0.15 < value < 0.75
