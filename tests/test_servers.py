"""Server substrate tests: archetypes, curves, population dynamics."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients import suites as cs
from repro.servers import archetypes as arch
from repro.servers.config import ServerProfile
from repro.servers.curves import AdoptionCurve, PatchCurve
from repro.servers.population import ServerPopulation
from repro.tls.extensions import Extension, ExtensionType
from repro.tls.messages import ClientHello
from repro.tls.versions import SSL3, TLS12


def hello(suites, groups=(23,), extensions=()):
    return ClientHello(
        legacy_version=TLS12.wire,
        random=b"\0" * 32,
        cipher_suites=tuple(suites),
        supported_groups=tuple(groups),
        extensions=tuple(extensions),
    )


class TestArchetypes:
    def test_grid_server_chooses_null(self):
        # §6.1: GRID endpoints choose NULL even when AES is offered.
        result = arch.GRID_SERVER.respond(
            hello([cs.RSA_AES128_SHA, cs.RSA_NULL_SHA])
        )
        assert result.suite.is_null_encryption

    def test_nagios_server_chooses_anon(self):
        result = arch.NAGIOS_SERVER.respond(
            hello([cs.ADH_AES256_SHA, cs.RSA_AES128_SHA])
        )
        assert result.suite.is_anonymous

    def test_nagios_accepts_null_null(self):
        result = arch.NAGIOS_SERVER.respond(hello([cs.NULL_NULL]))
        assert result.established
        assert result.suite.is_null_null

    def test_interwise_chooses_unoffered_export(self):
        # §5.5: client offered RC4_128_SHA, server chose EXP_RC4_40_MD5.
        result = arch.INTERWISE_SERVER.respond(hello([cs.RSA_RC4_128_SHA]))
        assert result.suite.code == cs.EXP_RSA_RC4_40_MD5
        assert result.client_aborts  # standard client would abort

    def test_gost_server(self):
        result = arch.GOST_SERVER.respond(hello([cs.RSA_AES128_SHA]))
        assert result.suite.code == cs.GOST_R341001
        assert not result.established

    def test_rc4_pref_server_chooses_rc4_over_gcm(self):
        # §5.3: e.g. bankmellat.ir picks RC4 despite stronger offers.
        result = arch.TLS12_RC4_PREF.respond(
            hello([cs.ECDHE_RSA_AES128_GCM, cs.RSA_RC4_128_SHA])
        )
        assert result.suite.is_rc4

    def test_rc4_pref_server_falls_back_when_rc4_absent(self):
        # §5.3: removing RC4 from the offer yields a modern AEAD suite.
        result = arch.TLS12_RC4_PREF.respond(hello([cs.ECDHE_RSA_AES128_GCM]))
        assert result.suite.is_aead

    def test_3des_pref_server(self):
        result = arch.TLS10_3DES_PREF.respond(
            hello([cs.RSA_AES128_SHA, cs.RSA_3DES_SHA])
        )
        assert result.suite.is_3des

    def test_modern_server_prefers_aead(self):
        result = arch.TLS12_ECDHE_GCM.respond(
            hello([cs.RSA_AES128_SHA, cs.ECDHE_RSA_AES128_GCM])
        )
        assert result.suite.is_aead
        assert result.forward_secret

    def test_x25519_server_honors_client_order(self):
        result = arch.TLS12_ECDHE_GCM_X25519.respond(
            hello([cs.CHACHA_ECDHE_RSA, cs.ECDHE_RSA_AES128_GCM], groups=(29, 23))
        )
        assert result.suite.aead_algorithm == "ChaCha20-Poly1305"
        assert result.curve == 29

    def test_tls13_server_negotiates_google_variant(self):
        probe = ClientHello(
            legacy_version=TLS12.wire,
            random=b"\0" * 32,
            cipher_suites=(0x1301, cs.ECDHE_RSA_AES128_GCM),
            supported_groups=(29, 23),
            supported_versions=(0x7E02, TLS12.wire),
        )
        result = arch.TLS13_DRAFTS.respond(probe)
        assert result.version_wire == 0x7E02
        assert result.suite.tls13_only


class TestServerProfile:
    def test_requires_versions(self):
        with pytest.raises(ValueError):
            ServerProfile(name="empty", supported_versions=frozenset(), suite_preference=())

    def test_with_heartbeat(self):
        profile = arch.TLS12_ECDHE_GCM.with_heartbeat(vulnerable=True)
        assert profile.heartbeat
        assert profile.heartbleed_vulnerable
        assert int(ExtensionType.HEARTBEAT) in profile.effective_echo_extensions

    def test_without_version(self):
        profile = arch.TLS10_CBC.without_version(SSL3.wire)
        assert not profile.supports_version(SSL3.wire)
        assert profile.supports_version(0x0301)

    def test_heartbeat_echo(self):
        profile = arch.TLS12_ECDHE_GCM.with_heartbeat()
        result = profile.respond(
            hello(
                [cs.ECDHE_RSA_AES128_GCM],
                extensions=(Extension(int(ExtensionType.HEARTBEAT), b"\x01"),),
            )
        )
        assert result.heartbeat_negotiated


class TestAdoptionCurve:
    def test_midpoint_is_half(self):
        c = AdoptionCurve(midpoint=dt.date(2015, 1, 1), scale_days=100)
        assert c.value(dt.date(2015, 1, 1)) == pytest.approx(0.5)

    def test_floor_and_ceiling(self):
        c = AdoptionCurve(
            midpoint=dt.date(2015, 1, 1), scale_days=50, floor=0.1, ceiling=0.6
        )
        assert c.value(dt.date(2005, 1, 1)) == pytest.approx(0.1, abs=1e-6)
        assert c.value(dt.date(2025, 1, 1)) == pytest.approx(0.6, abs=1e-6)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            AdoptionCurve(midpoint=dt.date(2015, 1, 1), scale_days=50, floor=0.9, ceiling=0.5)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            AdoptionCurve(midpoint=dt.date(2015, 1, 1), scale_days=0)

    @given(st.integers(min_value=-2000, max_value=2000), st.integers(min_value=-2000, max_value=2000))
    @settings(max_examples=60)
    def test_monotone(self, a, b):
        c = AdoptionCurve(midpoint=dt.date(2015, 1, 1), scale_days=120)
        base = dt.date(2015, 1, 1)
        lo, hi = sorted((a, b))
        assert c.value(base + dt.timedelta(days=lo)) <= c.value(base + dt.timedelta(days=hi)) + 1e-12


class TestPatchCurve:
    def test_nothing_before_disclosure(self):
        c = PatchCurve(disclosed=dt.date(2014, 4, 7), half_life_days=10)
        assert c.patched(dt.date(2014, 4, 1)) == 0.0
        assert c.unpatched(dt.date(2014, 4, 1)) == 1.0

    def test_half_life(self):
        c = PatchCurve(disclosed=dt.date(2014, 4, 7), half_life_days=10)
        assert c.patched(dt.date(2014, 4, 17)) == pytest.approx(0.5)

    def test_never_patched_floor(self):
        c = PatchCurve(disclosed=dt.date(2014, 4, 7), half_life_days=5, never_patched=0.3)
        assert c.patched(dt.date(2030, 1, 1)) == pytest.approx(0.7, abs=1e-4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PatchCurve(disclosed=dt.date(2014, 4, 7), half_life_days=0)
        with pytest.raises(ValueError):
            PatchCurve(disclosed=dt.date(2014, 4, 7), half_life_days=10, never_patched=1.0)

    @given(st.integers(min_value=0, max_value=3000), st.integers(min_value=0, max_value=3000))
    @settings(max_examples=60)
    def test_monotone(self, a, b):
        c = PatchCurve(disclosed=dt.date(2014, 4, 7), half_life_days=30, never_patched=0.1)
        base = dt.date(2014, 4, 7)
        lo, hi = sorted((a, b))
        assert c.patched(base + dt.timedelta(days=lo)) <= c.patched(base + dt.timedelta(days=hi)) + 1e-12


class TestServerPopulation:
    @pytest.fixture(scope="class")
    def pop(self):
        return ServerPopulation()

    @pytest.mark.parametrize("weighting", ["traffic", "hosts"])
    @pytest.mark.parametrize("day", ["2012-06-01", "2015-09-01", "2018-04-01"])
    def test_mix_normalized(self, pop, weighting, day):
        mix = pop.mix(dt.date.fromisoformat(day), weighting)
        assert sum(w for _, w in mix) == pytest.approx(1.0)

    def test_unknown_weighting_rejected(self, pop):
        with pytest.raises(ValueError):
            pop.base_mix(dt.date(2015, 1, 1), "bogus")

    def test_dedicated_endpoints(self, pop):
        assert pop.dedicated("grid").name == "grid-server"
        assert pop.dedicated("nagios").name == "nagios-server"
        with pytest.raises(KeyError):
            pop.dedicated("unknown")

    def test_ssl3_support_anchors(self, pop):
        # §5.1: >45% in Sep 2015, <25% in May 2018 (host-weighted).
        sep15 = pop.support_fraction(
            dt.date(2015, 9, 1), lambda p: p.supports_version(SSL3.wire)
        )
        may18 = pop.support_fraction(
            dt.date(2018, 5, 1), lambda p: p.supports_version(SSL3.wire)
        )
        assert 0.38 < sep15 < 0.55
        assert may18 < 0.25
        assert may18 > 0.08  # embarrassingly high, not gone

    def test_heartbleed_drops_after_disclosure(self, pop):
        before = pop.support_fraction(
            dt.date(2014, 4, 1), lambda p: p.heartbleed_vulnerable
        )
        month_later = pop.support_fraction(
            dt.date(2014, 5, 10), lambda p: p.heartbleed_vulnerable
        )
        in_2018 = pop.support_fraction(
            dt.date(2018, 5, 1), lambda p: p.heartbleed_vulnerable
        )
        assert before > 0.15          # ~23.7% at disclosure
        assert month_later < 0.03     # <2% within a month
        assert 0.001 < in_2018 < 0.01  # 0.32% long tail

    def test_heartbeat_support_2018(self, pop):
        value = pop.support_fraction(dt.date(2018, 5, 1), lambda p: p.heartbeat)
        assert 0.28 < value < 0.42  # 34% in May 2018

    def test_rc4_preferring_traffic_declines(self, pop):
        def rc4_share(day):
            return sum(
                w
                for p, w in pop.mix(day, "traffic")
                if p.name.startswith(("legacy-ssl3-rc4", "tls12-rc4-pref"))
            )

        assert rc4_share(dt.date(2013, 8, 1)) > 0.5
        assert rc4_share(dt.date(2018, 4, 1)) < 0.02
