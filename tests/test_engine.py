"""Run-engine tests: parallel sharding, columnar packing, dataset cache.

The engine's whole contract is *exact* equivalence: a parallel run, a
packed round-trip, an indexed aggregate, and a warm cache load must all
be byte-identical to the plain serial path — so every comparison below
is ``==``, never ``approx``.
"""

from __future__ import annotations

import datetime as dt
import os
import random
import subprocess
import sys

import pytest

from repro.core import figures
from repro.engine import cache as dataset_cache
from repro.engine import executors, faults, runner
from repro.engine.partition import (
    PackedDataset,
    pack_records,
    split_by_month,
    unpack_records,
    validate_payload,
)
from repro.engine.perf import PERF
from repro.notary import PassiveMonitor, TrafficGenerator
from repro.notary.query import NegotiatedVersion
from repro.notary.store import NotaryStore

START = dt.date(2014, 6, 1)
END = dt.date(2014, 9, 1)

ALL_FIGURES = (
    figures.fig1_negotiated_versions,
    figures.fig2_negotiated_modes,
    figures.fig3_advertised_modes,
    figures.fig4_fingerprint_support,
    figures.fig5_cipher_positions,
    figures.fig6_rc4_advertised,
    figures.fig7_weak_advertised,
    figures.fig8_key_exchange,
    figures.fig9_negotiated_aead,
    figures.fig10_advertised_aead,
)


@pytest.fixture(scope="module")
def serial_store(client_population, server_population):
    return runner.run_expectation(
        client_population, server_population, START, END, workers=0
    )


@pytest.fixture(scope="module")
def parallel_store(client_population, server_population):
    return runner.run_expectation(
        client_population, server_population, START, END, workers=2
    )


class TestParallelEquivalence:
    def test_same_months_and_size(self, serial_store, parallel_store):
        assert serial_store.months() == parallel_store.months()
        assert len(serial_store) == len(parallel_store)

    def test_records_identical_per_month(self, serial_store, parallel_store):
        for month in serial_store.months():
            assert serial_store.records(month) == parallel_store.records(month)

    @pytest.mark.parametrize("figure", ALL_FIGURES, ids=lambda f: f.__name__)
    def test_every_figure_identical(self, serial_store, parallel_store, figure):
        assert figure(serial_store) == figure(parallel_store)

    def test_resolve_workers_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert runner.resolve_workers(None) == 3
        assert runner.resolve_workers(5) == 5
        assert runner.resolve_workers(0) == 0
        monkeypatch.delenv("REPRO_WORKERS")
        assert runner.resolve_workers(None) == (os.cpu_count() or 1)

    def test_resolve_workers_ignores_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        assert runner.resolve_workers(None) == (os.cpu_count() or 1)

    def test_resolve_workers_rejects_negatives_as_malformed(self, monkeypatch):
        # A negative count is a typo, not a request for serial mode:
        # it must fall back to the CPU count like any malformed value.
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        assert runner.resolve_workers(None) == (os.cpu_count() or 1)
        monkeypatch.delenv("REPRO_WORKERS")
        assert runner.resolve_workers(-2) == (os.cpu_count() or 1)


class TestDifferentialResilience:
    """Property-style: random worker counts, chunk sizes, fault
    schedules, and execution backends must never perturb a single
    figure aggregate.

    The backend axis is the PR 10 executor contract in action: fork,
    inline, and spawn all run the same scheduler policy, so each must
    produce byte-identical stores and figures under the same seeded
    schedule.  (Inline runs the fault-suppressed in-parent path, so a
    fault-heavy schedule simply injects nothing there — the identity
    assertion is the point, not the recovery counters.)
    """

    @pytest.mark.parametrize("backend", list(executors.BACKENDS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seeded_schedules_match_serial(
        self, serial_store, client_population, server_population,
        seed, backend, tmp_path, monkeypatch,
    ):
        if backend == "fork" and not executors.fork_available():
            pytest.skip("fork start method unavailable")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        rng = random.Random(seed)
        workers = rng.randint(0, 8)
        chunk_months = rng.randint(1, 3)
        spec = ",".join(
            f"{kind}:{rng.uniform(0.1, 0.6):.2f}"
            for kind in rng.sample(
                ["worker_crash", "month_crash", "pack_corrupt", "chunk_hang"],
                k=rng.randint(1, 3),
            )
        ) + f",hang_seconds:0.3,seed:{rng.randint(0, 999)}"
        try:
            store = runner.run_expectation(
                client_population, server_population, START, END,
                workers=workers, chunk_months=chunk_months, faults_spec=spec,
                backend=backend,
            )
        finally:
            faults.clear()
        assert store.months() == serial_store.months()
        assert store.records() == serial_store.records()
        for figure in ALL_FIGURES:
            assert figure(store) == figure(serial_store)


class TestIndexedAggregation:
    @pytest.mark.parametrize("figure", ALL_FIGURES, ids=lambda f: f.__name__)
    def test_index_matches_scan(self, small_window_store, figure):
        indexed = figure(small_window_store)
        small_window_store.use_index = False
        try:
            scanned = figure(small_window_store)
        finally:
            small_window_store.use_index = True
        assert indexed == scanned

    def test_index_matches_scan_on_packed_store(self, parallel_store):
        # The parallel store holds packed months: its index builds from
        # columns, the scan path from materialized records.
        indexed = figures.fig1_negotiated_versions(parallel_store)
        parallel_store.use_index = False
        try:
            scanned = figures.fig1_negotiated_versions(parallel_store)
        finally:
            parallel_store.use_index = True
        assert indexed == scanned

    def test_plain_callable_falls_back_to_scan(self, small_window_store):
        month = START
        predicate = NegotiatedVersion("TLSv12")
        as_lambda = lambda r: r.negotiated_version == "TLSv12"  # noqa: E731
        assert small_window_store.weight_where(
            month, predicate
        ) == small_window_store.weight_where(month, as_lambda)


class TestPartitionCodec:
    def test_expectation_roundtrip_exact(self, serial_store):
        packed = pack_records(serial_store.records())
        assert unpack_records(packed) == serial_store.records()

    def test_montecarlo_days_survive(self, montecarlo_store):
        packed = pack_records(montecarlo_store.records())
        restored = unpack_records(packed)
        assert restored == montecarlo_store.records()
        assert any(r.day is not None for r in restored)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            PackedDataset({"format": 999, "shapes": [], "months": {}})

    def test_attach_packed_is_lazy(self, serial_store):
        store = NotaryStore()
        store.attach_packed(PackedDataset(pack_records(serial_store.records())))
        assert store._packed  # months stayed columnar
        assert len(store) == len(serial_store)
        assert store.months() == serial_store.months()
        # A scan materializes transiently: the result is exact and the
        # month stays packed (only mutation converts it for good).
        assert store.records(START) == serial_store.records(START)
        assert START in store._packed
        assert START in store._mat_cache
        # Mutation is the permanent path.
        store.add(serial_store.records(START)[0])
        assert START not in store._packed
        assert START not in store._mat_cache

    def test_attach_packed_collision_appends(self, serial_store):
        store = NotaryStore()
        payload = pack_records(serial_store.records(START))
        store.attach_packed(PackedDataset(payload))
        store.attach_packed(PackedDataset(payload))
        assert len(store.records(START)) == 2 * len(serial_store.records(START))

    def test_attach_packed_idempotent_skips_collisions(self, serial_store):
        # The engine's recovery paths re-present months the store may
        # already hold (checkpoint resume); idempotent attach must not
        # double them.
        store = NotaryStore()
        payload = pack_records(serial_store.records(START))
        store.attach_packed(PackedDataset(payload))
        store.attach_packed(PackedDataset(payload), idempotent=True)
        assert store.records(START) == serial_store.records(START)

    def test_split_by_month_reassembles_exactly(self, serial_store):
        split = split_by_month(pack_records(serial_store.records()))
        assert sorted(split) == serial_store.months()
        store = NotaryStore()
        for part in split.values():
            assert validate_payload(part)
            store.attach_packed(PackedDataset(part))
        assert store.records() == serial_store.records()

    def test_validate_payload_catches_corruption(self, serial_store):
        months = serial_store.months()
        good = pack_records(serial_store.records())
        assert validate_payload(good, months)
        skewed = pack_records(serial_store.records())
        skewed["format"] = -1
        assert not validate_payload(skewed, months)
        truncated = pack_records(serial_store.records())
        next(iter(truncated["months"].values()))["weights"].pop()
        assert not validate_payload(truncated, months)
        dropped = pack_records(serial_store.records())
        dropped["months"].pop(next(iter(dropped["months"])))
        assert not validate_payload(dropped, months)
        assert not validate_payload("not a payload", months)


class TestStoreBatching:
    def test_add_batch_equals_adds(self, serial_store):
        month = START
        records = serial_store.records(month)
        one_by_one = NotaryStore()
        for record in records:
            one_by_one.add(record)
        batched = NotaryStore()
        batched.add_batch(month, records)
        assert one_by_one.records(month) == batched.records(month)
        assert one_by_one.total_weight(month) == batched.total_weight(month)

    def test_extend_groups_by_month(self, serial_store):
        store = NotaryStore()
        store.extend(serial_store.records())
        assert store.months() == serial_store.months()
        for month in store.months():
            assert store.records(month) == serial_store.records(month)

    def test_mutation_invalidates_index(self, serial_store):
        store = NotaryStore()
        records = serial_store.records(START)
        store.add_batch(START, records)
        before = store.total_weight(START)  # builds the index
        store.add_batch(START, records)
        assert store.total_weight(START) == pytest.approx(2 * before)


class TestDatasetCache:
    @pytest.fixture(autouse=True)
    def _tmp_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    def test_roundtrip_exact(self, serial_store, client_population, server_population):
        key = dataset_cache.dataset_key(
            client_population, server_population, START, END
        )
        dataset_cache.save_store(serial_store, key)
        warm = dataset_cache.load_store(key)
        assert warm is not None
        assert len(warm) == len(serial_store)
        for figure in ALL_FIGURES:
            assert figure(warm) == figure(serial_store)
        assert warm.records() == serial_store.records()

    def test_warm_load_skips_simulation(
        self, serial_store, client_population, server_population
    ):
        key = dataset_cache.dataset_key(
            client_population, server_population, START, END
        )
        dataset_cache.save_store(serial_store, key)
        PERF.reset()
        warm = dataset_cache.load_store(key)
        # A warm load runs zero negotiations: the store comes straight
        # off disk, figure-ready via the embedded aggregate indexes.
        assert PERF.negotiations == 0
        assert PERF.dataset_cache_hits == 1
        assert figures.fig1_negotiated_versions(warm)
        assert PERF.negotiations == 0

    def test_missing_key_is_miss(self):
        PERF.reset()
        assert dataset_cache.load_store("0" * 64) is None
        assert PERF.dataset_cache_misses == 1

    def test_corrupt_blob_is_miss_and_deleted(
        self, serial_store, client_population, server_population
    ):
        key = dataset_cache.dataset_key(
            client_population, server_population, START, END
        )
        path = dataset_cache.save_store(serial_store, key)
        path.write_bytes(b"not a dataset")
        assert dataset_cache.load_store(key) is None
        # Regression: the rejected blob used to stay on disk forever,
        # making every future run pay the read-and-fail cost.
        assert not path.exists()
        assert dataset_cache.save_store(serial_store, key) is not None
        assert dataset_cache.load_store(key) is not None

    def test_key_depends_on_window(self, client_population, server_population):
        a = dataset_cache.dataset_key(client_population, server_population, START, END)
        b = dataset_cache.dataset_key(
            client_population, server_population, START, END + dt.timedelta(days=40)
        )
        assert a != b


class TestStableSeeding:
    def test_hellos_identical_across_hash_randomization(self):
        """Two interpreters with different PYTHONHASHSEED must generate
        byte-identical traffic (the old builtin-``hash`` seeds broke this).
        """
        script = (
            "import datetime as dt, hashlib\n"
            "from repro.clients.population import default_population\n"
            "from repro.notary import PassiveMonitor, TrafficGenerator\n"
            "from repro.servers import ServerPopulation\n"
            "monitor = PassiveMonitor()\n"
            "generator = TrafficGenerator("
            "default_population(), ServerPopulation(), monitor)\n"
            "generator.run_expectation_month(dt.date(2015, 6, 1))\n"
            "digest = hashlib.sha256()\n"
            "for r in monitor.store.records():\n"
            "    digest.update(repr((r.client_family, r.client_version,"
            " r.fingerprint, r.negotiated_suite, r.weight)).encode())\n"
            "print(digest.hexdigest())\n"
        )

        def run(hashseed: str) -> str:
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            return out.stdout.strip()

        assert run("1") == run("31337")
