"""Active-scanner substrate tests: probes, grabs, Censys archive."""

import datetime as dt

import pytest

from repro.clients import suites as cs
from repro.scanner.censys import CENSYS_FIRST_SCAN, CENSYS_LAST_SCAN, CensysArchive
from repro.scanner.probes import CHROME_2015_SUITES, chrome_2015_probe, export_probe, ssl3_only_probe
from repro.scanner.zgrab import grab
from repro.scanner.zmap import AddressSpaceScanner
from repro.servers import ServerPopulation
from repro.servers import archetypes as arch
from repro.tls.ciphers import REGISTRY
from repro.tls.versions import SSL3, TLS12


class TestProbes:
    def test_chrome_2015_composition(self):
        # §3.2: strong AEAD-FS suites plus weaker CBC, RC4, 3DES.
        suites = [REGISTRY[c] for c in CHROME_2015_SUITES]
        assert any(s.is_aead and s.forward_secret for s in suites)
        assert any(s.is_cbc for s in suites)
        assert any(s.is_rc4 for s in suites)
        assert any(s.is_3des for s in suites)
        assert not any(s.is_export for s in suites)

    def test_3des_at_bottom(self):
        # §5.6: 3DES sits at the bottom of the scan's list.
        assert REGISTRY[CHROME_2015_SUITES[-1]].is_3des

    def test_chrome_probe_heartbeat_toggle(self):
        from repro.tls.extensions import ExtensionType

        assert chrome_2015_probe(heartbeat=True).has_extension(ExtensionType.HEARTBEAT)
        assert not chrome_2015_probe(heartbeat=False).has_extension(ExtensionType.HEARTBEAT)

    def test_ssl3_probe_version(self):
        assert ssl3_only_probe().legacy_version == SSL3.wire

    def test_export_probe_all_export(self):
        suites = [REGISTRY[c] for c in export_probe().cipher_suites]
        assert all(s.is_export for s in suites)


class TestGrab:
    def test_success_against_modern_server(self):
        result = grab(arch.TLS12_ECDHE_GCM, chrome_2015_probe())
        assert result.success
        assert result.suite.is_aead

    def test_ssl3_probe_fails_against_no_ssl3_server(self):
        profile = arch.TLS10_CBC.without_version(SSL3.wire)
        result = grab(profile, ssl3_only_probe())
        assert not result.success
        assert result.alert == "protocol_version"

    def test_ssl3_probe_succeeds_against_legacy(self):
        result = grab(arch.LEGACY_SSL3_RC4, ssl3_only_probe())
        assert result.success
        assert result.version is SSL3

    def test_export_probe_against_modern_server_fails(self):
        result = grab(arch.TLS12_ECDHE_GCM, export_probe())
        assert not result.success

    def test_export_probe_against_legacy_succeeds(self):
        result = grab(arch.LEGACY_SSL3_RC4, export_probe())
        assert result.success
        assert result.suite.is_export

    def test_heartbleed_check(self):
        vulnerable = arch.TLS12_ECDHE_GCM.with_heartbeat(vulnerable=True)
        patched = arch.TLS12_ECDHE_GCM.with_heartbeat(vulnerable=False)
        assert grab(vulnerable, chrome_2015_probe(), check_heartbleed=True).heartbleed_vulnerable
        assert not grab(patched, chrome_2015_probe(), check_heartbleed=True).heartbleed_vulnerable

    def test_heartbleed_not_checked_without_flag(self):
        vulnerable = arch.TLS12_ECDHE_GCM.with_heartbeat(vulnerable=True)
        result = grab(vulnerable, chrome_2015_probe(), check_heartbleed=False)
        assert result.heartbeat_acknowledged
        assert not result.heartbleed_vulnerable

    def test_via_wire_matches_object_path(self):
        probe = chrome_2015_probe()
        for profile in (arch.TLS12_ECDHE_GCM, arch.LEGACY_SSL3_RC4, arch.TLS10_CBC):
            direct = grab(profile, probe, check_heartbleed=True)
            wired = grab(profile, probe, check_heartbleed=True, via_wire=True)
            assert wired.success == direct.success
            assert wired.suite_code == direct.suite_code
            assert wired.version == direct.version
            assert wired.heartbeat_acknowledged == direct.heartbeat_acknowledged

    def test_via_wire_on_failed_handshake(self):
        from repro.servers.config import ServerProfile

        tls13_only = ServerProfile(
            name="tls13only",
            supported_versions=frozenset({0x0304}),
            suite_preference=(0x1301,),
            supported_groups=(29,),
        )
        result = grab(tls13_only, chrome_2015_probe(), via_wire=True)
        assert not result.success


class TestAddressSpaceScanner:
    def test_sample_size(self):
        scanner = AddressSpaceScanner(ServerPopulation())
        hosts = scanner.scan(dt.date(2016, 1, 1), 200)
        assert len(hosts) == 200

    def test_ips_formatted(self):
        scanner = AddressSpaceScanner(ServerPopulation())
        host = scanner.scan(dt.date(2016, 1, 1), 1)[0]
        parts = host.ip.split(".")
        assert len(parts) == 4
        assert all(0 <= int(p) <= 255 for p in parts)

    def test_deterministic_per_seed(self):
        pop = ServerPopulation()
        a = AddressSpaceScanner(pop, seed=42).scan(dt.date(2016, 1, 1), 50)
        b = AddressSpaceScanner(pop, seed=42).scan(dt.date(2016, 1, 1), 50)
        assert [(h.address, h.profile.name) for h in a] == [
            (h.address, h.profile.name) for h in b
        ]


class TestCensysArchive:
    @pytest.fixture(scope="class")
    def archive(self):
        archive = CensysArchive()
        for probe in ("chrome2015", "ssl3", "export"):
            archive.run_schedule(probe, interval_days=112)
        return archive

    def test_window(self, archive):
        dates = [d for (_, d) in archive.snapshots]
        assert min(dates) == CENSYS_FIRST_SCAN
        assert max(dates) <= CENSYS_LAST_SCAN

    def test_ssl3_support_declines(self, archive):
        series = archive.series("ssl3", "handshake")
        assert series[0][1] > series[-1][1]
        assert series[0][1] > 0.38
        assert series[-1][1] < 0.28

    def test_rc4_chosen_declines(self, archive):
        series = archive.series("chrome2015", "rc4")
        assert 0.08 < series[0][1] < 0.2   # ~11.2% Sep 2015
        assert series[-1][1] < 0.06        # ~3.4% May 2018

    def test_cbc_chosen_declines(self, archive):
        series = archive.series("chrome2015", "cbc")
        assert 0.45 < series[0][1] < 0.65  # ~54% Sep 2015
        assert 0.25 < series[-1][1] < 0.45  # ~35% May 2018

    def test_3des_chosen_tiny_but_present(self, archive):
        series = archive.series("chrome2015", "3des")
        assert 0.003 < series[0][1] < 0.01   # 0.54% Aug 2015
        assert 0.001 < series[-1][1] < 0.005  # 0.25% May 2018

    def test_heartbleed_long_tail(self, archive):
        series = archive.series("chrome2015", "heartbleed")
        assert 0.001 < series[-1][1] < 0.01  # 0.32% May 2018

    def test_sampled_scan_close_to_expectation(self):
        archive = CensysArchive()
        day = dt.date(2016, 6, 1)
        exact = archive.run_expectation_scan(day, "chrome2015")
        sampled = archive.run_sampled_scan(day, "chrome2015", 4000)
        assert sampled.fraction("rc4") == pytest.approx(exact.fraction("rc4"), abs=0.03)
        assert sampled.fraction("aead") == pytest.approx(exact.fraction("aead"), abs=0.05)

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValueError):
            CensysArchive().run_expectation_scan(dt.date(2016, 1, 1), "quic")

    def test_snapshot_fraction_empty(self):
        from repro.scanner.censys import ScanSnapshot

        snap = ScanSnapshot(date=dt.date(2016, 1, 1), probe="x")
        assert snap.fraction("rc4") == 0.0
        assert snap.handshake_rate == 0.0
