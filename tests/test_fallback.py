"""Downgrade-dance and POODLE-mechanics tests (repro.tls.fallback)."""

import datetime as dt

import pytest

from repro.clients import chrome, firefox
from repro.clients import suites as cs
from repro.clients.profile import CATEGORY_BROWSERS, ClientRelease
from repro.servers import archetypes as arch
from repro.servers.config import ServerProfile
from repro.tls.fallback import (
    DanceResult,
    FallbackOutcome,
    downgrade_dance,
    fallback_ladder,
    poodle_attack_succeeds,
)
from repro.tls.versions import SSL3, TLS10, TLS11, TLS12


def release(max_version=TLS12.wire, ssl3_fallback=True, suites=None):
    return ClientRelease(
        family="TestFam",
        version="1",
        released=dt.date(2013, 1, 1),
        category=CATEGORY_BROWSERS,
        max_version=max_version,
        cipher_suites=suites or (cs.RSA_AES128_SHA, cs.RSA_RC4_128_SHA, cs.RSA_3DES_SHA),
        ssl3_fallback=ssl3_fallback,
    )


# A server that only speaks SSL3 + TLS1.0 (old box).
OLD_SERVER = ServerProfile(
    name="old",
    supported_versions=frozenset({SSL3.wire, TLS10.wire}),
    suite_preference=(cs.RSA_AES128_SHA, cs.RSA_RC4_128_SHA),
)

# A modern server: TLS 1.0-1.2, SCSV-aware by construction.
MODERN_SERVER = ServerProfile(
    name="modern",
    supported_versions=frozenset({TLS10.wire, TLS11.wire, TLS12.wire}),
    suite_preference=(cs.RSA_AES128_SHA,),
)

# SSL 3-only relic that is also version-intolerant: it aborts any hello
# above SSL 3 instead of negotiating down — the stacks that forced
# browsers into the dance in the first place.
SSL3_SERVER = ServerProfile(
    name="ssl3only",
    supported_versions=frozenset({SSL3.wire}),
    suite_preference=(cs.RSA_AES128_SHA, cs.RSA_RC4_128_SHA),
    intolerant_above=SSL3.wire,
)


class TestLadder:
    def test_full_ladder_with_ssl3(self):
        ladder = fallback_ladder(release())
        assert ladder == [TLS12.wire, TLS11.wire, TLS10.wire, SSL3.wire]

    def test_ladder_without_ssl3(self):
        ladder = fallback_ladder(release(ssl3_fallback=False))
        assert SSL3.wire not in ladder

    def test_ladder_capped_by_max_version(self):
        ladder = fallback_ladder(release(max_version=TLS10.wire))
        assert ladder == [TLS10.wire, SSL3.wire]


class TestDance:
    def test_first_try_against_modern_server(self):
        result = downgrade_dance(release(), MODERN_SERVER)
        assert result.outcome is FallbackOutcome.FIRST_TRY
        assert result.attempts == 1
        assert result.negotiated_wire == TLS12.wire
        assert not result.attacked

    def test_no_dance_needed_against_old_server(self):
        # Version negotiation handles the min() itself; no retry occurs.
        result = downgrade_dance(release(), OLD_SERVER)
        assert result.outcome is FallbackOutcome.FIRST_TRY
        assert result.negotiated_wire == TLS10.wire

    def test_falls_back_to_ssl3_server(self):
        result = downgrade_dance(release(), SSL3_SERVER, send_scsv=False)
        assert result.outcome is FallbackOutcome.FELL_BACK
        assert result.negotiated_wire == SSL3.wire
        assert result.attempts == 4

    def test_no_ssl3_rung_exhausts_against_ssl3_server(self):
        result = downgrade_dance(release(ssl3_fallback=False), SSL3_SERVER)
        assert result.outcome is FallbackOutcome.EXHAUSTED
        assert not result.established


class TestPoodle:
    def test_attack_forces_ssl3_without_scsv(self):
        result = downgrade_dance(
            release(), OLD_SERVER, attacker_drops=3, send_scsv=False
        )
        assert result.attacked
        assert result.negotiated_wire == SSL3.wire
        assert result.poodle_exposed  # CBC suite at SSL 3

    def test_scsv_defeats_the_attack_on_updated_server(self):
        result = downgrade_dance(
            release(), MODERN_SERVER, attacker_drops=2, send_scsv=True
        )
        assert result.outcome is FallbackOutcome.REFUSED_SCSV
        assert not result.established

    def test_scsv_useless_against_ssl3_only_server(self):
        # RFC 7507 cannot help when the server genuinely tops out at SSL3.
        assert poodle_attack_succeeds(release(), SSL3_SERVER, send_scsv=True)

    def test_removing_fallback_kills_the_attack(self):
        assert poodle_attack_succeeds(release(), OLD_SERVER)
        assert not poodle_attack_succeeds(release(ssl3_fallback=False), OLD_SERVER)

    def test_rc4_at_ssl3_not_poodle_exposed(self):
        rc4_server = ServerProfile(
            name="rc4first",
            supported_versions=frozenset({SSL3.wire, TLS10.wire}),
            suite_preference=(cs.RSA_RC4_128_SHA,),
        )
        result = downgrade_dance(
            release(), rc4_server, attacker_drops=3, send_scsv=False
        )
        assert result.negotiated_wire == SSL3.wire
        assert not result.poodle_exposed  # RC4, not CBC


class TestRealBrowserHistories:
    """Table 6's mitigation timeline, expressed as POODLE exposure."""

    def test_chrome_33_exposed_chrome_39_not(self):
        family = chrome.family()
        assert poodle_attack_succeeds(family.release("33"), OLD_SERVER)
        assert not poodle_attack_succeeds(family.release("39"), OLD_SERVER)

    def test_firefox_36_exposed_37_not(self):
        family = firefox.family()
        assert poodle_attack_succeeds(family.release("36"), OLD_SERVER)
        assert not poodle_attack_succeeds(family.release("37"), OLD_SERVER)

    def test_legacy_archetype_accepts_fallback(self):
        family = chrome.family()
        result = downgrade_dance(
            family.release("33"), arch.LEGACY_SSL3_RC4, attacker_drops=3,
            send_scsv=False,
        )
        assert result.negotiated_wire == SSL3.wire
