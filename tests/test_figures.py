"""Figure-generator tests on small simulation windows."""

import datetime as dt

import pytest

from repro.core import figures


class TestFig1(object):
    def test_versions_sum_to_100(self, small_window_store):
        series = figures.fig1_negotiated_versions(small_window_store)
        month = dt.date(2014, 12, 1)
        total = sum(figures.value_at(s, month) for s in series.values() if s)
        assert total == pytest.approx(100.0, abs=0.5)

    def test_tls12_dominant_in_2015(self, small_window_store):
        series = figures.fig1_negotiated_versions(small_window_store)
        assert figures.value_at(series["TLSv12"], dt.date(2015, 5, 1)) > 40

    def test_ssl3_marginal_by_2015(self, small_window_store):
        series = figures.fig1_negotiated_versions(small_window_store)
        assert figures.value_at(series["SSLv3"], dt.date(2015, 5, 1)) < 1


class TestFig2(object):
    def test_classes_present(self, small_window_store):
        series = figures.fig2_negotiated_modes(small_window_store)
        assert set(series) == {"AEAD", "CBC", "RC4"}

    def test_rc4_declines_within_window(self, small_window_store):
        series = figures.fig2_negotiated_modes(small_window_store)["RC4"]
        assert series[0][1] > series[-1][1]


class TestFig3(object):
    def test_cbc_above_99(self, small_window_store):
        series = figures.fig3_advertised_modes(small_window_store)["CBC"]
        assert all(v > 97 for _, v in series)

    def test_3des_high(self, small_window_store):
        series = figures.fig3_advertised_modes(small_window_store)["3DES"]
        assert all(v > 90 for _, v in series)


class TestFig4(object):
    def test_only_fingerprint_era_months(self, early_window_store):
        series = figures.fig4_fingerprint_support(early_window_store)
        assert series == {}  # 2012: no fingerprint fields yet

    def test_fingerprint_support_values(self, small_window_store):
        series = figures.fig4_fingerprint_support(small_window_store)
        rc4 = dict(series["RC4"])
        assert rc4[dt.date(2015, 1, 1)] > 30  # many fingerprints keep RC4
        cbc = dict(series["CBC"])
        assert cbc[dt.date(2015, 1, 1)] > 90  # near-universal CBC support


class TestFig5(object):
    def test_positions_ordering(self, small_window_store):
        series = figures.fig5_cipher_positions(small_window_store)
        month = dt.date(2015, 1, 1)
        aead = figures.value_at(series["AEAD"], month)
        tdes = figures.value_at(series["3DES"], month)
        # AEAD sits near the head of preference lists, 3DES near the tail.
        assert aead < 30
        assert tdes > 70

    def test_values_are_percentages(self, small_window_store):
        series = figures.fig5_cipher_positions(small_window_store)
        for points in series.values():
            assert all(0 <= v <= 100 for _, v in points)


class TestFig6(object):
    def test_single_series(self, small_window_store):
        series = figures.fig6_rc4_advertised(small_window_store)
        assert list(series) == ["RC4 advertised"]
        assert all(0 <= v <= 100 for _, v in series["RC4 advertised"])


class TestFig7(object):
    def test_labels(self, small_window_store):
        series = figures.fig7_weak_advertised(small_window_store)
        assert set(series) == {"Export", "Anonymous", "Null"}

    def test_anon_spike_visible(self, small_window_store):
        series = figures.fig7_weak_advertised(small_window_store)["Anonymous"]
        before = figures.value_at(series, dt.date(2015, 4, 1))
        after = figures.value_at(series, dt.date(2015, 6, 1))
        assert after > before


class TestFig8(object):
    def test_rsa_plus_ecdhe_account_for_most(self, small_window_store):
        series = figures.fig8_key_exchange(small_window_store)
        month = dt.date(2015, 1, 1)
        total = sum(figures.value_at(series[k], month) for k in ("RSA", "DHE", "ECDHE"))
        assert total > 90

    def test_ecdhe_rising(self, small_window_store):
        ecdhe = figures.fig8_key_exchange(small_window_store)["ECDHE"]
        assert ecdhe[-1][1] > ecdhe[0][1]


class TestFig9And10(object):
    def test_fig9_total_geq_parts(self, small_window_store):
        series = figures.fig9_negotiated_aead(small_window_store)
        month = dt.date(2015, 1, 1)
        total = figures.value_at(series["AEAD Total"], month)
        parts = sum(
            figures.value_at(series[k], month)
            for k in ("AES128-GCM", "AES256-GCM", "ChaCha20-Poly1305")
        )
        assert total >= parts - 0.01

    def test_fig10_gcm_dominates_ccm(self, small_window_store):
        series = figures.fig10_advertised_aead(small_window_store)
        month = dt.date(2015, 1, 1)
        assert figures.value_at(series["AES128-GCM"], month) > figures.value_at(
            series["AES-CCM"], month
        )


class TestTls13VersionMix(object):
    def test_mix_on_tls13_window(self, late_window_store):
        mix = figures.tls13_version_mix(late_window_store, dt.date(2018, 3, 1))
        assert mix
        assert any(label.startswith("google-0x7e02") for label in mix)
        # Shares are percentages of extension-bearing traffic; any one
        # label is bounded by 100 (multiple versions per hello allowed).
        assert all(0 < v <= 100 for v in mix.values())

    def test_empty_before_tls13(self, small_window_store):
        assert figures.tls13_version_mix(small_window_store, dt.date(2015, 1, 1)) == {}


class TestUnofferedChoiceSeries(object):
    def test_series_present_and_small(self, small_window_store):
        series = figures.unoffered_choice_series(small_window_store)
        assert [m for m, _ in series] == small_window_store.months()
        assert all(0 <= v < 2 for _, v in series)
        assert any(v > 0 for _, v in series)  # GOST/Interwise exist


class TestLazyClientsInit(object):
    def test_unknown_attribute_raises(self):
        import repro.clients

        with pytest.raises(AttributeError):
            repro.clients.not_a_real_symbol  # noqa: B018

    def test_lazy_population_access(self):
        from repro.clients import ShareCurve

        assert ShareCurve is not None


class TestHelpers(object):
    def test_value_at_nearest(self):
        series = [(dt.date(2015, 1, 1), 1.0), (dt.date(2015, 3, 1), 3.0)]
        assert figures.value_at(series, dt.date(2015, 1, 10)) == 1.0
        assert figures.value_at(series, dt.date(2015, 2, 25)) == 3.0

    def test_value_at_empty_raises(self):
        with pytest.raises(ValueError):
            figures.value_at([], dt.date(2015, 1, 1))

    def test_render_series(self, small_window_store):
        series = figures.fig2_negotiated_modes(small_window_store)
        text = figures.render_series(series)
        assert "AEAD" in text and "RC4" in text
        assert "2015-01-01" in text

    def test_render_series_sampled(self, small_window_store):
        series = figures.fig2_negotiated_modes(small_window_store)
        text = figures.render_series(series, sample_months=[dt.date(2015, 1, 1)])
        assert text.count("\n") == 1  # header + one row

    def test_to_csv(self, small_window_store):
        import csv
        import io

        series = figures.fig2_negotiated_modes(small_window_store)
        rows = list(csv.reader(io.StringIO(figures.to_csv(series))))
        assert rows[0] == ["month", "AEAD", "CBC", "RC4"]
        assert len(rows) == 1 + len(small_window_store.months())
        # Values parse back as floats in [0, 100].
        for row in rows[1:]:
            for cell in row[1:]:
                assert 0.0 <= float(cell) <= 100.0

    def test_to_csv_handles_missing_months(self):
        series = {
            "a": [(dt.date(2015, 1, 1), 1.0), (dt.date(2015, 2, 1), 2.0)],
            "b": [(dt.date(2015, 2, 1), 3.0)],
        }
        text = figures.to_csv(series)
        lines = text.strip().splitlines()
        assert lines[1].endswith(",")  # b missing in January
