"""Trace analyzer tests: reconstruct real parallel faulted runs from
their JSONL sink and verify the tree, critical path, utilization,
fault attribution, and Chrome-trace export.

The acceptance fixture is the real thing — a 4-worker run with
injected crashes whose sink a module-scoped fixture produces once —
plus synthetic event streams for the edge cases (orphans, trace
selection, torn files) that a healthy engine never emits.
"""

from __future__ import annotations

import datetime as dt
import json
from pathlib import Path

import pytest

from repro import obs
from repro.engine import faults, runner
from repro.engine.perf import PERF
from repro.obs import analyze

START = dt.date(2014, 6, 1)
END = dt.date(2014, 9, 1)


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    obs.TRACE.reset()
    faults.clear()
    yield
    obs.TRACE.reset()
    faults.clear()


@pytest.fixture(scope="module")
def faulted_sink(tmp_path_factory, client_population, server_population):
    """One real parallel faulted run's metrics sink + its store size."""
    base = tmp_path_factory.mktemp("analyze")
    sink = base / "metrics.jsonl"
    import os

    os.environ["REPRO_METRICS_PATH"] = str(sink)
    os.environ["REPRO_CACHE_DIR"] = str(base / "cache")
    obs.TRACE.reset()
    try:
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=4, chunk_months=1, faults_spec="worker_crash:0.25,seed:5",
        )
    finally:
        os.environ.pop("REPRO_METRICS_PATH", None)
        faults.clear()
    return sink, len(store)


@pytest.fixture(scope="module")
def analysis(faulted_sink):
    sink, _records = faulted_sink
    return analyze.analyze(analyze.load_events(sink))


# ---- loading & trace selection ----------------------------------------------


class TestLoading:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(analyze.TraceError, match="does not exist"):
            analyze.load_events(tmp_path / "absent.jsonl")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(analyze.TraceError, match="no events"):
            analyze.load_events(path)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"ts": 1.0, "event": "run_start", "trace_id": "t1", "pid": 1}\n'
            '{"ts": 2.0, "event": "run_comp'
        )
        events = analyze.load_events(path)
        assert [e["event"] for e in events] == ["run_start"]

    def test_malformed_middle_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"ts": 1.0, "event": "a", "trace_id": "t1", "pid": 1}\n'
            "not json\n"
            '{"ts": 2.0, "event": "b", "trace_id": "t1", "pid": 1}\n'
        )
        with pytest.raises(analyze.TraceError, match=":2"):
            analyze.load_events(path)

    def test_select_trace_prefers_last_run_start(self):
        events = [
            {"event": "run_start", "trace_id": "old", "ts": 1.0},
            {"event": "run_complete", "trace_id": "old", "ts": 2.0},
            {"event": "run_start", "trace_id": "new", "ts": 3.0},
        ]
        assert analyze.select_trace(events) == "new"
        assert analyze.select_trace(events, "old") == "old"

    def test_select_unknown_trace_raises(self):
        events = [{"event": "run_start", "trace_id": "t1", "ts": 1.0}]
        with pytest.raises(analyze.TraceError, match="not present"):
            analyze.select_trace(events, "nope")


# ---- tree reconstruction on the real run ------------------------------------


class TestRealRunTree:
    def test_rooted_tree_with_no_orphans(self, analysis):
        assert analysis.root is not None
        assert analysis.root.name == "run_expectation"
        assert analysis.orphans == 0
        # Every reconstructed span is reachable from the root.
        reachable = sum(1 for _ in analysis.root.walk())
        assert reachable == analysis.span_count()

    def test_worker_subtrees_grafted_under_root(self, analysis):
        chunk_nodes = [
            n for n in analysis.root.children if n.name == "run_chunk"
        ]
        assert chunk_nodes, "no worker chunk spans under the run root"
        assert {n.pid for n in chunk_nodes} != {analysis.root.pid}
        for node in chunk_nodes:
            months = [c for c in node.children if c.name == "simulate_month"]
            assert months, f"chunk span {node.key} has no month children"
            for month in months:
                assert month.pid == node.pid

    def test_summary_reconciles_with_run(self, analysis, faulted_sink):
        _sink, records = faulted_sink
        summary = analyze.summarize(analysis)
        assert summary["records"] == records
        assert summary["retries"] > 0  # the fault schedule did fire
        assert summary["faults"] > 0
        assert summary["orphans"] == 0
        assert summary["workers"] >= 2
        assert summary["wall_seconds"] > 0

    def test_critical_path_descends_to_a_leaf(self, analysis):
        path = analyze.critical_path(analysis)
        assert path[0] is analysis.root
        assert not path[-1].children
        # Monotone containment: every hop starts within its parent's
        # window and the path is the last-finishing descent.
        for parent, child in zip(path, path[1:]):
            assert child in parent.children
            assert child.end == max(n.end for n in parent.children)

    def test_utilization_ledger(self, analysis):
        util = analyze.utilization(analysis)
        workers = [r for r in util["workers"] if r["kind"] == "worker"]
        assert len(workers) >= 2
        assert util["straggler_pid"] in {r["pid"] for r in workers}
        # A 4-month window is dominated by pool startup, so the ratio
        # is small — but it must be positive and consistent with the
        # per-worker ledger.
        busy_total = sum(r["busy_seconds"] for r in util["workers"])
        assert util["effective_parallelism"] == pytest.approx(
            busy_total / util["window_seconds"], rel=1e-9
        )
        assert util["effective_parallelism"] > 0.0
        for row in workers:
            assert row["busy_seconds"] > 0
            assert row["busy_seconds"] + row["idle_seconds"] == pytest.approx(
                util["window_seconds"], rel=1e-6
            )
            assert 0.0 <= row["utilization"] <= 1.0 + 1e-9

    def test_fault_attribution_joins_chunks_to_months(self, analysis):
        attribution = analyze.fault_attribution(analysis)
        assert attribution["chunks"], "faulted run attributed no chunks"
        assert attribution["months"], "faulted run attributed no months"
        total_chunk_retries = sum(
            row["retries"] for row in attribution["chunks"].values()
        )
        events = [e for e in analysis.events if e.get("event") == "chunk_retry"]
        assert total_chunk_retries == len(events)
        # Months attributed through the chunk->months join are real
        # months of the run window.
        for iso in attribution["months"]:
            month = dt.date.fromisoformat(iso)
            assert START <= month <= END


# ---- synthetic edge cases ---------------------------------------------------


def _span_event(tid, pid, sid, parent, name, start, dur, depth=0):
    return {
        "ts": start, "event": "span", "trace_id": tid, "pid": pid,
        "id": sid, "parent_id": parent, "name": name, "start": start,
        "duration": dur, "depth": depth, "span_pid": pid,
        "origin": "parent", "attrs": {},
    }


class TestSyntheticTrees:
    def test_missing_parent_is_adopted_and_counted(self):
        events = [
            {"event": "run_start", "trace_id": "t", "ts": 0.0, "pid": 10},
            _span_event("t", 10, 0, None, "root", 0.0, 10.0),
            # Recorded parent id 99 never shipped: a torn worker trace.
            _span_event("t", 11, 3, 99, "stray", 2.0, 1.0, depth=2),
        ]
        analysis = analyze.analyze(events)
        assert analysis.root.name == "root"
        assert analysis.orphans == 1
        (stray,) = [n for n in analysis.root.children if n.name == "stray"]
        assert stray.adopted

    def test_duplicate_names_resolve_by_id(self):
        events = [
            {"event": "run_start", "trace_id": "t", "ts": 0.0, "pid": 10},
            _span_event("t", 10, 0, None, "root", 0.0, 10.0),
            _span_event("t", 10, 1, 0, "work", 1.0, 2.0, depth=1),
            _span_event("t", 10, 2, 0, "work", 4.0, 2.0, depth=1),
            _span_event("t", 10, 3, 2, "step", 4.5, 1.0, depth=2),
        ]
        analysis = analyze.analyze(events)
        works = [n for n in analysis.root.children if n.name == "work"]
        assert [w.id for w in works] == [1, 2]
        assert works[0].children == []
        assert [c.name for c in works[1].children] == ["step"]

    def test_serial_run_has_no_worker_rows(self):
        events = [
            {"event": "run_start", "trace_id": "t", "ts": 0.0, "pid": 10},
            _span_event("t", 10, 0, None, "run_expectation", 0.0, 5.0),
        ]
        analysis = analyze.analyze(events)
        util = analyze.utilization(analysis)
        assert util["workers"] == []
        assert util["straggler_pid"] is None


# ---- Chrome-trace export ----------------------------------------------------


class TestChromeTrace:
    def test_structure_is_valid_trace_event_format(self, analysis, tmp_path):
        out = tmp_path / "trace.json"
        analyze.write_chrome_trace(analysis, out)
        document = json.loads(out.read_text())
        assert set(document) >= {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for event in events:
            assert {"ph", "name", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
                assert isinstance(event["args"]["span_id"], int)
            if event["ph"] == "i":
                assert event["s"] == "p"
        # One X event per reconstructed span; one M lane per process.
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == analysis.span_count()
        lanes = {e["pid"] for e in events if e["ph"] == "M"}
        assert lanes == {n.pid for n in analysis.spans.values()}

    def test_fault_markers_are_instants(self, analysis):
        document = analyze.chrome_trace(analysis)
        markers = [
            e for e in document["traceEvents"]
            if e["ph"] == "i" and e["name"] == "fault"
        ]
        assert markers, "faulted run exported no fault markers"
        for marker in markers:
            assert "token" in marker["args"]


# ---- the CLI entry point ----------------------------------------------------


class TestTraceCli:
    def test_all_report_modes(self, faulted_sink, capsys):
        from repro.cli import main

        sink, _records = faulted_sink
        assert main([
            "trace", str(sink), "--summary", "--critical-path",
            "--utilization", "--faults-report",
        ]) == 0
        out = capsys.readouterr().out
        assert "TRACE SUMMARY" in out
        assert "CRITICAL PATH" in out
        assert "WORKER UTILIZATION" in out
        assert "FAULT / RETRY ATTRIBUTION" in out

    def test_default_mode_is_summary(self, faulted_sink, capsys):
        from repro.cli import main

        sink, _records = faulted_sink
        assert main(["trace", str(sink)]) == 0
        assert "TRACE SUMMARY" in capsys.readouterr().out

    def test_run_then_trace_pair(self, tmp_path, capsys, monkeypatch):
        """The documented two-command flow: run --metrics, then trace it."""
        from repro.cli import main
        from repro.simulation import ecosystem

        small = ecosystem.EcosystemModel(
            start=dt.date(2014, 6, 1),
            end=dt.date(2014, 7, 1),
            use_cache=False,
            workers=0,
        )
        monkeypatch.setattr(ecosystem, "_DEFAULT_MODEL", small)
        sink = tmp_path / "m.jsonl"
        assert main(["run", "--metrics", str(sink)]) == 0
        run_out = capsys.readouterr().out
        assert "run complete" in run_out
        assert str(sink) in run_out
        assert main(["trace", str(sink), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "TRACE SUMMARY" in out
        assert "orphans reattached   0" in out or "orphan" in out

    def test_chrome_export(self, faulted_sink, tmp_path, capsys):
        from repro.cli import main

        sink, _records = faulted_sink
        out = tmp_path / "chrome.json"
        assert main(["trace", str(sink), "--chrome", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]

    def test_trace_never_rotates_the_sink(self, faulted_sink, monkeypatch):
        """A reader invoked with REPRO_METRICS_PATH pointing at the file
        it analyzes must not rotate it away."""
        from repro.cli import main
        from repro.obs import metrics

        sink, _records = faulted_sink
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        monkeypatch.setattr(metrics, "_ROTATED", False)
        before = sink.read_bytes()
        assert main(["trace", str(sink)]) == 0
        assert sink.exists() and sink.read_bytes() == before
        assert not Path(f"{sink}.1").exists()

    def test_missing_sink_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err
