"""Differential suite for the shape-compiled and vectorized query tiers.

Every test here enforces one contract: the four answer tiers — index
counters, vectorized (numpy) masks, shape-compiled evaluation, and the
record scan — return **byte-identical** floats.  Comparisons are exact
``==``, never ``pytest.approx``: the fast tiers are only admissible
because their folds replay the scan's addition sequence, and an approx
assertion would hide a regression in that discipline.

Coverage map (PR 5's satellite #3 plus PR 6's three-way differential):

* randomized composite predicates over shape fields, seeded RNG —
  lambda-shaped (shape tier) and structured (vector tier, asserted
  vector ≡ shape ≡ scan);
* ``All`` / ``AnyOf`` / ``Not`` semantics, including simplify-to-index;
* ``weighted_mean`` (lambda + ``PositionOf``) and ``within=``
  restrictions (indexed + lambda + structured);
* fresh-packed vs cache-warm vs post-resume (``split_by_month``) vs
  incremental-ingest (month added after attach, no re-pack) stores;
* guarded fallback for predicates reading ``month`` / ``weight`` / day;
* numpy-absent fallback (monkeypatched ``vector._np``) and the
  ``use_vector`` / ``use_index`` escape hatches;
* transient materialization (packed months survive ``records()``) and
  the ``REPRO_MATERIALIZE_LRU`` bound override;
* batched figure evaluation and the packed figure fast paths;
* metrics events (``shape_view_build`` / ``scan_fallback`` /
  ``vector_path``) passing the CI validator in
  ``scripts/check_metrics_jsonl.py``.
"""

from __future__ import annotations

import importlib.util
import json
import logging
import random
from pathlib import Path

import pytest

from repro.core import figures
from repro.engine import cache as dataset_cache
from repro.engine import partition
from repro.engine.partition import PackedDataset, pack_records, split_by_month
from repro.engine.perf import PERF
from repro.notary import (
    ESTABLISHED,
    Advertises,
    All,
    AnyOf,
    Established,
    NegotiatedMode,
    NegotiatedVersion,
    Not,
    NotaryStore,
    PositionOf,
    vector,
)

# ---------------------------------------------------------------------------
# Fixtures: one packed dataset shared module-wide (the templates and
# shape summaries memoize on it, as they would in a real session), a
# scan-only reference store, and fresh packed stores per test.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def payload(small_window_store):
    return pack_records(small_window_store.records())


@pytest.fixture(scope="module")
def dataset(payload):
    return PackedDataset(payload)


@pytest.fixture(scope="module")
def scan_store(small_window_store):
    """Reference store: same records, every answer from the record scan."""
    store = NotaryStore()
    store.extend(small_window_store.records())
    store.use_index = False
    return store


@pytest.fixture()
def packed_store(dataset):
    store = NotaryStore()
    store.attach_packed(dataset)
    return store


# Predicates built only from shape fields — the guarded-template tier
# must answer all of these.  Each entry is a *factory* so every test
# gets a fresh closure (compilation memoizes per code object; fresh
# closures keep the differential honest about compile costs too).
SHAPE_PREDICATES = [
    lambda: (lambda r: r.established),
    lambda: (lambda r: r.negotiated_version == "TLSv12"),
    lambda: (lambda r: "rc4" in r.advertised),
    lambda: (lambda r: r.suite_count > 20),
    lambda: (lambda r: r.client_family == "Chrome"),
    lambda: (lambda r: r.established and r.negotiated_kex is not None),
    lambda: (lambda r: bool(r.offered_tls13)),
    lambda: (lambda r: (r.server_port or 0) == 443),
    lambda: (lambda r: r.client_in_database and not r.established),
]


# Structured predicates (the vector tier's input form).  Factories for
# the same reason as SHAPE_PREDICATES; the instances are value-hashable,
# so fresh instances additionally prove the memoization keys correctly.
STRUCTURED_LEAVES = [
    lambda: NegotiatedVersion("TLSv12"),
    lambda: NegotiatedVersion("TLSv13"),
    lambda: NegotiatedMode("AEAD"),
    lambda: Advertises("rc4"),
    lambda: Advertises("aead"),
    lambda: Established(),
    lambda: Established(False),
]

#: A structured composite with no single index key — the vector tier is
#: the fastest tier that can answer it.
MODERN = AnyOf(NegotiatedVersion("TLSv12"), NegotiatedVersion("TLSv13"))


def _assert_identical(packed, scan, predicate, *, within=None):
    """Exact three-way agreement on every month plus the batched helper."""
    months = scan.months()
    assert packed.months() == months
    for month in months:
        assert packed.fraction(month, predicate, within) == scan.fraction(
            month, predicate, within
        )
        if within is None:
            assert packed.weight_where(month, predicate) == scan.weight_where(
                month, predicate
            )
    assert packed.monthly_fraction(predicate, within) == scan.monthly_fraction(
        predicate, within
    )


class TestShapeScanIdentity:
    def test_simple_predicates(self, packed_store, scan_store):
        for factory in SHAPE_PREDICATES:
            _assert_identical(packed_store, scan_store, factory())

    def test_within_established(self, packed_store, scan_store):
        for factory in SHAPE_PREDICATES:
            _assert_identical(
                packed_store, scan_store, factory(), within=ESTABLISHED
            )

    def test_within_lambda(self, packed_store, scan_store):
        within = lambda r: r.suite_count > 10  # noqa: E731
        for factory in SHAPE_PREDICATES[:4]:
            _assert_identical(packed_store, scan_store, factory(), within=within)

    def test_shape_tier_actually_served(self, packed_store, scan_store):
        PERF.reset()
        _assert_identical(packed_store, scan_store, lambda r: r.established)
        assert PERF.shape_path_hits > 0
        assert PERF.scan_fallbacks == 0

    def test_randomized_composites(self, packed_store, scan_store):
        rng = random.Random(20260806)

        def build(depth: int):
            if depth == 0 or rng.random() < 0.4:
                return rng.choice(SHAPE_PREDICATES)()
            kind = rng.randrange(3)
            if kind == 0:
                return Not(build(depth - 1))
            combiner = All if kind == 1 else AnyOf
            return combiner(*(build(depth - 1) for _ in range(rng.randrange(1, 4))))

        for _ in range(25):
            _assert_identical(packed_store, scan_store, build(3))

    def test_weighted_mean(self, packed_store, scan_store):
        values = [
            lambda r: r.positions.get("rc4"),
            lambda r: r.positions.get("aead"),
            lambda r: float(r.suite_count),
            lambda r: None,  # no rows -> None on every tier
        ]
        for value in values:
            for month in scan_store.months():
                assert packed_store.weighted_mean(
                    month, value
                ) == scan_store.weighted_mean(month, value)


class TestComposites:
    def test_semantics(self, packed_store):
        month = packed_store.months()[0]
        est = lambda r: r.established  # noqa: E731
        # Empty All is vacuously true, empty AnyOf vacuously false.
        assert packed_store.fraction(month, All()) == 1.0
        assert packed_store.weight_where(month, AnyOf()) == 0.0
        # Complement partitions the weight exactly.
        assert packed_store.weight_where(month, est) + packed_store.weight_where(
            month, Not(est)
        ) == pytest.approx(packed_store.total_weight(month))

    def test_simplify_to_index(self):
        # Not over an indexed boolean predicate is itself indexable.
        assert Not(ESTABLISHED).simplify() == Established(False)
        assert Not(Not(ESTABLISHED)).simplify() == ESTABLISHED
        inner = NegotiatedVersion("TLSv12")
        assert All(inner).simplify() is inner
        assert AnyOf(inner).simplify() is inner

    def test_indexable_composites_match_scan(self, packed_store, scan_store):
        for predicate in (
            Not(ESTABLISHED),
            All(NegotiatedVersion("TLSv12")),
            AnyOf(Established(False)),
            Not(Not(ESTABLISHED)),
        ):
            _assert_identical(packed_store, scan_store, predicate)

    def test_non_simplifiable_composites_match_scan(self, packed_store, scan_store):
        mixed = AnyOf(NegotiatedVersion("TLSv12"), lambda r: "rc4" in r.advertised)
        _assert_identical(packed_store, scan_store, mixed)
        _assert_identical(packed_store, scan_store, Not(mixed), within=ESTABLISHED)


class TestGuardedFallback:
    """Predicates the templates cannot answer must scan — and still agree."""

    def test_weight_reader_falls_back(self, packed_store, scan_store):
        PERF.reset()
        predicate = lambda r: r.weight > 0.5  # noqa: E731
        _assert_identical(packed_store, scan_store, predicate)
        assert PERF.scan_fallbacks > 0

    def test_month_reader_falls_back(self, packed_store, scan_store):
        predicate = lambda r: r.month.year >= 2015  # noqa: E731
        _assert_identical(packed_store, scan_store, predicate)

    def test_day_reader_falls_back(self, packed_store, scan_store):
        predicate = lambda r: r.day is not None  # noqa: E731
        _assert_identical(packed_store, scan_store, predicate)

    def test_raising_predicate_falls_back(self, packed_store, scan_store):
        # Guarded evaluation treats *any* template failure as "scan".
        predicate = lambda r: r.positions["rc4"] >= 0  # noqa: E731  (KeyError-prone)
        try:
            expected = scan_store.monthly_fraction(predicate)
        except KeyError:
            pytest.skip("predicate raises on the scan tier too")
        assert packed_store.monthly_fraction(predicate) == expected


class TestEscapeHatch:
    def test_use_index_false_disables_shape_tier(self, packed_store, scan_store):
        packed_store.use_index = False
        PERF.reset()
        _assert_identical(packed_store, scan_store, lambda r: r.established)
        assert PERF.shape_path_hits == 0
        assert PERF.shape_evals == 0

    def test_shape_templates_gated(self, packed_store):
        month = packed_store.months()[0]
        assert packed_store.shape_templates(month) is not None
        assert packed_store.packed_columns(month) is not None
        packed_store.use_index = False
        assert packed_store.shape_templates(month) is None
        assert packed_store.packed_columns(month) is None


class TestStoreLifecycles:
    """Fresh-packed vs cache-warm vs post-resume stores all agree."""

    def test_cache_warm_store(self, packed_store, scan_store, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = "f" * 64
        assert dataset_cache.save_store(packed_store, key) is not None
        warm = dataset_cache.load_store(key)
        assert warm is not None
        for factory in SHAPE_PREDICATES[:5]:
            _assert_identical(warm, scan_store, factory(), within=ESTABLISHED)
        PERF.reset()
        warm.fraction(warm.months()[0], lambda r: r.established)
        assert PERF.shape_path_hits == 1

    def test_post_resume_store(self, payload, scan_store):
        # The resume path re-attaches one partition per month, possibly
        # twice (idempotent re-adoption after a checkpoint replay).
        resumed = NotaryStore()
        for part in split_by_month(payload).values():
            resumed.attach_packed(PackedDataset(part), idempotent=True)
            resumed.attach_packed(PackedDataset(part), idempotent=True)
        assert resumed.months() == scan_store.months()
        for factory in SHAPE_PREDICATES[:5]:
            _assert_identical(resumed, scan_store, factory())
        for name, fig in figures.FIGURE_GENERATORS.items():
            assert fig(resumed) == fig(scan_store), name

    def test_montecarlo_day_months_stay_correct(self, montecarlo_store):
        # Day-resolution months carry a day column; the shape tier must
        # decline them (templates pin day=None) yet answers stay exact.
        reference = NotaryStore()
        reference.extend(montecarlo_store.records())
        reference.use_index = False
        packed = NotaryStore()
        packed.attach_packed(PackedDataset(pack_records(montecarlo_store.records())))
        month = packed.months()[0]
        assert packed.shape_templates(month) is None
        for factory in SHAPE_PREDICATES[:4]:
            _assert_identical(packed, reference, factory(), within=ESTABLISHED)


class TestTransientMaterialization:
    def test_records_keeps_month_packed(self, packed_store):
        month = packed_store.months()[0]
        records = packed_store.records(month)
        assert records
        assert month in packed_store._packed
        assert month in packed_store._mat_cache
        # Repeat reads come from the materialization cache, not a rebuild
        # (``records`` hands out defensive copies of one cached list).
        assert packed_store._month_records(month) is packed_store._month_records(
            month
        )
        assert packed_store.records(month) == records

    def test_materialize_cache_is_bounded(self, packed_store):
        packed_store.materialize_cache_months = 2
        for month in packed_store.months()[:4]:
            packed_store.records(month)
        assert len(packed_store._mat_cache) <= 2
        assert all(m in packed_store._packed for m in packed_store.months())

    def test_mutation_still_materializes_permanently(self, packed_store):
        month = packed_store.months()[0]
        record = packed_store.records(month)[0]
        packed_store.add(record)
        assert month not in packed_store._packed
        assert month not in packed_store._mat_cache

    def test_shape_answers_after_scan_traffic(self, packed_store, scan_store):
        # Interleaving scans (fallback predicates) with shape queries
        # must not degrade the shape tier.
        weight_reader = lambda r: r.weight >= 0.0  # noqa: E731
        for month in packed_store.months()[:3]:
            packed_store.fraction(month, weight_reader)
        PERF.reset()
        _assert_identical(packed_store, scan_store, lambda r: r.established)
        assert PERF.shape_path_hits > 0


class TestBatchedFigures:
    def test_evaluate_all_matches_individual(self, packed_store, scan_store):
        batched = figures.evaluate_all(packed_store)
        assert set(batched) == set(figures.FIGURE_GENERATORS)
        for name, fig in figures.FIGURE_GENERATORS.items():
            assert batched[name] == fig(packed_store), name
            assert batched[name] == fig(scan_store), name

    def test_months_subset(self, packed_store, scan_store):
        subset = scan_store.months()[2:5]
        for fig in figures.FIGURE_GENERATORS.values():
            assert fig(packed_store, months=subset) == fig(scan_store, months=subset)

    def test_tls13_mix_fast_path(self, late_window_store):
        scan = NotaryStore()
        scan.extend(late_window_store.records())
        scan.use_index = False
        packed = NotaryStore()
        packed.attach_packed(PackedDataset(pack_records(late_window_store.records())))
        saw_mix = False
        for month in scan.months():
            mix = figures.tls13_version_mix(packed, month)
            assert mix == figures.tls13_version_mix(scan, month)
            saw_mix = saw_mix or bool(mix)
        assert saw_mix, "late window should offer TLS 1.3"


class TestMetricsEvents:
    def _checker(self):
        spec = importlib.util.spec_from_file_location(
            "check_metrics_jsonl",
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "check_metrics_jsonl.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shape_events_pass_ci_validator(
        self, payload, tmp_path, monkeypatch
    ):
        sink = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload))  # fresh dataset: view rebuilds
        month = store.months()[0]
        store.fraction(month, lambda r: r.established)
        store.fraction(month, lambda r: r.weight > 0.5)  # forces scan_fallback
        events = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        names = {event["event"] for event in events}
        assert "shape_view_build" in names
        assert "scan_fallback" in names
        checker = self._checker()
        last_ts: dict[int, float] = {}
        for event in events:
            assert checker.check_record(event, last_ts) is None, event

    @pytest.mark.skipif(not vector.available(), reason="numpy unavailable")
    def test_vector_events_pass_ci_validator(
        self, payload, tmp_path, monkeypatch
    ):
        sink = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload))  # fresh dataset: view rebuilds
        month = store.months()[0]
        store.fraction(month, MODERN)  # vector hit -> view_build event
        store.fraction(month, lambda r: r.established)  # -> compile_miss
        events = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        outcomes = {
            event["outcome"]
            for event in events
            if event["event"] == "vector_path"
        }
        assert {"view_build", "compile_miss"} <= outcomes
        checker = self._checker()
        last_ts: dict[int, float] = {}
        for event in events:
            assert checker.check_record(event, last_ts) is None, event


@pytest.mark.skipif(not vector.available(), reason="numpy unavailable")
class TestVectorTier:
    """Three-way differential: vector ≡ shape ≡ scan, byte-identical."""

    def _stores(self, dataset) -> tuple[NotaryStore, NotaryStore]:
        vectorized = NotaryStore()
        vectorized.attach_packed(dataset)
        shaped = NotaryStore()
        shaped.attach_packed(dataset)
        shaped.use_vector = False
        return vectorized, shaped

    def _assert_three_way(self, dataset, scan, predicate, *, within=None):
        vectorized, shaped = self._stores(dataset)
        for month in scan.months():
            expected = scan.fraction(month, predicate, within)
            assert vectorized.fraction(month, predicate, within) == expected
            assert shaped.fraction(month, predicate, within) == expected
            if within is None:
                expected = scan.weight_where(month, predicate)
                assert vectorized.weight_where(month, predicate) == expected
                assert shaped.weight_where(month, predicate) == expected

    def test_structured_leaves(self, dataset, scan_store):
        for factory in STRUCTURED_LEAVES:
            self._assert_three_way(dataset, scan_store, factory())
            self._assert_three_way(
                dataset, scan_store, factory(), within=ESTABLISHED
            )

    def test_structured_within(self, dataset, scan_store):
        # A non-marker structured ``within`` exercises restrict_weights.
        self._assert_three_way(
            dataset, scan_store, MODERN, within=Advertises("cbc")
        )

    def test_randomized_structured_composites(self, dataset, scan_store):
        rng = random.Random(20260808)

        def build(depth: int):
            if depth == 0 or rng.random() < 0.4:
                return rng.choice(STRUCTURED_LEAVES)()
            kind = rng.randrange(3)
            if kind == 0:
                return Not(build(depth - 1))
            combiner = All if kind == 1 else AnyOf
            return combiner(*(build(depth - 1) for _ in range(rng.randrange(1, 4))))

        PERF.reset()
        for _ in range(25):
            self._assert_three_way(dataset, scan_store, build(3))
        assert PERF.vector_path_hits > 0

    def test_weighted_mean_positionof(self, dataset, scan_store):
        vectorized, shaped = self._stores(dataset)
        PERF.reset()
        for tag in ("rc4", "aead", "cbc", "no-such-tag"):
            value = PositionOf(tag)
            for month in scan_store.months():
                expected = scan_store.weighted_mean(month, value)
                assert vectorized.weighted_mean(month, value) == expected
                assert shaped.weighted_mean(month, value) == expected
        assert PERF.vector_path_hits > 0

    def test_vector_tier_actually_served(self, dataset, scan_store):
        vectorized, _ = self._stores(dataset)
        months = scan_store.months()
        PERF.reset()
        for month in months:
            vectorized.fraction(month, MODERN, ESTABLISHED)
        assert PERF.vector_path_hits == len(months)
        assert PERF.shape_path_hits == 0
        assert PERF.scan_fallbacks == 0

    def test_use_vector_false_disables_only_vector(self, dataset, scan_store):
        _, shaped = self._stores(dataset)
        PERF.reset()
        for month in scan_store.months():
            assert shaped.fraction(month, MODERN) == scan_store.fraction(
                month, MODERN
            )
        assert PERF.vector_path_hits == 0
        assert PERF.shape_path_hits > 0

    def test_cache_warm_store(self, packed_store, scan_store, tmp_path, monkeypatch):
        # The shape matrix rides the persistent dataset cache: a warm
        # load must serve the vector tier with zero recomputation.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = "e" * 64
        assert dataset_cache.save_store(packed_store, key) is not None
        warm = dataset_cache.load_store(key)
        assert warm is not None
        PERF.reset()
        for month in scan_store.months():
            assert warm.fraction(month, MODERN, ESTABLISHED) == scan_store.fraction(
                month, MODERN, ESTABLISHED
            )
        assert PERF.vector_path_hits > 0

    def test_post_resume_store(self, payload, scan_store):
        # split_by_month partitions predate the matrix field; the view
        # rebuilds it lazily and still answers identically.
        resumed = NotaryStore()
        for part in split_by_month(payload).values():
            resumed.attach_packed(PackedDataset(part), idempotent=True)
        PERF.reset()
        for month in scan_store.months():
            assert resumed.fraction(month, MODERN, ESTABLISHED) == scan_store.fraction(
                month, MODERN, ESTABLISHED
            )
            assert resumed.weighted_mean(
                month, PositionOf("aead")
            ) == scan_store.weighted_mean(month, PositionOf("aead"))
        assert PERF.vector_path_hits > 0

    def test_day_months_skip_vector(self, montecarlo_store):
        reference = NotaryStore()
        reference.extend(montecarlo_store.records())
        reference.use_index = False
        packed = NotaryStore()
        packed.attach_packed(PackedDataset(pack_records(montecarlo_store.records())))
        PERF.reset()
        for month in reference.months():
            assert packed.fraction(month, MODERN, ESTABLISHED) == reference.fraction(
                month, MODERN, ESTABLISHED
            )
        assert PERF.vector_path_hits == 0


class TestNumpyAbsentFallback:
    def test_queries_fall_back_to_shape_tier(self, dataset, scan_store, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)
        assert not vector.available()
        store = NotaryStore()
        store.attach_packed(dataset)
        PERF.reset()
        for month in scan_store.months():
            assert store.fraction(month, MODERN, ESTABLISHED) == scan_store.fraction(
                month, MODERN, ESTABLISHED
            )
            assert store.weighted_mean(
                month, PositionOf("aead")
            ) == scan_store.weighted_mean(month, PositionOf("aead"))
        assert PERF.vector_path_hits == 0
        assert PERF.vector_compile_misses == 0  # tier off, not missing
        assert PERF.shape_path_hits > 0

    @pytest.mark.skipif(not vector.available(), reason="numpy unavailable")
    def test_scan_fold_pure_python_matches_numpy(self, scan_store, monkeypatch):
        """The scan oracle's vectorized weight fold is bit-equal to the
        pure-Python fold it replaced (PR 10 satellite: the last per-row
        scan hot loop) — on the fold helper directly and through every
        scan-path query method."""
        from repro.notary import store as store_mod

        rng = random.Random(1918)
        weights = [rng.random() * rng.choice([1e-9, 1.0, 1e9]) for _ in range(5000)]
        with_numpy = store_mod._scan_fold(weights)
        months = scan_store.months()
        vec = {
            m: (
                scan_store.total_weight(m),
                scan_store.fraction(m, MODERN, ESTABLISHED),
                scan_store.weight_where(m, Advertises("rc4")),
                scan_store.weighted_mean(m, PositionOf("aead")),
            )
            for m in months
        }
        monkeypatch.setattr(vector, "_np", None)
        assert not vector.available()
        assert store_mod._scan_fold(weights) == with_numpy
        for m in months:
            assert vec[m] == (
                scan_store.total_weight(m),
                scan_store.fraction(m, MODERN, ESTABLISHED),
                scan_store.weight_where(m, Advertises("rc4")),
                scan_store.weighted_mean(m, PositionOf("aead")),
            )

    def test_changepoint_pure_python_matches_numpy(self):
        import datetime as dt

        from repro.core import changepoint

        series = [
            (dt.date(2014, month, 1), value)
            for month, value in zip(
                range(1, 13),
                [1.0, 1.0, 1.1, 1.2, 1.5, 2.5, 4.0, 5.0, 5.5, 5.7, 5.8, 5.85],
            )
        ]
        with_numpy = changepoint.detect_changepoint(series)
        saved = changepoint.np
        changepoint.np = None
        try:
            pure = changepoint.detect_changepoint(series)
        finally:
            changepoint.np = saved
        assert pure.month == with_numpy.month
        assert pure.direction == with_numpy.direction
        assert pure.curvature == pytest.approx(with_numpy.curvature, abs=1e-12)


class TestIncrementalIngest:
    """add_batch on a new month never re-packs sealed months."""

    def _split(self, small_window_store):
        months = small_window_store.months()
        sealed, fresh = months[:-2], months[-2:]
        payload = pack_records(
            [r for m in sealed for r in small_window_store.records(m)]
        )
        return sealed, fresh, payload

    def test_append_counts_zero_pack_invocations(
        self, small_window_store, monkeypatch
    ):
        sealed, fresh, payload = self._split(small_window_store)
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload))
        # Warm the fast tiers on sealed months first: the appends must
        # extend compiled state, not invalidate sealed months' answers.
        warm = [store.fraction(m, MODERN, ESTABLISHED) for m in sealed]

        calls = []
        real = partition.pack_records
        monkeypatch.setattr(
            partition,
            "pack_records",
            lambda *a, **k: calls.append(1) or real(*a, **k),
        )
        for month in fresh:
            store.add_batch(month, small_window_store.records(month))
        assert calls == [], "incremental ingest must not invoke pack_records"

        assert sorted(store.months()) == small_window_store.months()
        assert [store.fraction(m, MODERN, ESTABLISHED) for m in sealed] == warm
        # Both fresh months share the one store-local ingest dataset.
        assert store._packed[fresh[0]] is store._packed[fresh[1]]
        assert store._packed[fresh[0]] is store._ingest

    def test_ingested_months_answer_identically(self, small_window_store):
        _sealed, fresh, payload = self._split(small_window_store)
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload))
        for month in fresh:
            store.add_batch(month, small_window_store.records(month))
        scan = NotaryStore()
        scan.extend(small_window_store.records())
        scan.use_index = False
        for factory in SHAPE_PREDICATES[:4]:
            _assert_identical(store, scan, factory(), within=ESTABLISHED)
        _assert_identical(store, scan, MODERN)
        for month in fresh:
            assert store.weighted_mean(
                month, PositionOf("aead")
            ) == scan.weighted_mean(month, PositionOf("aead"))
        assert len(store) == len(scan)

    def test_colliding_month_materializes(self, small_window_store):
        sealed, _fresh, payload = self._split(small_window_store)
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload))
        month = sealed[0]
        extra = small_window_store.records(month)[:5]
        store.add_batch(month, extra)
        assert month not in store._packed
        assert store._ingest is None
        assert len(store.records(month)) == len(
            small_window_store.records(month)
        ) + len(extra)

    def test_first_batch_into_empty_store_keeps_record_lists(
        self, small_window_store
    ):
        # No packed months attached -> the classic list-append behaviour
        # (fresh extend() stores are not silently packed).
        month = small_window_store.months()[0]
        store = NotaryStore()
        store.add_batch(month, small_window_store.records(month))
        assert store._ingest is None
        assert month in store._by_month


class TestMaterializeLruBound:
    def test_env_override_tightens_bound(self, packed_store, monkeypatch):
        monkeypatch.setenv("REPRO_MATERIALIZE_LRU", "1")
        for month in packed_store.months()[:3]:
            packed_store.records(month)
        assert len(packed_store._mat_cache) == 1

    def test_invalid_env_falls_back_to_default(self, packed_store, monkeypatch):
        monkeypatch.setenv("REPRO_MATERIALIZE_LRU", "not-a-number")
        for month in packed_store.months()[:3]:
            packed_store.records(month)
        assert len(packed_store._mat_cache) <= packed_store.materialize_cache_months

    def test_churn_logs_a_diagnostic(self, packed_store, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_MATERIALIZE_LRU", "1")
        months = packed_store.months()[:2]
        with caplog.at_level(logging.INFO, logger="repro.notary.store"):
            packed_store.records(months[0])
            packed_store.records(months[1])  # evicts months[0]
            packed_store.records(months[0])  # churn: re-materialization
        assert any("materialize LRU churn" in r.message for r in caplog.records)
