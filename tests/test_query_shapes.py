"""Differential suite for the shape-compiled query tier (PR 5).

Every test here enforces one contract: the three answer tiers — index
counters, shape-compiled evaluation, and the record scan — return
**byte-identical** floats.  Comparisons are exact ``==``, never
``pytest.approx``: the shape tier is only admissible because its folds
replay the scan's addition sequence, and an approx assertion would hide
a regression in that discipline.

Coverage map (mirrors ISSUE.md's satellite #3):

* randomized composite predicates over shape fields, seeded RNG;
* ``All`` / ``AnyOf`` / ``Not`` semantics, including simplify-to-index;
* ``weighted_mean`` and ``within=`` restrictions (indexed + lambda);
* fresh-packed vs cache-warm vs post-resume (``split_by_month``) stores;
* guarded fallback for predicates reading ``month`` / ``weight`` / day;
* the ``use_index = False`` escape hatch disabling *both* fast tiers;
* transient materialization (packed months survive ``records()``);
* batched figure evaluation and the packed figure fast paths;
* metrics events (``shape_view_build`` / ``scan_fallback``) passing the
  CI validator in ``scripts/check_metrics_jsonl.py``.
"""

from __future__ import annotations

import importlib.util
import json
import random
from pathlib import Path

import pytest

from repro.core import figures
from repro.engine import cache as dataset_cache
from repro.engine.partition import PackedDataset, pack_records, split_by_month
from repro.engine.perf import PERF
from repro.notary import (
    ESTABLISHED,
    All,
    AnyOf,
    Established,
    NegotiatedVersion,
    Not,
    NotaryStore,
)

# ---------------------------------------------------------------------------
# Fixtures: one packed dataset shared module-wide (the templates and
# shape summaries memoize on it, as they would in a real session), a
# scan-only reference store, and fresh packed stores per test.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def payload(small_window_store):
    return pack_records(small_window_store.records())


@pytest.fixture(scope="module")
def dataset(payload):
    return PackedDataset(payload)


@pytest.fixture(scope="module")
def scan_store(small_window_store):
    """Reference store: same records, every answer from the record scan."""
    store = NotaryStore()
    store.extend(small_window_store.records())
    store.use_index = False
    return store


@pytest.fixture()
def packed_store(dataset):
    store = NotaryStore()
    store.attach_packed(dataset)
    return store


# Predicates built only from shape fields — the guarded-template tier
# must answer all of these.  Each entry is a *factory* so every test
# gets a fresh closure (compilation memoizes per code object; fresh
# closures keep the differential honest about compile costs too).
SHAPE_PREDICATES = [
    lambda: (lambda r: r.established),
    lambda: (lambda r: r.negotiated_version == "TLSv12"),
    lambda: (lambda r: "rc4" in r.advertised),
    lambda: (lambda r: r.suite_count > 20),
    lambda: (lambda r: r.client_family == "Chrome"),
    lambda: (lambda r: r.established and r.negotiated_kex is not None),
    lambda: (lambda r: bool(r.offered_tls13)),
    lambda: (lambda r: (r.server_port or 0) == 443),
    lambda: (lambda r: r.client_in_database and not r.established),
]


def _assert_identical(packed, scan, predicate, *, within=None):
    """Exact three-way agreement on every month plus the batched helper."""
    months = scan.months()
    assert packed.months() == months
    for month in months:
        assert packed.fraction(month, predicate, within) == scan.fraction(
            month, predicate, within
        )
        if within is None:
            assert packed.weight_where(month, predicate) == scan.weight_where(
                month, predicate
            )
    assert packed.monthly_fraction(predicate, within) == scan.monthly_fraction(
        predicate, within
    )


class TestShapeScanIdentity:
    def test_simple_predicates(self, packed_store, scan_store):
        for factory in SHAPE_PREDICATES:
            _assert_identical(packed_store, scan_store, factory())

    def test_within_established(self, packed_store, scan_store):
        for factory in SHAPE_PREDICATES:
            _assert_identical(
                packed_store, scan_store, factory(), within=ESTABLISHED
            )

    def test_within_lambda(self, packed_store, scan_store):
        within = lambda r: r.suite_count > 10  # noqa: E731
        for factory in SHAPE_PREDICATES[:4]:
            _assert_identical(packed_store, scan_store, factory(), within=within)

    def test_shape_tier_actually_served(self, packed_store, scan_store):
        PERF.reset()
        _assert_identical(packed_store, scan_store, lambda r: r.established)
        assert PERF.shape_path_hits > 0
        assert PERF.scan_fallbacks == 0

    def test_randomized_composites(self, packed_store, scan_store):
        rng = random.Random(20260806)

        def build(depth: int):
            if depth == 0 or rng.random() < 0.4:
                return rng.choice(SHAPE_PREDICATES)()
            kind = rng.randrange(3)
            if kind == 0:
                return Not(build(depth - 1))
            combiner = All if kind == 1 else AnyOf
            return combiner(*(build(depth - 1) for _ in range(rng.randrange(1, 4))))

        for _ in range(25):
            _assert_identical(packed_store, scan_store, build(3))

    def test_weighted_mean(self, packed_store, scan_store):
        values = [
            lambda r: r.positions.get("rc4"),
            lambda r: r.positions.get("aead"),
            lambda r: float(r.suite_count),
            lambda r: None,  # no rows -> None on every tier
        ]
        for value in values:
            for month in scan_store.months():
                assert packed_store.weighted_mean(
                    month, value
                ) == scan_store.weighted_mean(month, value)


class TestComposites:
    def test_semantics(self, packed_store):
        month = packed_store.months()[0]
        est = lambda r: r.established  # noqa: E731
        # Empty All is vacuously true, empty AnyOf vacuously false.
        assert packed_store.fraction(month, All()) == 1.0
        assert packed_store.weight_where(month, AnyOf()) == 0.0
        # Complement partitions the weight exactly.
        assert packed_store.weight_where(month, est) + packed_store.weight_where(
            month, Not(est)
        ) == pytest.approx(packed_store.total_weight(month))

    def test_simplify_to_index(self):
        # Not over an indexed boolean predicate is itself indexable.
        assert Not(ESTABLISHED).simplify() == Established(False)
        assert Not(Not(ESTABLISHED)).simplify() == ESTABLISHED
        inner = NegotiatedVersion("TLSv12")
        assert All(inner).simplify() is inner
        assert AnyOf(inner).simplify() is inner

    def test_indexable_composites_match_scan(self, packed_store, scan_store):
        for predicate in (
            Not(ESTABLISHED),
            All(NegotiatedVersion("TLSv12")),
            AnyOf(Established(False)),
            Not(Not(ESTABLISHED)),
        ):
            _assert_identical(packed_store, scan_store, predicate)

    def test_non_simplifiable_composites_match_scan(self, packed_store, scan_store):
        mixed = AnyOf(NegotiatedVersion("TLSv12"), lambda r: "rc4" in r.advertised)
        _assert_identical(packed_store, scan_store, mixed)
        _assert_identical(packed_store, scan_store, Not(mixed), within=ESTABLISHED)


class TestGuardedFallback:
    """Predicates the templates cannot answer must scan — and still agree."""

    def test_weight_reader_falls_back(self, packed_store, scan_store):
        PERF.reset()
        predicate = lambda r: r.weight > 0.5  # noqa: E731
        _assert_identical(packed_store, scan_store, predicate)
        assert PERF.scan_fallbacks > 0

    def test_month_reader_falls_back(self, packed_store, scan_store):
        predicate = lambda r: r.month.year >= 2015  # noqa: E731
        _assert_identical(packed_store, scan_store, predicate)

    def test_day_reader_falls_back(self, packed_store, scan_store):
        predicate = lambda r: r.day is not None  # noqa: E731
        _assert_identical(packed_store, scan_store, predicate)

    def test_raising_predicate_falls_back(self, packed_store, scan_store):
        # Guarded evaluation treats *any* template failure as "scan".
        predicate = lambda r: r.positions["rc4"] >= 0  # noqa: E731  (KeyError-prone)
        try:
            expected = scan_store.monthly_fraction(predicate)
        except KeyError:
            pytest.skip("predicate raises on the scan tier too")
        assert packed_store.monthly_fraction(predicate) == expected


class TestEscapeHatch:
    def test_use_index_false_disables_shape_tier(self, packed_store, scan_store):
        packed_store.use_index = False
        PERF.reset()
        _assert_identical(packed_store, scan_store, lambda r: r.established)
        assert PERF.shape_path_hits == 0
        assert PERF.shape_evals == 0

    def test_shape_templates_gated(self, packed_store):
        month = packed_store.months()[0]
        assert packed_store.shape_templates(month) is not None
        assert packed_store.packed_columns(month) is not None
        packed_store.use_index = False
        assert packed_store.shape_templates(month) is None
        assert packed_store.packed_columns(month) is None


class TestStoreLifecycles:
    """Fresh-packed vs cache-warm vs post-resume stores all agree."""

    def test_cache_warm_store(self, packed_store, scan_store, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = "f" * 64
        assert dataset_cache.save_store(packed_store, key) is not None
        warm = dataset_cache.load_store(key)
        assert warm is not None
        for factory in SHAPE_PREDICATES[:5]:
            _assert_identical(warm, scan_store, factory(), within=ESTABLISHED)
        PERF.reset()
        warm.fraction(warm.months()[0], lambda r: r.established)
        assert PERF.shape_path_hits == 1

    def test_post_resume_store(self, payload, scan_store):
        # The resume path re-attaches one partition per month, possibly
        # twice (idempotent re-adoption after a checkpoint replay).
        resumed = NotaryStore()
        for part in split_by_month(payload).values():
            resumed.attach_packed(PackedDataset(part), idempotent=True)
            resumed.attach_packed(PackedDataset(part), idempotent=True)
        assert resumed.months() == scan_store.months()
        for factory in SHAPE_PREDICATES[:5]:
            _assert_identical(resumed, scan_store, factory())
        for name, fig in figures.FIGURE_GENERATORS.items():
            assert fig(resumed) == fig(scan_store), name

    def test_montecarlo_day_months_stay_correct(self, montecarlo_store):
        # Day-resolution months carry a day column; the shape tier must
        # decline them (templates pin day=None) yet answers stay exact.
        reference = NotaryStore()
        reference.extend(montecarlo_store.records())
        reference.use_index = False
        packed = NotaryStore()
        packed.attach_packed(PackedDataset(pack_records(montecarlo_store.records())))
        month = packed.months()[0]
        assert packed.shape_templates(month) is None
        for factory in SHAPE_PREDICATES[:4]:
            _assert_identical(packed, reference, factory(), within=ESTABLISHED)


class TestTransientMaterialization:
    def test_records_keeps_month_packed(self, packed_store):
        month = packed_store.months()[0]
        records = packed_store.records(month)
        assert records
        assert month in packed_store._packed
        assert month in packed_store._mat_cache
        # Repeat reads come from the materialization cache, not a rebuild
        # (``records`` hands out defensive copies of one cached list).
        assert packed_store._month_records(month) is packed_store._month_records(
            month
        )
        assert packed_store.records(month) == records

    def test_materialize_cache_is_bounded(self, packed_store):
        packed_store.materialize_cache_months = 2
        for month in packed_store.months()[:4]:
            packed_store.records(month)
        assert len(packed_store._mat_cache) <= 2
        assert all(m in packed_store._packed for m in packed_store.months())

    def test_mutation_still_materializes_permanently(self, packed_store):
        month = packed_store.months()[0]
        record = packed_store.records(month)[0]
        packed_store.add(record)
        assert month not in packed_store._packed
        assert month not in packed_store._mat_cache

    def test_shape_answers_after_scan_traffic(self, packed_store, scan_store):
        # Interleaving scans (fallback predicates) with shape queries
        # must not degrade the shape tier.
        weight_reader = lambda r: r.weight >= 0.0  # noqa: E731
        for month in packed_store.months()[:3]:
            packed_store.fraction(month, weight_reader)
        PERF.reset()
        _assert_identical(packed_store, scan_store, lambda r: r.established)
        assert PERF.shape_path_hits > 0


class TestBatchedFigures:
    def test_evaluate_all_matches_individual(self, packed_store, scan_store):
        batched = figures.evaluate_all(packed_store)
        assert set(batched) == set(figures.FIGURE_GENERATORS)
        for name, fig in figures.FIGURE_GENERATORS.items():
            assert batched[name] == fig(packed_store), name
            assert batched[name] == fig(scan_store), name

    def test_months_subset(self, packed_store, scan_store):
        subset = scan_store.months()[2:5]
        for fig in figures.FIGURE_GENERATORS.values():
            assert fig(packed_store, months=subset) == fig(scan_store, months=subset)

    def test_tls13_mix_fast_path(self, late_window_store):
        scan = NotaryStore()
        scan.extend(late_window_store.records())
        scan.use_index = False
        packed = NotaryStore()
        packed.attach_packed(PackedDataset(pack_records(late_window_store.records())))
        saw_mix = False
        for month in scan.months():
            mix = figures.tls13_version_mix(packed, month)
            assert mix == figures.tls13_version_mix(scan, month)
            saw_mix = saw_mix or bool(mix)
        assert saw_mix, "late window should offer TLS 1.3"


class TestMetricsEvents:
    def _checker(self):
        spec = importlib.util.spec_from_file_location(
            "check_metrics_jsonl",
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "check_metrics_jsonl.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_shape_events_pass_ci_validator(
        self, payload, tmp_path, monkeypatch
    ):
        sink = tmp_path / "metrics.jsonl"
        monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload))  # fresh dataset: view rebuilds
        month = store.months()[0]
        store.fraction(month, lambda r: r.established)
        store.fraction(month, lambda r: r.weight > 0.5)  # forces scan_fallback
        events = [
            json.loads(line)
            for line in sink.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        names = {event["event"] for event in events}
        assert "shape_view_build" in names
        assert "scan_fallback" in names
        checker = self._checker()
        last_ts: dict[int, float] = {}
        for event in events:
            assert checker.check_record(event, last_ts) is None, event
