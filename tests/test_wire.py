"""Wire-codec tests: unit round trips, framing, malformed-input handling,
and hypothesis round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tls.extensions import Extension, ExtensionType
from repro.tls.messages import ClientHello, ServerHello, decode_u16_list, encode_u16_list
from repro.tls.wire import (
    DecodeError,
    decode_client_hello,
    decode_server_hello,
    decode_sni_body,
    encode_client_hello,
    encode_server_hello,
    encode_sni_body,
    frame_client_hello,
    frame_server_hello,
    materialize,
    parse_client_hello_record,
    parse_server_hello_record,
    unframe_handshake,
)

_HELLO = ClientHello(
    legacy_version=0x0303,
    random=bytes(range(32)),
    session_id=b"\x01\x02",
    cipher_suites=(0xC02F, 0x002F, 0x000A),
    compression_methods=(0,),
    extensions=(Extension(int(ExtensionType.SERVER_NAME), encode_sni_body("example.org")),),
    supported_groups=(29, 23),
    ec_point_formats=(0,),
    supported_versions=(0x0304, 0x0303),
)


class TestClientHelloCodec:
    def test_roundtrip_equals_materialized(self):
        decoded = decode_client_hello(encode_client_hello(_HELLO))
        assert decoded == materialize(_HELLO)

    def test_encode_decode_idempotent_on_bytes(self):
        wire = encode_client_hello(_HELLO)
        assert encode_client_hello(decode_client_hello(wire)) == wire

    def test_structured_fields_survive(self):
        decoded = decode_client_hello(encode_client_hello(_HELLO))
        assert decoded.cipher_suites == (0xC02F, 0x002F, 0x000A)
        assert decoded.supported_groups == (29, 23)
        assert decoded.ec_point_formats == (0,)
        assert decoded.supported_versions == (0x0304, 0x0303)

    def test_minimal_hello(self):
        hello = ClientHello(cipher_suites=(0x002F,))
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded.cipher_suites == (0x002F,)
        assert decoded.extensions == ()

    def test_bad_random_length(self):
        with pytest.raises(ValueError):
            encode_client_hello(ClientHello(random=b"short"))

    def test_session_id_too_long(self):
        with pytest.raises(ValueError):
            encode_client_hello(ClientHello(random=b"\0" * 32, session_id=b"x" * 33))

    def test_materialize_preserves_extension_order(self):
        hello = ClientHello(
            random=b"\0" * 32,
            cipher_suites=(0x002F,),
            extensions=(
                Extension(int(ExtensionType.SUPPORTED_GROUPS)),
                Extension(int(ExtensionType.SERVER_NAME)),
                Extension(int(ExtensionType.EC_POINT_FORMATS)),
            ),
            supported_groups=(23,),
            ec_point_formats=(0,),
        )
        materialized = materialize(hello)
        assert [e.ext_type for e in materialized.extensions] == [
            int(ExtensionType.SUPPORTED_GROUPS),
            int(ExtensionType.SERVER_NAME),
            int(ExtensionType.EC_POINT_FORMATS),
        ]
        assert materialized.extensions[0].data  # body filled in place

    def test_materialize_appends_missing_extension(self):
        hello = ClientHello(
            random=b"\0" * 32, cipher_suites=(0x002F,), supported_groups=(23,)
        )
        materialized = materialize(hello)
        assert materialized.extensions[-1].ext_type == int(ExtensionType.SUPPORTED_GROUPS)


class TestMalformedInput:
    def test_truncated(self):
        wire = encode_client_hello(_HELLO)
        with pytest.raises(DecodeError):
            decode_client_hello(wire[:-3])

    def test_trailing_garbage(self):
        wire = encode_client_hello(_HELLO)
        with pytest.raises(DecodeError):
            decode_client_hello(wire + b"\x00")

    def test_empty(self):
        with pytest.raises(DecodeError):
            decode_client_hello(b"")

    def test_empty_compression_methods(self):
        hello = ClientHello(random=b"\0" * 32, cipher_suites=(0x002F,))
        wire = bytearray(encode_client_hello(hello))
        # compression length byte sits after version+random+sid_len+suites.
        index = 2 + 32 + 1 + 2 + 2 * 1
        assert wire[index] == 1
        wire[index] = 0
        del wire[index + 1]
        with pytest.raises(DecodeError):
            decode_client_hello(bytes(wire))

    @pytest.mark.parametrize("cut", [1, 5, 20, 40])
    def test_truncations_never_crash_differently(self, cut):
        wire = encode_client_hello(_HELLO)
        with pytest.raises(DecodeError):
            decode_client_hello(wire[:cut])


class TestServerHelloCodec:
    def test_roundtrip(self):
        hello = ServerHello(
            version=0x0303,
            random=b"\x5a" * 32,
            session_id=b"abc",
            cipher_suite=0xC02F,
            extensions=(Extension(int(ExtensionType.RENEGOTIATION_INFO), b""),),
        )
        decoded = decode_server_hello(encode_server_hello(hello))
        assert decoded.cipher_suite == 0xC02F
        assert decoded.session_id == b"abc"
        assert decoded.has_extension(ExtensionType.RENEGOTIATION_INFO)

    def test_selected_version_encoded_as_extension(self):
        hello = ServerHello(
            version=0x0303, random=b"\0" * 32, cipher_suite=0x1301,
            selected_version=0x0304, selected_group=29,
        )
        decoded = decode_server_hello(encode_server_hello(hello))
        assert decoded.selected_version == 0x0304
        assert decoded.selected_group == 29
        assert decoded.negotiated_version == 0x0304

    def test_malformed_supported_versions(self):
        hello = ServerHello(
            version=0x0303, random=b"\0" * 32, cipher_suite=0x1301,
            extensions=(Extension(int(ExtensionType.SUPPORTED_VERSIONS), b"\x03"),),
        )
        with pytest.raises(DecodeError):
            decode_server_hello(encode_server_hello(hello))


class TestFraming:
    def test_client_record_roundtrip(self):
        record = frame_client_hello(_HELLO)
        parsed = parse_client_hello_record(record)
        assert parsed.cipher_suites == _HELLO.cipher_suites

    def test_server_record_roundtrip(self):
        hello = ServerHello(version=0x0303, random=b"\0" * 32, cipher_suite=0x002F)
        parsed = parse_server_hello_record(frame_server_hello(hello))
        assert parsed.cipher_suite == 0x002F

    def test_record_header_fields(self):
        record = frame_client_hello(_HELLO)
        assert record[0] == 22  # handshake
        handshake_type, record_version, _ = unframe_handshake(record)
        assert handshake_type == 1
        assert record_version == 0x0303

    def test_wrong_record_type(self):
        record = bytearray(frame_client_hello(_HELLO))
        record[0] = 23
        with pytest.raises(DecodeError):
            unframe_handshake(bytes(record))

    def test_wrong_handshake_type(self):
        record = frame_server_hello(
            ServerHello(version=0x0303, random=b"\0" * 32, cipher_suite=0x002F)
        )
        with pytest.raises(DecodeError):
            parse_client_hello_record(record)

    def test_ssl3_record_version_capped(self):
        hello = ClientHello(legacy_version=0x0300, random=b"\0" * 32, cipher_suites=(0x0005,))
        record = frame_client_hello(hello)
        _, record_version, _ = unframe_handshake(record)
        assert record_version == 0x0300


class TestSni:
    def test_roundtrip(self):
        assert decode_sni_body(encode_sni_body("a.example.com")) == "a.example.com"

    def test_bad_name_type(self):
        body = bytearray(encode_sni_body("x.org"))
        body[2] = 1
        with pytest.raises(DecodeError):
            decode_sni_body(bytes(body))


class TestU16List:
    def test_roundtrip(self):
        values = (0, 1, 0xFFFF, 0xC02F)
        assert decode_u16_list(encode_u16_list(values)) == values

    def test_odd_length_raises(self):
        with pytest.raises(ValueError):
            decode_u16_list(b"\x00\x01\x02")


# ---- hypothesis properties -------------------------------------------------

_suite_lists = st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=64)
_group_lists = st.lists(st.integers(min_value=1, max_value=0xFFFE), max_size=16)


@st.composite
def client_hellos(draw):
    return ClientHello(
        legacy_version=draw(st.sampled_from([0x0300, 0x0301, 0x0302, 0x0303])),
        random=draw(st.binary(min_size=32, max_size=32)),
        session_id=draw(st.binary(max_size=32)),
        cipher_suites=tuple(draw(_suite_lists)),
        compression_methods=(0,),
        supported_groups=tuple(draw(_group_lists)),
        ec_point_formats=tuple(draw(st.lists(st.integers(0, 2), max_size=3))),
    )


class TestWireProperties:
    @given(client_hellos())
    @settings(max_examples=150)
    def test_encode_decode_encode_is_identity(self, hello):
        wire = encode_client_hello(hello)
        assert encode_client_hello(decode_client_hello(wire)) == wire

    @given(client_hellos())
    @settings(max_examples=150)
    def test_decode_preserves_suites_and_groups(self, hello):
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded.cipher_suites == hello.cipher_suites
        assert decoded.supported_groups == hello.supported_groups

    @given(client_hellos(), st.binary(min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_trailing_bytes_always_rejected(self, hello, garbage):
        wire = encode_client_hello(hello) + garbage
        with pytest.raises(DecodeError):
            decode_client_hello(wire)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash(self, data):
        # Decoding arbitrary bytes either succeeds or raises DecodeError —
        # never any other exception (fuzz safety for a passive monitor).
        try:
            decode_client_hello(data)
        except DecodeError:
            pass
