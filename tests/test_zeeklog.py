"""Zeek ssl.log export/import round-trip tests."""

import datetime as dt
import io

import pytest

from repro.notary.zeeklog import (
    export_ssl_log,
    import_ssl_log,
    read_ssl_log,
    write_ssl_log,
)


@pytest.fixture(scope="module")
def exported(small_window_store, tmp_path_factory):
    path = tmp_path_factory.mktemp("zeek") / "ssl.log"
    rows = export_ssl_log(small_window_store, path)
    return path, rows, small_window_store


class TestExport:
    def test_row_count_matches_store(self, exported):
        path, rows, store = exported
        assert rows == len(store)

    def test_header_structure(self, exported):
        path, _, _ = exported
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#separator")
        fields_line = next(l for l in lines if l.startswith("#fields"))
        types_line = next(l for l in lines if l.startswith("#types"))
        assert len(fields_line.split("\t")) == len(types_line.split("\t"))
        assert lines[-1] == "#close"

    def test_no_ground_truth_labels_in_log(self, exported):
        path, _, _ = exported
        text = path.read_text()
        # A real monitor would not know these; the log must not either.
        assert "GridFTP" not in text
        assert "Chrome" not in text.replace("TLS_", "")


class TestRoundTrip:
    def test_import_preserves_counts(self, exported):
        path, rows, _ = exported
        store = import_ssl_log(path)
        assert len(store) == rows

    def test_import_preserves_monthly_fractions(self, exported):
        path, _, original = exported
        restored = import_ssl_log(path)
        month = dt.date(2015, 1, 1)
        for predicate in (
            lambda r: r.negotiated_mode_class == "RC4",
            lambda r: r.negotiated_mode_class == "AEAD",
            lambda r: r.advertises("3des"),
            lambda r: r.heartbeat_negotiated,
        ):
            assert restored.fraction(month, predicate, lambda r: r.established) == (
                pytest.approx(
                    original.fraction(month, predicate, lambda r: r.established),
                    abs=1e-9,
                )
            )

    def test_import_preserves_fingerprints(self, exported):
        path, _, original = exported
        restored = import_ssl_log(path)
        month = dt.date(2015, 1, 1)
        original_fps = {
            r.fingerprint for r in original.records(month) if r.fingerprint
        }
        restored_fps = {
            r.fingerprint for r in restored.records(month) if r.fingerprint
        }
        assert original_fps == restored_fps

    def test_analysis_runs_on_imported_store(self, exported):
        from repro.core import figures

        path, _, _ = exported
        restored = import_ssl_log(path)
        series = figures.fig2_negotiated_modes(restored)
        assert series["AEAD"]


class TestParserErrors:
    def test_data_before_fields_rejected(self):
        bogus = io.StringIO("1.5\t-\t-\n")
        with pytest.raises(ValueError, match="before its #fields"):
            read_ssl_log(bogus)

    def test_malformed_row_rejected(self, exported):
        path, _, _ = exported
        lines = path.read_text().splitlines()
        fields_index = next(i for i, l in enumerate(lines) if l.startswith("#fields"))
        data_index = next(
            i for i, l in enumerate(lines) if i > fields_index and not l.startswith("#")
        )
        lines[data_index] = lines[data_index] + "\textra\tcells"
        with pytest.raises(ValueError, match="malformed"):
            read_ssl_log(io.StringIO("\n".join(lines)))

    def test_empty_log(self):
        header = (
            "#separator \\x09\n#fields\tts\tweight\n#types\ttime\tdouble\n#close\n"
        )
        store = read_ssl_log(io.StringIO(header))
        assert len(store) == 0
