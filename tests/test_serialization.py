"""Fingerprint-database JSON serialization tests."""

import json

import pytest

from repro.clients.profile import CATEGORY_BROWSERS, CATEGORY_LIBRARIES
from repro.core.database import FingerprintDatabase, FingerprintLabel
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import dumps, load, loads, save

FP_A = Fingerprint.from_raw((0xC02F, 0x002F), (0, 10, 11), (23,), (0,))
FP_B = Fingerprint.from_raw((0x002F,), (0,), (), ())

LABEL_A = FingerprintLabel("SomeBrowser", "1-3", CATEGORY_BROWSERS, library="NSS")
LABEL_B = FingerprintLabel("Android SDK", "5.0", CATEGORY_LIBRARIES, library="Android SDK")


def sample_db():
    db = FingerprintDatabase()
    db.add(FP_A, LABEL_A)
    db.add(FP_B, LABEL_B)
    return db


class TestRoundTrip:
    def test_dumps_loads(self):
        restored = loads(dumps(sample_db()))
        assert len(restored) == 2
        assert restored.match(FP_A) == LABEL_A
        assert restored.match(FP_B) == LABEL_B

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "fps.json"
        save(sample_db(), path)
        restored = load(path)
        assert restored.match(FP_A) == LABEL_A

    def test_stable_output(self):
        assert dumps(sample_db()) == dumps(sample_db())

    def test_json_structure(self):
        document = json.loads(dumps(sample_db()))
        assert document["format_version"] == 1
        entry = document["fingerprints"][0]
        assert {"digest", "fingerprint", "software", "category"} <= set(entry)

    def test_default_database_roundtrips(self, fingerprint_db):
        restored = loads(dumps(fingerprint_db))
        assert len(restored) == len(fingerprint_db)
        assert restored.count_by_category() == fingerprint_db.count_by_category()


class TestValidation:
    def test_unknown_version_rejected(self):
        document = json.loads(dumps(sample_db()))
        document["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            loads(json.dumps(document))

    def test_digest_mismatch_rejected(self):
        document = json.loads(dumps(sample_db()))
        document["fingerprints"][0]["digest"] = "0" * 32
        with pytest.raises(ValueError, match="digest mismatch"):
            loads(json.dumps(document))

    def test_merge_applies_collision_rules(self):
        # Two dumps with the same fingerprint under different software:
        # loading the concatenation removes it (software/software rule).
        db1 = FingerprintDatabase()
        db1.add(FP_A, FingerprintLabel("ProgramA", "1", CATEGORY_BROWSERS))
        db2 = FingerprintDatabase()
        db2.add(FP_A, FingerprintLabel("ProgramB", "1", CATEGORY_BROWSERS))
        doc1 = json.loads(dumps(db1))
        doc2 = json.loads(dumps(db2))
        doc1["fingerprints"].extend(doc2["fingerprints"])
        merged = loads(json.dumps(doc1))
        assert merged.match(FP_A) is None
