"""Client-population tests: share curves, mixes, advertised fractions."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.population import ClientPopulation, ShareCurve, default_population


def curve(*points):
    return ShareCurve(tuple((dt.date.fromisoformat(d), s) for d, s in points))


class TestShareCurve:
    def test_constant_before_first_point(self):
        c = curve(("2014-01-01", 5.0), ("2015-01-01", 10.0))
        assert c.at(dt.date(2012, 1, 1)) == 5.0

    def test_constant_after_last_point(self):
        c = curve(("2014-01-01", 5.0), ("2015-01-01", 10.0))
        assert c.at(dt.date(2018, 1, 1)) == 10.0

    def test_linear_interpolation(self):
        c = curve(("2014-01-01", 0.0), ("2014-12-31", 10.0))
        mid = c.at(dt.date(2014, 7, 2))
        assert 4.5 < mid < 5.5

    def test_exact_points(self):
        c = curve(("2014-01-01", 5.0), ("2015-01-01", 10.0))
        assert c.at(dt.date(2014, 1, 1)) == 5.0
        assert c.at(dt.date(2015, 1, 1)) == 10.0

    def test_unordered_points_rejected(self):
        with pytest.raises(ValueError):
            curve(("2015-01-01", 1.0), ("2014-01-01", 2.0))

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            curve(("2014-01-01", -1.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ShareCurve(())

    @given(
        st.dates(min_value=dt.date(2010, 1, 1), max_value=dt.date(2020, 1, 1)),
    )
    @settings(max_examples=60)
    def test_interpolation_stays_in_range(self, day):
        c = curve(("2012-01-01", 2.0), ("2015-06-01", 8.0), ("2018-01-01", 4.0))
        assert 2.0 <= c.at(day) <= 8.0


class TestDefaultPopulation:
    @pytest.fixture(scope="class")
    def pop(self):
        return default_population()

    @pytest.mark.parametrize(
        "day", ["2012-02-01", "2013-07-01", "2015-06-01", "2018-03-01"]
    )
    def test_mix_normalized(self, pop, day):
        mix = pop.mix(dt.date.fromisoformat(day))
        assert sum(w for _, w in mix) == pytest.approx(1.0)
        assert all(w > 0 for _, w in mix)

    def test_family_lookup(self, pop):
        assert pop.family("Chrome").name == "Chrome"
        with pytest.raises(KeyError):
            pop.family("Netscape")

    def test_families_unique(self, pop):
        names = [f.name for f in pop.families()]
        assert len(names) == len(set(names))

    def test_export_advertisement_declines(self, pop):
        early = pop.advertised_fraction(dt.date(2012, 2, 1), lambda s: s.is_export)
        late = pop.advertised_fraction(dt.date(2018, 3, 1), lambda s: s.is_export)
        assert early > 0.20  # §5.5: 28.19% in 2012
        assert late < 0.05   # §5.5: 1.03% in 2018
        assert late < early / 4

    def test_export_decline_monotonic_yearly(self, pop):
        values = [
            pop.advertised_fraction(dt.date(year, 6, 1), lambda s: s.is_export)
            for year in range(2012, 2019)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_rc4_advertisement_near_universal_until_2015(self, pop):
        assert pop.advertised_fraction(dt.date(2014, 6, 1), lambda s: s.is_rc4) > 0.85

    def test_rc4_advertisement_drops_after_removals(self, pop):
        assert pop.advertised_fraction(dt.date(2018, 3, 1), lambda s: s.is_rc4) < 0.35

    def test_3des_stays_above_69_percent(self, pop):
        # §5.6: still offered in more than 69% of connections in 2018.
        assert pop.advertised_fraction(dt.date(2018, 3, 1), lambda s: s.is_3des) > 0.65

    def test_cbc_always_above_99_percent_until_2016(self, pop):
        # Figure 3 caption: total CBC-mode is always above 99%.
        for day in ("2012-06-01", "2014-06-01", "2016-01-01"):
            assert pop.advertised_fraction(
                dt.date.fromisoformat(day), lambda s: s.is_cbc
            ) > 0.97

    def test_anon_spike_mid_2015(self, pop):
        # §6.2: jumped from 5.8% to 12.9% in two months in mid-2015.
        before = pop.advertised_fraction(dt.date(2015, 4, 1), lambda s: s.is_anonymous)
        peak = pop.advertised_fraction(dt.date(2015, 7, 1), lambda s: s.is_anonymous)
        assert before < 0.08
        assert peak > 0.10
        assert peak > before * 1.6

    def test_fs_client_support_high_from_start(self, pop):
        # §6.3.1: >80% of clients supported FS suites already in 2012.
        assert pop.advertised_fraction(
            dt.date(2012, 2, 1), lambda s: s.forward_secret
        ) > 0.8

    def test_aead_advertisement_rises(self, pop):
        early = pop.advertised_fraction(dt.date(2013, 1, 1), lambda s: s.is_aead)
        late = pop.advertised_fraction(dt.date(2018, 3, 1), lambda s: s.is_aead)
        assert early < 0.2
        assert late > 0.8
