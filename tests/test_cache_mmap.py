"""Differential suite for the mmap-format dataset cache and the spill path.

The cache grew a second on-disk format (magic ``RPM1``): a compressed
metadata envelope up front, raw column bytes behind it, loaded by
memory-mapping the region instead of unpickling the dataset.  The suite
pins the format's contracts:

* a store loaded from an mmap blob answers the randomized composite
  query suite (the same generator the serve tests hammer with)
  **identically** to a store loaded from a legacy pickle blob of the
  same dataset — and both match the original store exactly;
* the legacy format still round-trips (``REPRO_CACHE_FORMAT=pickle``)
  and old blobs load fine with the mmap format enabled — migration is
  a cache rebuild, never a flag day;
* ``peek_meta`` serves run metadata from either format;
* torn/corrupted blobs (truncated region, flipped column byte, damaged
  envelope) are rejected *and deleted*, never half-loaded;
* ``BlobSpill`` — the out-of-core adoption sink behind ``--scale`` —
  produces a payload whose query answers are byte-identical to the
  in-memory merge of the same chunk payloads, seals through
  ``save_store`` via the region-splice path, and survives idempotent
  re-adoption.
"""

from __future__ import annotations

import datetime as dt
import json
import random

import pytest

from repro.core import figures
from repro.engine import cache as dataset_cache
from repro.engine.partition import (
    PackedDataset,
    merge_packed,
    pack_records,
    split_by_month,
)
from repro.notary.store import NotaryStore
from repro.serve import wire
from tests.test_serve import _random_query

ALL_FIGURES = (
    figures.fig1_negotiated_versions,
    figures.fig2_negotiated_modes,
    figures.fig3_advertised_modes,
    figures.fig4_fingerprint_support,
    figures.fig5_cipher_positions,
    figures.fig6_rc4_advertised,
    figures.fig7_weak_advertised,
    figures.fig8_key_exchange,
    figures.fig9_negotiated_aead,
    figures.fig10_advertised_aead,
)

KEY = "f" * 64
META = {"start": "2014-06-01", "end": "2015-06-01", "records": 0}


@pytest.fixture()
def _tmp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


@pytest.fixture()
def packed_store(small_window_store):
    store = NotaryStore()
    store.attach_packed(
        PackedDataset(pack_records(small_window_store.records()))
    )
    return store


def _save_mmap(store, key=KEY):
    path = dataset_cache.save_store(store, key, META)
    assert path is not None
    assert dataset_cache._sniff_magic(path) == b"RPM1"
    return path


def _save_pickle(store, monkeypatch, key=KEY):
    monkeypatch.setenv("REPRO_CACHE_FORMAT", "pickle")
    try:
        path = dataset_cache.save_store(store, key, META)
    finally:
        monkeypatch.delenv("REPRO_CACHE_FORMAT")
    assert path is not None
    assert dataset_cache._sniff_magic(path) != b"RPM1"
    return path


def _assert_stores_identical(a, b, rng_seed=0x5CA1E):
    """Exact equality on every figure, the randomized composite-query
    suite, and full record materialization."""
    assert a.months() == b.months()
    assert len(a) == len(b)
    for figure in ALL_FIGURES:
        assert figure(a) == figure(b), figure.__name__
    rng = random.Random(rng_seed)
    months = a.months()
    for _ in range(48):
        spec = _random_query(rng, months)
        left = json.loads(json.dumps(wire.execute_query(a, spec)))
        right = json.loads(json.dumps(wire.execute_query(b, spec)))
        assert left == right, f"query diverged across load paths: {spec}"
    # Scan-tier materialization from mapped columns is exact too.
    assert a.records() == b.records()


class TestMmapVsPickle:
    def test_mmap_load_equals_pickle_load_equals_original(
        self, _tmp_cache, packed_store, monkeypatch
    ):
        _save_mmap(packed_store, "a" * 64)
        _save_pickle(packed_store, monkeypatch, "b" * 64)
        mmap_store = dataset_cache.load_store("a" * 64)
        pickle_store = dataset_cache.load_store("b" * 64)
        assert mmap_store is not None and pickle_store is not None
        _assert_stores_identical(mmap_store, pickle_store)
        _assert_stores_identical(mmap_store, packed_store, rng_seed=0xB0B)

    def test_legacy_blob_loads_with_mmap_enabled(
        self, _tmp_cache, packed_store, monkeypatch
    ):
        # Migration: a blob written by the pickle format loads without
        # REPRO_CACHE_FORMAT set (the reader sniffs, it never assumes).
        _save_pickle(packed_store, monkeypatch)
        warm = dataset_cache.load_store(KEY)
        assert warm is not None
        assert figures.fig1_negotiated_versions(warm) == (
            figures.fig1_negotiated_versions(packed_store)
        )

    def test_mmap_blob_loads_with_pickle_format_requested(
        self, _tmp_cache, packed_store, monkeypatch
    ):
        # And the reverse: the env knob only steers *writes*.
        _save_mmap(packed_store)
        monkeypatch.setenv("REPRO_CACHE_FORMAT", "pickle")
        warm = dataset_cache.load_store(KEY)
        assert warm is not None
        assert len(warm) == len(packed_store)

    def test_peek_meta_serves_both_formats(
        self, _tmp_cache, packed_store, monkeypatch
    ):
        for save in (
            lambda: _save_mmap(packed_store),
            lambda: _save_pickle(packed_store, monkeypatch),
        ):
            save()
            peek = dataset_cache.peek_meta(KEY)
            assert peek is not None
            assert peek["key"] == KEY
            assert peek["meta"]["start"] == META["start"]
            assert peek["months"] == packed_store.months()
            assert peek["indexes"]  # figure-ready counters ride along


class TestMmapCorruption:
    def _saved(self, store):
        return _save_mmap(store)

    def test_truncated_region_rejected_and_deleted(
        self, _tmp_cache, packed_store
    ):
        path = self._saved(packed_store)
        raw = path.read_bytes()
        path.write_bytes(raw[:-40])
        assert dataset_cache.load_store(KEY) is None
        assert not path.exists()

    def test_flipped_column_byte_fails_crc(
        self, _tmp_cache, packed_store, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_VERIFY", "1")
        path = self._saved(packed_store)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # last byte lives in the column region
        path.write_bytes(bytes(raw))
        assert dataset_cache.load_store(KEY) is None
        assert not path.exists()

    def test_damaged_envelope_rejected_and_deleted(
        self, _tmp_cache, packed_store
    ):
        path = self._saved(packed_store)
        raw = bytearray(path.read_bytes())
        raw[dataset_cache._MMAP_HEADER.size + 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert dataset_cache.load_store(KEY) is None
        assert not path.exists()

    def test_peek_meta_rejects_damaged_envelope(
        self, _tmp_cache, packed_store
    ):
        path = self._saved(packed_store)
        raw = bytearray(path.read_bytes())
        raw[dataset_cache._MMAP_HEADER.size + 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert dataset_cache.peek_meta(KEY) is None
        assert not path.exists()


class TestBlobSpill:
    """The out-of-core adoption sink, exercised the way the parallel
    runner drives it: per-chunk payloads in, mmap-backed payload out."""

    @pytest.fixture()
    def chunk_payloads(self, small_window_store):
        # One payload per month — the runner's chunk granularity at scale.
        split = split_by_month(pack_records(small_window_store.records()))
        return [split[month] for month in sorted(split)]

    def test_spill_answers_equal_in_memory_merge(
        self, _tmp_cache, chunk_payloads
    ):
        spill = dataset_cache.BlobSpill()
        for payload in chunk_payloads:
            spill.add_payload(payload)
        spilled = NotaryStore()
        spilled.attach_packed(PackedDataset(spill.finish_payload()))
        merged = NotaryStore()
        merged.attach_packed(
            PackedDataset(merge_packed(chunk_payloads))
        )
        _assert_stores_identical(spilled, merged)

    def test_spill_backed_store_seals_and_reloads(
        self, _tmp_cache, chunk_payloads, packed_store
    ):
        spill = dataset_cache.BlobSpill()
        for payload in chunk_payloads:
            spill.add_payload(payload)
        store = NotaryStore()
        store.attach_packed(PackedDataset(spill.finish_payload()))
        assert store.packed_spill() is spill  # save takes the splice path
        _save_mmap(store)
        warm = dataset_cache.load_store(KEY)
        assert warm is not None
        _assert_stores_identical(warm, packed_store, rng_seed=0xD15C)

    def test_re_adding_a_spilled_month_is_idempotent(self, chunk_payloads):
        spill = dataset_cache.BlobSpill()
        spill.add_payload(chunk_payloads[0])
        sealed = spill.columns_len
        spill.add_payload(chunk_payloads[0])
        assert spill.columns_len == sealed
        assert len(spill.descriptors) == 1

    def test_day_carrying_months_cannot_spill(self, montecarlo_store):
        payload = pack_records(montecarlo_store.records())
        spill = dataset_cache.BlobSpill()
        with pytest.raises(ValueError, match="day-carrying"):
            spill.add_payload(payload)

    def test_wrong_partition_format_rejected(self):
        spill = dataset_cache.BlobSpill()
        with pytest.raises(ValueError, match="unsupported partition format"):
            spill.add_payload({"format": 999, "shapes": [], "months": {}})

    def test_empty_spill_finishes_to_empty_payload(self):
        spill = dataset_cache.BlobSpill()
        payload = spill.finish_payload()
        assert payload["months"] == {}
        assert payload["shapes"] == []
