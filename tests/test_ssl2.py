"""SSL 2.0 CLIENT-HELLO codec tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tls.ssl2 import (
    CIPHER_KIND_NAMES,
    MSG_CLIENT_HELLO,
    SSL2_VERSION,
    SSL_CK_DES_192_EDE3_CBC_WITH_MD5,
    SSL_CK_RC4_128_EXPORT40_WITH_MD5,
    SSL_CK_RC4_128_WITH_MD5,
    Ssl2ClientHello,
    Ssl2DecodeError,
    decode_client_hello,
    encode_client_hello,
    looks_like_ssl2,
)

_HELLO = Ssl2ClientHello(
    cipher_kinds=(
        SSL_CK_RC4_128_WITH_MD5,
        SSL_CK_DES_192_EDE3_CBC_WITH_MD5,
        SSL_CK_RC4_128_EXPORT40_WITH_MD5,
    ),
    session_id=b"\x01\x02\x03",
    challenge=bytes(range(16)),
)


class TestCodec:
    def test_roundtrip(self):
        assert decode_client_hello(encode_client_hello(_HELLO)) == _HELLO

    def test_record_header_high_bit(self):
        wire = encode_client_hello(_HELLO)
        assert wire[0] & 0x80
        assert int.from_bytes(wire[:2], "big") & 0x7FFF == len(wire) - 2

    def test_message_type(self):
        assert encode_client_hello(_HELLO)[2] == MSG_CLIENT_HELLO

    def test_version_field(self):
        wire = encode_client_hello(_HELLO)
        assert int.from_bytes(wire[3:5], "big") == SSL2_VERSION

    def test_kind_names(self):
        names = _HELLO.kind_names()
        assert names[0] == "SSL_CK_RC4_128_WITH_MD5"
        assert "unknown" not in " ".join(names)

    def test_unknown_kind_named(self):
        hello = Ssl2ClientHello(cipher_kinds=(0x0F0080,))
        assert hello.kind_names() == ("unknown_0x0f0080",)

    def test_offers_export(self):
        assert _HELLO.offers_export
        assert not Ssl2ClientHello(cipher_kinds=(SSL_CK_RC4_128_WITH_MD5,)).offers_export

    def test_challenge_length_bounds(self):
        with pytest.raises(ValueError):
            encode_client_hello(Ssl2ClientHello(challenge=b"short"))
        with pytest.raises(ValueError):
            encode_client_hello(Ssl2ClientHello(challenge=b"x" * 33))


class TestDecodeErrors:
    def test_truncated_header(self):
        with pytest.raises(Ssl2DecodeError):
            decode_client_hello(b"\x80")

    def test_missing_high_bit(self):
        wire = bytearray(encode_client_hello(_HELLO))
        wire[0] &= 0x7F
        with pytest.raises(Ssl2DecodeError):
            decode_client_hello(bytes(wire))

    def test_length_mismatch(self):
        wire = encode_client_hello(_HELLO)
        with pytest.raises(Ssl2DecodeError):
            decode_client_hello(wire[:-1])

    def test_wrong_message_type(self):
        wire = bytearray(encode_client_hello(_HELLO))
        wire[2] = 0x02
        with pytest.raises(Ssl2DecodeError):
            decode_client_hello(bytes(wire))

    def test_spec_length_not_multiple_of_three(self):
        wire = bytearray(encode_client_hello(_HELLO))
        wire[6] = 0x04  # cipher-spec length low byte
        with pytest.raises(Ssl2DecodeError):
            decode_client_hello(bytes(wire))

    @given(st.binary(max_size=80))
    @settings(max_examples=150)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_client_hello(data)
        except Ssl2DecodeError:
            pass


class TestSniffer:
    def test_recognizes_ssl2(self):
        assert looks_like_ssl2(encode_client_hello(_HELLO))

    def test_rejects_tls_record(self):
        from repro.tls.messages import ClientHello
        from repro.tls.wire import frame_client_hello

        tls = frame_client_hello(
            ClientHello(random=b"\0" * 32, cipher_suites=(0x002F,))
        )
        assert not looks_like_ssl2(tls)

    def test_rejects_short_input(self):
        assert not looks_like_ssl2(b"\x80\x03\x01")


class TestProperties:
    @given(
        st.lists(st.sampled_from(sorted(CIPHER_KIND_NAMES)), min_size=1, max_size=7, unique=True),
        st.binary(max_size=16),
        st.binary(min_size=16, max_size=32),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, kinds, session_id, challenge):
        hello = Ssl2ClientHello(
            cipher_kinds=tuple(kinds), session_id=session_id, challenge=challenge
        )
        assert decode_client_hello(encode_client_hello(hello)) == hello
