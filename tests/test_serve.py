"""Differential suite for the resident query server.

The core claim under test: an answer fetched over HTTP is *exactly*
the answer the same store gives in process — not approximately, not to
six decimals, but equal after the JSON round trip (the stdlib encoder's
repr-based float formatting is shortest-round-trip, so every double
survives the wire bit-for-bit).  The suite asserts that for every
figure, for a randomized population of composite predicate queries,
and — the concurrency half — under a 32-thread hammer where every
response is compared against its precomputed in-process twin and any
5xx fails the test.

Ports are never hard-coded: every server here binds port 0 and the
tests read the kernel-chosen port off the handle.
"""

from __future__ import annotations

import datetime as dt
import http.client
import json
import random
import socket
import threading

import pytest

from repro.core.figures import FIGURE_GENERATORS
from repro.engine import executors
from repro.engine.partition import PackedDataset, pack_records
from repro.notary.store import NotaryStore
from repro.serve import wire
from repro.serve.server import start_server

#: The hammer's shape (satellite requirement: >= 32 threads x >= 50).
HAMMER_THREADS = 32
HAMMER_REQUESTS_PER_THREAD = 50


@pytest.fixture(scope="module")
def served_store(small_window_store):
    """The 13-month window packed — the state a warm cache load leaves
    the store in, which is what ``repro serve`` actually serves."""
    store = NotaryStore()
    store.attach_packed(
        PackedDataset(pack_records(small_window_store.records()))
    )
    return store


@pytest.fixture(scope="module")
def server(served_store):
    handle = start_server(store=served_store)
    yield handle
    handle.close()


def _open(handle) -> http.client.HTTPConnection:
    conn = http.client.HTTPConnection(
        "127.0.0.1", handle.port, timeout=30.0
    )
    conn.connect()
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


def _request(conn, method, path, body=None):
    """(status, decoded-JSON payload) over an existing connection."""
    payload = None if body is None else json.dumps(body).encode("utf-8")
    conn.request(
        method,
        path,
        body=payload,
        headers={} if payload is None else {"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def _get(handle, path):
    conn = _open(handle)
    try:
        return _request(conn, "GET", path)
    finally:
        conn.close()


def _post(handle, path, body):
    conn = _open(handle)
    try:
        return _request(conn, "POST", path, body)
    finally:
        conn.close()


# ---- differential: figures ---------------------------------------------------


def test_every_figure_matches_in_process_exactly(server, served_store):
    """Each figure over HTTP equals the in-process series — exact float
    equality, every month, every label, all ten figures."""
    for name, generator in sorted(FIGURE_GENERATORS.items()):
        status, remote = _get(server, f"/figures/{name}")
        assert status == 200, (name, remote)
        assert remote["api"] == wire.API_VERSION
        assert remote["figure"] == name
        local = wire.encode_series(generator(served_store))
        assert remote["series"] == local, f"{name} diverged over HTTP"
        # Paranoia: the equality above must have compared real floats,
        # not two empty structures.
        assert any(points for points in remote["series"].values())


def test_figure_index_lists_all_figures(server):
    status, payload = _get(server, "/figures")
    assert status == 200
    assert payload["figures"] == sorted(FIGURE_GENERATORS)


# ---- differential: randomized composite predicates ---------------------------


def _random_predicate(rng: random.Random, depth: int = 0) -> dict:
    """A random wire-encoded predicate; leaf-heavy as depth grows."""
    leaves = [
        lambda: {"op": "version", "value": rng.choice(
            ["TLSv12", "TLSv10", "SSLv3", "TLSv13"])},
        lambda: {"op": "mode", "value": rng.choice(["AEAD", "CBC", "RC4"])},
        lambda: {"op": "kex", "value": rng.choice(["ECDHE", "DHE", "RSA"])},
        lambda: {"op": "advertises", "value": rng.choice(
            ["rc4", "aead", "cbc", "3des"])},
        lambda: {"op": "established", "value": rng.random() < 0.5},
    ]
    if depth >= 3 or rng.random() < 0.5:
        return rng.choice(leaves)()
    op = rng.choice(["all", "any", "not"])
    if op == "not":
        return {"op": "not", "arg": _random_predicate(rng, depth + 1)}
    return {
        "op": op,
        "args": [
            _random_predicate(rng, depth + 1)
            for _ in range(rng.randint(1, 3))
        ],
    }


def _random_query(rng: random.Random, months) -> dict:
    month = rng.choice([None, rng.choice(months).isoformat()])
    kind = rng.choice(["fraction", "fraction", "weight", "total_weight",
                       "weighted_mean"])
    if kind == "total_weight":
        return {"kind": kind, "month": month}
    if kind == "weighted_mean":
        return {
            "kind": kind,
            "month": month,
            "value": {"op": "position_of",
                      "tag": rng.choice(["aead", "rc4", "cbc"])},
        }
    spec = {"kind": kind, "month": month,
            "predicate": _random_predicate(rng)}
    if kind == "fraction" and rng.random() < 0.5:
        spec["within"] = _random_predicate(rng)
    return spec


def test_randomized_queries_match_in_process_exactly(server, served_store):
    """Dozens of randomized composite queries: the HTTP answer equals
    the in-process answer on the identical store, exactly."""
    rng = random.Random(0xC0A6E)
    months = served_store.months()
    for _ in range(48):
        spec = _random_query(rng, months)
        status, remote = _post(server, "/query", spec)
        assert status == 200, (spec, remote)
        local = json.loads(
            json.dumps(
                {"api": wire.API_VERSION,
                 **wire.execute_query(served_store, spec)}
            )
        )
        assert remote == local, f"query diverged over HTTP: {spec}"


# ---- concurrency hammer ------------------------------------------------------


def _run_hammer(handle, served_store) -> dict:
    """The 32-thread differential hammer, shared by the threaded-path
    and query-pool servers: every response must equal its precomputed
    in-process twin and no response may be a 5xx.  Returns the server's
    closing ``/stats`` payload for mode-specific assertions."""
    month = served_store.months()[3].isoformat()
    single = {
        "kind": "fraction",
        "predicate": {"op": "mode", "value": "AEAD"},
        "within": {"op": "established", "value": True},
        "month": month,
    }
    series = {
        "kind": "weight",
        "predicate": {
            "op": "all",
            "args": [
                {"op": "established", "value": True},
                {"op": "not", "arg": {"op": "version", "value": "SSLv3"}},
            ],
        },
        "month": None,
    }
    fig1 = wire.encode_series(FIGURE_GENERATORS["fig1"](served_store))
    workload = [
        ("GET", "/healthz", None, None),  # payload varies (gauges) — status only
        ("POST", "/query", single,
         {"api": 1, **wire.execute_query(served_store, single)}),
        ("GET", "/figures/fig1", None,
         {"api": 1, "figure": "fig1", "series": fig1}),
        ("POST", "/query", series,
         {"api": 1, **wire.execute_query(served_store, series)}),
    ]
    # Round-trip the expectations through JSON once so the comparison
    # is wire-form vs wire-form (it changes nothing for repr-floats —
    # which is the point — but keeps int/float key coercion honest).
    workload = [
        (m, p, b, e if e is None else json.loads(json.dumps(e)))
        for m, p, b, e in workload
    ]

    failures: list[str] = []
    statuses: list[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(HAMMER_THREADS)

    def worker(worker_id: int) -> None:
        conn = _open(handle)
        barrier.wait()
        local_statuses = []
        local_failures = []
        for i in range(HAMMER_REQUESTS_PER_THREAD):
            method, path, body, expected = workload[
                (worker_id + i) % len(workload)
            ]
            try:
                status, payload = _request(conn, method, path, body)
            except OSError as exc:
                local_failures.append(f"transport error on {path}: {exc!r}")
                conn.close()
                conn = _open(handle)
                continue
            local_statuses.append(status)
            if status >= 500:
                local_failures.append(f"5xx on {path}: {payload}")
            elif expected is not None and payload != expected:
                local_failures.append(f"divergent payload on {path}")
        conn.close()
        with lock:
            statuses.extend(local_statuses)
            failures.extend(local_failures)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(HAMMER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not failures, failures[:5]
    assert len(statuses) == HAMMER_THREADS * HAMMER_REQUESTS_PER_THREAD
    assert all(status == 200 for status in statuses)
    # The requests genuinely overlapped on the server.
    _, stats = _get(handle, "/stats")
    assert stats["server"]["max_in_flight"] > 1
    return stats


def test_hammer_32_threads_byte_identical_zero_5xx(server, served_store):
    stats = _run_hammer(server, served_store)
    # Inside the *query phase* specifically: with the memo caches
    # warm, index/vector/shape-tier queries bypass the store lock
    # (double-checked locking), so store reads themselves must have
    # run concurrently — the serialize-everything lock this PR removed
    # would pin this gauge at 1.
    assert stats["server"]["max_queries_in_flight"] > 1


# ---- differential: the multi-process query pool ------------------------------


@pytest.fixture(scope="module")
def mp_server(served_store):
    """The same store served through ``--query-workers 2`` replicas."""
    if not executors.fork_available():
        pytest.skip("query pool needs the fork start method")
    handle = start_server(store=served_store, query_workers=2)
    assert handle.server.query_pool is not None
    yield handle
    handle.close()


def test_mp_hammer_byte_identical_zero_5xx(mp_server, served_store):
    """The identical differential hammer against the query-pool server:
    pooled answers must be byte-for-byte the in-process ones, and the
    pool must actually have dispatched."""
    stats = _run_hammer(mp_server, served_store)
    assert stats["counters"]["query_pool_dispatches"] > 0
    assert stats["server"]["max_queries_in_flight"] > 1


def test_mp_every_figure_matches_in_process_exactly(mp_server, served_store):
    for name, generator in sorted(FIGURE_GENERATORS.items()):
        status, payload = _get(mp_server, f"/figures/{name}")
        assert status == 200
        expected = json.loads(
            json.dumps(wire.encode_series(generator(served_store)))
        )
        assert payload["series"] == expected, name


def test_mp_malformed_query_answers_400_across_pool(mp_server):
    status, payload = _post(mp_server, "/query", {"kind": "nope"})
    assert status == 400
    assert "error" in payload


def test_mp_perf_counters_reconcile(mp_server, served_store):
    """A replica's per-query counter delta folds into the parent: the
    parent's tier counters move exactly as an in-thread run would."""
    month = served_store.months()[2].isoformat()
    body = {
        "kind": "fraction",
        "predicate": {
            "op": "any",
            "args": [
                {"op": "version", "value": "TLSv12"},
                {"op": "version", "value": "TLSv13"},
            ],
        },
        "month": month,
    }
    _, before = _get(mp_server, "/stats")
    status, _payload = _post(mp_server, "/query", body)
    assert status == 200
    _, after = _get(mp_server, "/stats")
    delta_dispatch = (
        after["counters"]["query_pool_dispatches"]
        - before["counters"]["query_pool_dispatches"]
    )
    assert delta_dispatch >= 1
    moved = sum(
        after["counters"][name] - before["counters"][name]
        for name in ("vector_path_hits", "shape_path_hits", "scan_fallbacks")
    )
    assert moved >= 1, "replica tier counters did not fold into the parent"


# ---- error paths -------------------------------------------------------------


@pytest.mark.parametrize(
    "body",
    [
        {"kind": "nope"},
        {"kind": "fraction", "predicate": {"op": "warp", "value": "x"}},
        {"kind": "fraction", "predicate": {"op": "version"}},
        {"kind": "fraction", "predicate": {"op": "kex", "value": "TELEPATHY"}},
        {"kind": "fraction", "predicate": {"op": "all", "args": "not-a-list"}},
        {"kind": "weight", "predicate": {"op": "established"},
         "within": {"op": "established"}},
        {"kind": "fraction", "predicate": {"op": "established"},
         "month": "not-a-date"},
        {"kind": "fraction", "predicate": {"op": "established"},
         "surprise": 1},
        {"kind": "weighted_mean", "value": {"op": "entropy"}},
        ["not", "an", "object"],
    ],
)
def test_malformed_query_answers_400(server, body):
    status, payload = _post(server, "/query", body)
    assert status == 400
    assert "error" in payload


def test_deeply_nested_predicate_answers_400(server):
    spec: dict = {"op": "established", "value": True}
    for _ in range(wire.MAX_DEPTH + 2):
        spec = {"op": "not", "arg": spec}
    status, payload = _post(
        server, "/query", {"kind": "fraction", "predicate": spec}
    )
    assert status == 400
    assert "nesting" in payload["error"]


def test_non_json_body_answers_400(server):
    conn = _open(server)
    try:
        conn.request("POST", "/query", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
    finally:
        conn.close()
    assert response.status == 400
    assert "JSON" in payload["error"]


def test_empty_body_answers_400(server):
    conn = _open(server)
    try:
        conn.request("POST", "/query")
        response = conn.getresponse()
        payload = json.loads(response.read())
    finally:
        conn.close()
    assert response.status == 400
    assert "error" in payload


def test_unknown_route_answers_404(server):
    status, payload = _get(server, "/similar-but-wrong")
    assert status == 404
    assert "error" in payload


def test_unknown_figure_answers_404(server):
    status, payload = _get(server, "/figures/fig99")
    assert status == 404
    assert "fig99" in payload["error"]


def test_wrong_method_answers_405(server):
    status, payload = _get(server, "/query")
    assert status == 405
    status, payload = _post(server, "/healthz", {})
    assert status == 405


# ---- readiness ---------------------------------------------------------------


def test_healthz_readiness_before_load(served_store):
    """The socket answers before the dataset loads: 503 while loading,
    200 (with dataset facts) once the loader finishes."""
    gate = threading.Event()

    def slow_loader():
        gate.wait(timeout=30)
        return served_store

    handle = start_server(loader=slow_loader)
    try:
        status, payload = _get(handle, "/healthz")
        assert status == 503
        assert payload["ready"] is False
        # Data endpoints also answer 503, not connection refusal.
        status, _ = _get(handle, "/figures/fig1")
        assert status == 503
        gate.set()
        assert handle.wait_ready(timeout=30)
        status, payload = _get(handle, "/healthz")
        assert status == 200
        assert payload["ready"] is True
        assert payload["records"] == len(served_store)
    finally:
        gate.set()
        handle.close()


def test_healthz_surfaces_loader_failure(served_store):
    failed = threading.Event()

    def broken_loader():
        try:
            raise RuntimeError("corrupt cache blob")
        finally:
            failed.set()

    handle = start_server(loader=broken_loader)
    try:
        assert failed.wait(timeout=30)
        # The loader thread sets load_error right after the event; poll
        # briefly rather than racing it.
        for _ in range(100):
            status, payload = _get(handle, "/healthz")
            if status == 500:
                break
            import time

            time.sleep(0.05)
        assert status == 500
        assert "corrupt cache blob" in payload["error"]
    finally:
        handle.close()


# ---- observability -----------------------------------------------------------


def test_http_requests_flow_into_metrics_sink(server, tmp_path, monkeypatch):
    sink = tmp_path / "serve.jsonl"
    monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
    _get(server, "/figures/fig2")
    _post(server, "/query",
          {"kind": "total_weight", "month": None})
    _get(server, "/no-such-route")
    # The event is emitted *after* the response is written, so the
    # handler thread can still be mid-emit when the client returns;
    # wait for all three lines before pulling the sink env back out.
    import time

    deadline = time.monotonic() + 10
    http_events: list[dict] = []
    while time.monotonic() < deadline:
        if sink.exists():
            events = [
                json.loads(line) for line in sink.read_text().splitlines()
            ]
            http_events = [e for e in events if e["event"] == "http_request"]
            if len(http_events) >= 3:
                break
        time.sleep(0.02)
    monkeypatch.delenv("REPRO_METRICS_PATH")
    assert len(http_events) == 3
    for event in http_events:
        assert event["method"] in ("GET", "POST")
        assert isinstance(event["route"], str) and event["route"]
        assert isinstance(event["status"], int)
        assert isinstance(event["duration"], float)
        assert event["duration"] >= 0
    by_route = {e["route"]: e for e in http_events}
    assert by_route["/figures/<name>"]["status"] == 200
    assert by_route["/query"]["status"] == 200
    assert by_route["<other>"]["status"] == 404
    # The tier is observed, not guessed: a served aggregate reports
    # which query tier answered it.
    assert by_route["/query"]["tier"] in (
        "index", "vector", "shape", "scan", "mixed"
    )
    # And every line satisfies the CI validator's http_request rules.
    import importlib.util
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "check_metrics_jsonl",
        Path(__file__).resolve().parent.parent
        / "scripts"
        / "check_metrics_jsonl.py",
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    last_ts: dict = {}
    for event in events:
        assert checker.check_record(event, last_ts) is None


def test_stats_endpoint_shape(server):
    from repro.cli import STATS_SCHEMA

    status, stats = _get(server, "/stats")
    assert status == 200
    assert stats["schema"] == STATS_SCHEMA
    assert stats["server"]["ready"] is True
    assert stats["server"]["requests"] >= 1
    assert stats["server"]["max_in_flight"] >= 1
    assert stats["server"]["uptime_seconds"] > 0
    assert stats["dataset"]["months"] == 13
    ledger = stats["server"]["routes"]
    assert "/stats" in ledger
    entry = ledger["/stats"]
    assert entry["count"] >= 1
    assert entry["total_seconds"] >= 0
    assert stats["counters"]["http_requests"] >= stats["server"]["requests"]


# ---- live telemetry: /metrics + sliding window -------------------------------


def _get_text(handle, path):
    """(status, content-type, raw body text) — /metrics is the one
    endpoint that does not speak JSON."""
    conn = _open(handle)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


def _load_script(name):
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "scripts" / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_metrics_endpoint_is_valid_prometheus(server):
    from repro.obs import live

    _get(server, "/figures/fig1")  # at least one request in the books
    status, content_type, text = _get_text(server, "/metrics")
    assert status == 200
    assert content_type == live.PROMETHEUS_CONTENT_TYPE
    # The CI gate's full rule set: grammar, HELP/TYPE ordering, no
    # duplicate series, histogram bucket monotonicity, +Inf == _count.
    checker = _load_script("check_prometheus_text.py")
    assert checker.check_text(text) is None
    families = live.parse_prometheus(text)
    for name in (
        "repro_http_requests_total",
        "repro_http_request_duration_seconds",
        "repro_http_window_rps",
        "repro_http_window_latency_seconds",
        "repro_in_flight",
        "repro_uptime_seconds",
    ):
        assert name in families, f"{name} missing from /metrics"
    assert (
        live.sample_value(families, "repro_http_requests_total") >= 1
    )
    histogram = families["repro_http_request_duration_seconds"]
    assert histogram["type"] == "histogram"
    # Cumulative count for the figures route covers the request above.
    count = live.sample_value(
        families,
        "repro_http_request_duration_seconds",
        {"route": "/figures/<name>", "le": "+Inf"},
    )
    assert count is not None and count >= 1


def test_metrics_rejects_non_get(server):
    status, payload = _post(server, "/metrics", {"nope": 1})
    assert status == 405
    assert payload["error"]


def test_stats_window_section_shape(server):
    _get(server, "/figures/fig1")
    _, stats = _get(server, "/stats")
    window = stats["window"]
    assert window is not None
    assert window["seconds"] > 0
    assert window["slots"] >= 1 and window["slot_seconds"] > 0
    assert window["count"] >= 1
    assert 0 <= window["error_rate"] <= 1
    assert window["p50_ms"] <= window["p95_ms"] <= window["p99_ms"]
    routes = window["routes"]
    assert "/figures/<name>" in routes
    entry = routes["/figures/<name>"]
    assert entry["count"] >= 1
    assert entry["p50_ms"] <= entry["p99_ms"]
    assert isinstance(window["tier_totals"], dict)
    # The route ledger itself is histogram-backed now (the leak fix):
    # bounded bucket counts, no per-request sample list.
    ledger = stats["server"]["routes"]["/figures/<name>"]
    assert set(ledger) == {
        "count", "errors", "total_seconds", "max_seconds", "histogram"
    }
    hist = ledger["histogram"]
    assert len(hist["counts"]) == len(hist["bounds"]) + 1
    assert sum(hist["counts"]) == hist["count"] == ledger["count"]


def test_metrics_scrape_emits_histogram_snapshot_events(
    server, tmp_path, monkeypatch
):
    sink = tmp_path / "scrape.jsonl"
    monkeypatch.setenv("REPRO_METRICS_PATH", str(sink))
    _get(server, "/figures/fig1")
    status, _ctype, _text = _get_text(server, "/metrics")
    assert status == 200
    monkeypatch.delenv("REPRO_METRICS_PATH")
    events = [json.loads(line) for line in sink.read_text().splitlines()]
    snapshots = [e for e in events if e["event"] == "histogram_snapshot"]
    assert snapshots, "a /metrics scrape must journal histogram snapshots"
    routes = {e["route"] for e in snapshots}
    assert "/figures/<name>" in routes
    checker = _load_script("check_metrics_jsonl.py")
    last_ts: dict = {}
    for event in events:
        assert checker.check_record(event, last_ts) is None
    # Exemplars carry trace ids that link back to spans in this sink.
    exemplars = [
        x
        for e in snapshots
        for x in e["exemplars"]
        if x is not None
    ]
    assert exemplars, "served requests must leave trace exemplars"
    assert all(x["trace_id"] for x in exemplars)


def test_window_percentiles_agree_with_loadtest(served_store):
    """The acceptance criterion: the server's windowed p50/p95/p99
    agree with a loadtest's client-side percentiles to within one
    (log-scale) histogram bucket width at that latency."""
    from repro.obs import live
    from repro.serve.loadtest import run_loadtest

    handle = start_server(store=served_store)
    try:
        # Concurrency 1: with N requests in flight the client measures
        # queueing (≈ N × handler time under the GIL) that the
        # per-request server histogram, by design, does not.
        report = run_loadtest(
            f"127.0.0.1:{handle.port}",
            requests=300,
            concurrency=1,
            workload=[("GET", "/figures/fig1", None)],
        )
        assert report["errors"] == 0
        _, stats = _get(handle, "/stats")
    finally:
        handle.close()
    window = stats["window"]["routes"]["/figures/<name>"]
    assert window["count"] >= 300
    for q in ("p50_ms", "p95_ms", "p99_ms"):
        client_s = report[q] / 1e3
        server_s = window[q] / 1e3
        # The server reports its bucket's upper bound while the client
        # reports an exact sample, so "agree within one bucket width"
        # means the two land in the same or adjacent log-scale buckets.
        distance = abs(
            live.bucket_index(client_s) - live.bucket_index(server_s)
        )
        assert distance <= 1, (
            f"{q}: client {report[q]:.3f} ms vs server window "
            f"{window[q]:.3f} ms are {distance} histogram buckets apart"
        )


def test_top_dashboard_renders_from_live_metrics(server):
    from repro.serve import top

    from repro.obs import live

    _get(server, "/figures/fig1")
    url = f"http://127.0.0.1:{server.port}/metrics"
    families = live.parse_prometheus(top.fetch_metrics(url, timeout=10.0))
    frame = top.render_dashboard(families, url)
    assert "repro top" in frame
    assert "/figures/<name>" in frame
    assert "p50" in frame.lower()
    # And the one-shot runner exits cleanly after a single poll.
    import io

    out = io.StringIO()
    assert top.run_top(url, interval=0.01, iterations=1, out=out, clear=False) == 0
    assert "/figures/<name>" in out.getvalue()
    bad = top.run_top(
        "http://127.0.0.1:9/metrics",
        interval=0.01,
        iterations=1,
        out=io.StringIO(),
        clear=False,
    )
    assert bad == 1


# ---- port policy -------------------------------------------------------------


def test_port_zero_binds_distinct_free_ports(served_store, server):
    """Two servers asked for port 0 coexist on distinct kernel-chosen
    ports — the class of CI flake this design retires."""
    second = start_server(store=served_store)
    try:
        assert server.port != 0
        assert second.port != 0
        assert second.port != server.port
        status, _ = _get(second, "/healthz")
        assert status == 200
    finally:
        second.close()
