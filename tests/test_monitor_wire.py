"""Wire-level monitor tests: bytes in, records out, garbage tolerated."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients import chrome
from repro.notary.monitor import PassiveMonitor
from repro.servers.archetypes import TLS12_ECDHE_GCM
from repro.tls.ssl2 import (
    SSL_CK_RC4_128_EXPORT40_WITH_MD5,
    SSL_CK_RC4_128_WITH_MD5,
    Ssl2ClientHello,
    encode_client_hello as encode_ssl2,
)
from repro.tls.wire import frame_client_hello, frame_server_hello

_DAY = dt.date(2016, 5, 10)


def _flights():
    hello = chrome.family().release("49").build_hello()
    result = TLS12_ECDHE_GCM.respond(hello)
    return frame_client_hello(hello), frame_server_hello(result.server_hello), hello


class TestObserveWire:
    def test_full_connection(self):
        client, server, hello = _flights()
        monitor = PassiveMonitor()
        record = monitor.observe_wire(_DAY, client, server)
        assert record is not None
        assert record.established
        assert record.negotiated_suite is not None
        assert record.fingerprint is not None
        assert record.fingerprint.cipher_suites == tuple(
            c for c in hello.cipher_suites
        )

    def test_client_only_flight(self):
        client, _, _ = _flights()
        monitor = PassiveMonitor()
        record = monitor.observe_wire(_DAY, client)
        assert record is not None
        assert not record.established
        assert record.advertised  # advertisement analysis still works

    def test_wire_fingerprint_matches_object_path(self):
        from repro.core.fingerprint import Fingerprint

        client, server, hello = _flights()
        monitor = PassiveMonitor()
        record = monitor.observe_wire(_DAY, client, server)
        assert (
            Fingerprint.from_fields(record.fingerprint).digest
            == Fingerprint.from_client_hello(hello).digest
        )

    def test_malformed_client_flight_dropped(self):
        monitor = PassiveMonitor()
        assert monitor.observe_wire(_DAY, b"\x16\x03\x01\x00\x05hello") is None
        assert len(monitor.store) == 0

    def test_malformed_server_flight_degrades_gracefully(self):
        client, server, _ = _flights()
        monitor = PassiveMonitor()
        record = monitor.observe_wire(_DAY, client, server[:10])
        assert record is not None
        assert not record.established  # server side unparseable

    def test_pre_2014_no_fingerprint(self):
        client, server, _ = _flights()
        monitor = PassiveMonitor()
        record = monitor.observe_wire(dt.date(2013, 5, 1), client, server)
        assert record.fingerprint is None


class TestSsl2Sniffing:
    def test_ssl2_flight_recognized(self):
        monitor = PassiveMonitor()
        flight = encode_ssl2(
            Ssl2ClientHello(
                cipher_kinds=(SSL_CK_RC4_128_WITH_MD5, SSL_CK_RC4_128_EXPORT40_WITH_MD5)
            )
        )
        record = monitor.observe_wire(_DAY, flight, server_port=5666)
        assert record is not None
        assert record.negotiated_version == "SSLv2"
        assert record.advertises("rc4")
        assert record.advertises("export")
        assert record.server_port == 5666

    def test_corrupt_ssl2_dropped(self):
        monitor = PassiveMonitor()
        flight = bytearray(encode_ssl2(Ssl2ClientHello()))
        flight[6] = 0x02  # break the cipher-spec length
        assert monitor.observe_wire(_DAY, bytes(flight)) is None


class TestFuzzSafety:
    @given(st.binary(max_size=120))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash(self, blob):
        monitor = PassiveMonitor()
        record = monitor.observe_wire(_DAY, blob)
        # Either dropped or recorded; never an exception.
        assert record is None or record.month == _DAY.replace(day=1)

    @given(st.binary(max_size=120))
    @settings(max_examples=100)
    def test_arbitrary_server_bytes_never_crash(self, blob):
        client, _, _ = _flights()
        monitor = PassiveMonitor()
        record = monitor.observe_wire(_DAY, client, blob)
        assert record is not None
