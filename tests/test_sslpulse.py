"""SSL Pulse survey tests (§5.3's popular-site RC4 numbers)."""

import datetime as dt

import pytest

from repro.scanner.sslpulse import SslPulse, no_rc4_probe, rc4_probe
from repro.servers import archetypes as arch
from repro.scanner.zgrab import grab
from repro.tls.ciphers import REGISTRY


class TestProbes:
    def test_rc4_probe_only_rc4(self):
        suites = [REGISTRY[c] for c in rc4_probe().cipher_suites]
        assert suites
        assert all(s.is_rc4 for s in suites)

    def test_no_rc4_probe_has_no_rc4(self):
        suites = [REGISTRY[c] for c in no_rc4_probe().cipher_suites]
        assert suites
        assert not any(s.is_rc4 for s in suites)
        assert any(s.is_aead for s in suites)


class TestGrabSemantics:
    def test_rc4_only_server_classification(self):
        assert grab(arch.RC4_ONLY, rc4_probe()).success
        assert not grab(arch.RC4_ONLY, no_rc4_probe()).success

    def test_modern_server_classification(self):
        assert not grab(arch.TLS12_ECDHE_GCM, rc4_probe()).success
        assert grab(arch.TLS12_ECDHE_GCM, no_rc4_probe()).success

    def test_legacy_server_supports_both(self):
        assert grab(arch.LEGACY_SSL3_RC4, rc4_probe()).success
        assert grab(arch.LEGACY_SSL3_RC4, no_rc4_probe()).success


class TestSurvey:
    @pytest.fixture(scope="class")
    def pulse(self):
        return SslPulse()

    def test_survey_bounds(self, pulse):
        survey = pulse.survey(dt.date(2015, 1, 1))
        assert 0.0 <= survey.rc4_only <= survey.rc4_supported <= 1.0

    def test_rc4_support_declines(self, pulse):
        first = pulse.survey(dt.date(2013, 10, 1))
        last = pulse.survey(dt.date(2018, 3, 1))
        # §5.3: 92.8% -> 19.1% of surveyed sites.
        assert first.rc4_supported > 0.7
        assert 0.1 < last.rc4_supported < 0.3
        assert last.rc4_supported < first.rc4_supported / 3

    def test_rc4_only_collapses(self, pulse):
        first = pulse.survey(dt.date(2013, 10, 1))
        last = pulse.survey(dt.date(2018, 3, 1))
        # §5.3: 4,248 sites (2.6%) -> 1 site.
        assert 0.01 < first.rc4_only < 0.04
        assert last.rc4_only < 0.002

    def test_series_dates(self, pulse):
        surveys = pulse.series(
            start=dt.date(2016, 1, 1), end=dt.date(2016, 7, 1), interval_days=56
        )
        assert len(surveys) == 4
        assert surveys[0].date == dt.date(2016, 1, 1)
