"""Tables 3-6: the browser histories must reproduce the paper's counts."""

import pytest

from repro.clients import chrome, firefox, ie, opera, safari
from repro.core import tables


def _counts(module, predicate_name):
    family = module.family()
    predicate = {
        "cbc": lambda s: s.is_cbc,
        "rc4": lambda s: s.is_rc4,
        "3des": lambda s: s.is_3des,
    }[predicate_name]
    return {r.version: r.count_suites(predicate) for r in family.releases}


class TestTable3Cbc:
    """Table 3: CBC suite counts."""

    def test_firefox(self):
        counts = _counts(firefox, "cbc")
        assert counts["10"] == 29
        assert counts["27"] == 17
        assert counts["33"] == 10
        assert counts["37"] == 9
        assert counts["60b"] == 5
        assert counts["60"] == 5

    def test_chrome(self):
        counts = _counts(chrome, "cbc")
        assert counts["22"] == 29
        assert counts["29"] == 16
        assert counts["31"] == 10
        assert counts["41"] == 9
        assert counts["49"] == 7
        assert counts["56"] == 5

    def test_opera(self):
        counts = _counts(opera, "cbc")
        assert counts["12"] == 25
        assert counts["15"] == 29  # increased on the Chromium switch
        assert counts["16"] == 16
        assert counts["18"] == 10
        assert counts["28"] == 9
        assert counts["30"] == 7
        assert counts["43"] == 5

    def test_safari(self):
        counts = _counts(safari, "cbc")
        assert counts["6"] == 28
        assert counts["7.1"] == 30  # increased at 7.1
        assert counts["9"] == 15
        assert counts["10.1"] == 12


class TestTable4Rc4:
    """Table 4: RC4 suite counts and removal policies."""

    def test_firefox(self):
        counts = _counts(firefox, "rc4")
        assert counts["10"] == 6
        assert counts["27"] == 4
        assert counts["36"] == 0  # fallback only: gone from default hello
        family = firefox.family()
        assert family.release("36").rc4_policy == "fallback_only"
        assert family.release("38").rc4_policy == "whitelist_only"
        assert family.release("44").rc4_policy == "removed"

    def test_chrome(self):
        counts = _counts(chrome, "rc4")
        assert counts["22"] == 6
        assert counts["29"] == 4
        assert counts["43"] == 0
        assert chrome.family().release("43").rc4_policy == "removed"

    def test_opera(self):
        counts = _counts(opera, "rc4")
        assert counts["12"] == 2
        assert counts["15"] == 6  # increased on the Chromium switch
        assert counts["16"] == 4
        assert counts["30"] == 0

    def test_ie_edge(self):
        counts = _counts(ie, "rc4")
        assert counts["11"] > 0
        assert counts["13"] == 0
        assert ie.family().release("13").released.isoformat() == "2015-05-20"

    def test_safari(self):
        counts = _counts(safari, "rc4")
        assert counts["5"] == 7
        assert counts["6"] == 6
        assert counts["9"] == 4
        assert counts["10.1"] == 0


class TestTable5TripleDes:
    """Table 5: 3DES suite counts."""

    def test_firefox(self):
        counts = _counts(firefox, "3des")
        assert counts["10"] == 8
        assert counts["27"] == 3
        assert counts["33"] == 1

    def test_chrome(self):
        counts = _counts(chrome, "3des")
        assert counts["22"] == 8
        assert counts["29"] == 1

    def test_opera(self):
        counts = _counts(opera, "3des")
        assert counts["15"] == 8
        assert counts["16"] == 1

    def test_safari(self):
        counts = _counts(safari, "3des")
        assert counts["5"] == 7
        assert counts["7.1"] == 6  # 6.2/7.1 era
        assert counts["9"] == 3

    def test_all_major_browsers_still_offer_3des_in_2018(self):
        # §5.6: "notably, all major browsers still support 3DES".
        import datetime as dt

        for module in (chrome, firefox, opera, safari, ie):
            family = module.family()
            current = family.current_release(dt.date(2018, 4, 1))
            assert current.count_suites(lambda s: s.is_3des) >= 1, family.name


class TestTable6ProtocolSupport:
    """Table 6: protocol-support milestones."""

    def test_firefox(self):
        family = firefox.family()
        ff27 = family.release("27")
        assert ff27.max_version == 0x0303
        assert ff27.released.isoformat() == "2014-02-04"
        assert family.release("10").max_version == 0x0301
        assert family.release("37").ssl3_fallback is False
        assert family.release("36").ssl3_fallback is True
        assert family.release("60").supported_versions  # TLS 1.3

    def test_chrome(self):
        family = chrome.family()
        assert family.release("14").max_version == 0x0301
        assert family.release("22").max_version == 0x0302  # TLS 1.1
        assert family.release("29").max_version == 0x0303  # TLS 1.2
        assert family.release("33").ssl3_fallback is True
        assert family.release("39").ssl3_fallback is False

    def test_ie(self):
        family = ie.family()
        assert family.release("11").max_version == 0x0303
        assert family.release("11").released.isoformat() == "2013-11-01"

    def test_opera(self):
        family = opera.family()
        assert family.release("16").max_version == 0x0302
        assert family.release("18").ssl3_fallback is True
        assert family.release("27").ssl3_fallback is False

    def test_safari(self):
        family = safari.family()
        assert family.release("7").max_version == 0x0303
        assert family.release("9").ssl3_fallback is False


class TestTableGenerators:
    def test_table1(self):
        rows = tables.table1_version_dates()
        assert ("TLS 1.2", "Aug. 2008") in rows

    def test_table3_rows_cover_all_four_browsers(self):
        rows = tables.table3_cbc_changes()
        browsers = {row.browser for row in rows}
        assert {"Chrome", "Firefox", "Opera", "Safari"} <= browsers

    def test_table3_chrome_sequence(self):
        rows = [r for r in tables.table3_cbc_changes() if r.browser == "Chrome"]
        afters = [r.after for r in rows]
        assert afters == [16, 10, 9, 7, 5]

    def test_table4_notes_present(self):
        rows = tables.table4_rc4_changes()
        notes = {(r.browser, r.note) for r in rows if r.note}
        assert ("Firefox", "fallback only") in notes
        assert ("Firefox", "whitelist only") in notes
        assert ("Chrome", "removed completely") in notes

    def test_table5_chrome_single_step(self):
        rows = [r for r in tables.table5_3des_changes() if r.browser == "Chrome"]
        assert [(r.before, r.after) for r in rows] == [(8, 1)]

    def test_table6_milestones(self):
        rows = tables.table6_protocol_support()
        changes = {(r.browser, r.change) for r in rows}
        assert ("Chrome", "SSL 3 fallback removed") in changes
        assert ("Firefox", "TLS 1.3 supported") in changes
        assert ("IE/Edge", "TLS 1.1/1.2 supported") in changes
