"""Notary substrate tests: events, monitor, store aggregation."""

import datetime as dt

import pytest

from repro.notary.events import advertisement_tags, relative_positions
from repro.notary.monitor import FINGERPRINT_FIELDS_SINCE, PassiveMonitor
from repro.notary.store import NotaryStore, month_of, month_range
from repro.servers import archetypes as arch
from repro.clients import suites as cs
from repro.tls.messages import ClientHello
from repro.tls.versions import TLS12


def hello(suites=(cs.ECDHE_RSA_AES128_GCM, cs.RSA_AES128_SHA, cs.RSA_3DES_SHA)):
    return ClientHello(
        legacy_version=TLS12.wire,
        random=b"\0" * 32,
        cipher_suites=tuple(suites),
        supported_groups=(23,),
    )


class TestMonthHelpers:
    def test_month_of(self):
        assert month_of(dt.date(2014, 6, 17)) == dt.date(2014, 6, 1)

    def test_month_range_inclusive(self):
        months = month_range(dt.date(2014, 11, 5), dt.date(2015, 2, 20))
        assert months == [
            dt.date(2014, 11, 1),
            dt.date(2014, 12, 1),
            dt.date(2015, 1, 1),
            dt.date(2015, 2, 1),
        ]

    def test_month_range_single(self):
        assert month_range(dt.date(2014, 6, 1), dt.date(2014, 6, 30)) == [dt.date(2014, 6, 1)]

    def test_study_window_length(self):
        months = month_range(dt.date(2012, 1, 1), dt.date(2018, 4, 1))
        assert len(months) == 76


class TestAdvertisementTags:
    def test_tags(self):
        tags = advertisement_tags(hello())
        assert {"aead", "cbc", "3des", "fs", "aes128gcm"} <= tags
        assert "rc4" not in tags
        assert "export" not in tags

    def test_null_null_tag(self):
        tags = advertisement_tags(hello(suites=(cs.NULL_NULL,)))
        assert "null_null" in tags
        assert "null" in tags

    def test_positions(self):
        positions = relative_positions(hello())
        assert positions["aead"] == 0.0
        assert positions["3des"] == 1.0
        assert "rc4" not in positions


class TestMonitor:
    def test_observe_builds_record(self):
        monitor = PassiveMonitor()
        h = hello()
        result = arch.TLS12_ECDHE_GCM.respond(h)
        record = monitor.observe(
            dt.date(2015, 3, 14), h, result, weight=2.0,
            client_family="TestFam", client_version="1",
            client_category="Browsers", client_in_database=True,
        )
        assert record.month == dt.date(2015, 3, 1)
        assert record.weight == 2.0
        assert record.established
        assert record.negotiated_mode_class == "AEAD"
        assert record.fingerprint is not None
        assert len(monitor.store) == 1

    def test_fingerprint_cutover(self):
        monitor = PassiveMonitor()
        h = hello()
        result = arch.TLS12_ECDHE_GCM.respond(h)
        before = monitor.observe(dt.date(2013, 6, 1), h, result)
        after = monitor.observe(FINGERPRINT_FIELDS_SINCE, h, result)
        assert before.fingerprint is None
        assert after.fingerprint is not None

    def test_exact_day_mode(self):
        monitor = PassiveMonitor()
        h = hello()
        result = arch.TLS12_ECDHE_GCM.respond(h)
        record = monitor.observe(dt.date(2015, 3, 14), h, result, exact_day=True)
        assert record.day == dt.date(2015, 3, 14)
        assert record.month == dt.date(2015, 3, 1)

    def test_failed_handshake_recorded(self):
        monitor = PassiveMonitor()
        h = hello(suites=(cs.RSA_RC4_128_MD5,))
        result = arch.TLS12_ECDHE_GCM.respond(h)
        record = monitor.observe(dt.date(2015, 3, 1), h, result)
        assert not record.established
        assert record.negotiated_suite is None

    def test_unoffered_choice_flag(self):
        monitor = PassiveMonitor()
        h = hello(suites=(cs.RSA_RC4_128_SHA,))
        result = arch.INTERWISE_SERVER.respond(h)
        record = monitor.observe(dt.date(2015, 3, 1), h, result)
        assert record.server_chose_unoffered


class TestStoreAggregation:
    def _store(self):
        monitor = PassiveMonitor()
        h_aead = hello()
        h_rc4 = hello(suites=(cs.RSA_RC4_128_SHA, cs.RSA_AES128_SHA))
        server = arch.TLS12_ECDHE_GCM
        monitor.observe(dt.date(2015, 3, 1), h_aead, server.respond(h_aead), weight=3.0)
        monitor.observe(dt.date(2015, 3, 1), h_rc4, server.respond(h_rc4), weight=1.0)
        monitor.observe(dt.date(2015, 4, 1), h_aead, server.respond(h_aead), weight=1.0)
        return monitor.store

    def test_total_weight(self):
        store = self._store()
        assert store.total_weight(dt.date(2015, 3, 15)) == pytest.approx(4.0)

    def test_fraction(self):
        store = self._store()
        aead = store.fraction(
            dt.date(2015, 3, 1), lambda r: r.negotiated_mode_class == "AEAD"
        )
        assert aead == pytest.approx(0.75)

    def test_fraction_with_denominator_filter(self):
        store = self._store()
        value = store.fraction(
            dt.date(2015, 3, 1),
            lambda r: r.advertises("rc4"),
            within=lambda r: r.established,
        )
        assert value == pytest.approx(0.25)

    def test_fraction_empty_month(self):
        store = self._store()
        assert store.fraction(dt.date(2010, 1, 1), lambda r: True) == 0.0

    def test_monthly_fraction_series(self):
        store = self._store()
        series = store.monthly_fraction(lambda r: r.advertises("aead"))
        assert [m for m, _ in series] == [dt.date(2015, 3, 1), dt.date(2015, 4, 1)]

    def test_weighted_mean(self):
        store = self._store()
        mean = store.weighted_mean(dt.date(2015, 3, 1), lambda r: r.positions.get("aead"))
        assert mean == pytest.approx(0.0)

    def test_weighted_mean_none_when_missing(self):
        store = self._store()
        assert store.weighted_mean(dt.date(2015, 3, 1), lambda r: None) is None

    def test_records_filtering(self):
        store = self._store()
        assert len(store.records(dt.date(2015, 3, 1))) == 2
        assert len(store.records()) == 3

    def test_months_sorted(self):
        assert self._store().months() == [dt.date(2015, 3, 1), dt.date(2015, 4, 1)]
