"""The README's quickstart snippet must keep working verbatim."""

import datetime as dt


class TestReadmeQuickstart:
    def test_snippet(self):
        # -- begin README snippet (mirrored; keep in sync) ------------------
        from repro import EcosystemModel, build_default_database, extract
        from repro.core import figures

        model = EcosystemModel(start=dt.date(2015, 1, 1), end=dt.date(2015, 6, 1))
        store = model.passive_store()

        rendered = figures.render_series(figures.fig2_negotiated_modes(store))

        from repro.clients import chrome

        hello = chrome.family().release("49").build_hello()
        label = build_default_database().match(extract(hello)).software
        # -- end README snippet ----------------------------------------------

        assert "AEAD" in rendered and "RC4" in rendered
        assert label == "Chrome"

    def test_readme_mentions_only_real_commands(self):
        """Every `python -m repro <cmd>` in the README must exist."""
        import argparse
        import pathlib
        import re

        from repro.cli import build_parser

        readme = (
            pathlib.Path(__file__).resolve().parent.parent / "README.md"
        ).read_text()
        commands = set(re.findall(r"python -m repro (\w+)", readme))
        parser = build_parser()
        subactions = next(
            a
            for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        assert commands <= set(subactions.choices)

    def test_readme_example_files_exist(self):
        import pathlib
        import re

        root = pathlib.Path(__file__).resolve().parent.parent
        readme = (root / "README.md").read_text()
        for name in re.findall(r"python (examples/\w+\.py)", readme):
            assert (root / name).exists(), name
