"""Tests for the command-line / runtime client families."""

import datetime as dt
import random

import pytest

from repro.clients.tools import curl_family, okhttp_family, python_family
from repro.core.fingerprint import extract


class TestCurl:
    def test_old_curl_keeps_rc4_sha_only(self):
        release = curl_family().release("7.29")
        assert release.advertises(lambda s: s.is_rc4)
        # The MD5 variant is filtered out by curl's floor.
        from repro.clients import suites as cs

        assert cs.RSA_RC4_128_MD5 not in release.cipher_suites

    def test_modern_curl_no_rc4(self):
        release = curl_family().release("7.52")
        assert not release.advertises(lambda s: s.is_rc4)
        assert release.advertises(lambda s: s.aead_algorithm == "ChaCha20-Poly1305")


class TestPython:
    def test_py27_never_offers_export(self):
        release = python_family().release("2.7")
        assert not release.advertises(lambda s: s.is_export)
        assert release.advertises(lambda s: s.is_rc4)

    def test_rc4_removed_at_2_7_9(self):
        release = python_family().release("2.7.9")
        assert not release.advertises(lambda s: s.is_rc4)
        assert release.rc4_policy == "removed"

    def test_3des_removed_at_3_6(self):
        family = python_family()
        assert family.release("2.7.9").advertises(lambda s: s.is_3des)
        assert not family.release("3.6").advertises(lambda s: s.is_3des)


class TestOkHttp:
    def test_curated_modern_list(self):
        release = okhttp_family().release("2")
        assert release.advertises(lambda s: s.is_aead)
        assert not release.advertises(lambda s: s.is_rc4)
        assert len(release.cipher_suites) < 12  # curated, not DEFAULT

    def test_chacha_added_in_3_9(self):
        family = okhttp_family()
        assert not family.release("2").advertises(
            lambda s: s.aead_algorithm == "ChaCha20-Poly1305"
        )
        assert family.release("3.9").advertises(
            lambda s: s.aead_algorithm == "ChaCha20-Poly1305"
        )


class TestFingerprints:
    def test_tools_fingerprint_distinctly(self):
        rng = random.Random(0)
        digests = {
            extract(family().current_release(dt.date(2017, 6, 1)).build_hello(rng=rng)).digest
            for family in (curl_family, python_family, okhttp_family)
        }
        assert len(digests) == 3

    def test_tools_distinct_from_raw_openssl(self):
        from repro.clients.libraries import openssl_family

        rng = random.Random(0)
        on = dt.date(2015, 6, 1)
        curl = extract(curl_family().current_release(on).build_hello(rng=rng)).digest
        raw = extract(openssl_family().current_release(on).build_hello(rng=rng)).digest
        assert curl != raw

    def test_in_default_population_and_database(self):
        from repro.clients.population import default_population
        from repro.core.database import build_default_database

        population = default_population()
        for name in ("curl", "Python ssl", "OkHttp"):
            assert population.family(name)
        db = build_default_database(population)
        labels = {label.software for label in db.labels().values()}
        assert {"curl", "Python ssl", "OkHttp"} <= labels
