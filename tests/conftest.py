"""Shared fixtures: small, session-scoped simulations keep tests fast."""

from __future__ import annotations

import datetime as dt
import os
import random

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Keep dataset blobs and run checkpoints out of the user's real
    ``~/.cache/repro`` (unless the environment already redirects it)."""
    if not os.environ.get("REPRO_CACHE_DIR", "").strip():
        os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))

from repro.clients.population import default_population
from repro.notary import PassiveMonitor, TrafficGenerator
from repro.servers import ServerPopulation
from repro.simulation.ecosystem import EcosystemModel


@pytest.fixture(scope="session")
def client_population():
    return default_population()


@pytest.fixture(scope="session")
def server_population():
    return ServerPopulation()


@pytest.fixture(scope="session")
def small_window_store(client_population, server_population):
    """Expectation-mode store over 2014-06 .. 2015-06 (13 months)."""
    monitor = PassiveMonitor()
    generator = TrafficGenerator(client_population, server_population, monitor)
    generator.run_expectation(dt.date(2014, 6, 1), dt.date(2015, 6, 1))
    return monitor.store


@pytest.fixture(scope="session")
def late_window_store(client_population, server_population):
    """Expectation-mode store over 2018-01 .. 2018-04 (TLS 1.3 era)."""
    monitor = PassiveMonitor()
    generator = TrafficGenerator(client_population, server_population, monitor)
    generator.run_expectation(dt.date(2018, 1, 1), dt.date(2018, 4, 1))
    return monitor.store


@pytest.fixture(scope="session")
def early_window_store(client_population, server_population):
    """Expectation-mode store over 2012-02 .. 2012-06 (pre-fingerprints)."""
    monitor = PassiveMonitor()
    generator = TrafficGenerator(client_population, server_population, monitor)
    generator.run_expectation(dt.date(2012, 2, 1), dt.date(2012, 6, 1))
    return monitor.store


@pytest.fixture(scope="session")
def montecarlo_store(client_population, server_population):
    """Sampled store over 2014-10 .. 2015-06, day resolution."""
    monitor = PassiveMonitor()
    generator = TrafficGenerator(client_population, server_population, monitor)
    generator.run_montecarlo(
        dt.date(2014, 10, 1),
        dt.date(2015, 6, 1),
        connections_per_month=400,
        rng=random.Random(13),
    )
    return monitor.store


@pytest.fixture(scope="session")
def fingerprint_db(client_population):
    from repro.core.database import build_default_database

    return build_default_database(client_population)
