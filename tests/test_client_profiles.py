"""Client-profile substrate tests: releases, adoption, hello building."""

import datetime as dt
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients import chrome, firefox, suites as cs
from repro.clients.profile import (
    AdoptionModel,
    BROWSER_ADOPTION,
    CATEGORY_BROWSERS,
    ClientFamily,
    ClientRelease,
)
from repro.tls.extensions import ExtensionType
from repro.tls.grease import is_grease
from repro.tls.versions import TLS10, TLS12


def make_release(version="1", date=dt.date(2013, 1, 1), **kw):
    kw.setdefault("cipher_suites", (cs.RSA_AES128_SHA, cs.RSA_3DES_SHA))
    kw.setdefault("max_version", TLS10.wire)
    return ClientRelease(
        family="TestFam", version=version, released=date,
        category=CATEGORY_BROWSERS, **kw
    )


class TestClientRelease:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            make_release(cipher_suites=(0xEEEE,))

    def test_duplicate_suites_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_release(cipher_suites=(cs.RSA_AES128_SHA, cs.RSA_AES128_SHA))

    def test_label(self):
        assert make_release().label == "TestFam 1"

    def test_count_suites(self):
        release = make_release()
        assert release.count_suites(lambda s: s.is_cbc) == 2
        assert release.count_suites(lambda s: s.is_3des) == 1

    def test_advertises(self):
        release = make_release()
        assert release.advertises(lambda s: s.is_3des)
        assert not release.advertises(lambda s: s.is_rc4)


class TestBuildHello:
    def test_deterministic_with_seeded_rng(self):
        release = make_release()
        a = release.build_hello(rng=random.Random(5))
        b = release.build_hello(rng=random.Random(5))
        assert a == b

    def test_legacy_version(self):
        hello = make_release().build_hello()
        assert hello.legacy_version == TLS10.wire

    def test_extension_order_preserved(self):
        release = make_release(
            extensions=(
                int(ExtensionType.SERVER_NAME),
                int(ExtensionType.RENEGOTIATION_INFO),
            )
        )
        hello = release.build_hello()
        assert hello.extension_types() == (
            int(ExtensionType.SERVER_NAME),
            int(ExtensionType.RENEGOTIATION_INFO),
        )

    def test_grease_injected(self):
        release = make_release(grease=True, supported_groups=(23,))
        hello = release.build_hello(rng=random.Random(3))
        assert is_grease(hello.cipher_suites[0])
        assert is_grease(hello.extension_types()[0])
        assert is_grease(hello.supported_groups[0])

    def test_tls13_included_by_fraction_one(self):
        release = make_release(
            max_version=TLS12.wire,
            supported_versions=(0x7E02, TLS12.wire),
            tls13_fraction=1.0,
        )
        hello = release.build_hello(rng=random.Random(1))
        assert hello.supported_versions == (0x7E02, TLS12.wire)
        assert hello.has_extension(ExtensionType.SUPPORTED_VERSIONS)

    def test_tls13_forced_off(self):
        release = make_release(
            max_version=TLS12.wire, supported_versions=(0x7E02, TLS12.wire)
        )
        hello = release.build_hello(include_tls13=False)
        assert hello.supported_versions == ()

    def test_shuffle_changes_order_not_content(self):
        release = make_release(
            cipher_suites=(
                cs.RSA_AES128_SHA, cs.RSA_AES256_SHA, cs.RSA_3DES_SHA,
                cs.RSA_RC4_128_SHA, cs.DHE_RSA_AES128_SHA,
            ),
            shuffle_suites=True,
        )
        hellos = {release.build_hello(rng=random.Random(i)).cipher_suites for i in range(8)}
        assert len(hellos) > 1  # order varies
        contents = {frozenset(h) for h in hellos}
        assert len(contents) == 1  # same multiset


class TestTls13Schedule:
    def test_schedule_steps(self):
        release = make_release(
            max_version=TLS12.wire,
            supported_versions=(0x7E02, TLS12.wire),
            tls13_schedule=(
                (dt.date(2018, 1, 1), 0.1),
                (dt.date(2018, 3, 1), 0.5),
            ),
        )
        assert release.tls13_fraction_at(dt.date(2017, 12, 1)) == 0.0
        assert release.tls13_fraction_at(dt.date(2018, 2, 1)) == 0.1
        assert release.tls13_fraction_at(dt.date(2018, 4, 1)) == 0.5

    def test_without_supported_versions_always_zero(self):
        release = make_release()
        assert release.tls13_fraction_at(dt.date(2018, 4, 1)) == 0.0

    def test_constant_fraction_without_schedule(self):
        release = make_release(
            max_version=TLS12.wire,
            supported_versions=(0x7E02,),
            tls13_fraction=0.4,
        )
        assert release.tls13_fraction_at(dt.date(2018, 1, 1)) == 0.4


class TestAdoptionModel:
    def test_zero_before_release(self):
        assert BROWSER_ADOPTION.adopted_fraction(-10) == 0.0
        assert BROWSER_ADOPTION.adopted_fraction(0) == 0.0

    def test_reaches_most_users_quickly_for_browsers(self):
        assert BROWSER_ADOPTION.adopted_fraction(180) > 0.85

    def test_long_tail_remains(self):
        # Two years out, the tail population still is not fully migrated.
        assert BROWSER_ADOPTION.adopted_fraction(730) < 0.999

    @given(st.floats(min_value=0, max_value=5000), st.floats(min_value=0, max_value=5000))
    @settings(max_examples=80)
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert BROWSER_ADOPTION.adopted_fraction(lo) <= BROWSER_ADOPTION.adopted_fraction(hi) + 1e-12

    @given(st.floats(min_value=-100, max_value=10000))
    @settings(max_examples=80)
    def test_bounded(self, delta):
        value = AdoptionModel().adopted_fraction(delta)
        assert 0.0 <= value <= 1.0


class TestClientFamily:
    def _family(self):
        return ClientFamily(
            name="TestFam",
            category=CATEGORY_BROWSERS,
            releases=[
                make_release("2", dt.date(2014, 1, 1)),
                make_release("1", dt.date(2012, 1, 1)),
                make_release("3", dt.date(2016, 1, 1)),
            ],
        )

    def test_releases_sorted(self):
        family = self._family()
        assert [r.version for r in family.releases] == ["1", "2", "3"]

    def test_release_weights_sum_to_one(self):
        family = self._family()
        for day in (dt.date(2012, 6, 1), dt.date(2015, 1, 1), dt.date(2018, 1, 1)):
            weights = family.release_weights(day)
            assert sum(weights.values()) == pytest.approx(1.0)
            assert all(w >= 0 for w in weights.values())

    def test_oldest_release_dominates_before_successors(self):
        family = self._family()
        weights = family.release_weights(dt.date(2012, 2, 1))
        assert weights[family.release("1")] > 0.9

    def test_newest_release_dominates_eventually(self):
        family = self._family()
        weights = family.release_weights(dt.date(2020, 1, 1))
        assert weights[family.release("3")] > 0.8

    def test_current_release(self):
        family = self._family()
        assert family.current_release(dt.date(2013, 1, 1)).version == "1"
        assert family.current_release(dt.date(2017, 1, 1)).version == "3"

    def test_release_lookup_error(self):
        with pytest.raises(KeyError):
            self._family().release("99")

    def test_mismatched_family_rejected(self):
        bad = ClientRelease(
            family="Other", version="1", released=dt.date(2012, 1, 1),
            category=CATEGORY_BROWSERS, cipher_suites=(cs.RSA_AES128_SHA,),
        )
        with pytest.raises(ValueError):
            ClientFamily(name="TestFam", category=CATEGORY_BROWSERS, releases=[bad])

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            ClientFamily(name="TestFam", category=CATEGORY_BROWSERS, releases=[])


class TestRealFamilies:
    def test_chrome_release_weights_normalized(self):
        family = chrome.family()
        weights = family.release_weights(dt.date(2016, 1, 1))
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_chrome_grease_era(self):
        family = chrome.family()
        modern = family.release("65")
        hello = modern.build_hello(rng=random.Random(9))
        assert is_grease(hello.cipher_suites[0])

    def test_firefox_rc4_gone_from_36(self):
        family = firefox.family()
        for version in ("36", "37", "44", "60"):
            assert family.release(version).count_suites(lambda s: s.is_rc4) == 0

    def test_all_browser_helloes_parse_via_wire(self):
        from repro.tls.wire import encode_client_hello, decode_client_hello

        for module in (chrome, firefox):
            for release in module.family().releases:
                hello = release.build_hello(rng=random.Random(1))
                decoded = decode_client_hello(encode_client_hello(hello))
                assert decoded.cipher_suites == hello.cipher_suites
