"""Certificate-substrate tests."""

import datetime as dt

import pytest

from repro.servers.certificates import (
    Certificate,
    CertificateObservatory,
    issue_certificate,
)


class TestIssuance:
    def test_deterministic(self):
        a = issue_certificate(12345, "tls12-ecdhe-gcm", dt.date(2016, 3, 1))
        b = issue_certificate(12345, "tls12-ecdhe-gcm", dt.date(2016, 3, 1))
        assert a == b

    def test_stable_within_validity(self):
        a = issue_certificate(999, "tls10-cbc", dt.date(2016, 3, 1))
        b = issue_certificate(999, "tls10-cbc", dt.date(2016, 5, 1))
        if a.not_before == b.not_before:
            assert a.fingerprint == b.fingerprint

    def test_rolls_over_time(self):
        a = issue_certificate(999, "tls10-cbc", dt.date(2013, 1, 1))
        b = issue_certificate(999, "tls10-cbc", dt.date(2018, 1, 1))
        assert a.fingerprint != b.fingerprint

    def test_valid_at_issue_date(self):
        on = dt.date(2016, 3, 1)
        cert = issue_certificate(7, "tls12-rsa-cbc", on)
        assert cert.valid_at(on)
        assert not cert.valid_at(cert.not_after + dt.timedelta(days=1))

    def test_distinct_hosts_distinct_certs(self):
        on = dt.date(2016, 3, 1)
        fingerprints = {
            issue_certificate(address, "tls12-rsa-cbc", on).fingerprint
            for address in range(200)
        }
        assert len(fingerprints) == 200


class TestDeploymentTrends:
    def _population(self, profile, on, n=600):
        return [issue_certificate(address, profile, on) for address in range(n)]

    def test_rsa1024_disappears_after_2014(self):
        early = self._population("tls10-cbc", dt.date(2012, 6, 1))
        late = self._population("tls10-cbc", dt.date(2017, 6, 1))
        early_weak = sum(1 for c in early if c.weak_key) / len(early)
        late_weak = sum(1 for c in late if c.weak_key) / len(late)
        assert early_weak > 0.1
        assert late_weak == 0.0

    def test_sha1_issuance_stops(self):
        early = self._population("tls10-cbc", dt.date(2013, 6, 1))
        # 2018: every live validity epoch started after the SHA-1 ban.
        late = self._population("tls10-cbc", dt.date(2018, 6, 1))
        assert sum(1 for c in early if c.sha1_signed) > 0
        assert sum(1 for c in late if c.sha1_signed) == 0

    def test_ecdsa_only_on_modern_profiles(self):
        on = dt.date(2017, 6, 1)
        legacy = self._population("tls10-cbc", on)
        modern = self._population("tls12-ecdhe-gcm", on)
        assert all(c.key_type == "RSA" for c in legacy)
        assert any(c.key_type == "ECDSA" for c in modern)


class TestObservatory:
    def test_deduplicates(self):
        obs = CertificateObservatory()
        cert = issue_certificate(1, "tls10-cbc", dt.date(2016, 1, 1))
        assert obs.observe(cert)
        assert not obs.observe(cert)
        assert len(obs) == 1

    def test_shares(self):
        obs = CertificateObservatory()
        for address in range(300):
            obs.observe(issue_certificate(address, "tls10-cbc", dt.date(2013, 1, 1)))
        assert 0 < obs.weak_key_share() < 1
        assert 0 < obs.sha1_share() <= 1
        assert obs.key_type_shares()["RSA"] == 1.0

    def test_empty(self):
        obs = CertificateObservatory()
        assert obs.weak_key_share() == 0.0
        assert obs.sha1_share() == 0.0
        assert obs.key_type_shares() == {}

    def test_censys_accumulates_certificates(self):
        from repro.scanner import CensysArchive

        archive = CensysArchive()
        archive.run_sampled_scan(dt.date(2016, 1, 1), "chrome2015", 500)
        first = len(archive.certificates)
        assert first > 0
        # A later sweep in a new validity epoch adds fresh certificates.
        archive.run_sampled_scan(dt.date(2018, 1, 1), "chrome2015", 500)
        assert len(archive.certificates) > first
