"""Calibration-sheet tests: the sheet must reflect the live model."""

import pytest

from repro.simulation.calibration import (
    CalibrationEntry,
    all_entries,
    client_entries,
    render_sheet,
    server_entries,
)


class TestEntries:
    def test_nonempty_both_sides(self):
        assert len(client_entries()) >= 5
        assert len(server_entries()) >= 5

    def test_every_entry_has_anchor(self):
        for entry in all_entries():
            assert entry.anchor
            assert entry.location.startswith("repro.")

    def test_values_read_from_live_objects(self):
        # The sheet reads the dataclasses at call time, so a change to
        # the model must show up without touching the sheet.
        import dataclasses

        from repro.servers import curves as c
        from repro.servers import population as p

        entry = next(e for e in server_entries() if e.name == "ssl3_removal")
        default = p.ServerAttributeCurves()
        assert f"never={default.ssl3_removal.never_patched:g}" in entry.value

    def test_names_unique(self):
        names = [e.name for e in all_entries()]
        assert len(names) == len(set(names))


class TestRendering:
    def test_sheet_renders(self):
        sheet = render_sheet()
        assert "CALIBRATION SHEET" in sheet
        assert "ssl3_removal" in sheet
        assert "BROWSER_ADOPTION" in sheet
        assert sheet.endswith("\n")

    def test_sheet_mentions_paper_sections(self):
        sheet = render_sheet()
        for marker in ("§5.1", "§5.4", "§6.2", "§6.4"):
            assert marker in sheet
