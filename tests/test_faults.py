"""Deterministic fault-matrix tests for the resilient run engine.

Every scenario injected here — worker crashes, hangs past the chunk
timeout, corrupted partitions, mutilated cache blobs, a SIGKILL'd run —
must end one of exactly two ways: a store byte-identical to the clean
serial baseline, or a clean degradation to a rebuild.  Never a
traceback to the caller.  Fault schedules are pure functions of a seed
(:mod:`repro.engine.faults`), so every scenario replays exactly.
"""

from __future__ import annotations

import datetime as dt
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import figures
from repro.engine import cache as dataset_cache
from repro.engine import executors, faults, runner
from repro.engine.partition import pack_records, split_by_month
from repro.engine.perf import PERF

START = dt.date(2014, 6, 1)
END = dt.date(2014, 9, 1)

ALL_FIGURES = (
    figures.fig1_negotiated_versions,
    figures.fig2_negotiated_modes,
    figures.fig3_advertised_modes,
    figures.fig4_fingerprint_support,
    figures.fig5_cipher_positions,
    figures.fig6_rc4_advertised,
    figures.fig7_weak_advertised,
    figures.fig8_key_exchange,
    figures.fig9_negotiated_aead,
    figures.fig10_advertised_aead,
)


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    """Own cache dir per test; no ambient or leaked fault plan."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def baseline(client_population, server_population):
    """The clean serial run every recovery must reproduce exactly."""
    return runner.run_expectation(
        client_population, server_population, START, END, workers=0
    )


def assert_identical(store, baseline) -> None:
    assert store.months() == baseline.months()
    assert store.records() == baseline.records()
    for figure in ALL_FIGURES:
        assert figure(store) == figure(baseline)


class TestFaultMatrix:
    """One injected scenario per row; all must recover byte-identically."""

    @pytest.mark.parametrize(
        "spec, timeout, expect",
        [
            pytest.param("worker_crash:0.7,seed:1", None, "chunk_retries", id="worker-crash"),
            pytest.param("worker_crash:1.0", None, "inline_fallbacks", id="worker-crash-always"),
            pytest.param("month_crash:0.5,seed:2", None, "chunk_retries", id="month-crash"),
            pytest.param("pack_corrupt:1.0", None, "chunk_retries", id="corrupt-partition"),
            pytest.param("chunk_hang:1.0,hang_seconds:3", 0.5, "chunk_timeouts", id="hang-past-timeout"),
            pytest.param(
                "worker_crash:0.3,month_crash:0.2,pack_corrupt:0.2,seed:7",
                None, None, id="mixed-schedule",
            ),
        ],
    )
    @pytest.mark.parametrize("backend", list(executors.BACKENDS))
    def test_recovers_byte_identical(
        self, client_population, server_population, baseline, spec, timeout,
        expect, backend,
    ):
        if backend == "fork" and not executors.fork_available():
            pytest.skip("fork start method unavailable")
        PERF.reset()
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=2, faults_spec=spec, chunk_timeout=timeout,
            backend=backend,
        )
        if backend == "inline":
            # The inline backend is the fault-suppressed in-parent path
            # promoted to a first-class executor: nothing injects, so
            # recovery counters stay silent by design — byte-identity
            # is the whole assertion.
            assert PERF.faults_injected == 0
        elif expect is not None:
            assert getattr(PERF, expect) > 0, expect
        assert_identical(store, baseline)

    def test_hundred_percent_crash_rate_terminates_via_inline(
        self, client_population, server_population, baseline
    ):
        """The suppressed inline path is the termination guarantee."""
        PERF.reset()
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=2, faults_spec="worker_crash:1.0,pack_corrupt:1.0",
        )
        assert PERF.inline_fallbacks > 0
        assert_identical(store, baseline)

    def test_serial_path_ignores_worker_faults(
        self, client_population, server_population, baseline
    ):
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=0, faults_spec="worker_crash:1.0,chunk_hang:1.0",
        )
        assert_identical(store, baseline)

    def test_schedule_is_deterministic(self):
        plan = faults.FaultPlan.parse("worker_crash:0.4,seed:9")
        draws = [plan.fires("worker_crash", f"c{i}.a0") for i in range(64)]
        assert draws == [plan.fires("worker_crash", f"c{i}.a0") for i in range(64)]
        assert any(draws) and not all(draws)

    def test_malformed_spec_entries_degrade_to_noop(self):
        plan = faults.FaultPlan.parse("worker_crash:nope,unknown:1.0,:,seed:x,,")
        assert not plan.active()


class TestCacheHygiene:
    """Blob integrity, delete-on-reject, eviction, and the build lock."""

    @pytest.fixture
    def saved(self, baseline, client_population, server_population):
        key = dataset_cache.dataset_key(
            client_population, server_population, START, END
        )
        path = dataset_cache.save_store(baseline, key)
        assert path is not None
        return key, path

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(lambda raw: raw[: len(raw) // 2], id="truncation"),
            pytest.param(lambda raw: bytes([raw[0] ^ 0xFF]) + raw[1:], id="bit-flip"),
            pytest.param(lambda raw: b"xy", id="shorter-than-footer"),
        ],
    )
    def test_damaged_blob_is_culled_then_rebuilt(self, saved, baseline, mutate):
        key, path = saved
        path.write_bytes(mutate(path.read_bytes()))
        PERF.reset()
        assert dataset_cache.load_store(key) is None
        assert not path.exists()  # deleted on rejection, not left to rot
        assert PERF.cache_corrupt_deleted == 1
        # The clean rebuild re-seals and loads again.
        assert dataset_cache.save_store(baseline, key) is not None
        warm = dataset_cache.load_store(key)
        assert warm is not None
        assert_identical(warm, baseline)

    def test_format_skew_is_culled(self, saved):
        key, path = saved
        dataset_cache._write_blob(
            path, {"format": -1, "key": key, "records": {}}, "test"
        )
        assert dataset_cache.load_store(key) is None
        assert not path.exists()

    def test_injected_write_corruption_detected_on_read(self, baseline, saved):
        key, path = saved
        faults.configure("cache_write:1.0")
        dataset_cache.save_store(baseline, key)
        faults.clear()
        assert dataset_cache.load_store(key) is None
        assert not path.exists()

    def test_injected_read_corruption_is_miss_never_error(self, saved):
        key, _ = saved
        faults.configure("cache_read:1.0")
        PERF.reset()
        assert dataset_cache.load_store(key) is None
        assert PERF.dataset_cache_misses == 1

    def test_lru_eviction_drops_oldest_first(self, baseline, saved):
        key, path = saved
        other = "f" * 64
        time.sleep(0.05)
        kept = dataset_cache.save_store(baseline, other)
        PERF.reset()
        evicted = dataset_cache.evict_lru(max_bytes=kept.stat().st_size + 16)
        assert evicted == 1
        assert not path.exists() and kept.exists()
        assert PERF.cache_evictions == 1

    def test_build_lock_excludes_second_builder(self, saved):
        key, _ = saved
        with dataset_cache.build_lock(key) as first:
            assert first
            with dataset_cache.build_lock(key) as second:
                assert not second
        with dataset_cache.build_lock(key) as again:
            assert again  # released on exit

    def test_stale_lock_is_broken(self, saved):
        key, _ = saved
        lock = dataset_cache._lock_path(key)
        lock.write_text("999999\n")
        ancient = time.time() - 7200
        os.utime(lock, (ancient, ancient))
        with dataset_cache.build_lock(key) as acquired:
            assert acquired


class TestKillAndResume:
    """Checkpointed shards: a dead run resumes instead of restarting."""

    @pytest.mark.parametrize("backend", list(executors.BACKENDS))
    def test_resume_adopts_checkpointed_months(
        self, client_population, server_population, baseline, backend
    ):
        """Checkpoint adoption is scheduler policy, so it must behave
        identically on every execution backend."""
        if backend == "fork" and not executors.fork_available():
            pytest.skip("fork start method unavailable")
        key = dataset_cache.dataset_key(
            client_population, server_population, START, END
        )
        split = split_by_month(pack_records(baseline.records()))
        seeded = dict(list(split.items())[:2])
        dataset_cache.Checkpoint(key).save_months(seeded)
        PERF.reset()
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=2, resume=True, backend=backend,
        )
        assert PERF.resumed_months == len(seeded)
        assert_identical(store, baseline)
        assert not dataset_cache.Checkpoint(key).dir.exists()  # cleared

    def test_corrupt_checkpoint_is_culled_and_month_resimulated(
        self, client_population, server_population, baseline
    ):
        key = dataset_cache.dataset_key(
            client_population, server_population, START, END
        )
        checkpoint = dataset_cache.Checkpoint(key)
        split = split_by_month(pack_records(baseline.records()))
        checkpoint.save_months(dict(list(split.items())[:2]))
        victim = sorted(checkpoint.dir.glob("*.bin"))[0]
        victim.write_bytes(b"garbage")
        PERF.reset()
        store = runner.run_expectation(
            client_population, server_population, START, END,
            workers=2, resume=True,
        )
        assert PERF.resumed_months == 1
        assert PERF.cache_corrupt_deleted >= 1
        assert_identical(store, baseline)

    def test_sigkilled_run_resumes_from_checkpoints(
        self, tmp_path, client_population, server_population
    ):
        """Kill a parallel run outright mid-flight, then resume it.

        The child runs with a deterministic hang schedule (chunk 0
        completes and checkpoints, later chunks hang), so checkpoint
        files are guaranteed to land while the run is still alive to be
        killed.  The resumed run must re-simulate only the unfinished
        months and match the serial baseline exactly.
        """
        start, end = dt.date(2014, 1, 1), dt.date(2015, 6, 1)
        script = (
            "import datetime as dt\n"
            "from repro.clients.population import default_population\n"
            "from repro.servers import ServerPopulation\n"
            "from repro.engine import runner\n"
            "runner.run_expectation(default_population(), ServerPopulation(),\n"
            "    dt.date(2014, 1, 1), dt.date(2015, 6, 1), workers=2)\n"
        )
        env = dict(os.environ)
        env.update(
            PYTHONPATH=os.pathsep.join(sys.path),
            REPRO_CACHE_DIR=str(tmp_path),
            REPRO_FAULTS="chunk_hang:0.5,hang_seconds:300,seed:0",
            REPRO_CHUNK_MONTHS="2",
            REPRO_CHUNK_TIMEOUT="600",
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script], env=env, start_new_session=True
        )
        try:
            deadline = time.monotonic() + 120
            checkpoint_glob = tmp_path / "checkpoints"
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail("child finished before it could be killed")
                if list(checkpoint_glob.glob("*/*.bin")):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no checkpoint files appeared before the deadline")
        finally:
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            child.wait(timeout=30)
        survivors = list(checkpoint_glob.glob("*/*.bin"))
        assert survivors, "kill landed before any checkpoint was spilled"

        PERF.reset()
        resumed = runner.run_expectation(
            client_population, server_population, start, end,
            workers=2, resume=True,
        )
        assert PERF.resumed_months >= 1
        serial = runner.run_expectation(
            client_population, server_population, start, end, workers=0
        )
        assert resumed.months() == serial.months()
        assert resumed.records() == serial.records()
        for figure in ALL_FIGURES:
            assert figure(resumed) == figure(serial)
