"""Traffic-generator tests: expectation mode, affinity, Monte-Carlo."""

import datetime as dt
import random

import pytest

from repro.clients.population import default_population
from repro.notary import PassiveMonitor, TrafficGenerator
from repro.servers import ServerPopulation


@pytest.fixture(scope="module")
def one_month_store():
    monitor = PassiveMonitor()
    generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
    generator.run_expectation_month(dt.date(2015, 6, 1))
    return monitor.store


class TestExpectationMode:
    def test_weights_sum_to_one_per_month(self, one_month_store):
        assert one_month_store.total_weight(dt.date(2015, 6, 1)) == pytest.approx(1.0)

    def test_deterministic(self):
        def run():
            monitor = PassiveMonitor()
            generator = TrafficGenerator(
                default_population(), ServerPopulation(), monitor
            )
            generator.run_expectation_month(dt.date(2015, 6, 1))
            return [
                (r.client_family, r.client_version, r.weight, r.negotiated_suite)
                for r in monitor.store.records()
            ]

        assert run() == run()

    def test_affinity_routing(self, one_month_store):
        # GRID clients only ever reach GRID servers: all their established
        # connections use the NULL suite the GRID server prefers.
        grid = [
            r
            for r in one_month_store.records()
            if r.client_family == "GridFTP" and r.established
        ]
        assert grid
        assert all(r.suite.is_null_encryption for r in grid)

    def test_nagios_routing(self, one_month_store):
        nagios = [
            r
            for r in one_month_store.records()
            if r.client_family == "Nagios NRPE" and r.established
        ]
        assert nagios
        for record in nagios:
            if record.negotiated_version == "SSLv2":
                continue  # the injected §5.1 relic carries no suite
            assert record.suite.is_anonymous or record.suite.is_null_null

    def test_interwise_established_with_unoffered_suite(self, one_month_store):
        interwise = [
            r for r in one_month_store.records() if r.client_family == "Interwise"
        ]
        assert interwise
        assert all(r.established and r.server_chose_unoffered for r in interwise)
        assert all(r.suite.is_export for r in interwise)

    def test_mainstream_clients_span_server_archetypes(self, one_month_store):
        chrome_suites = {
            r.negotiated_suite
            for r in one_month_store.records()
            if r.client_family == "Chrome" and r.established
        }
        assert len(chrome_suites) >= 3  # multiple archetypes respond differently

    def test_tls13_split_produces_both_variants(self):
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        generator.run_expectation_month(dt.date(2018, 4, 1))
        chrome65 = [
            r
            for r in monitor.store.records()
            if r.client_family == "Chrome" and r.client_version == "65"
        ]
        offered = {r.offered_tls13 for r in chrome65}
        assert offered == {True, False}


class TestStableSeeds:
    def test_release_seed_is_crc32_not_builtin_hash(self):
        """Hello seeds must not depend on ``PYTHONHASHSEED``.

        The seed is pinned to its CRC-32 derivation: these golden values
        hold in every interpreter, where the old ``hash()``-based seeds
        changed per process (and with them the generated hellos).
        """
        import zlib

        from repro.notary.generator import _release_seed

        release = default_population().family("Chrome").release("49")
        assert _release_seed(release, False) == 1911677259
        assert _release_seed(release, True) == 116838877
        assert _release_seed(release, False) == (
            zlib.crc32(f"{release.family}\x00{release.version}\x000".encode())
            & 0x7FFFFFFF
        )


class TestIntoleranceDance:
    def test_intolerant_variants_in_population(self):
        from repro.servers import ServerPopulation

        pop = ServerPopulation()
        names_2012 = {p.name for p, _ in pop.mix(dt.date(2012, 6, 1), "traffic")}
        assert any(n.endswith("-intolerant") for n in names_2012)

    def test_intolerance_declines(self):
        from repro.servers import ServerPopulation

        pop = ServerPopulation()

        def share(day):
            return sum(
                w
                for p, w in pop.mix(day, "traffic")
                if p.intolerant_above is not None
            )

        early = share(dt.date(2012, 3, 1))
        late = share(dt.date(2017, 3, 1))
        assert early > 0.01
        assert late < early / 3

    def test_dance_rescues_connections_to_intolerant_servers(self):
        """TLS 1.2 clients reach intolerant boxes at TLS 1.0, not at all."""
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        generator.run_expectation_month(dt.date(2014, 6, 1))
        rescued = [
            r
            for r in monitor.store.records()
            if r.server_profile.endswith("-intolerant")
            and r.client_family == "Chrome"
            and r.established
        ]
        assert rescued
        assert all(r.negotiated_version in ("TLSv10", "SSLv3") for r in rescued)
    def test_sample_counts(self):
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        generator.run_montecarlo(
            dt.date(2015, 6, 1), dt.date(2015, 7, 1), 100, random.Random(3)
        )
        assert len(monitor.store) == 200  # 2 months x 100

    def test_records_have_days_inside_month(self):
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        generator.run_montecarlo(
            dt.date(2015, 6, 1), dt.date(2015, 6, 1), 50, random.Random(3)
        )
        for record in monitor.store.records():
            assert record.day is not None
            assert record.day.month == 6
            assert record.day.year == 2015

    def test_reproducible_with_same_seed(self):
        def run(seed):
            monitor = PassiveMonitor()
            generator = TrafficGenerator(
                default_population(), ServerPopulation(), monitor
            )
            generator.run_montecarlo(
                dt.date(2015, 6, 1), dt.date(2015, 6, 1), 60, random.Random(seed)
            )
            return [
                (r.client_family, r.negotiated_suite, r.day)
                for r in monitor.store.records()
            ]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_shuffler_produces_distinct_fingerprints(self):
        monitor = PassiveMonitor()
        generator = TrafficGenerator(default_population(), ServerPopulation(), monitor)
        rng = random.Random(11)
        # Sample enough connections to catch several shuffler hits.
        generator.run_montecarlo(dt.date(2015, 1, 1), dt.date(2015, 4, 1), 800, rng)
        shuffled = {
            r.fingerprint
            for r in monitor.store.records()
            if r.client_family == "Shuffling client"
        }
        assert len(shuffled) >= 2
