"""Attack-timeline tests (§2.2 dates)."""

import datetime as dt

from repro.simulation.timeline import (
    ATTACK_TIMELINE,
    BEAST,
    BROWSER_RC4_REMOVAL,
    HEARTBLEED,
    LUCKY13,
    POODLE,
    RC4_ATTACKS,
    SNOWDEN,
    SWEET32,
    events_between,
)


class TestDates:
    def test_beast(self):
        assert BEAST.date == dt.date(2011, 9, 6)

    def test_lucky13(self):
        assert LUCKY13.date == dt.date(2012, 12, 6)

    def test_rc4(self):
        assert RC4_ATTACKS.date == dt.date(2013, 3, 12)

    def test_heartbleed_public_disclosure(self):
        assert HEARTBLEED.date == dt.date(2014, 4, 7)

    def test_poodle(self):
        assert POODLE.date == dt.date(2014, 10, 14)

    def test_sweet32(self):
        assert SWEET32.date == dt.date(2016, 8, 31)

    def test_snowden_is_milestone_not_attack(self):
        assert SNOWDEN.kind == "milestone"


class TestOrdering:
    def test_timeline_sorted(self):
        dates = [e.date for e in ATTACK_TIMELINE]
        assert dates == sorted(dates)

    def test_attack_sequence(self):
        assert BEAST.date < LUCKY13.date < RC4_ATTACKS.date < SNOWDEN.date
        assert HEARTBLEED.date < POODLE.date < SWEET32.date


class TestQueries:
    def test_events_between(self):
        events = events_between(dt.date(2014, 1, 1), dt.date(2014, 12, 31))
        names = [e.name for e in events]
        assert "Heartbleed" in names
        assert "POODLE" in names
        assert "BEAST" not in names

    def test_includes_browser_milestones(self):
        events = events_between(dt.date(2015, 1, 1), dt.date(2016, 12, 31))
        assert any(e.kind == "browser" for e in events)

    def test_result_sorted(self):
        events = events_between(dt.date(2011, 1, 1), dt.date(2018, 12, 31))
        assert [e.date for e in events] == sorted(e.date for e in events)

    def test_rc4_removal_matches_table4(self):
        # The Figure 6 dots must agree with the release data of Table 4.
        from repro.clients import chrome

        chrome_dot = next(e for e in BROWSER_RC4_REMOVAL if "Chrome" in e.name)
        release = chrome.family().release("43")
        assert chrome_dot.date == release.released
