"""Hypothesis property tests for store aggregation and adoption weights."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.profile import AdoptionModel, CATEGORY_BROWSERS, ClientFamily, ClientRelease
from repro.clients import suites as cs
from repro.notary.events import ConnectionRecord
from repro.notary.store import NotaryStore, month_of, month_range


def _record(month, weight, established):
    return ConnectionRecord(
        month=month,
        weight=weight,
        client_family="x",
        client_version="1",
        client_category="",
        client_in_database=False,
        fingerprint=None,
        advertised=frozenset(),
        positions={},
        suite_count=1,
        offered_tls13=False,
        offered_tls13_versions=(),
        established=established,
        negotiated_version="TLSv12" if established else None,
        negotiated_wire=0x0303 if established else None,
        negotiated_suite=0x002F if established else None,
        negotiated_curve=None,
        heartbeat_negotiated=False,
        server_chose_unoffered=False,
    )


_months = st.dates(min_value=dt.date(2012, 1, 1), max_value=dt.date(2018, 4, 30)).map(
    month_of
)
_record_specs = st.lists(
    st.tuples(_months, st.floats(min_value=0.001, max_value=100), st.booleans()),
    min_size=1,
    max_size=60,
)


class TestStoreProperties:
    @given(_record_specs)
    @settings(max_examples=100)
    def test_fraction_always_in_unit_interval(self, specs):
        store = NotaryStore()
        for month, weight, established in specs:
            store.add(_record(month, weight, established))
        for month in store.months():
            value = store.fraction(month, lambda r: r.established)
            assert 0.0 <= value <= 1.0

    @given(_record_specs)
    @settings(max_examples=100)
    def test_complementary_fractions_sum_to_one(self, specs):
        store = NotaryStore()
        for month, weight, established in specs:
            store.add(_record(month, weight, established))
        for month in store.months():
            yes = store.fraction(month, lambda r: r.established)
            no = store.fraction(month, lambda r: not r.established)
            assert yes + no == pytest.approx(1.0)

    @given(_record_specs)
    @settings(max_examples=100)
    def test_total_weight_matches_sum(self, specs):
        store = NotaryStore()
        expected: dict[dt.date, float] = {}
        for month, weight, established in specs:
            store.add(_record(month, weight, established))
            expected[month] = expected.get(month, 0.0) + weight
        for month, total in expected.items():
            assert store.total_weight(month) == pytest.approx(total)

    @given(
        st.dates(min_value=dt.date(2012, 1, 1), max_value=dt.date(2017, 1, 1)),
        st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=80)
    def test_month_range_length(self, start, days):
        end = start + dt.timedelta(days=days)
        months = month_range(start, end)
        assert months[0] == month_of(start)
        assert months[-1] == month_of(end)
        assert months == sorted(set(months))


_adoptions = st.builds(
    AdoptionModel,
    fast_days=st.floats(min_value=1, max_value=800),
    tail=st.floats(min_value=0, max_value=0.9),
    slow_days=st.floats(min_value=100, max_value=3000),
)
_release_dates = st.lists(
    st.dates(min_value=dt.date(2008, 1, 1), max_value=dt.date(2018, 1, 1)),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestAdoptionProperties:
    @given(
        _adoptions,
        _release_dates,
        st.dates(min_value=dt.date(2012, 1, 1), max_value=dt.date(2018, 4, 1)),
    )
    @settings(max_examples=120)
    def test_release_weights_always_a_distribution(self, adoption, dates, on):
        releases = [
            ClientRelease(
                family="F",
                version=str(i),
                released=date,
                category=CATEGORY_BROWSERS,
                cipher_suites=(cs.RSA_AES128_SHA,),
            )
            for i, date in enumerate(sorted(dates))
        ]
        family = ClientFamily(
            name="F", category=CATEGORY_BROWSERS, releases=releases, adoption=adoption
        )
        weights = family.release_weights(on)
        assert weights  # never empty
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights.values())

    @given(_adoptions, st.floats(min_value=0, max_value=6000))
    @settings(max_examples=120)
    def test_adoption_bounded_and_monotone_step(self, adoption, delta):
        now = adoption.adopted_fraction(delta)
        later = adoption.adopted_fraction(delta + 30)
        assert 0.0 <= now <= 1.0
        assert later >= now - 1e-12
