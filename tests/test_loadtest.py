"""Self-test for the load-test harness against an ephemeral server.

A tiny window (5 packed months) on a port-0 server, a small budget of
real concurrent requests, and the three assertions that make the bench
trustworthy: the report carries the full percentile/RPS schema, zero
requests errored, and the server-side max-in-flight gauge proves the
load actually overlapped instead of serializing at the client.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.partition import PackedDataset, pack_records
from repro.notary.store import NotaryStore
from repro.serve import loadtest
from repro.serve.server import start_server

#: Every key a loadtest report must carry (bench + CLI consumers).
REPORT_KEYS = {
    "url",
    "requests",
    "concurrency",
    "errors",
    "wall_seconds",
    "rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "statuses",
    "max_in_flight",
}


@pytest.fixture(scope="module")
def tiny_server(early_window_store):
    store = NotaryStore()
    store.attach_packed(
        PackedDataset(pack_records(early_window_store.records()))
    )
    handle = start_server(store=store)
    yield handle
    handle.close()


def test_report_schema_zero_errors_real_concurrency(tiny_server):
    report = loadtest.run_loadtest(
        tiny_server.url, requests=400, concurrency=8
    )
    assert set(report) == REPORT_KEYS
    assert report["requests"] == 400
    assert report["concurrency"] == 8
    assert report["errors"] == 0
    assert report["statuses"] == {"200": 400}
    assert report["wall_seconds"] > 0
    assert report["rps"] > 0
    # Percentiles are real latencies in sane order.
    assert 0 < report["p50_ms"] <= report["p95_ms"] <= report["p99_ms"]
    assert report["p99_ms"] <= report["max_ms"]
    # The server saw overlapping requests — the client really was
    # concurrent, not a loop with extra threads.
    assert report["max_in_flight"] > 1


def test_loadtest_counts_http_errors(tiny_server):
    report = loadtest.run_loadtest(
        tiny_server.url,
        requests=10,
        concurrency=2,
        workload=[("GET", "/no-such-route", None)],
    )
    assert report["errors"] == 10
    assert report["statuses"] == {"404": 10}


def test_requests_split_exactly_across_threads():
    assert loadtest._split_shares(10, 3) == [4, 3, 3]
    assert loadtest._split_shares(3, 8) == [1, 1, 1, 0, 0, 0, 0, 0]
    assert sum(loadtest._split_shares(2001, 32)) == 2001


def test_nearest_rank_percentile():
    values = [float(v) for v in range(1, 101)]
    assert loadtest.percentile(values, 50) == 50.0
    assert loadtest.percentile(values, 95) == 95.0
    assert loadtest.percentile(values, 99) == 99.0
    assert loadtest.percentile(values, 100) == 100.0
    assert loadtest.percentile([7.0], 99) == 7.0
    assert loadtest.percentile([], 99) == 0.0


def test_cli_loadtest_json_report(tiny_server, capsys):
    from repro.cli import main

    code = main(
        [
            "loadtest",
            tiny_server.url,
            "--requests",
            "64",
            "--concurrency",
            "4",
            "--json",
        ]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report) == REPORT_KEYS
    assert report["errors"] == 0


def test_cli_loadtest_exit_code_on_errors(tiny_server, capsys):
    from repro.cli import main
    from repro.serve import loadtest as lt

    # Point the default workload at a 404 for this invocation only.
    original = lt.default_workload
    lt.default_workload = lambda: [("GET", "/broken", None)]
    try:
        code = main(
            ["loadtest", tiny_server.url, "--requests", "8",
             "--concurrency", "2"]
        )
    finally:
        lt.default_workload = original
    out = capsys.readouterr().out
    assert code == 1
    assert "errors" in out
