"""Self-test for the load-test harness against an ephemeral server.

A tiny window (5 packed months) on a port-0 server, a small budget of
real concurrent requests, and the three assertions that make the bench
trustworthy: the report carries the full percentile/RPS schema, zero
requests errored, and the server-side max-in-flight gauge proves the
load actually overlapped instead of serializing at the client.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.partition import PackedDataset, pack_records
from repro.notary.store import NotaryStore
from repro.serve import loadtest
from repro.serve.server import start_server

#: Every key a loadtest report must carry (bench + CLI consumers).
REPORT_KEYS = {
    "url",
    "requests",
    "concurrency",
    "errors",
    "wall_seconds",
    "rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "statuses",
    "max_in_flight",
}


@pytest.fixture(scope="module")
def tiny_server(early_window_store):
    store = NotaryStore()
    store.attach_packed(
        PackedDataset(pack_records(early_window_store.records()))
    )
    handle = start_server(store=store)
    yield handle
    handle.close()


def test_report_schema_zero_errors_real_concurrency(tiny_server):
    report = loadtest.run_loadtest(
        tiny_server.url, requests=400, concurrency=8
    )
    assert set(report) == REPORT_KEYS
    assert report["requests"] == 400
    assert report["concurrency"] == 8
    assert report["errors"] == 0
    assert report["statuses"] == {"200": 400}
    assert report["wall_seconds"] > 0
    assert report["rps"] > 0
    # Percentiles are real latencies in sane order.
    assert 0 < report["p50_ms"] <= report["p95_ms"] <= report["p99_ms"]
    assert report["p99_ms"] <= report["max_ms"]
    # The server saw overlapping requests — the client really was
    # concurrent, not a loop with extra threads.
    assert report["max_in_flight"] > 1


def test_loadtest_counts_http_errors(tiny_server):
    report = loadtest.run_loadtest(
        tiny_server.url,
        requests=10,
        concurrency=2,
        workload=[("GET", "/no-such-route", None)],
    )
    assert report["errors"] == 10
    assert report["statuses"] == {"404": 10}


def test_requests_split_exactly_across_threads():
    assert loadtest._split_shares(10, 3) == [4, 3, 3]
    assert loadtest._split_shares(3, 8) == [1, 1, 1, 0, 0, 0, 0, 0]
    assert sum(loadtest._split_shares(2001, 32)) == 2001


def test_nearest_rank_percentile():
    values = [float(v) for v in range(1, 101)]
    assert loadtest.percentile(values, 50) == 50.0
    assert loadtest.percentile(values, 95) == 95.0
    assert loadtest.percentile(values, 99) == 99.0
    assert loadtest.percentile(values, 100) == 100.0
    assert loadtest.percentile([7.0], 99) == 7.0
    assert loadtest.percentile([], 99) == 0.0


def test_cli_loadtest_json_report(tiny_server, capsys):
    from repro.cli import main

    code = main(
        [
            "loadtest",
            tiny_server.url,
            "--requests",
            "64",
            "--concurrency",
            "4",
            "--json",
        ]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report) == REPORT_KEYS
    assert report["errors"] == 0


def test_cli_loadtest_exit_code_on_errors(tiny_server, capsys):
    from repro.cli import main
    from repro.serve import loadtest as lt

    # Point the default workload at a 404 for this invocation only.
    original = lt.default_workload
    lt.default_workload = lambda: [("GET", "/broken", None)]
    try:
        code = main(
            ["loadtest", tiny_server.url, "--requests", "8",
             "--concurrency", "2"]
        )
    finally:
        lt.default_workload = original
    out = capsys.readouterr().out
    assert code == 1
    assert "errors" in out


def test_unreachable_target_reports_errors_instead_of_hanging():
    """A refused connect used to kill worker threads before the start
    barrier, hanging the main thread forever — an operator typo'ing a
    port froze the CLI.  Now every request in the share counts as an
    error and the run returns."""
    import socket as socket_module

    # A port that is bound but never accepted would block; a *closed*
    # port refuses instantly.  Grab one and release it.
    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    report = loadtest.run_loadtest(
        f"127.0.0.1:{dead_port}", requests=6, concurrency=2, timeout=5.0
    )
    assert report["errors"] == 6
    assert report["statuses"] == {}


# ---- SLO evaluation ----------------------------------------------------------


def test_parse_slo_units_and_objectives():
    assert loadtest.parse_slo("p99=50ms") == {"p99_ms": 50.0}
    assert loadtest.parse_slo("p99=50") == {"p99_ms": 50.0}  # bare = ms
    assert loadtest.parse_slo("p95=0.25s") == {"p95_ms": 250.0}
    assert loadtest.parse_slo("error_rate=0.1%") == {"error_rate": 0.001}
    assert loadtest.parse_slo("error_rate=0.02") == {"error_rate": 0.02}
    assert loadtest.parse_slo(
        "p50=5ms, p99=50ms, error_rate=1%, max=2s"
    ) == {
        "p50_ms": 5.0,
        "p99_ms": 50.0,
        "error_rate": 0.01,
        "max_ms": 2000.0,
    }


@pytest.mark.parametrize(
    "spec",
    ["", ",", "p99", "p99=", "p42=5ms", "latency=5ms", "p99=fast"],
)
def test_parse_slo_rejects_malformed_specs(spec):
    with pytest.raises(ValueError):
        loadtest.parse_slo(spec)


def test_evaluate_slo_burn_and_verdict():
    report = {"requests": 1000, "errors": 5, "p99_ms": 40.0, "p50_ms": 2.0}
    verdict = loadtest.evaluate_slo(
        report, {"p99_ms": 50.0, "error_rate": 0.001}
    )
    assert verdict["ok"] is False
    p99 = verdict["objectives"]["p99_ms"]
    assert p99["ok"] is True
    assert p99["observed"] == 40.0
    assert p99["burn"] == pytest.approx(0.8)
    err = verdict["objectives"]["error_rate"]
    assert err["ok"] is False
    assert err["observed"] == pytest.approx(0.005)
    assert err["burn"] == pytest.approx(5.0)
    # A zero target is violated by any non-zero observation, not a
    # division crash.
    verdict = loadtest.evaluate_slo(report, {"error_rate": 0.0})
    assert verdict["objectives"]["error_rate"]["burn"] == float("inf")
    assert verdict["ok"] is False


def test_report_gains_slo_key_only_when_asked(tiny_server):
    """SLO-less reports keep the exact historical schema (REPORT_KEYS
    stays pinned above); the ``slo`` verdict appears only on request."""
    plain = loadtest.run_loadtest(
        tiny_server.url, requests=16, concurrency=2
    )
    assert set(plain) == REPORT_KEYS
    gated = loadtest.run_loadtest(
        tiny_server.url,
        requests=16,
        concurrency=2,
        slo={"p99_ms": 60_000.0, "error_rate": 0.5},
    )
    assert set(gated) == REPORT_KEYS | {"slo"}
    assert gated["slo"]["ok"] is True
    # The server's own sliding-window view rides along for burn
    # triage: client-side violation vs server-side latency.
    window = gated["slo"]["window"]
    assert window is not None
    assert window["count"] >= 16
    assert window["p50_ms"] <= window["p99_ms"]


def test_cli_loadtest_slo_gate_exit_codes(tiny_server, capsys):
    from repro.cli import main

    # A generous SLO passes: exit 0, PASS in the human report.
    code = main(
        ["loadtest", tiny_server.url, "--requests", "16",
         "--concurrency", "2", "--slo", "p99=60s,error_rate=50%"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out
    # An impossible SLO fails the run even with zero HTTP errors.
    code = main(
        ["loadtest", tiny_server.url, "--requests", "16",
         "--concurrency", "2", "--slo", "max=0.000001ms"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out
    assert "burn" in out
    # A malformed spec is a usage error (2), not a silent no-op gate.
    code = main(
        ["loadtest", tiny_server.url, "--requests", "1", "--slo",
         "p42=1ms"]
    )
    assert code == 2


def test_cli_loadtest_slo_json_report(tiny_server, capsys):
    from repro.cli import main

    code = main(
        ["loadtest", tiny_server.url, "--requests", "16",
         "--concurrency", "2", "--json", "--slo", "p99=60s"]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["slo"]["ok"] is True
    assert set(report["slo"]["objectives"]) == {"p99_ms"}
