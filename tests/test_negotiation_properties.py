"""Hypothesis property tests for the negotiation engine.

These state protocol-level invariants over randomized offers and server
configurations — the guarantees every analysis in the library silently
depends on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tls.ciphers import REGISTRY
from repro.tls.grease import GREASE_VALUES, strip_grease
from repro.tls.handshake import SelectionPolicy, negotiate
from repro.tls.messages import ClientHello
from repro.tls.versions import SSL3, TLS10, TLS11, TLS12

_CLASSIC_VERSIONS = (SSL3.wire, TLS10.wire, TLS11.wire, TLS12.wire)

# Registered non-SCSV, non-TLS13 suite codes.
_CLASSIC_SUITES = sorted(
    code
    for code, suite in REGISTRY.items()
    if not suite.scsv and not suite.tls13_only
)

_suite_lists = st.lists(
    st.sampled_from(_CLASSIC_SUITES), min_size=1, max_size=20, unique=True
)
_grease_or_suite = st.lists(
    st.one_of(st.sampled_from(_CLASSIC_SUITES), st.sampled_from(GREASE_VALUES)),
    min_size=1,
    max_size=20,
    unique=True,
)
_versions = st.frozensets(
    st.sampled_from(_CLASSIC_VERSIONS), min_size=1, max_size=4
)
_groups = st.lists(st.sampled_from([23, 24, 25, 29]), max_size=4, unique=True)


def _hello(suites, version, groups=()):
    return ClientHello(
        legacy_version=version,
        random=b"\0" * 32,
        cipher_suites=tuple(suites),
        supported_groups=tuple(groups),
    )


class TestSelectionInvariants:
    @given(_suite_lists, _suite_lists, _versions,
           st.sampled_from(_CLASSIC_VERSIONS), _groups, st.booleans())
    @settings(max_examples=250)
    def test_chosen_suite_always_offered_and_supported(
        self, offered, supported, server_versions, client_version, groups, server_pref
    ):
        result = negotiate(
            _hello(offered, client_version, groups),
            server_versions,
            supported,
            supported_groups=groups or (23,),
            policy=SelectionPolicy(server_preference=server_pref),
        )
        if result.ok:
            chosen = result.server_hello.cipher_suite
            assert chosen in offered
            assert chosen in supported

    @given(_suite_lists, _suite_lists, _versions, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=250)
    def test_version_never_exceeds_either_side(
        self, offered, supported, server_versions, client_version
    ):
        result = negotiate(
            _hello(offered, client_version), server_versions, supported,
            supported_groups=(23,),
        )
        if result.ok:
            assert result.version_wire <= client_version
            assert result.version_wire in server_versions

    @given(_suite_lists, _suite_lists, _versions, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=200)
    def test_result_is_exactly_hello_or_alert(
        self, offered, supported, server_versions, client_version
    ):
        result = negotiate(
            _hello(offered, client_version), server_versions, supported,
            supported_groups=(23,),
        )
        assert (result.server_hello is None) != (result.alert is None)

    @given(_grease_or_suite, _versions, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=200)
    def test_grease_never_selected(self, offered, server_versions, client_version):
        # A GREASE-tolerant server must never echo a GREASE value, even
        # if it were (mis)configured to "support" everything offered.
        supported = list(offered)
        result = negotiate(
            _hello(offered, client_version), server_versions, supported,
            supported_groups=(23,),
        )
        if result.ok:
            assert result.server_hello.cipher_suite not in GREASE_VALUES

    @given(_grease_or_suite, _versions, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=200)
    def test_grease_stripping_does_not_change_outcome(
        self, offered, server_versions, client_version
    ):
        supported = list(strip_grease(offered)) or [0x002F]
        with_grease = negotiate(
            _hello(offered, client_version), server_versions, supported,
            supported_groups=(23,),
        )
        without = negotiate(
            _hello(strip_grease(offered) or (0x0A0A,), client_version),
            server_versions,
            supported,
            supported_groups=(23,),
        )
        if strip_grease(offered):
            assert with_grease.ok == without.ok
            if with_grease.ok:
                assert (
                    with_grease.server_hello.cipher_suite
                    == without.server_hello.cipher_suite
                )

    @given(_suite_lists, _versions, st.sampled_from(_CLASSIC_VERSIONS), _groups)
    @settings(max_examples=200)
    def test_selected_curve_mutually_supported(
        self, offered, server_versions, client_version, groups
    ):
        server_groups = (29, 23, 24)
        result = negotiate(
            _hello(offered, client_version, groups),
            server_versions,
            offered,
            supported_groups=server_groups,
        )
        if result.ok and result.curve is not None:
            assert result.curve in server_groups
            if groups:
                assert result.curve in groups

    @given(_suite_lists, _versions, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=150)
    def test_server_preference_picks_first_usable(
        self, offered, server_versions, client_version
    ):
        result = negotiate(
            _hello(offered, client_version), server_versions, offered,
            supported_groups=(23,),
            policy=SelectionPolicy(server_preference=True),
        )
        if result.ok:
            from repro.tls.handshake import suite_usable_at

            chosen = result.server_hello.cipher_suite
            offered_set = set(offered)
            for code in offered:  # server list == offered here
                suite = REGISTRY[code]
                if code in offered_set and suite_usable_at(suite, result.version_wire):
                    # The first usable candidate must be the choice,
                    # unless it needed a curve the client lacks.
                    if suite.kex_family.value in ("ECDH", "ECDHE"):
                        continue
                    assert chosen == code or REGISTRY[chosen].kex_family.value in ("ECDH", "ECDHE")
                    break

    @given(_suite_lists, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=150)
    def test_deterministic(self, offered, client_version):
        a = negotiate(_hello(offered, client_version), {TLS12.wire}, offered, supported_groups=(23,))
        b = negotiate(_hello(offered, client_version), {TLS12.wire}, offered, supported_groups=(23,))
        assert (a.ok, a.version_wire, a.server_hello.cipher_suite if a.ok else None) == (
            b.ok,
            b.version_wire,
            b.server_hello.cipher_suite if b.ok else None,
        )


class TestModeClassInvariant:
    @given(_suite_lists, st.sampled_from(_CLASSIC_VERSIONS))
    @settings(max_examples=150)
    def test_aead_only_at_tls12(self, offered, client_version):
        result = negotiate(
            _hello(offered, client_version),
            set(_CLASSIC_VERSIONS),
            offered,
            supported_groups=(23,),
        )
        if result.ok and result.mode_class == "AEAD":
            assert result.version_wire >= TLS12.wire
