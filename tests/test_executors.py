"""Executor-interface tests: backend selection, the WorkSpec contract,
and the scheduler knobs' oversubscription diagnostics (PR 10).

The byte-identity half of the executor contract lives in the
differential suites (``test_engine.py`` / ``test_faults.py`` /
``test_serve.py``, parametrized over backends); this file covers the
interface mechanics those suites lean on.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import executors, runner
from repro.engine.executors import ChunkTimeout, WorkSpec
from repro.engine.perf import PERF


def _double(job):
    return job * 2


def _boom(job):
    raise ValueError(f"boom on {job!r}")


def _sleepy(job):
    import time

    time.sleep(30)
    return job


class TestResolveBackend:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "spawn")
        assert executors.resolve_backend("inline") == "inline"

    def test_env_honored_when_no_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "inline")
        assert executors.resolve_backend(None) == "inline"

    def test_default_without_either(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert executors.resolve_backend(None) == executors.default_backend()

    def test_explicit_typo_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            executors.resolve_backend("frok")

    def test_malformed_env_degrades_with_default(self, monkeypatch):
        # A stale env var must not kill a run — same policy as every
        # other REPRO_* knob.
        monkeypatch.setenv("REPRO_BACKEND", "frok")
        assert executors.resolve_backend(None) == executors.default_backend()

    def test_explicit_is_normalized(self):
        assert executors.resolve_backend(" SPAWN ") == "spawn"


class TestInlineExecutor:
    def test_runs_inline_fn_when_given(self):
        spec = WorkSpec(pool_fn=_boom, inline_fn=_double)
        ex = executors.create_executor("inline", spec, slots=4)
        assert ex.submit(21).result() == 42

    def test_falls_back_to_pool_fn(self):
        ex = executors.create_executor("inline", WorkSpec(pool_fn=_double), 1)
        assert ex.submit(3).result() == 6

    def test_exception_replays_from_result_not_submit(self):
        """Failure transparency: the error surfaces where the scheduler
        collects, not where it submits — same shape as a pool."""
        ex = executors.create_executor("inline", WorkSpec(pool_fn=_boom), 1)
        pending = ex.submit("x")  # must not raise here
        with pytest.raises(ValueError, match="boom on 'x'"):
            pending.result()

    def test_never_preemptible(self):
        ex = executors.create_executor("inline", WorkSpec(pool_fn=_double), 1)
        assert ex.preemptible is False
        ex.close()

    def test_initializer_never_runs_in_parent(self):
        """Contract point 4: no parent-state mutation."""
        ran = []
        spec = WorkSpec(
            pool_fn=_double, initializer=lambda: ran.append(1)
        )
        ex = executors.create_executor("inline", spec, 1)
        assert ex.submit(1).result() == 2
        assert ran == []


@pytest.mark.parametrize(
    "backend",
    [
        pytest.param(
            "fork",
            marks=pytest.mark.skipif(
                not executors.fork_available(), reason="no fork"
            ),
        ),
        "spawn",
    ],
)
class TestPoolExecutors:
    def test_roundtrip(self, backend):
        ex = executors.create_executor(backend, WorkSpec(pool_fn=_double), 2)
        try:
            pendings = [ex.submit(i) for i in range(5)]
            assert [p.result(30) for p in pendings] == [0, 2, 4, 6, 8]
        finally:
            ex.close()

    def test_worker_exception_propagates(self, backend):
        ex = executors.create_executor(backend, WorkSpec(pool_fn=_boom), 1)
        try:
            with pytest.raises(ValueError, match="boom"):
                ex.submit("job").result(30)
        finally:
            ex.close()

    def test_deadline_miss_raises_chunk_timeout(self, backend):
        ex = executors.create_executor(backend, WorkSpec(pool_fn=_sleepy), 1)
        try:
            with pytest.raises(ChunkTimeout):
                ex.submit(1).result(0.2)
        finally:
            ex.close()  # must reclaim the still-hung worker

    def test_preemptible(self, backend):
        ex = executors.create_executor(backend, WorkSpec(pool_fn=_double), 1)
        assert ex.preemptible is True
        ex.close()


class TestUnknownBackend:
    def test_create_executor_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown backend"):
            executors.create_executor("threads", WorkSpec(pool_fn=_double), 1)


class TestOversubscriptionWarnings:
    """resolve_* warn (never clamp) when an explicit knob exceeds the
    CPU-reasonable bound — PR 10 satellite."""

    def test_explicit_workers_over_bound_warns(self):
        bound = 2 * (os.cpu_count() or 1)
        PERF.reset()
        assert runner.resolve_workers(bound + 1) == bound + 1  # honored
        assert PERF.oversubscription_warnings == 1

    def test_env_workers_over_bound_warns(self, monkeypatch):
        bound = 2 * (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_WORKERS", str(bound + 5))
        PERF.reset()
        assert runner.resolve_workers(None) == bound + 5
        assert PERF.oversubscription_warnings == 1

    def test_reasonable_values_stay_silent(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        PERF.reset()
        runner.resolve_workers(None)  # the CPU default never warns
        runner.resolve_workers(1)
        runner.resolve_workers(0)
        assert PERF.oversubscription_warnings == 0

    def test_chunk_months_over_bound_warns(self, monkeypatch):
        # A span so wide the 76-month study yields fewer chunks than
        # CPUs defeats load balancing: honored, but flagged.
        monkeypatch.delenv("REPRO_CHUNK_MONTHS", raising=False)
        bound = max(1, 76 // (os.cpu_count() or 1))
        PERF.reset()
        assert runner.resolve_chunk_months(bound + 1) == bound + 1
        assert PERF.oversubscription_warnings == 1
        PERF.reset()
        assert runner.resolve_chunk_months(None) is None  # auto: silent
        assert runner.resolve_chunk_months(1) == 1
        assert PERF.oversubscription_warnings == 0
