"""The live-telemetry layer (:mod:`repro.obs.live`) under test.

Four contracts, in roughly dependency order:

* **Merge algebra** (property-based): merging two histograms is exactly
  equivalent to single-stream ingestion for counts, bucket totals, and
  (to float tolerance) sums — the invariant that makes worker-shipped
  snapshots, window slots, and scrape-side aggregation all the same
  operation.
* **Percentile bounds** (property-based): the nearest-rank percentile
  read from buckets is an upper bound on the exact sample percentile
  and lands within one bucket width of it.
* **Windowing**: observations expire after ``slots × slot_seconds``
  with a deterministic injected clock; ring slots reset on epoch reuse.
* **Bounded state** (the ledger-leak regression): 10k observations
  leave both the PERF route ledger and the live telemetry holding
  O(buckets) state — no reachable list grows with request count.

Plus the Prometheus text exposition round trip: rendered text parses
back to the same values and passes the CI validator
(``scripts/check_prometheus_text.py``), and malformed expositions are
rejected.
"""

from __future__ import annotations

import importlib.util
import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.perf import PerfCounters
from repro.obs import live
from repro.obs.live import (
    DEFAULT_BOUNDS,
    Histogram,
    LiveTelemetry,
    MetricFamily,
    PrometheusParseError,
    WindowedHistogram,
    bucket_index,
    bucket_width,
    parse_prometheus,
    render_prometheus,
    sample_value,
)


def _load_script(name: str):
    path = Path(__file__).resolve().parent.parent / "scripts" / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


#: Finite observation values: positive, spanning the full bucket range
#: including sub-first-bucket and overflow territory.
values_st = st.floats(
    min_value=1e-6, max_value=500.0, allow_nan=False, allow_infinity=False
)

#: Values strictly inside the finite buckets (no overflow), for the
#: one-bucket-width percentile property — the overflow bucket has no
#: finite width and reports the observed max instead.
finite_values_st = st.floats(
    min_value=1e-6,
    max_value=DEFAULT_BOUNDS[-1],
    allow_nan=False,
    allow_infinity=False,
)


def exact_percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile over raw samples (the reference)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * q / 100))
    return ordered[rank - 1]


# ---- histogram basics --------------------------------------------------------


class TestHistogram:
    def test_bucket_index_le_semantics(self):
        # A value exactly on a bound belongs to that bound's bucket
        # (Prometheus `le`), the next float above it to the next.
        assert bucket_index(DEFAULT_BOUNDS[0]) == 0
        assert bucket_index(math.nextafter(DEFAULT_BOUNDS[0], 1)) == 1
        assert bucket_index(0.0) == 0
        assert bucket_index(DEFAULT_BOUNDS[-1]) == len(DEFAULT_BOUNDS) - 1
        assert bucket_index(DEFAULT_BOUNDS[-1] * 2) == len(DEFAULT_BOUNDS)

    def test_observe_accumulates_scalars(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.002):
            hist.observe(value)
        assert hist.count == 3
        assert math.isclose(hist.sum, 0.007)
        assert hist.max == 0.004
        assert hist.min == 0.001
        assert sum(hist.counts) == 3

    def test_state_is_o_buckets(self):
        hist = Histogram()
        for i in range(10_000):
            hist.observe((i % 997) * 1e-5)
        assert len(hist.counts) == len(DEFAULT_BOUNDS) + 1
        assert len(hist.exemplars) == len(DEFAULT_BOUNDS) + 1
        assert hist.count == 10_000

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(50) == 0.0

    def test_overflow_percentile_reports_observed_max(self):
        hist = Histogram()
        hist.observe(DEFAULT_BOUNDS[-1] * 3)
        assert hist.percentile(99) == DEFAULT_BOUNDS[-1] * 3

    def test_merge_rejects_mismatched_bounds(self):
        narrow = Histogram(bounds=(0.1, 1.0))
        with pytest.raises(ValueError, match="bounds differ"):
            Histogram().merge(narrow)

    def test_snapshot_is_json_safe_and_detached(self):
        import json

        hist = Histogram()
        hist.observe(0.01, exemplar={"trace_id": "t", "value": 0.01, "ts": 1})
        snap = hist.snapshot()
        json.dumps(snap)
        snap["counts"][0] = 999  # mutating the copy...
        snap["exemplars"][bucket_index(0.01)]["trace_id"] = "mangled"
        fresh = hist.snapshot()  # ...never touches the histogram
        assert fresh["counts"][0] != 999
        assert fresh["exemplars"][bucket_index(0.01)]["trace_id"] == "t"

    def test_cumulative_matches_counts(self):
        hist = Histogram()
        for value in (0.0001, 0.01, 0.01, 5.0, 100.0):
            hist.observe(value)
        cumulative = hist.cumulative()
        assert cumulative[-1] == hist.count
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))


# ---- merge algebra (property-based) ------------------------------------------


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.lists(values_st, max_size=60),
        b=st.lists(values_st, max_size=60),
    )
    def test_merge_equals_single_stream(self, a, b):
        left, right, single = Histogram(), Histogram(), Histogram()
        for value in a:
            left.observe(value)
        for value in b:
            right.observe(value)
        for value in a + b:
            single.observe(value)
        left.merge(right)
        assert left.count == single.count
        assert left.counts == single.counts
        assert math.isclose(left.sum, single.sum, rel_tol=1e-9, abs_tol=1e-12)
        assert left.max == single.max
        assert left.min == single.min

    @settings(max_examples=30, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(values_st, max_size=30), min_size=1, max_size=6
        )
    )
    def test_merge_is_associative_over_snapshots(self, chunks):
        """Folding worker snapshots one at a time (the parent's merge
        loop) equals ingesting the concatenated stream."""
        parent, single = Histogram(), Histogram()
        for chunk in chunks:
            worker = Histogram()
            for value in chunk:
                worker.observe(value)
            parent.merge_snapshot(worker.snapshot())
        for value in (v for chunk in chunks for v in chunk):
            single.observe(value)
        assert parent.counts == single.counts
        assert parent.count == single.count

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(finite_values_st, min_size=1, max_size=80),
        q=st.sampled_from([50.0, 95.0, 99.0]),
    )
    def test_percentile_within_one_bucket_width(self, values, q):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        exact = exact_percentile(values, q)
        approx = hist.percentile(q)
        assert approx >= exact, "bucket upper bound must bound the exact value"
        assert approx - exact <= bucket_width(exact), (
            f"p{q} off by more than one bucket width: "
            f"exact {exact}, histogram {approx}"
        )

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(values_st, min_size=1, max_size=80))
    def test_percentile_from_snapshot_matches_object(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        snap = hist.snapshot()
        for q in (50, 95, 99):
            assert live.percentile_from_snapshot(snap, q) == hist.percentile(q)


# ---- exemplars ---------------------------------------------------------------


class TestExemplars:
    def test_bucket_retains_most_recent_exemplar(self):
        hist = Histogram()
        slot = bucket_index(0.01)
        hist.observe(0.01, exemplar={"trace_id": "old", "value": 0.01, "ts": 1})
        hist.observe(0.011, exemplar={"trace_id": "new", "value": 0.011, "ts": 2})
        assert hist.snapshot()["exemplars"][slot]["trace_id"] == "new"

    def test_merge_keeps_newest_exemplar_per_bucket(self):
        a, b = Histogram(), Histogram()
        slot = bucket_index(0.01)
        a.observe(0.01, exemplar={"trace_id": "a", "value": 0.01, "ts": 5})
        b.observe(0.01, exemplar={"trace_id": "b", "value": 0.01, "ts": 9})
        a.merge(b)
        assert a.exemplars[slot]["trace_id"] == "b"
        # And the newer side wins regardless of merge direction.
        c = Histogram()
        c.observe(0.01, exemplar={"trace_id": "c", "value": 0.01, "ts": 1})
        c.merge_snapshot(a.snapshot())
        assert c.exemplars[slot]["trace_id"] == "b"

    def test_observations_without_exemplars_leave_slot_alone(self):
        hist = Histogram()
        slot = bucket_index(0.01)
        hist.observe(0.01, exemplar={"trace_id": "keep", "value": 0.01, "ts": 1})
        hist.observe(0.01)
        assert hist.exemplars[slot]["trace_id"] == "keep"


# ---- sliding window ----------------------------------------------------------


class TestWindowedHistogram:
    def test_observations_expire_after_the_window(self):
        window = WindowedHistogram(slots=4, slot_seconds=1.0)
        window.observe(0.01, now=0.5)
        assert window.window(now=0.6)["count"] == 1
        assert window.window(now=3.9)["count"] == 1  # still inside 4s
        assert window.window(now=4.5)["count"] == 0  # rotated out

    def test_partial_expiry_keeps_newer_slots(self):
        window = WindowedHistogram(slots=4, slot_seconds=1.0)
        window.observe(0.01, now=0.5, error=True)
        window.observe(0.02, now=2.5)
        summary = window.window(now=3.0)
        assert summary["count"] == 2
        assert summary["errors"] == 1
        summary = window.window(now=4.5)  # epoch 0 out, epoch 2 alive
        assert summary["count"] == 1
        assert summary["errors"] == 0

    def test_ring_slot_reset_on_epoch_reuse(self):
        window = WindowedHistogram(slots=4, slot_seconds=1.0)
        window.observe(0.01, now=0.5)
        window.observe(0.02, now=4.5)  # same ring slot, 4 epochs later
        summary = window.window(now=4.6)
        assert summary["count"] == 1
        assert summary["histogram"]["max"] == 0.02

    def test_rates_use_the_full_window_span(self):
        window = WindowedHistogram(slots=10, slot_seconds=1.0)
        for i in range(20):
            window.observe(0.001, now=5.05 + i * 0.01)
        summary = window.window(now=5.5)
        assert summary["seconds"] == 10.0
        assert summary["rps"] == pytest.approx(2.0)
        assert summary["error_rate"] == 0.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            WindowedHistogram(slots=0)
        with pytest.raises(ValueError):
            WindowedHistogram(slot_seconds=0)

    def test_window_percentiles_come_from_merged_slots(self):
        window = WindowedHistogram(slots=4, slot_seconds=1.0)
        for now, value in ((0.5, 0.001), (1.5, 0.002), (2.5, 0.004)):
            window.observe(value, now=now)
        summary = window.window(now=3.0)
        assert summary["p50"] == DEFAULT_BOUNDS[bucket_index(0.002)]


# ---- the serve-facing bundle -------------------------------------------------


class TestLiveTelemetry:
    def test_routes_and_tiers_accumulate(self):
        telemetry = LiveTelemetry(slots=4, slot_seconds=1.0)
        telemetry.observe("/a", 0.01, 200, tier="index", now=0.5)
        telemetry.observe("/a", 0.02, 500, tier="index", now=0.6)
        telemetry.observe("/b", 0.04, 200, tier="vector", now=0.7)
        payload = telemetry.window_payload(now=1.0)
        assert set(payload["routes"]) == {"/a", "/b"}
        assert payload["routes"]["/a"]["count"] == 2
        assert payload["routes"]["/a"]["errors"] == 1
        assert payload["count"] == 3
        assert payload["error_rate"] == pytest.approx(1 / 3)
        assert payload["tier_totals"] == {"index": 2, "vector": 1}
        assert payload["p99_ms"] >= payload["p50_ms"] > 0

    def test_window_payload_expires_but_tier_totals_do_not(self):
        telemetry = LiveTelemetry(slots=4, slot_seconds=1.0)
        telemetry.observe("/a", 0.01, 200, tier="shape", now=0.5)
        payload = telemetry.window_payload(now=30.0)
        assert payload["count"] == 0
        assert payload["routes"]["/a"]["count"] == 0
        assert payload["tier_totals"] == {"shape": 1}  # cumulative


# ---- bounded state: the route-ledger leak regression -------------------------


def _reachable_list_lengths(root) -> list[int]:
    """Lengths of every list reachable from ``root`` (dict/list walk)."""
    lengths, stack, seen = [], [root], set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, list):
            lengths.append(len(node))
            stack.extend(node)
        elif isinstance(node, dict):
            stack.extend(node.values())
    return lengths


class TestBoundedLedger:
    def test_perf_route_ledger_stays_o_buckets_after_10k_requests(self):
        """The satellite regression: the old ledger appended every
        request's duration to a per-route ``samples`` list; 10k served
        requests must now leave no reachable list longer than the
        bucket array."""
        counters = PerfCounters()
        for i in range(10_000):
            counters.observe_http(
                "/figures/<name>",
                (i % 463) * 1e-5,
                200 if i % 7 else 500,
                exemplar={"trace_id": "t", "value": (i % 463) * 1e-5, "ts": i},
            )
        ledger = counters.http_route_latency["/figures/<name>"]
        assert ledger["count"] == 10_000
        assert "samples" not in ledger
        bucket_cap = len(DEFAULT_BOUNDS) + 1
        for length in _reachable_list_lengths(counters.snapshot()):
            assert length <= bucket_cap, (
                "route-ledger state grew beyond O(buckets) — "
                "the unbounded-samples leak is back"
            )

    def test_live_telemetry_state_stays_bounded_after_10k_requests(self):
        telemetry = LiveTelemetry(slots=12, slot_seconds=5.0)
        for i in range(10_000):
            telemetry.observe(
                "/query", (i % 211) * 1e-5, 200, tier="index", now=i * 0.01
            )
        payload = telemetry.window_payload(now=100.0)
        bucket_cap = len(DEFAULT_BOUNDS) + 1
        for length in _reachable_list_lengths(payload):
            assert length <= bucket_cap
        assert len(telemetry.routes) == 1
        assert len(telemetry.total._ring) == 12

    def test_perf_histograms_merge_from_worker_snapshots(self):
        workers = []
        for base in (0.001, 0.01):
            worker = PerfCounters()
            for i in range(5):
                worker.observe_duration("simulate_month_seconds", base + i * base)
            workers.append(worker.snapshot())
        parent = PerfCounters()
        for snap in workers:
            parent.merge_worker(snap, wall=1.0)
        merged = parent.duration_histograms["simulate_month_seconds"]
        assert merged.count == 10
        single = Histogram()
        for base in (0.001, 0.01):
            for i in range(5):
                single.observe(base + i * base)
        assert merged.counts == single.counts


# ---- Prometheus exposition ---------------------------------------------------


class TestPrometheusText:
    def _families(self):
        requests = MetricFamily("repro_requests_total", "counter", "Requests.")
        requests.add(42, {"route": "/a"})
        requests.add(7, {"route": 'we"ird\\path\n'})
        gauge = MetricFamily("repro_in_flight", "gauge", "In flight.")
        gauge.add(3)
        hist = Histogram()
        for value in (0.0001, 0.003, 0.003, 0.2, 80.0):
            hist.observe(value)
        latency = MetricFamily(
            "repro_latency_seconds", "histogram", "Latency."
        )
        latency.add_histogram(hist.snapshot(), {"route": "/a"})
        return [requests, gauge, latency], hist

    def test_render_parse_round_trip(self):
        families, hist = self._families()
        text = render_prometheus(families)
        parsed = parse_prometheus(text)
        assert sample_value(parsed, "repro_requests_total", {"route": "/a"}) == 42
        assert sample_value(
            parsed, "repro_requests_total", {"route": 'we"ird\\path\n'}
        ) == 7
        assert sample_value(parsed, "repro_in_flight") == 3
        assert parsed["repro_latency_seconds"]["type"] == "histogram"
        assert sample_value(
            parsed,
            "repro_latency_seconds",
            {"route": "/a", "__suffix__": "_count"},
        ) == hist.count
        assert sample_value(
            parsed,
            "repro_latency_seconds",
            {"route": "/a", "le": "+Inf"},
        ) == hist.count

    def test_rendered_text_passes_the_ci_validator(self):
        checker = _load_script("check_prometheus_text.py")
        families, _hist = self._families()
        assert checker.check_text(render_prometheus(families)) is None

    def test_parser_rejects_malformed_lines(self):
        for bad in (
            "repro_thing not-a-number\n",
            'repro_thing{route="x} 1\n',
            "repro_thing{ 1\n",
            "# TYPE repro_thing flumph\n",
        ):
            with pytest.raises(PrometheusParseError):
                parse_prometheus(bad)

    def test_validator_catches_histogram_violations(self):
        checker = _load_script("check_prometheus_text.py")
        ok_prefix = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
        )
        # +Inf bucket disagreeing with _count.
        bad = ok_prefix + (
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 0.1\n"
            "h_count 3\n"
        )
        assert "!= _count" in checker.check_text(bad)
        # Decreasing cumulative buckets.
        bad = ok_prefix + (
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="0.2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 0.1\n"
            "h_count 5\n"
        )
        assert "decrease" in checker.check_text(bad)
        # Missing +Inf.
        bad = ok_prefix + (
            'h_bucket{le="0.1"} 5\n'
            "h_sum 0.1\n"
            "h_count 5\n"
        )
        assert "+Inf" in checker.check_text(bad)

    def test_validator_catches_duplicates_and_ordering(self):
        checker = _load_script("check_prometheus_text.py")
        dup = (
            "# TYPE a counter\n"
            "a 1\n"
            "a 2\n"
        )
        assert "duplicate series" in checker.check_text(dup)
        late_type = (
            "a 1\n"
            "# TYPE a counter\n"
        )
        assert "after" in checker.check_text(late_type)
        assert checker.check_text("") == "exposition contains no samples"


# ---- histogram_snapshot sink-event validation --------------------------------


class TestHistogramSnapshotEvent:
    def _event(self, **overrides) -> dict:
        hist = Histogram()
        for value in (0.0001, 0.003, 0.003, 0.2):
            hist.observe(
                value, exemplar={"trace_id": "t1", "value": value, "ts": 1.0}
            )
        snap = hist.snapshot()
        cumulative, total = [], 0
        for n in snap["counts"]:
            total += n
            cumulative.append(total)
        event = {
            "ts": 1.0,
            "event": "histogram_snapshot",
            "trace_id": "t1",
            "pid": 123,
            "name": "http_request_duration_seconds",
            "route": "/a",
            "bounds": snap["bounds"],
            "buckets": cumulative,
            "count": snap["count"],
            "sum": snap["sum"],
            "exemplars": snap["exemplars"],
        }
        event.update(overrides)
        return event

    def test_valid_event_passes(self):
        checker = _load_script("check_metrics_jsonl.py")
        assert checker.check_record(self._event(), {}) is None

    def test_violations_are_caught(self):
        checker = _load_script("check_metrics_jsonl.py")
        base = self._event()
        # count disagreeing with the +Inf cumulative bucket.
        assert "count" in checker.check_record(
            self._event(count=base["count"] + 1), {}
        )
        # Decreasing cumulative buckets.
        buckets = list(base["buckets"])
        buckets[5] = buckets[4] - 1 if buckets[4] else 0
        bad = checker.check_record(self._event(buckets=buckets), {})
        assert bad is not None
        # Non-increasing bounds.
        bounds = list(base["bounds"])
        bounds[1] = bounds[0]
        assert "increasing" in checker.check_record(
            self._event(bounds=bounds), {}
        )
        # Exemplar outside its bucket.
        exemplars = [dict(e) if e else None for e in base["exemplars"]]
        slot = bucket_index(0.2)
        exemplars[slot]["value"] = 50.0
        assert "bucket range" in checker.check_record(
            self._event(exemplars=exemplars), {}
        )
        # Exemplar without a trace_id.
        exemplars = [dict(e) if e else None for e in base["exemplars"]]
        del exemplars[slot]["trace_id"]
        assert "trace_id" in checker.check_record(
            self._event(exemplars=exemplars), {}
        )
        # sum > 0 on an empty histogram.
        empty = Histogram().snapshot()
        assert "sum" in checker.check_record(
            self._event(
                bounds=empty["bounds"],
                buckets=[0] * (len(empty["bounds"]) + 1),
                count=0,
                sum=1.0,
                exemplars=empty["exemplars"],
            ),
            {},
        )
