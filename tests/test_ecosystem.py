"""EcosystemModel driver tests: caching, windows, determinism."""

import datetime as dt

import pytest

from repro.simulation.ecosystem import EcosystemModel, default_model


@pytest.fixture(scope="module")
def model():
    return EcosystemModel(start=dt.date(2016, 1, 1), end=dt.date(2016, 6, 1))


class TestCaching:
    def test_passive_store_cached(self, model):
        assert model.passive_store() is model.passive_store()

    def test_montecarlo_cached(self, model):
        a = model.montecarlo_store(connections_per_month=50)
        b = model.montecarlo_store(connections_per_month=999)  # ignored: cached
        assert a is b

    def test_censys_cached(self, model):
        archive = model.censys(interval_days=200)
        assert model.censys() is archive

    def test_database_cached(self, model):
        assert model.database() is model.database()


class TestWindows:
    def test_passive_window_respected(self, model):
        months = model.passive_store().months()
        assert months[0] == dt.date(2016, 1, 1)
        assert months[-1] == dt.date(2016, 6, 1)
        assert len(months) == 6

    def test_montecarlo_counts(self, model):
        store = model.montecarlo_store(connections_per_month=50)
        assert len(store) == 6 * 50


class TestDeterminism:
    def test_same_seed_same_records(self):
        def signature(seed):
            m = EcosystemModel(
                start=dt.date(2016, 3, 1), end=dt.date(2016, 3, 1), seed=seed
            )
            return [
                (r.client_family, r.negotiated_suite, round(r.weight, 12))
                for r in m.passive_store().records()
            ]

        assert signature(7) == signature(7)

    def test_montecarlo_seed_changes_samples(self):
        def sample(seed):
            m = EcosystemModel(
                start=dt.date(2016, 3, 1), end=dt.date(2016, 3, 1), seed=seed
            )
            return [
                (r.client_family, r.day)
                for r in m.montecarlo_store(connections_per_month=40).records()
            ]

        assert sample(1) != sample(2)


class TestDefaultModel:
    def test_process_wide_singleton(self):
        assert default_model() is default_model()

    def test_default_window_is_study_window(self):
        model = default_model()
        assert model.start == dt.date(2012, 1, 1)
        assert model.end == dt.date(2018, 4, 1)


class TestHandshakeEdgeBranches:
    def test_tls13_only_server_vs_legacy_client(self):
        from repro.tls.handshake import negotiate
        from repro.tls.messages import AlertDescription, ClientHello
        from repro.tls.versions import TLS13

        hello = ClientHello(
            legacy_version=0x0303, random=b"\0" * 32, cipher_suites=(0x002F,)
        )
        result = negotiate(hello, {TLS13.wire}, [0x1301], supported_groups=(29,))
        assert not result.ok
        assert result.alert.description is AlertDescription.PROTOCOL_VERSION
        assert "only TLS 1.3" in result.reason

    def test_share_curve_duplicate_dates(self):
        import datetime as dtm

        from repro.clients.population import ShareCurve

        curve = ShareCurve(
            ((dtm.date(2015, 1, 1), 2.0), (dtm.date(2015, 1, 1), 5.0))
        )
        # Degenerate zero-length span: the later point wins.
        assert curve.at(dtm.date(2015, 1, 1)) == 5.0
