"""Unit tests for the protocol-version registry (Table 1)."""

import datetime as dt

import pytest

from repro.tls import versions as V


class TestRegistry:
    def test_six_versions(self):
        assert len(V.ALL_VERSIONS) == 6

    @pytest.mark.parametrize(
        "name,major,minor",
        [
            ("SSLv2", 0x00, 0x02),
            ("SSLv3", 0x03, 0x00),
            ("TLSv10", 0x03, 0x01),
            ("TLSv11", 0x03, 0x02),
            ("TLSv12", 0x03, 0x03),
            ("TLSv13", 0x03, 0x04),
        ],
    )
    def test_wire_bytes(self, name, major, minor):
        version = V.version_by_name(name)
        assert version.major == major
        assert version.minor == minor
        assert version.wire == (major << 8) | minor

    @pytest.mark.parametrize(
        "name,year,month",
        [
            ("SSLv2", 1995, 2),
            ("SSLv3", 1996, 11),
            ("TLSv10", 1999, 1),
            ("TLSv11", 2006, 4),
            ("TLSv12", 2008, 8),
            ("TLSv13", 2018, 8),
        ],
    )
    def test_release_dates_match_table1(self, name, year, month):
        version = V.version_by_name(name)
        assert version.release_date.year == year
        assert version.release_date.month == month

    def test_table1_rows(self):
        rows = V.release_date_table()
        assert rows[0] == ("SSL 2", "Feb. 1995")
        assert rows[-1] == ("TLS 1.3", "Aug. 2018")
        assert len(rows) == 6

    def test_ordering_follows_wire(self):
        assert V.SSL2 < V.SSL3 < V.TLS10 < V.TLS11 < V.TLS12 < V.TLS13

    def test_sorted_by_release_date_too(self):
        dates = [v.release_date for v in V.ALL_VERSIONS]
        assert dates == sorted(dates)

    def test_deprecated_flags(self):
        assert V.SSL2.deprecated
        assert V.SSL3.deprecated
        assert not V.TLS12.deprecated

    def test_lookup_by_wire(self):
        assert V.version_by_wire(0x0303) is V.TLS12

    def test_lookup_unknown_wire_raises(self):
        with pytest.raises(KeyError):
            V.version_by_wire(0x0405)

    def test_lookup_unknown_name_raises(self):
        with pytest.raises(KeyError):
            V.version_by_name("TLSv99")

    def test_comparison_with_non_version(self):
        assert V.TLS12.__lt__(42) is NotImplemented


class TestDraftVersions:
    def test_draft18_wire(self):
        assert V.tls13_draft(18) == 0x7F12

    def test_draft28_wire(self):
        assert V.tls13_draft(28) == 0x7F1C

    def test_google_experiment_wire(self):
        assert V.tls13_google_experiment(2) == 0x7E02

    @pytest.mark.parametrize("value", [-1, 256])
    def test_draft_out_of_range(self, value):
        with pytest.raises(ValueError):
            V.tls13_draft(value)

    @pytest.mark.parametrize("value", [-1, 300])
    def test_experiment_out_of_range(self, value):
        with pytest.raises(ValueError):
            V.tls13_google_experiment(value)

    @pytest.mark.parametrize(
        "wire,expected",
        [
            (0x0304, True),
            (0x7F12, True),
            (0x7F1C, True),
            (0x7E02, True),
            (0x0303, False),
            (0x0301, False),
            (0x0300, False),
        ],
    )
    def test_is_tls13_variant(self, wire, expected):
        assert V.is_tls13_variant(wire) is expected
