"""Canned probe Client Hellos, mirroring the Censys scan configurations.

§3.2: "Both scans offer the same set of cipher suites as a 2015 version
of Chrome including a number of strong ciphers such as AES-GCM cipher
suites with forward secrecy, as well as weaker CBC, RC4, and 3DES
cipher suites"; plus dedicated SSL 3-only and export-cipher scans.
"""

from __future__ import annotations

from repro.clients import suites as cs
from repro.clients._common import EXT_2014, GROUPS_2012, POINT_FORMATS
from repro.tls.extensions import Extension, ExtensionType
from repro.tls.messages import ClientHello
from repro.tls.versions import SSL3, TLS12

# The 2015-Chrome-equivalent suite list: strong AEAD with FS first, then
# CBC, RC4, and 3DES at the bottom (so anything the server *chooses*
# over a stronger suite reveals server preference — §5.3, §5.6).
CHROME_2015_SUITES = (
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES256_GCM,
    cs.CHACHA_ECDHE_RSA_OLD,
    cs.CHACHA_ECDHE_ECDSA_OLD,
    cs.RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES256_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_RSA_AES256_SHA,
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA,
    cs.ECDHE_ECDSA_RC4_SHA,
    cs.ECDHE_RSA_RC4_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_RC4_128_MD5,
    cs.RSA_3DES_SHA,
)


def chrome_2015_probe(heartbeat: bool = True) -> ClientHello:
    """The standard HTTPS scan hello (Chrome-2015 cipher list).

    ``heartbeat`` adds the Heartbeat extension so the grab can measure
    server-side Heartbeat support (§5.4).
    """
    extensions = tuple(Extension(int(t)) for t in EXT_2014)
    if heartbeat:
        extensions = extensions + (Extension(int(ExtensionType.HEARTBEAT), b"\x01"),)
    return ClientHello(
        legacy_version=TLS12.wire,
        cipher_suites=CHROME_2015_SUITES,
        extensions=extensions,
        supported_groups=GROUPS_2012,
        ec_point_formats=POINT_FORMATS,
    )


def ssl3_only_probe() -> ClientHello:
    """The weekly SSL 3-only scan (§3.2, §5.1)."""
    return ClientHello(
        legacy_version=SSL3.wire,
        cipher_suites=(
            cs.RSA_RC4_128_SHA,
            cs.RSA_RC4_128_MD5,
            cs.RSA_3DES_SHA,
            cs.RSA_AES128_SHA,
            cs.RSA_AES256_SHA,
            cs.RSA_DES_SHA,
        ),
        extensions=(),
    )


def export_probe() -> ClientHello:
    """The export-grade cipher scan (FREAK exposure, §3.2, §5.5)."""
    return ClientHello(
        legacy_version=TLS12.wire,
        cipher_suites=(
            cs.EXP_RSA_RC4_40_MD5,
            cs.EXP_RSA_RC2_40_MD5,
            cs.EXP_RSA_DES40_SHA,
            cs.EXP_DHE_RSA_DES40_SHA,
            cs.EXP_DHE_DSS_DES40_SHA,
            cs.EXP_ADH_DES40_SHA,
            cs.EXP_ADH_RC4_40_MD5,
        ),
        extensions=(),
    )
