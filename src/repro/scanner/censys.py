"""Censys-style scan archive: periodic sweeps with a query interface.

The archive runs the three scan types of §3.2 (Chrome-2015 HTTPS scan,
SSL 3-only scan, export-cipher scan) on a schedule from 2015-08-22 to
2018-05-13 and aggregates per-sweep statistics.  Expectation mode
evaluates each probe against the exact host-weighted mixture — the
46M-host sweep collapses to one negotiation per archetype variant —
while sampled mode grabs individual hosts for realism.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from repro.scanner.probes import chrome_2015_probe, export_probe, ssl3_only_probe
from repro.scanner.zgrab import GrabResult, grab
from repro.scanner.zmap import AddressSpaceScanner
from repro.servers.population import ServerPopulation
from repro.tls.versions import SSL3

#: Censys data availability window (§3.2).
CENSYS_FIRST_SCAN = _dt.date(2015, 8, 22)
CENSYS_LAST_SCAN = _dt.date(2018, 5, 13)


@dataclass
class ScanSnapshot:
    """Aggregated results of one sweep on one date."""

    date: _dt.date
    probe: str
    hosts: float = 0.0
    handshakes: float = 0.0
    chose: dict[str, float] = field(default_factory=dict)
    heartbeat_support: float = 0.0
    heartbleed_vulnerable: float = 0.0

    def fraction(self, key: str) -> float:
        """Fraction of responsive hosts whose chosen suite matched ``key``."""
        if self.hosts <= 0:
            return 0.0
        return self.chose.get(key, 0.0) / self.hosts

    @property
    def handshake_rate(self) -> float:
        return self.handshakes / self.hosts if self.hosts else 0.0


def _classify(result: GrabResult) -> list[str]:
    keys = []
    suite = result.suite
    if suite is None:
        return keys
    keys.append(f"class:{suite.mode_class}")
    if suite.is_rc4:
        keys.append("rc4")
    if suite.is_cbc:
        keys.append("cbc")
    if suite.is_3des:
        keys.append("3des")
    if suite.is_aead:
        keys.append("aead")
    if suite.is_export:
        keys.append("export")
    if suite.forward_secret:
        keys.append("fs")
    return keys


class CensysArchive:
    """Runs and stores periodic scans."""

    def __init__(self, servers: ServerPopulation | None = None, seed: int = 20150822):
        from repro.servers.certificates import CertificateObservatory

        self.servers = servers if servers is not None else ServerPopulation()
        self.scanner = AddressSpaceScanner(self.servers, seed=seed)
        self.snapshots: dict[tuple[str, _dt.date], ScanSnapshot] = {}
        # Unique leaf certificates across all sampled sweeps (§3.2:
        # Censys accumulated 535M unique certificates).
        self.certificates = CertificateObservatory()

    # ---- running scans ------------------------------------------------------

    def run_expectation_scan(self, on: _dt.date, probe_name: str) -> ScanSnapshot:
        """One exact (expectation-weighted) sweep."""
        probe, check_hb = self._probe(probe_name)
        snapshot = ScanSnapshot(date=on, probe=probe_name)
        for profile, weight in self.scanner.expectation_mix(on):
            snapshot.hosts += weight
            result = grab(profile, probe, check_heartbleed=check_hb)
            if not result.success:
                continue
            snapshot.handshakes += weight
            for key in _classify(result):
                snapshot.chose[key] = snapshot.chose.get(key, 0.0) + weight
            if result.heartbeat_acknowledged:
                snapshot.heartbeat_support += weight
            if result.heartbleed_vulnerable:
                snapshot.heartbleed_vulnerable += weight
        self.snapshots[(probe_name, on)] = snapshot
        return snapshot

    def run_sampled_scan(
        self, on: _dt.date, probe_name: str, sample_size: int
    ) -> ScanSnapshot:
        """One sampled sweep over ``sample_size`` hosts."""
        from repro.servers.certificates import issue_certificate

        probe, check_hb = self._probe(probe_name)
        snapshot = ScanSnapshot(date=on, probe=probe_name)
        for host in self.scanner.scan(on, sample_size):
            snapshot.hosts += 1
            result = grab(host.profile, probe, check_heartbleed=check_hb)
            if not result.success:
                continue
            snapshot.handshakes += 1
            self.certificates.observe(
                issue_certificate(host.address, host.profile.name, on)
            )
            for key in _classify(result):
                snapshot.chose[key] = snapshot.chose.get(key, 0.0) + 1
            if result.heartbeat_acknowledged:
                snapshot.heartbeat_support += 1
            if result.heartbleed_vulnerable:
                snapshot.heartbleed_vulnerable += 1
        self.snapshots[(probe_name, on)] = snapshot
        return snapshot

    def run_schedule(
        self,
        probe_name: str,
        start: _dt.date = CENSYS_FIRST_SCAN,
        end: _dt.date = CENSYS_LAST_SCAN,
        interval_days: int = 28,
    ) -> list[ScanSnapshot]:
        """Periodic expectation sweeps over the Censys window."""
        snapshots = []
        cursor = start
        while cursor <= end:
            snapshots.append(self.run_expectation_scan(cursor, probe_name))
            cursor += _dt.timedelta(days=interval_days)
        return snapshots

    # ---- queries ------------------------------------------------------------

    def series(self, probe_name: str, key: str) -> list[tuple[_dt.date, float]]:
        """Per-scan fraction-of-hosts series for a choice key.

        Special keys: ``"handshake"`` (completed-handshake rate — e.g.
        SSL 3 support under the SSL 3 probe), ``"heartbeat"``,
        ``"heartbleed"``.
        """
        out = []
        for (name, date), snapshot in sorted(self.snapshots.items()):
            if name != probe_name:
                continue
            if key == "handshake":
                value = snapshot.handshake_rate
            elif key == "heartbeat":
                value = snapshot.heartbeat_support / snapshot.hosts if snapshot.hosts else 0.0
            elif key == "heartbleed":
                value = (
                    snapshot.heartbleed_vulnerable / snapshot.hosts
                    if snapshot.hosts
                    else 0.0
                )
            else:
                value = snapshot.fraction(key)
            out.append((date, value))
        return out

    @staticmethod
    def _probe(probe_name: str):
        if probe_name == "chrome2015":
            return chrome_2015_probe(), True
        if probe_name == "ssl3":
            return ssl3_only_probe(), False
        if probe_name == "export":
            return export_probe(), False
        raise ValueError(f"unknown probe {probe_name!r}")
