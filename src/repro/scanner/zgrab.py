"""ZGrab-style banner grabbing: complete a handshake, record everything.

A grab sends a probe Client Hello to a host profile, runs the genuine
negotiation code path, and extracts the observables Censys reports:
negotiated version and suite, server extension behaviour (Heartbeat),
and — when asked — a Heartbleed check (a crafted heartbeat request
against heartbeat-enabled servers, §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.servers.config import ServerProfile
from repro.tls.ciphers import REGISTRY, CipherSuite
from repro.tls.extensions import ExtensionType
from repro.tls.messages import ClientHello
from repro.tls.versions import ProtocolVersion


@dataclass(frozen=True)
class GrabResult:
    """Outcome of one banner grab."""

    success: bool
    version: ProtocolVersion | None = None
    suite_code: int | None = None
    heartbeat_acknowledged: bool = False
    heartbleed_vulnerable: bool = False
    alert: str | None = None

    @property
    def suite(self) -> CipherSuite | None:
        if self.suite_code is None:
            return None
        return REGISTRY.get(self.suite_code)


def grab(
    profile: ServerProfile,
    probe: ClientHello,
    check_heartbleed: bool = False,
    via_wire: bool = False,
) -> GrabResult:
    """Run one probe against one server profile.

    ``via_wire`` pushes both flights through the binary codec (encode,
    reparse) before interpretation — the fidelity a real grabber has,
    useful as an end-to-end check of the wire layer inside scans.
    """
    if via_wire:
        from repro.tls.wire import frame_client_hello, parse_client_hello_record

        probe = parse_client_hello_record(frame_client_hello(probe))
    result = profile.respond(probe)
    if via_wire and result.server_hello is not None:
        from repro.tls.handshake import HandshakeResult
        from repro.tls.wire import frame_server_hello, parse_server_hello_record

        reparsed = parse_server_hello_record(frame_server_hello(result.server_hello))
        result = HandshakeResult(
            client_hello=result.client_hello,
            server_hello=reparsed,
            reason=result.reason,
            client_aborts=result.client_aborts,
        )
    if not result.ok:
        return GrabResult(
            success=False,
            alert=result.alert.description.name.lower() if result.alert else None,
        )
    heartbeat_ack = result.server_hello.has_extension(ExtensionType.HEARTBEAT)
    vulnerable = False
    if check_heartbleed and heartbeat_ack:
        # The Heartbleed check sends an over-long heartbeat request; a
        # vulnerable stack answers with leaked memory.  In the model the
        # stack's vulnerability is a profile attribute.
        vulnerable = profile.heartbleed_vulnerable
    return GrabResult(
        success=True,
        version=result.version,
        suite_code=result.server_hello.cipher_suite,
        heartbeat_acknowledged=heartbeat_ack,
        heartbleed_vulnerable=vulnerable,
    )
