"""SSL Pulse-style surveys of popular sites (§5.3, related work §8).

SSL Pulse tests ~150K Alexa-popular websites; the paper cites its RC4
numbers: 92.8% of surveyed sites supported RC4 in October 2013, 19.1%
in 2018, and the "RC4-only" population fell from 4,248 sites (2.6%) to
a single site.  Popularity-weighted surveys use the *traffic* server
mixture (popular services), unlike Censys's host-weighted IPv4 sweeps.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.clients import suites as cs
from repro.scanner.zgrab import grab
from repro.servers.population import ServerPopulation
from repro.tls.messages import ClientHello
from repro.tls.versions import TLS12

#: First SSL Pulse survey the paper cites.
SSLPULSE_FIRST_SURVEY = _dt.date(2013, 10, 1)


def rc4_probe() -> ClientHello:
    """A hello offering only RC4 suites: success means RC4 support."""
    return ClientHello(
        legacy_version=TLS12.wire,
        cipher_suites=(
            cs.RSA_RC4_128_SHA,
            cs.RSA_RC4_128_MD5,
            cs.ECDHE_RSA_RC4_SHA,
            cs.ECDHE_ECDSA_RC4_SHA,
        ),
        supported_groups=(23, 24),
        ec_point_formats=(0,),
    )


def no_rc4_probe() -> ClientHello:
    """A broad modern hello with every RC4 suite removed.

    A site that fails this probe but passes :func:`rc4_probe` supports
    *only* RC4.
    """
    from repro.scanner.probes import CHROME_2015_SUITES
    from repro.tls.ciphers import REGISTRY

    suites = tuple(
        code for code in CHROME_2015_SUITES if not REGISTRY[code].is_rc4
    )
    return ClientHello(
        legacy_version=TLS12.wire,
        cipher_suites=suites,
        supported_groups=(29, 23, 24),
        ec_point_formats=(0,),
    )


@dataclass(frozen=True)
class PulseSurvey:
    """One popularity-weighted survey snapshot."""

    date: _dt.date
    rc4_supported: float      # fraction of sites accepting the RC4 probe
    rc4_only: float           # fraction accepting only RC4
    sites: float = 1.0


class SslPulse:
    """Runs popularity-weighted RC4 surveys against the server substrate."""

    def __init__(self, servers: ServerPopulation | None = None):
        self.servers = servers if servers is not None else ServerPopulation()

    def survey(self, on: _dt.date) -> PulseSurvey:
        """One expectation-weighted survey over the popular-site mix."""
        rc4 = rc4_probe()
        modern = no_rc4_probe()
        supported = 0.0
        only = 0.0
        total = 0.0
        # Site-weighted: SSL Pulse counts each surveyed site once, which
        # sits between the Notary's connection weighting and Censys's
        # IPv4 host weighting; the host mixture is the closer proxy.
        for profile, weight in self.servers.mix(on, weighting="hosts"):
            total += weight
            rc4_ok = grab(profile, rc4).success
            modern_ok = grab(profile, modern).success
            if rc4_ok:
                supported += weight
                if not modern_ok:
                    only += weight
        return PulseSurvey(
            date=on, rc4_supported=supported / total, rc4_only=only / total
        )

    def series(
        self,
        start: _dt.date = SSLPULSE_FIRST_SURVEY,
        end: _dt.date = _dt.date(2018, 4, 1),
        interval_days: int = 56,
    ) -> list[PulseSurvey]:
        surveys = []
        cursor = start
        while cursor <= end:
            surveys.append(self.survey(cursor))
            cursor += _dt.timedelta(days=interval_days)
        return surveys
