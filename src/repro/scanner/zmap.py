"""ZMap-style address-space scanning over the synthetic IPv4 population.

Real ZMap walks a random permutation of the IPv4 space; here the space
is synthetic, so the scanner draws a deterministic pseudo-random sample
of responsive hosts whose configurations follow the host-weighted
server mixture for the scan date.  Host identities are stable across
scans (the same /16-style bucket keeps the same archetype as long as
that archetype's population share supports it), which preserves the
longitudinal character of Censys data.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass

from repro.servers.config import ServerProfile
from repro.servers.population import ServerPopulation


@dataclass(frozen=True)
class Host:
    """A responsive TLS host in the synthetic IPv4 space."""

    address: int
    profile: ServerProfile

    @property
    def ip(self) -> str:
        a = self.address
        return f"{(a >> 24) & 0xFF}.{(a >> 16) & 0xFF}.{(a >> 8) & 0xFF}.{a & 0xFF}"


class AddressSpaceScanner:
    """Samples responsive hosts from the synthetic address space."""

    def __init__(self, servers: ServerPopulation, seed: int = 20150822):
        self.servers = servers
        self.seed = seed

    def scan(self, on: _dt.date, sample_size: int) -> list[Host]:
        """One sweep: ``sample_size`` responsive hosts on a given date.

        Host addresses are drawn from a permutation seeded per scanner
        (not per date), and each host's archetype is chosen by inverse-
        CDF over the host-weighted mixture using a hash of the address —
        so a host that stays within an archetype's shrinking share keeps
        its configuration across scans, while marginal hosts "patch".
        """
        mix = self.servers.mix(on, weighting="hosts")
        cdf: list[tuple[float, ServerProfile]] = []
        acc = 0.0
        for profile, weight in mix:
            acc += weight
            cdf.append((acc, profile))
        total = acc

        rng = random.Random(self.seed)
        hosts = []
        for _ in range(sample_size):
            address = rng.randrange(1 << 32)
            # Stable per-host uniform draw in [0, 1).
            u = (hash((address, self.seed)) & 0xFFFFFF) / float(1 << 24)
            point = u * total
            profile = cdf[-1][1]
            for bound, candidate in cdf:
                if point < bound:
                    profile = candidate
                    break
            hosts.append(Host(address=address, profile=profile))
        return hosts

    def expectation_mix(self, on: _dt.date) -> list[tuple[ServerProfile, float]]:
        """The exact host-weighted mixture (no sampling noise)."""
        return self.servers.mix(on, weighting="hosts")
