"""Active measurement substrate: ZMap/ZGrab-style scanning, Censys archive."""

from repro.scanner.censys import (
    CENSYS_FIRST_SCAN,
    CENSYS_LAST_SCAN,
    CensysArchive,
    ScanSnapshot,
)
from repro.scanner.probes import chrome_2015_probe, export_probe, ssl3_only_probe
from repro.scanner.zgrab import GrabResult, grab
from repro.scanner.zmap import AddressSpaceScanner, Host

__all__ = [
    "CENSYS_FIRST_SCAN",
    "CENSYS_LAST_SCAN",
    "CensysArchive",
    "ScanSnapshot",
    "chrome_2015_probe",
    "export_probe",
    "ssl3_only_probe",
    "GrabResult",
    "grab",
    "AddressSpaceScanner",
    "Host",
]
