"""Benchmark harness + the repo's own longitudinal performance record.

The paper's method is longitudinal measurement with drift detection
against known anchors; this module applies the same discipline to the
reproduction itself.  ``python -m repro bench``:

1. runs a configurable subset of benchmarks — substrate micro-benches
   (hello encode/decode, negotiation, fingerprint extraction), engine
   runs (serial, parallel, warm cache load), observability overhead,
   the query-path micro-bench (cold record scan vs shape tier vs
   vector tier vs index over packed months, plus the full-window
   ``query.vector`` acceptance bench), and *scientific anchors*
   (figure values on a fixed window, which are fully deterministic and
   therefore drift-detectable to 1e-6);
2. appends one dated record to ``BENCH_<YYYYMMDD>.json`` — the
   trajectory file that accumulates the repo's own measurement history;
3. diffs the run against the committed ``benchmarks/baseline.json``
   with per-metric-class tolerances and reports regressions (the CI
   ``perf-gate`` job fails on them).

Metric classes and their gate rules (tolerances live in the baseline
file and can be overridden there):

* ``wall_seconds`` — regression when current > baseline × (1 + tol).
  Wall clocks vary across machines, so the default tolerance is wide;
  the gate catches cliffs, not jitter.
* ``records_per_second`` — regression when current < baseline × (1 − tol).
* ``anchors`` — scientific outputs; deterministic, so the tolerance is
  relative 1e-6: *any* drift is a regression (this is the longitudinal
  anchor check, the repo-level analogue of the paper's §3 method).
* ``metrics`` — other ratios (e.g. observability overhead); regression
  when current > baseline × (1 + tol).

No pytest here: benches are plain timed loops so the harness runs in a
bare interpreter (CI installs nothing beyond the repo itself).
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs import profile

#: Version of the trajectory / baseline record layout.
TRAJECTORY_SCHEMA = 1

#: The fixed measurement window every engine/anchor bench uses — small
#: enough for CI, late enough that TLS 1.2 dominates (so the anchors
#: have comfortable dynamic range).
WINDOW_START = _dt.date(2016, 4, 1)
WINDOW_END = _dt.date(2016, 6, 1)

_REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baseline.json"

#: Gate tolerances by metric class (baseline file may override).
DEFAULT_TOLERANCES = {
    "wall_seconds": 1.5,        # current may be up to 2.5x baseline wall
    "records_per_second": 0.6,  # current may drop to 40% of baseline
    "anchors": 1e-6,            # relative: any real drift fails
    "metrics": 0.5,             # ratios may grow up to 1.5x baseline
}


@contextmanager
def _env(name: str, value: str | None):
    """Temporarily set/unset one environment variable."""
    old = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


class BenchContext:
    """Shared state across one harness invocation.

    The serial window store is built once and reused by every bench
    that needs it, so adding an anchor bench costs nothing extra.
    """

    def __init__(self, scale: float = 1.0):
        self.scale = max(scale, 1e-3)
        self._store = None
        self._store_wall: float | None = None
        self._store_counters: dict | None = None

    def iterations(self, base: int) -> int:
        return max(1, int(base * self.scale))

    def window_store(self):
        if self._store is None:
            from repro.clients.population import default_population
            from repro.engine import runner
            from repro.engine.perf import PERF
            from repro.servers import ServerPopulation

            started = time.perf_counter()
            self._store = runner.run_expectation(
                default_population(), ServerPopulation(),
                WINDOW_START, WINDOW_END, workers=0,
            )
            self._store_wall = time.perf_counter() - started
            self._store_counters = PERF.snapshot()
        return self._store, self._store_wall, self._store_counters


# ---- individual benches -----------------------------------------------------


def _timed_loop(fn, iterations: int) -> dict:
    """Run ``fn`` in a loop; report per-op wall and throughput."""
    started = time.perf_counter()
    for _ in range(iterations):
        fn()
    wall = time.perf_counter() - started
    per_op = wall / iterations
    return {
        "wall_seconds": per_op,
        "records_per_second": (1.0 / per_op) if per_op > 0 else None,
        "counters": {"iterations": iterations},
        "anchors": None,
    }


def _substrate_fixture():
    import random

    from repro.clients import chrome
    from repro.tls.wire import encode_client_hello

    hello = chrome.family().release("49").build_hello(rng=random.Random(1))
    return hello, encode_client_hello(hello)


def bench_encode_hello(ctx: BenchContext) -> dict:
    from repro.tls.wire import encode_client_hello

    hello, _wire = _substrate_fixture()
    return _timed_loop(lambda: encode_client_hello(hello), ctx.iterations(2000))


def bench_decode_hello(ctx: BenchContext) -> dict:
    from repro.tls.wire import decode_client_hello

    _hello, wire = _substrate_fixture()
    return _timed_loop(lambda: decode_client_hello(wire), ctx.iterations(2000))


def bench_negotiate(ctx: BenchContext) -> dict:
    from repro.servers.archetypes import TLS12_ECDHE_GCM

    hello, _wire = _substrate_fixture()
    return _timed_loop(lambda: TLS12_ECDHE_GCM.respond(hello), ctx.iterations(2000))


def bench_fingerprint(ctx: BenchContext) -> dict:
    from repro.core.fingerprint import Fingerprint

    hello, _wire = _substrate_fixture()
    return _timed_loop(
        lambda: Fingerprint.from_client_hello(hello), ctx.iterations(2000)
    )


def bench_engine_serial(ctx: BenchContext) -> dict:
    store, wall, counters = ctx.window_store()
    records = len(store)
    return {
        "wall_seconds": wall,
        "records_per_second": records / wall if wall and wall > 0 else None,
        "counters": {
            k: v for k, v in (counters or {}).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        },
        "anchors": {"records": float(records)},
    }


def bench_engine_parallel(ctx: BenchContext) -> dict:
    from repro.clients.population import default_population
    from repro.engine import runner
    from repro.servers import ServerPopulation

    if not runner.fork_available():
        return {"skipped": "no fork start method on this platform"}
    started = time.perf_counter()
    store = runner.run_expectation(
        default_population(), ServerPopulation(),
        WINDOW_START, WINDOW_END, workers=2,
    )
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "records_per_second": len(store) / wall if wall > 0 else None,
        "counters": {"workers": 2},
        "anchors": {"records": float(len(store))},
    }


def bench_cache_warm(ctx: BenchContext) -> dict:
    from repro.clients.population import default_population
    from repro.engine import cache as dataset_cache
    from repro.servers import ServerPopulation

    store, _wall, _counters = ctx.window_store()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        with _env("REPRO_CACHE_DIR", tmp):
            key = dataset_cache.dataset_key(
                default_population(), ServerPopulation(),
                WINDOW_START, WINDOW_END,
            )
            dataset_cache.save_store(store, key)
            started = time.perf_counter()
            warm = dataset_cache.load_store(key)
            wall = time.perf_counter() - started
    if warm is None:
        return {"skipped": "cache round-trip failed"}
    return {
        "wall_seconds": wall,
        "records_per_second": len(warm) / wall if wall > 0 else None,
        "counters": {"records": len(warm)},
        "anchors": None,
    }


def bench_anchors_fig1(ctx: BenchContext) -> dict:
    """Scientific anchors: negotiated-version shares on the fixed window.

    Deterministic to the last bit, so the baseline diff is the repo's
    drift detector — the analogue of the paper's anchor re-measurement
    (see ``benchmarks/_paper.py`` for the paper-side values these track
    in spirit; the absolute numbers differ because the window is a
    2-month slice, not the full study).
    """
    from repro.core import figures

    store, _wall, _counters = ctx.window_store()
    started = time.perf_counter()
    fig1 = figures.fig1_negotiated_versions(store)
    fig6 = figures.fig6_rc4_advertised(store)
    wall = time.perf_counter() - started
    on = WINDOW_END
    anchors = {
        "tls12_negotiated_pct": figures.value_at(fig1["TLSv12"], on),
        "tls10_negotiated_pct": figures.value_at(fig1["TLSv10"], on),
        "rc4_advertised_pct": figures.value_at(
            fig6[next(iter(fig6))], on
        ),
        "months": float(len(store.months())),
    }
    return {
        "wall_seconds": wall,
        "records_per_second": None,
        "counters": None,
        "anchors": anchors,
    }


def _query_workload(store, months) -> list:
    """A non-indexable aggregate workload (the shape tier's target).

    Fresh lambdas every call, so each invocation pays its own predicate
    compilation — the honest cold-query cost on whichever path answers.
    """
    is_tls12 = lambda r: r.negotiated_version == "TLSv12"
    rc4_est = lambda r: "rc4" in r.advertised and r.established
    est = lambda r: r.established
    aead_pos = lambda r: r.positions.get("aead")
    results = []
    for month in months:
        results.append(store.fraction(month, is_tls12))
        results.append(store.fraction(month, rc4_est, within=est))
        results.append(store.weighted_mean(month, aead_pos))
        results.append(store.weight_where(month, is_tls12))
    return results


def _vector_workload(store, months) -> list:
    """The ``_query_workload`` questions as structured predicates.

    Same aggregate questions, but phrased with the query-module
    combinators the vector tier compiles (none of them simplify to a
    single index key, so the fastest tier that can answer is vector →
    shape → scan depending on the store's switches).
    """
    from repro.notary.query import (
        ESTABLISHED,
        All,
        Advertises,
        AnyOf,
        Established,
        NegotiatedVersion,
        PositionOf,
    )

    modern = AnyOf(NegotiatedVersion("TLSv12"), NegotiatedVersion("TLSv13"))
    rc4_est = All(Advertises("rc4"), Established())
    aead_pos = PositionOf("aead")
    results = []
    for month in months:
        results.append(store.fraction(month, modern))
        results.append(store.fraction(month, rc4_est, within=ESTABLISHED))
        results.append(store.weighted_mean(month, aead_pos))
        results.append(store.weight_where(month, modern))
    return results


def _reset_query_state(dataset) -> None:
    """Drop every dataset-level compilation memo (cold-query honesty).

    Structured predicates are value-hashable, so without this each
    timing iteration after the first would answer from the shape/vector
    memos and the arm would time a dict lookup, not the tier.  The
    per-shape templates stay (building them is pack-time work, not
    query-time work).
    """
    dataset._match_cache.clear()
    dataset._value_cache.clear()
    for attr in ("_shape_view_cache", "_vector_view_cache", "_vector_matrix"):
        if hasattr(dataset, attr):
            delattr(dataset, attr)


def bench_query_paths(ctx: BenchContext) -> dict:
    """Cold aggregate queries over packed months: scan vs shape vs index.

    Every arm starts from a freshly attached packed dataset (the state a
    warm cache load leaves the store in).  The scan arm forces
    ``use_index = False`` — the pre-shape-tier behaviour of
    materializing record objects and scanning them — while the shape
    arm answers the identical workload from per-shape evaluation plus
    column folds.  The index arm times the O(1) counter path on the
    standard indexable queries as the floor reference.  The two
    non-indexed arms must return byte-identical results; the bench
    fails loudly if they diverge.

    A second loop times the same questions as *structured* predicates
    (the vector tier's input form) on three arms — scan, shape
    (``use_vector = False``), and vector — with every dataset-level
    compilation memo dropped per iteration, so each arm pays its full
    cold cost each time.  The gated ``vector_vs_scan_ratio`` comes from
    here; when numpy is unavailable the vector arm and its metric are
    simply omitted (the baseline gate skips missing metrics).
    """
    from repro.engine.partition import PackedDataset, pack_records
    from repro.notary import vector
    from repro.notary.query import ESTABLISHED, NegotiatedVersion
    from repro.notary.store import NotaryStore

    store, _wall, _counters = ctx.window_store()
    dataset = PackedDataset(pack_records(store.records()))
    months = store.months()

    def cold_store(use_index: bool) -> NotaryStore:
        fresh = NotaryStore()
        fresh.attach_packed(dataset)
        fresh.use_index = use_index
        return fresh

    def scan_run():
        return _query_workload(cold_store(False), months)

    def shape_run():
        return _query_workload(cold_store(True), months)

    indexed = cold_store(True)

    def index_run():
        return [
            indexed.fraction(month, NegotiatedVersion("TLSv12"), ESTABLISHED)
            for month in months
        ]

    shape_results = shape_run()
    if scan_run() != shape_results:
        raise RuntimeError("shape tier diverged from the record scan")
    index_run()  # warm the index build; the arm times lookups

    iterations = ctx.iterations(10)
    scan_walls: list[float] = []
    shape_walls: list[float] = []
    index_walls: list[float] = []
    for _ in range(iterations):
        started = time.perf_counter()
        scan_run()
        scan_walls.append(time.perf_counter() - started)
        started = time.perf_counter()
        shape_run()
        shape_walls.append(time.perf_counter() - started)
        started = time.perf_counter()
        index_run()
        index_walls.append(time.perf_counter() - started)
    scan_wall = min(scan_walls)
    shape_wall = min(shape_walls)
    index_wall = min(index_walls)

    counters = {
        "iterations": iterations,
        "months": len(months),
        "scan_wall_seconds": scan_wall,
        "index_wall_seconds": index_wall,
        "shape_speedup": scan_wall / shape_wall if shape_wall > 0 else 0.0,
    }
    # Gated ratios: smaller is better, growth past tolerance fails —
    # this is the ">= Nx over scan" criterion in baseline form.
    metrics = {
        "shape_vs_scan_ratio": shape_wall / scan_wall if scan_wall > 0 else 1.0
    }

    # ---- structured-predicate arms (the vector tier's input form) ----
    def structured_store(use_vector: bool, use_index: bool = True) -> NotaryStore:
        fresh = NotaryStore()
        fresh.attach_packed(dataset)
        fresh.use_index = use_index
        fresh.use_vector = use_vector
        return fresh

    def structured_scan_run():
        _reset_query_state(dataset)
        return _vector_workload(structured_store(True, use_index=False), months)

    def structured_shape_run():
        _reset_query_state(dataset)
        return _vector_workload(structured_store(False), months)

    def vector_run():
        _reset_query_state(dataset)
        return _vector_workload(structured_store(True), months)

    structured_results = structured_scan_run()
    if structured_shape_run() != structured_results:
        raise RuntimeError("shape tier diverged from the scan (structured)")
    with_vector = vector.available()
    if with_vector and vector_run() != structured_results:
        raise RuntimeError("vector tier diverged from the scan")

    s_scan_walls: list[float] = []
    s_shape_walls: list[float] = []
    vector_walls: list[float] = []
    for _ in range(iterations):
        started = time.perf_counter()
        structured_scan_run()
        s_scan_walls.append(time.perf_counter() - started)
        started = time.perf_counter()
        structured_shape_run()
        s_shape_walls.append(time.perf_counter() - started)
        if with_vector:
            started = time.perf_counter()
            vector_run()
            vector_walls.append(time.perf_counter() - started)
    s_scan_wall = min(s_scan_walls)
    s_shape_wall = min(s_shape_walls)
    counters["structured_scan_wall_seconds"] = s_scan_wall
    counters["structured_shape_wall_seconds"] = s_shape_wall
    if with_vector:
        vector_wall = min(vector_walls)
        counters["vector_wall_seconds"] = vector_wall
        counters["vector_speedup"] = (
            s_scan_wall / vector_wall if vector_wall > 0 else 0.0
        )
        metrics["vector_vs_scan_ratio"] = (
            vector_wall / s_scan_wall if s_scan_wall > 0 else 1.0
        )

    return {
        "wall_seconds": shape_wall,
        "records_per_second": None,
        "counters": counters,
        "anchors": {
            "tls12_fraction_m0": shape_results[0],
            "aead_position_mean_m0": shape_results[2],
        },
        "metrics": metrics,
    }


def bench_query_vector(ctx: BenchContext) -> dict:
    """Vector vs shape vs scan on the full 76-month study window.

    This is the acceptance bench for the vectorized tier: the standard
    dataset (``STUDY_START``..``STUDY_END``), the structured workload,
    every arm cold per iteration, byte-identity asserted against the
    scan before any timing.  The build reuses the persistent dataset
    cache when one is warm; the simulation otherwise runs serially
    once (~tens of seconds), which is why this bench is not in the
    ``--quick`` subset.
    """
    from repro.clients.population import default_population
    from repro.engine import runner
    from repro.engine.partition import PackedDataset, pack_records
    from repro.notary import vector
    from repro.notary.store import NotaryStore
    from repro.simulation.ecosystem import STUDY_END, STUDY_START

    if not vector.available():
        return {"skipped": "numpy unavailable (install the 'fast' extra)"}

    from repro.servers import ServerPopulation

    store = runner.run_expectation(
        default_population(), ServerPopulation(),
        STUDY_START, STUDY_END, workers=0,
    )
    dataset = PackedDataset(pack_records(store.records()))
    months = store.months()

    def arm_store(use_vector: bool, use_index: bool = True) -> NotaryStore:
        fresh = NotaryStore()
        fresh.attach_packed(dataset)
        fresh.use_index = use_index
        fresh.use_vector = use_vector
        return fresh

    def scan_run():
        _reset_query_state(dataset)
        return _vector_workload(arm_store(True, use_index=False), months)

    def shape_run():
        _reset_query_state(dataset)
        return _vector_workload(arm_store(False), months)

    def vector_run():
        _reset_query_state(dataset)
        return _vector_workload(arm_store(True), months)

    scan_results = scan_run()
    if shape_run() != scan_results:
        raise RuntimeError("shape tier diverged from the record scan")
    vector_results = vector_run()
    if vector_results != scan_results:
        raise RuntimeError("vector tier diverged from the record scan")

    iterations = ctx.iterations(3)
    scan_walls, shape_walls, vector_walls = [], [], []
    for _ in range(iterations):
        started = time.perf_counter()
        scan_run()
        scan_walls.append(time.perf_counter() - started)
        started = time.perf_counter()
        shape_run()
        shape_walls.append(time.perf_counter() - started)
        started = time.perf_counter()
        vector_run()
        vector_walls.append(time.perf_counter() - started)
    scan_wall = min(scan_walls)
    shape_wall = min(shape_walls)
    vector_wall = min(vector_walls)
    return {
        "wall_seconds": vector_wall,
        "records_per_second": None,
        "counters": {
            "iterations": iterations,
            "months": len(months),
            "records": len(store),
            "scan_wall_seconds": scan_wall,
            "shape_wall_seconds": shape_wall,
            "vector_vs_shape_speedup": (
                shape_wall / vector_wall if vector_wall > 0 else 0.0
            ),
            "vector_vs_scan_speedup": (
                scan_wall / vector_wall if vector_wall > 0 else 0.0
            ),
        },
        "anchors": {
            "modern_fraction_m0": vector_results[0],
            "aead_position_mean_m0": vector_results[2],
        },
        # Gated: the ">= 5x over shape / ~75x over scan" acceptance
        # criterion in baseline form (smaller is better).
        "metrics": {
            "vector_vs_scan_ratio": (
                vector_wall / scan_wall if scan_wall > 0 else 1.0
            ),
            "vector_vs_shape_ratio": (
                vector_wall / shape_wall if shape_wall > 0 else 1.0
            ),
        },
    }


def measure_obs_overhead(rounds: int = 3, months: int = 2) -> dict:
    """Instrumented-vs-bare serial engine run, min-of-N each.

    "Instrumented" is the full PR 3+4 surface: spans live, the JSONL
    sink enabled (so run/chunk/span events all hit disk), and the new
    analyzer attribution fields being populated.  Rounds interleave so
    machine drift hits both sides equally; min-of-N discards scheduler
    noise.  Runs under ``faults.suppressed`` so an ambient
    ``REPRO_FAULTS`` (the CI fault-matrix job) cannot skew the timing.
    """
    import datetime as dt

    from repro import obs
    from repro.clients.population import default_population
    from repro.engine import faults, runner
    from repro.servers import ServerPopulation

    clients = default_population()
    servers = ServerPopulation()
    start = WINDOW_START
    end = WINDOW_START + dt.timedelta(days=31 * (months - 1))
    end = end.replace(day=1)

    def one_run() -> float:
        obs.TRACE.reset()
        began = time.perf_counter()
        runner.run_expectation(clients, servers, start, end, workers=0)
        return time.perf_counter() - began

    bare: list[float] = []
    instrumented: list[float] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        sink = str(Path(tmp) / "metrics.jsonl")
        with faults.suppressed():
            # One discarded warmup run: the generator's process-global
            # hello/handshake caches and lazy imports must not bill
            # their cold-start cost to whichever arm runs first.
            with _env("REPRO_METRICS_PATH", None):
                one_run()
            for _ in range(max(1, rounds)):
                with _env("REPRO_METRICS_PATH", None):
                    bare.append(one_run())
                with _env("REPRO_METRICS_PATH", sink):
                    instrumented.append(one_run())
    bare_min = min(bare)
    instr_min = min(instrumented)
    return {
        "bare_seconds": bare_min,
        "instrumented_seconds": instr_min,
        "overhead_ratio": instr_min / bare_min if bare_min > 0 else 1.0,
    }


def bench_obs_overhead(ctx: BenchContext) -> dict:
    measured = measure_obs_overhead(rounds=2, months=2)
    return {
        "wall_seconds": measured["instrumented_seconds"],
        "records_per_second": None,
        "counters": None,
        "anchors": None,
        "metrics": {"obs_overhead_ratio": measured["overhead_ratio"]},
    }


def bench_serve_loadtest(ctx: BenchContext) -> dict:
    """The resident server under concurrent load: p50/p99 and RPS.

    The bench window packed and served from a port-0 in-process server,
    hammered by the real ``repro loadtest`` client (16 threads of
    keep-alive connections over the default figure/query/stats mix).
    Zero tolerance for errors — a 5xx or a divergent transport failure
    fails the bench outright, not just the gate.  ``records_per_second``
    carries the sustained request RPS (the unit the "millions of users"
    north star is priced in), and the gated metrics are the p50/p99
    latencies in milliseconds (smaller is better, like every other
    gated ratio).

    Client and server share one interpreter here, so the numbers are
    GIL-conservative: a real deployment with remote clients clears
    them.  That is the right direction for a regression gate to err.
    """
    from repro.engine.partition import PackedDataset, pack_records
    from repro.notary.store import NotaryStore
    from repro.serve.loadtest import run_loadtest
    from repro.serve.server import start_server

    store, _wall, _counters = ctx.window_store()
    served = NotaryStore()
    served.attach_packed(PackedDataset(pack_records(store.records())))
    handle = start_server(store=served)
    try:
        report = run_loadtest(
            handle.url, requests=ctx.iterations(800), concurrency=16
        )
    finally:
        handle.close()
    if report["errors"]:
        raise RuntimeError(
            f"serve.loadtest saw {report['errors']} error(s): "
            f"{report['statuses']}"
        )
    if (report["max_in_flight"] or 0) <= 1:
        raise RuntimeError("serve.loadtest never overlapped requests")
    return {
        "wall_seconds": report["wall_seconds"],
        "records_per_second": report["rps"],
        "counters": {
            "requests": report["requests"],
            "concurrency": report["concurrency"],
            "max_in_flight": report["max_in_flight"],
        },
        "anchors": None,
        "metrics": {
            "serve_p50_ms": report["p50_ms"],
            "serve_p99_ms": report["p99_ms"],
        },
    }


def _mp_query_workload(store) -> list:
    """A CPU-bound ``POST /query`` mix for the mp-speedup bench.

    Full-study series over composite predicates and a ``weighted_mean``
    position fold: each request does real per-month evaluation work, so
    the threaded path serializes on the GIL while the query pool
    genuinely parallelizes — exactly the contrast the metric prices.
    """
    months = store.months()
    return [
        ("POST", "/query", {
            "kind": "fraction",
            "predicate": {"op": "any", "args": [
                {"op": "version", "value": "TLSv12"},
                {"op": "version", "value": "TLSv13"},
            ]},
            "within": {"op": "established", "value": True},
            "month": None,
        }),
        ("POST", "/query", {
            "kind": "weight",
            "predicate": {"op": "all", "args": [
                {"op": "established", "value": True},
                {"op": "not", "arg": {"op": "advertises", "value": "rc4"}},
            ]},
            "month": None,
        }),
        ("POST", "/query", {
            "kind": "weighted_mean",
            "value": {"op": "position_of", "tag": "aead"},
            "month": None,
        }),
        ("POST", "/query", {
            "kind": "fraction",
            "predicate": {"op": "mode", "value": "AEAD"},
            "within": {"op": "established", "value": True},
            "month": months[len(months) // 2].isoformat(),
        }),
    ]


def bench_serve_mp_speedup(ctx: BenchContext) -> dict:
    """Multi-process vs threaded serve RPS on a CPU-bound query mix.

    The same packed store served twice — once on the threaded path,
    once with ``--query-workers 2`` replica processes — and hammered
    with the identical CPU-bound workload.  The gated metric is
    ``threaded_vs_mp_ratio`` (threaded RPS / mp RPS, smaller is
    better): the baseline pins it at 1/3, so the gate's 0.5 tolerance
    enforces the PR 10 acceptance bar of >= 2x mp speedup wherever the
    host has the cores to show it.  Single-core hosts skip — there is
    no parallelism to measure, only pool overhead.
    """
    from repro.engine import executors
    from repro.engine.partition import PackedDataset, pack_records
    from repro.notary.store import NotaryStore
    from repro.serve.loadtest import run_loadtest
    from repro.serve.server import start_server

    if (os.cpu_count() or 1) < 2:
        return {"skipped": "needs >= 2 CPUs to measure mp speedup"}
    if not executors.fork_available():
        return {"skipped": "query pool needs the fork start method"}
    store, _wall, _counters = ctx.window_store()
    served = NotaryStore()
    served.attach_packed(PackedDataset(pack_records(store.records())))
    workload = _mp_query_workload(served)
    requests = ctx.iterations(400)
    reports = {}
    for mode, workers in (("threaded", 0), ("mp", 2)):
        handle = start_server(store=served, query_workers=workers)
        try:
            # One warm-up pass per mode fills the store's compile memos
            # so both arms measure steady-state evaluation.
            run_loadtest(
                handle.url, requests=len(workload), concurrency=1,
                workload=workload,
            )
            reports[mode] = run_loadtest(
                handle.url, requests=requests, concurrency=8,
                workload=workload,
            )
        finally:
            handle.close()
        if reports[mode]["errors"]:
            raise RuntimeError(
                f"serve.mp_speedup {mode} arm saw "
                f"{reports[mode]['errors']} error(s): "
                f"{reports[mode]['statuses']}"
            )
    threaded, mp = reports["threaded"], reports["mp"]
    speedup = mp["rps"] / threaded["rps"] if threaded["rps"] else None
    return {
        "wall_seconds": mp["wall_seconds"],
        "records_per_second": mp["rps"],
        "counters": {
            "requests": requests,
            "threaded_rps": threaded["rps"],
            "mp_rps": mp["rps"],
            "mp_speedup": speedup,
            "query_workers": 2,
        },
        "anchors": None,
        "metrics": {
            "threaded_vs_mp_ratio": (
                threaded["rps"] / mp["rps"] if mp["rps"] else None
            ),
        },
    }


def _bench_engine_backend(backend: str) -> callable:
    """One ``engine.run.<backend>`` arm: the bench window through the
    scheduler on that backend, anchored on the record count (which must
    not move by a single record across backends)."""

    def bench(ctx: BenchContext) -> dict:
        from repro.clients.population import default_population
        from repro.engine import executors, runner
        from repro.servers import ServerPopulation

        if backend == "fork" and not executors.fork_available():
            return {"skipped": "no fork start method on this platform"}
        started = time.perf_counter()
        store = runner.run_expectation(
            default_population(), ServerPopulation(),
            WINDOW_START, WINDOW_END, workers=2, backend=backend,
        )
        wall = time.perf_counter() - started
        return {
            "wall_seconds": wall,
            "records_per_second": len(store) / wall if wall > 0 else None,
            "counters": {"workers": 2, "backend": backend},
            "anchors": {"records": float(len(store))},
        }

    bench.__name__ = f"bench_engine_run_{backend}"
    return bench


def _scale_ingest_probe(scale: int, conn) -> None:
    """Child half of ``scale.ingest``: pack one month at ``scale``.

    Runs in a **spawned** process so ``ru_maxrss`` is this run's own
    peak (a forked child would inherit the parent's high-water mark and
    the ratio would always read 1).
    """
    import resource

    from repro.clients.population import default_population
    from repro.engine import runner
    from repro.servers import ServerPopulation

    started = time.perf_counter()
    store = runner.run_expectation(
        default_population(), ServerPopulation(),
        WINDOW_START, WINDOW_START, workers=0, scale=scale,
    )
    wall = time.perf_counter() - started
    conn.send({
        "records": len(store),
        "wall_seconds": wall,
        "rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    })
    conn.close()


def bench_scale_ingest(ctx: BenchContext) -> dict:
    """Streaming-ingest throughput and memory under dataset scale.

    Two spawned probes each pack one month serially through the
    generator → ``StreamPacker`` stream — at scale 1 and at scale 50.
    Gated numbers: packed records/second at scale 50 (throughput of
    the ingest path itself) and the scale-50 / scale-1 peak-RSS ratio.
    Streaming keeps the ratio near 1 because only the packed columns
    grow; materializing a month's record objects first would push it
    toward the scale factor, which is exactly the regression this
    bench exists to catch.
    """
    import multiprocessing as mp

    mp_ctx = mp.get_context("spawn")
    probes: dict[int, dict] = {}
    for scale in (1, 50):
        parent, child = mp_ctx.Pipe(duplex=False)
        proc = mp_ctx.Process(
            target=_scale_ingest_probe, args=(scale, child), daemon=True
        )
        proc.start()
        child.close()
        result = parent.recv() if parent.poll(600) else None
        proc.join(timeout=30)
        if proc.is_alive():
            proc.terminate()
        parent.close()
        if result is None:
            return {"skipped": f"scale-{scale} ingest probe died"}
        probes[scale] = result
    base, scaled = probes[1], probes[50]
    wall = scaled["wall_seconds"]
    return {
        "wall_seconds": wall,
        "records_per_second": scaled["records"] / wall if wall > 0 else None,
        "counters": {
            "records_scale1": base["records"],
            "records_scale50": scaled["records"],
            "rss_kb_scale1": base["rss_kb"],
            "rss_kb_scale50": scaled["rss_kb"],
        },
        "anchors": None,
        "metrics": {
            "scale_rss_ratio": scaled["rss_kb"] / max(base["rss_kb"], 1),
        },
    }


#: name -> (in the --quick subset, callable).  Order is run order.
BENCHES: dict[str, tuple[bool, callable]] = {
    "substrate.encode_hello": (True, bench_encode_hello),
    "substrate.decode_hello": (True, bench_decode_hello),
    "substrate.negotiate": (True, bench_negotiate),
    "substrate.fingerprint": (True, bench_fingerprint),
    "engine.serial": (True, bench_engine_serial),
    "engine.cache_warm": (True, bench_cache_warm),
    "anchors.fig1": (True, bench_anchors_fig1),
    "query.paths": (True, bench_query_paths),
    "serve.loadtest": (True, bench_serve_loadtest),
    "serve.mp_speedup": (True, bench_serve_mp_speedup),
    "scale.ingest": (True, bench_scale_ingest),
    "engine.parallel": (False, bench_engine_parallel),
    "engine.run.fork": (False, _bench_engine_backend("fork")),
    "engine.run.inline": (False, _bench_engine_backend("inline")),
    "engine.run.spawn": (False, _bench_engine_backend("spawn")),
    "obs.overhead": (False, bench_obs_overhead),
    "query.vector": (False, bench_query_vector),
}


def select_benches(names: list[str] | None = None, quick: bool = False) -> list[str]:
    """Resolve a bench selection; unknown names raise ValueError."""
    if names:
        unknown = [n for n in names if n not in BENCHES]
        if unknown:
            raise ValueError(
                f"unknown bench(es) {unknown}; choose from {sorted(BENCHES)}"
            )
        return list(names)
    if quick:
        return [name for name, (in_quick, _fn) in BENCHES.items() if in_quick]
    return list(BENCHES)


# ---- the harness ------------------------------------------------------------


def run_benches(
    names: list[str] | None = None,
    quick: bool = False,
    scale: float = 1.0,
    profile_mode: str | None = None,
) -> dict:
    """Run a bench selection; returns one trajectory run record."""
    selected = select_benches(names, quick)
    if profile_mode is not None:
        profile.configure(profile_mode)
    ctx = BenchContext(scale=scale)
    records = []
    for name in selected:
        _in_quick, fn = BENCHES[name]
        with profile.profiled(f"bench:{name}"):
            record = fn(ctx)
        record["bench"] = name
        records.append(record)
    return {
        "schema": TRAJECTORY_SCHEMA,
        "timestamp": _dt.datetime.now().isoformat(timespec="seconds"),
        "quick": quick,
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "records": records,
        "profile": profile.snapshot(),
    }


# ---- trajectory file --------------------------------------------------------


def trajectory_path(run: dict, out_dir: str | Path = ".") -> Path:
    tag = run["timestamp"][:10].replace("-", "")
    return Path(out_dir) / f"BENCH_{tag}.json"


def write_trajectory(run: dict, out_dir: str | Path = ".") -> Path:
    """Append one run record to the day's trajectory file."""
    path = trajectory_path(run, out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        document = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "runs" not in document:
            document = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    else:
        document = {
            "schema": TRAJECTORY_SCHEMA,
            "date": run["timestamp"][:10].replace("-", ""),
            "runs": [],
        }
    document["runs"].append(run)
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")
    return path


# ---- baseline gate ----------------------------------------------------------


def load_baseline(path: str | Path = DEFAULT_BASELINE) -> dict | None:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def make_baseline(run: dict) -> dict:
    """A baseline document pinned to one run's numbers."""
    return {
        "schema": TRAJECTORY_SCHEMA,
        "recorded": run["timestamp"],
        "python": run["python"],
        "tolerances": dict(DEFAULT_TOLERANCES),
        "records": [
            {
                # Copy nested dicts so later mutation of the run record
                # (or the baseline) cannot alias into the other.
                k: (dict(v) if isinstance(v := record.get(k), dict) else v)
                for k in ("bench", "wall_seconds", "records_per_second",
                          "anchors", "metrics", "skipped")
            }
            for record in run["records"]
        ],
    }


def diff_baseline(run: dict, baseline: dict) -> list[str]:
    """Regressions of ``run`` vs ``baseline``; empty list = gate passes."""
    tolerances = {**DEFAULT_TOLERANCES, **(baseline.get("tolerances") or {})}
    by_name = {r["bench"]: r for r in baseline.get("records", [])}
    failures: list[str] = []
    for record in run["records"]:
        name = record["bench"]
        base = by_name.get(name)
        if base is None or record.get("skipped") or base.get("skipped"):
            continue
        base_wall, wall = base.get("wall_seconds"), record.get("wall_seconds")
        if base_wall and wall and wall > base_wall * (1 + tolerances["wall_seconds"]):
            failures.append(
                f"{name}: wall_seconds {wall:.6f} > "
                f"{base_wall:.6f} * {1 + tolerances['wall_seconds']:.2f}"
            )
        base_rps = base.get("records_per_second")
        rps = record.get("records_per_second")
        if base_rps and rps and rps < base_rps * (1 - tolerances["records_per_second"]):
            failures.append(
                f"{name}: records_per_second {rps:,.0f} < "
                f"{base_rps:,.0f} * {1 - tolerances['records_per_second']:.2f}"
            )
        current_anchors = record.get("anchors") or {}
        for key, base_value in (base.get("anchors") or {}).items():
            value = current_anchors.get(key)
            if value is None:
                failures.append(f"{name}: anchor {key!r} missing from run")
            elif abs(value - base_value) > tolerances["anchors"] * max(
                1.0, abs(base_value)
            ):
                failures.append(
                    f"{name}: anchor {key!r} drifted {base_value!r} -> {value!r}"
                )
        current_metrics = record.get("metrics") or {}
        for key, base_value in (base.get("metrics") or {}).items():
            value = current_metrics.get(key)
            if value is not None and base_value and value > base_value * (
                1 + tolerances["metrics"]
            ):
                failures.append(
                    f"{name}: metric {key!r} {value:.4f} > "
                    f"{base_value:.4f} * {1 + tolerances['metrics']:.2f}"
                )
    return failures


def render_run(run: dict, failures: list[str] | None = None) -> str:
    """Human-readable harness report."""
    lines = ["BENCH TRAJECTORY RUN", "--------------------"]
    lines.append(f"timestamp : {run['timestamp']}   python {run['python']}")
    for record in run["records"]:
        if record.get("skipped"):
            lines.append(f"{record['bench']:<24} SKIPPED ({record['skipped']})")
            continue
        wall = record.get("wall_seconds")
        rps = record.get("records_per_second")
        parts = [f"wall={wall:.6f}s" if wall is not None else "wall=-"]
        if rps:
            parts.append(f"{rps:,.0f}/s")
        for key, value in (record.get("metrics") or {}).items():
            parts.append(f"{key}={value:.4f}")
        for key, value in (record.get("anchors") or {}).items():
            parts.append(f"{key}={value:.4f}")
        lines.append(f"{record['bench']:<24} " + "  ".join(parts))
    if failures is not None:
        if failures:
            lines.append("")
            lines.append(f"REGRESSIONS ({len(failures)}):")
            lines.extend(f"  - {failure}" for failure in failures)
        else:
            lines.append("")
            lines.append("gate: OK (no regression vs baseline)")
    return "\n".join(lines)
