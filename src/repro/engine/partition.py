"""Columnar (de)serialization of month partitions of connection records.

Expectation mode emits the same (client, server, response) combination
for many months with only the month and weight changing, so a partition
dictionary-encodes records: the distinct "shape" — every field except
``month``/``weight``/``day`` — is stored once, and each month becomes
three columns: a weight array, a shape-index array, and (Monte-Carlo
only) a day column.  A packed full-study store is a few MB instead of
hundreds; the same format serves the worker → parent hand-off of the
parallel runner and the persistent dataset cache.

:class:`PackedDataset` wraps a payload for lazy consumption: the store
attaches it and only materializes a month's record objects when a scan
actually needs them — aggregate queries are answered from the columns
(or from precomputed index counters embedded in the payload) without
creating a single record.

Each month also carries a **shape summary** — per-shape weight sums
(accumulated in row order, so a single-shape sum is bit-identical to a
scan over that shape's rows), the distinct shapes present in first- and
last-occurrence order, and the month's total/established weight folds.
The summary is computed once at pack time (an O(records) group-by over
the weight/shape-index columns), persists through the dataset cache and
checkpoints inside the payload, and is rebuilt lazily for payloads
packed before it existed.  It is what powers the store's shape-compiled
query tier: predicates evaluate once per distinct shape instead of once
per record.

The payload additionally carries a **shape matrix**: one small-integer
column per shape field over the whole shape table (a per-field vocab of
distinct canonical values plus an ``array`` of codes, one per shape).
It is the data layout of the store's vectorized query tier
(:mod:`repro.notary.vector`): a predicate is evaluated once per
*distinct field value* and broadcast to shapes by integer gather.
Like the summaries, the matrix persists through the cache inside the
payload and is rebuilt lazily for older payloads — no format bump.

Datasets are no longer strictly frozen after packing:
:meth:`PackedDataset.append_month` packs one *new* month in place —
appending to the shared shape table and matrix (existing shape indices
keep their meaning), building the month's columns and summary, and
invalidating the compiled-query memos — without ever re-packing sealed
months.  This is the incremental-maintenance path streaming ingest
uses (see ``NotaryStore.add_batch``).

Round-trips are exact: materialized records compare equal to the
originals field by field, in the original per-month order, and weights
are carried as the same Python floats — so packed aggregation is
float-identical to a fresh serial run, not merely close.
"""

from __future__ import annotations

import datetime as _dt
from array import array
from collections.abc import Iterable

from repro.engine.perf import PERF
from repro.notary.events import ConnectionRecord, FingerprintFields
from repro.obs import get_logger

_log = get_logger("repro.engine.partition")

#: Bump when the layout below changes; packed blobs with another
#: version are rejected (the dataset cache treats that as a miss).
PARTITION_FORMAT = 2

#: Record fields carried in the shape table, in layout order.  Everything
#: except the per-row ``month``/``weight``/``day``.
_SHAPE_FIELDS = (
    "client_family",
    "client_version",
    "client_category",
    "client_in_database",
    "fingerprint",
    "advertised",
    "positions",
    "suite_count",
    "offered_tls13",
    "offered_tls13_versions",
    "established",
    "negotiated_version",
    "negotiated_wire",
    "negotiated_suite",
    "negotiated_curve",
    "heartbeat_negotiated",
    "server_chose_unoffered",
    "client_extensions",
    "server_extensions",
    "server_profile",
    "server_port",
)

#: Slot of the ``established`` flag inside a shape tuple (the summary
#: builder reads it without expanding templates).
_ESTABLISHED_SLOT = _SHAPE_FIELDS.index("established")


def _shape_of(record: ConnectionRecord) -> tuple:
    """The record's hashable shape tuple (dict/set fields canonicalized)."""
    fingerprint = record.fingerprint
    return (
        record.client_family,
        record.client_version,
        record.client_category,
        record.client_in_database,
        None
        if fingerprint is None
        else (
            fingerprint.cipher_suites,
            fingerprint.extensions,
            fingerprint.curves,
            fingerprint.ec_point_formats,
        ),
        tuple(sorted(record.advertised)),
        tuple(sorted(record.positions.items())),
        record.suite_count,
        record.offered_tls13,
        record.offered_tls13_versions,
        record.established,
        record.negotiated_version,
        record.negotiated_wire,
        record.negotiated_suite,
        record.negotiated_curve,
        record.heartbeat_negotiated,
        record.server_chose_unoffered,
        record.client_extensions,
        record.server_extensions,
        record.server_profile,
        record.server_port,
    )


def _shape_fields(shape: tuple) -> dict:
    """Expand a shape tuple back into record field values."""
    fields = dict(zip(_SHAPE_FIELDS, shape))
    fp = fields["fingerprint"]
    if fp is not None:
        fields["fingerprint"] = FingerprintFields(
            cipher_suites=tuple(fp[0]),
            extensions=tuple(fp[1]),
            curves=tuple(fp[2]),
            ec_point_formats=tuple(fp[3]),
        )
    fields["advertised"] = frozenset(fields["advertised"])
    fields["positions"] = dict(fields["positions"])
    return fields


def build_shape_summary(columns: dict, shapes: list[tuple]) -> dict:
    """The per-shape group-by for one month's columns.

    One O(records) pass over the weight/shape-index columns produces:

    * ``order`` / ``sums`` — the distinct shapes present this month in
      first-occurrence order, each with its weight sum accumulated in
      row order (a single shape's sum is therefore bit-identical to a
      left-fold scan over exactly that shape's rows);
    * ``last`` — the same distinct shapes in *last*-occurrence order
      (last-wins per-fingerprint semantics, Figure 4);
    * ``total`` / ``established`` — the month's full weight folds in
      row order, matching a record scan float for float.
    """
    sums: dict[int, float] = {}
    last_pos: dict[int, int] = {}
    order: list[int] = []
    total = 0.0
    established = 0.0
    for pos, (weight, idx) in enumerate(
        zip(columns["weights"], columns["shape_idx"])
    ):
        total += weight
        if shapes[idx][_ESTABLISHED_SLOT]:
            established += weight
        if idx in sums:
            sums[idx] += weight
        else:
            sums[idx] = weight
            order.append(idx)
        last_pos[idx] = pos
    return {
        "order": array("L", order),
        "sums": array("d", (sums[idx] for idx in order)),
        "last": array("L", sorted(last_pos, key=last_pos.__getitem__)),
        "total": total,
        "established": established,
    }


def build_shape_matrix(shapes: list[tuple], matrix: dict | None = None, start: int = 0) -> dict:
    """Int-code the shape table: one small-integer column per field.

    For every shape field the matrix holds a ``vocab`` (the distinct
    canonical values, in first-occurrence order) and a ``codes`` array
    with one entry per shape.  Vocabulary entries are deduplicated by
    ``==``/hash — the same equality every predicate in
    :mod:`repro.notary.query` uses — so "two shapes share a code" is
    exactly "a field-reading predicate cannot tell them apart".

    Passing an existing ``matrix`` plus ``start`` extends it in place
    for shapes appended after it was built (the
    :meth:`PackedDataset.append_month` path): codes are append-only, so
    compiled masks over the old table stay valid for old months.
    """
    if matrix is None:
        matrix = {
            "fields": {
                name: {"vocab": [], "codes": array("L")}
                for name in _SHAPE_FIELDS
            }
        }
    for slot, name in enumerate(_SHAPE_FIELDS):
        entry = matrix["fields"][name]
        vocab = entry["vocab"]
        codes = entry["codes"]
        index = {value: code for code, value in enumerate(vocab)}
        for shape in shapes[start:] if start else shapes:
            value = shape[slot]
            code = index.get(value)
            if code is None:
                code = index[value] = len(vocab)
                vocab.append(value)
            codes.append(code)
    return matrix


class StreamPacker:
    """Incremental columnar pack: feed records one chunk at a time.

    Holds exactly the accumulation state :func:`pack_records` builds —
    the shape lookup and the per-month column arrays — so a month's
    record *objects* never need to exist together: the streaming ingest
    path (``TrafficGenerator.stream_expectation_month`` under
    ``--scale``) yields records straight into :meth:`add` and resident
    memory stays O(shapes + packed columns), not O(records).

    Any chunking of the same record sequence finishes with a payload
    byte-identical to ``pack_records`` over the concatenation: per
    record the packer performs the same appends in the same order, and
    :meth:`finish` runs the identical summary/matrix builds.

    The one shortcut taken is an identity memo on the previously added
    record: a scaled stream yields the *same* frozen record object N
    times in a row, and re-deriving the shape tuple per replica would
    make replication O(shape size) instead of O(1).  Identical objects
    have identical shapes, so the memo cannot change the output.
    """

    def __init__(self) -> None:
        self._shape_index: dict[tuple, int] = {}
        self._shapes: list[tuple] = []
        self._months: dict[int, dict] = {}
        self._last_record: ConnectionRecord | None = None
        self._last_idx: int = 0
        #: Records consumed so far (the ingest bench reads this).
        self.records = 0

    def add(self, record: ConnectionRecord) -> None:
        """Append one record to its month's columns."""
        if record is self._last_record:
            idx = self._last_idx
        else:
            shape = _shape_of(record)
            idx = self._shape_index.get(shape)
            if idx is None:
                idx = self._shape_index[shape] = len(self._shapes)
                self._shapes.append(shape)
            self._last_record = record
            self._last_idx = idx
        month_ord = record.month.toordinal()
        columns = self._months.get(month_ord)
        if columns is None:
            columns = self._months[month_ord] = {
                "weights": array("d"),
                "shape_idx": array("L"),
                "days": None,
            }
        columns["weights"].append(record.weight)
        columns["shape_idx"].append(idx)
        if record.day is not None and columns["days"] is None:
            # Upgrade lazily: expectation months never carry days.
            columns["days"] = [None] * (len(columns["weights"]) - 1)
        if columns["days"] is not None:
            columns["days"].append(
                record.day.toordinal() if record.day is not None else None
            )
        self.records += 1

    def extend(self, records: Iterable[ConnectionRecord]) -> None:
        for record in records:
            self.add(record)

    def finish(self) -> dict:
        """Seal the payload: summaries + matrix over the final table."""
        for columns in self._months.values():
            columns["shape_summary"] = build_shape_summary(
                columns, self._shapes
            )
        return {
            "format": PARTITION_FORMAT,
            "shapes": self._shapes,
            "months": self._months,
            "shape_matrix": build_shape_matrix(self._shapes),
        }


def pack_records(records: Iterable[ConnectionRecord]) -> dict:
    """Dictionary-encode records into a compact columnar payload."""
    packer = StreamPacker()
    packer.extend(records)
    return packer.finish()


def pack_stream(chunks: Iterable[Iterable[ConnectionRecord]]) -> dict:
    """Pack a stream of record chunks, chunk by chunk.

    Byte-identical to ``pack_records`` over the concatenation of the
    chunks — chunk boundaries only bound how many record objects are
    alive at once, never the output (proven by the chunking property
    test).  Chunks may be any iterables, including generators that
    build records on the fly.
    """
    packer = StreamPacker()
    for chunk in chunks:
        packer.extend(chunk)
    return packer.finish()


def remap_month(columns, source_shapes, shapes: list, shape_index: dict) -> dict:
    """Remap one month's columns into a shared shape table, in row order.

    New shapes join ``shapes`` / ``shape_index`` in first-occurrence row
    order — the discovery order ``pack_records`` would see.  The weight
    column is copied float for float, and the pack-time shape summary is
    *translated* through the remap (the per-shape sums, folds, and
    occurrence orders cover the same rows in the same order, so the
    floats carry over bit for bit and only the indices change) — O(month
    shapes) instead of another O(rows) pass.  Sources without a summary
    get one rebuilt from the remapped rows.
    """
    remap: dict[int, int] = {}
    merged_idx = array("L")
    append = merged_idx.append
    for idx in columns["shape_idx"]:
        new = remap.get(idx)
        if new is None:
            shape = source_shapes[idx]
            new = shape_index.get(shape)
            if new is None:
                new = shape_index[shape] = len(shapes)
                shapes.append(shape)
            remap[idx] = new
        append(new)
    days = columns["days"]
    merged_columns = {
        "weights": array("d", columns["weights"]),
        "shape_idx": merged_idx,
        "days": None if days is None else list(days),
    }
    summary = columns.get("shape_summary")
    if summary is None:
        # No source summary to translate: rebuild from rows (same
        # contract as split_by_month).
        merged_columns["shape_summary"] = build_shape_summary(
            merged_columns, shapes
        )
    else:
        merged_columns["shape_summary"] = {
            "order": array("L", (remap[i] for i in summary["order"])),
            "sums": array("d", summary["sums"]),
            "last": array("L", (remap[i] for i in summary["last"])),
            "total": summary["total"],
            "established": summary["established"],
        }
    return merged_columns


class PackedMerge:
    """Streaming merge of packed payloads, one month at a time.

    Months are visited in ascending order across all payloads and each
    month's shape indices are remapped into a merged shape table in row
    order — exactly the discovery order ``pack_records`` would see over
    the materialized records sorted by month.  Weight columns are
    copied float for float, so the merge is byte-identical to
    re-packing the merged store's ``records()`` while costing only
    O(rows) integer work.

    The streaming shape matters as much as the arithmetic: the
    cache-save path for scaled runs consumes :meth:`months` and writes
    each merged month straight to disk, so only *one* month's remapped
    columns are ever resident — a whole-dataset merged copy at scale
    100 would by itself rival the source columns it was copied from.
    ``shapes`` is complete only after :meth:`months` is exhausted.
    """

    def __init__(self, payloads: Iterable[dict]) -> None:
        self.shapes: list[tuple] = []
        self._shape_index: dict[tuple, int] = {}
        self._sources: list[tuple[int, dict, list]] = []
        self.has_days = False
        seen: set[int] = set()
        for payload in payloads:
            if payload.get("format") != PARTITION_FORMAT:
                raise ValueError(
                    f"unsupported partition format: {payload.get('format')!r}"
                )
            for month_ord, columns in payload["months"].items():
                if month_ord in seen:
                    raise ValueError(
                        f"month {_dt.date.fromordinal(month_ord)} appears "
                        "in more than one payload"
                    )
                seen.add(month_ord)
                if columns["days"] is not None:
                    self.has_days = True
                self._sources.append((month_ord, columns, payload["shapes"]))
        self._sources.sort(key=lambda s: s[0])

    def month_ords(self) -> list[int]:
        return [month_ord for month_ord, _, _ in self._sources]

    def months(self):
        """Yield ``(month_ord, merged_columns)`` ascending, remapped."""
        for month_ord, columns, source_shapes in self._sources:
            yield month_ord, remap_month(
                columns, source_shapes, self.shapes, self._shape_index
            )


def merge_packed(payloads: Iterable[dict]) -> dict:
    """Merge packed payloads into one in-memory payload.

    The materializing wrapper over :class:`PackedMerge` — byte-identical
    to ``pack_records`` over the concatenated record streams sorted by
    month (proven by the merge property tests).  Callers that only need
    to *write* the merge should consume ``PackedMerge.months()``
    directly and skip the whole-dataset copy this builds.
    """
    merge = PackedMerge(payloads)
    months = {month_ord: columns for month_ord, columns in merge.months()}
    return {
        "format": PARTITION_FORMAT,
        "shapes": merge.shapes,
        "months": months,
        "shape_matrix": build_shape_matrix(merge.shapes),
    }


class PackedDataset:
    """Lazy view over a packed payload, one month at a time."""

    def __init__(self, payload: dict) -> None:
        if payload.get("format") != PARTITION_FORMAT:
            raise ValueError(
                f"unsupported partition format: {payload.get('format')!r}"
            )
        self._payload = payload
        self._months = payload["months"]
        self._shapes = payload["shapes"]
        self._templates: list[dict] | None = None
        self._template_records: list[ConnectionRecord] | None = None
        self._guarded_templates: list[ConnectionRecord] | None = None
        #: shape tuple -> index, built on first append (ingest path).
        self._shape_index: dict | None = None
        #: predicate/value-function compilation memos for the shape
        #: query path, keyed by the callable object itself (the shape
        #: table only ever grows via :meth:`append_month`, which clears
        #: these; the cap just bounds a pathological query mix).
        self._match_cache: dict = {}
        self._value_cache: dict = {}

    @classmethod
    def empty(cls) -> "PackedDataset":
        """A dataset with no months yet — the streaming-ingest seed."""
        return cls(
            {
                "format": PARTITION_FORMAT,
                "shapes": [],
                "months": {},
                "shape_matrix": build_shape_matrix([]),
            }
        )

    # ---- enumeration --------------------------------------------------------

    def months(self) -> list[_dt.date]:
        return sorted(_dt.date.fromordinal(o) for o in self._months)

    def count(self, month: _dt.date) -> int:
        columns = self._months.get(month.toordinal())
        return len(columns["weights"]) if columns else 0

    def columns(self, month: _dt.date) -> tuple[array, array] | None:
        """The (weights, shape_idx) columns for one month, or None."""
        columns = self._months.get(month.toordinal())
        if columns is None:
            return None
        return columns["weights"], columns["shape_idx"]

    def has_days(self, month: _dt.date) -> bool:
        """Whether the month carries a day column (Monte-Carlo mode)."""
        columns = self._months.get(month.toordinal())
        return bool(columns) and columns.get("days") is not None

    def shape_summary(self, month: _dt.date) -> dict | None:
        """The month's per-shape group-by (see :func:`build_shape_summary`).

        Packed at pack time and persisted with the payload; payloads
        from before the summary existed get one built lazily here and
        memoized in place, so old cache blobs and checkpoints stay
        loadable without a format bump.
        """
        columns = self._months.get(month.toordinal())
        if columns is None:
            return None
        summary = columns.get("shape_summary")
        if summary is None:
            summary = columns["shape_summary"] = build_shape_summary(
                columns, self._shapes
            )
        return summary

    def shape_matrix(self) -> dict:
        """The dataset's int-coded shape matrix (see
        :func:`build_shape_matrix`).

        Packed at pack time and persisted with the payload; payloads
        from before the matrix existed (and the re-indexed payloads
        :func:`split_by_month` emits) get one built lazily here and
        memoized in place — same no-format-bump contract as
        :meth:`shape_summary`.
        """
        matrix = self._payload.get("shape_matrix")
        if matrix is None:
            matrix = self._payload["shape_matrix"] = build_shape_matrix(
                self._shapes
            )
        return matrix

    # ---- incremental maintenance --------------------------------------------

    def _shape_lookup(self) -> dict:
        """shape tuple -> index over the current table (kept in sync)."""
        lookup = self._shape_index
        if lookup is None:
            lookup = self._shape_index = {
                shape: idx for idx, shape in enumerate(self._shapes)
            }
        return lookup

    def append_month(self, month: _dt.date, records: Iterable[ConnectionRecord]) -> None:
        """Pack one *new* month into this dataset in place, O(new month).

        Sealed months are untouched: new shapes append to the shared
        table (existing indices keep their meaning, so compiled answers
        for old months remain correct), the month gets its own columns
        and summary, and the shape matrix extends by exactly the new
        shapes.  Derived memos sized to the shape table — templates,
        predicate/value compilations, vectorized masks, index shape
        keys — are extended or dropped, because a stale compilation
        would silently miss the appended shapes.
        """
        month_ord = month.toordinal()
        if month_ord in self._months:
            raise ValueError(f"month {month.isoformat()} is already packed")
        lookup = self._shape_lookup()
        shapes = self._shapes
        start = len(shapes)
        columns: dict = {
            "weights": array("d"),
            "shape_idx": array("L"),
            "days": None,
        }
        for record in records:
            shape = _shape_of(record)
            idx = lookup.get(shape)
            if idx is None:
                idx = lookup[shape] = len(shapes)
                shapes.append(shape)
            columns["weights"].append(record.weight)
            columns["shape_idx"].append(idx)
            if record.day is not None and columns["days"] is None:
                columns["days"] = [None] * (len(columns["weights"]) - 1)
            if columns["days"] is not None:
                columns["days"].append(
                    record.day.toordinal() if record.day is not None else None
                )
        columns["shape_summary"] = build_shape_summary(columns, shapes)
        matrix = self._payload.get("shape_matrix")
        if matrix is not None:
            build_shape_matrix(shapes, matrix, start)
        self._months[month_ord] = columns
        self._extend_compiled(start)

    def _extend_compiled(self, start: int) -> None:
        """Bring table-sized memos in line after an append.

        The template lists extend in place (shared ``_ShapeView``s hold
        references to them, and their old indices still mean the same
        shapes); everything compiled *over* them is dropped, to be
        lazily rebuilt against the grown table.
        """
        new_shapes = self._shapes[start:]
        if self._templates is not None:
            self._templates.extend(_shape_fields(s) for s in new_shapes)
        if self._template_records is not None:
            epoch = _dt.date(2000, 1, 1)
            for fields in self._templates[start:] if self._templates else ():
                record = object.__new__(ConnectionRecord)
                record.__dict__.update(fields)
                record.__dict__["month"] = epoch
                record.__dict__["weight"] = 0.0
                record.__dict__["day"] = None
                self._template_records.append(record)
        if self._guarded_templates is not None:
            for shape in new_shapes:
                record = object.__new__(ConnectionRecord)
                record.__dict__.update(_shape_fields(shape))
                record.__dict__["day"] = None
                self._guarded_templates.append(record)
        self._match_cache.clear()
        self._value_cache.clear()
        for attr in ("_index_shape_keys", "_vector_matrix", "_vector_view_cache"):
            if hasattr(self, attr):
                delattr(self, attr)

    # ---- shape templates ----------------------------------------------------

    def _field_templates(self) -> list[dict]:
        if self._templates is None:
            self._templates = [_shape_fields(shape) for shape in self._shapes]
        return self._templates

    def template_records(self) -> list[ConnectionRecord]:
        """One zero-weight record per shape (for index-key derivation)."""
        if self._template_records is None:
            epoch = _dt.date(2000, 1, 1)
            records = []
            for fields in self._field_templates():
                record = object.__new__(ConnectionRecord)
                record.__dict__.update(fields)
                record.__dict__["month"] = epoch
                record.__dict__["weight"] = 0.0
                record.__dict__["day"] = None
                records.append(record)
            self._template_records = records
        return self._template_records

    # ---- shape-compiled query support ---------------------------------------

    def guarded_templates(self) -> list[ConnectionRecord]:
        """One *guarded* template record per shape.

        Unlike :meth:`template_records`, these carry **no** ``month`` or
        ``weight`` attribute at all: a predicate that reads either — and
        whose answer would therefore vary per row rather than per shape
        — raises ``AttributeError`` during compilation, and the caller
        falls back to a record scan instead of silently answering from
        a template's placeholder values.  ``day`` is pinned to ``None``,
        which is exact for day-less (expectation) months; months that
        carry a day column are excluded from the shape path entirely.
        """
        if self._guarded_templates is None:
            records = []
            for fields in self._field_templates():
                record = object.__new__(ConnectionRecord)
                record.__dict__.update(fields)
                record.__dict__["day"] = None
                records.append(record)
            self._guarded_templates = records
        return self._guarded_templates

    def compile_predicate(self, predicate) -> frozenset | None:
        """Shape indices matched by ``predicate``, or None when it is
        not shape-evaluable (raised on a guarded template).

        Memoized per callable object: the shape table is immutable, so
        one compilation serves every month of the dataset — a
        ``monthly_fraction`` over N months costs O(shapes) predicate
        calls total, not O(shapes x N).
        """
        try:
            return self._match_cache[predicate]
        except KeyError:
            pass
        except TypeError:  # unhashable callable: compile uncached
            return self._compile_matches(predicate)
        if len(self._match_cache) >= 256:
            self._match_cache.clear()
        matches = self._compile_matches(predicate)
        self._match_cache[predicate] = matches
        return matches

    def _compile_matches(self, predicate) -> frozenset | None:
        templates = self.guarded_templates()
        PERF.shape_evals += len(templates)
        try:
            return frozenset(
                idx for idx, record in enumerate(templates) if predicate(record)
            )
        except Exception:  # lint: allow-swallow
            # Not shape-evaluable (e.g. reads the guarded month/weight):
            # the contract is "None means scan instead", by design.
            return None

    def compile_values(self, value) -> list | None:
        """Per-shape results of a ``weighted_mean`` value function, or
        None when it is not shape-evaluable."""
        try:
            return self._value_cache[value]
        except KeyError:
            pass
        except TypeError:
            return self._compile_values(value)
        if len(self._value_cache) >= 256:
            self._value_cache.clear()
        values = self._compile_values(value)
        self._value_cache[value] = values
        return values

    def _compile_values(self, value) -> list | None:
        templates = self.guarded_templates()
        PERF.shape_evals += len(templates)
        try:
            return [value(record) for record in templates]
        except Exception:  # lint: allow-swallow
            # Same contract as _compile_matches: None means "scan".
            return None

    # ---- materialization ----------------------------------------------------

    def materialize(self, month: _dt.date) -> list[ConnectionRecord]:
        """Rebuild one month's exact record list, original order."""
        columns = self._months.get(month.toordinal())
        if columns is None:
            return []
        templates = self._field_templates()
        weights = columns["weights"]
        idxs = columns["shape_idx"]
        days = columns["days"]
        day_dates: dict[int, _dt.date] = {}
        from_ordinal = _dt.date.fromordinal
        records: list[ConnectionRecord] = []
        append = records.append
        new = object.__new__
        for i, idx in enumerate(idxs):
            record = new(ConnectionRecord)
            # In-place dict fill sidesteps the frozen-dataclass __setattr__.
            fields = record.__dict__
            fields.update(templates[idx])
            fields["month"] = month
            fields["weight"] = weights[i]
            day_ord = days[i] if days is not None else None
            if day_ord is None:
                fields["day"] = None
            else:
                day = day_dates.get(day_ord)
                if day is None:
                    day = day_dates[day_ord] = from_ordinal(day_ord)
                fields["day"] = day
            append(record)
        return records


def validate_payload(payload: dict, expected_months: Iterable[_dt.date] | None = None) -> bool:
    """Structural integrity check of a packed payload.

    A partition crossing a process boundary (worker pipe, checkpoint
    file, cache blob) is validated before it is adopted: format version,
    column length agreement, shape-index bounds, and — when the caller
    knows which months the partition must cover — the exact month set.
    Returns False instead of raising so callers can treat corruption as
    one more recoverable chunk failure.
    """
    try:
        if payload.get("format") != PARTITION_FORMAT:
            return False
        shapes = payload["shapes"]
        months = payload["months"]
        if expected_months is not None:
            if set(months) != {m.toordinal() for m in expected_months}:
                return False
        for columns in months.values():
            weights = columns["weights"]
            idxs = columns["shape_idx"]
            if len(weights) != len(idxs):
                return False
            days = columns["days"]
            if days is not None and len(days) != len(weights):
                return False
            if len(idxs) and max(idxs) >= len(shapes):
                return False
            summary = columns.get("shape_summary")
            if summary is not None:
                order = summary["order"]
                if len(order) != len(summary["sums"]) or len(order) != len(
                    summary["last"]
                ):
                    return False
                if len(order) and max(max(order), max(summary["last"])) >= len(
                    shapes
                ):
                    return False
        matrix = payload.get("shape_matrix")
        if matrix is not None:
            fields = matrix["fields"]
            if set(fields) != set(_SHAPE_FIELDS):
                return False
            for entry in fields.values():
                codes = entry["codes"]
                if len(codes) != len(shapes):
                    return False
                if len(codes) and max(codes) >= len(entry["vocab"]):
                    return False
        return True
    except Exception as exc:
        # Damage severe enough to explode the checks themselves (wrong
        # types, missing keys) is still just a corrupt partition to the
        # caller — but it must leave a trail, not vanish.
        PERF.validation_errors += 1
        _log.warning(
            "partition payload rejected (months %s): %s: %s",
            sorted(m.isoformat() for m in expected_months)
            if expected_months is not None
            else "unknown",
            type(exc).__name__,
            exc,
        )
        return False


def split_by_month(payload: dict) -> dict[_dt.date, dict]:
    """Split a packed payload into standalone single-month payloads.

    Each output payload carries only the shapes its month references
    (re-indexed), so checkpoint files stay small and independently
    loadable.  Column contents are preserved exactly — re-attaching
    every split month reproduces the original partition byte for byte.
    """
    out: dict[_dt.date, dict] = {}
    shapes = payload["shapes"]
    for month_ord, columns in payload["months"].items():
        remap: dict[int, int] = {}
        local_shapes: list[tuple] = []
        local_idx = array("L")
        for idx in columns["shape_idx"]:
            new = remap.get(idx)
            if new is None:
                new = remap[idx] = len(local_shapes)
                local_shapes.append(shapes[idx])
            local_idx.append(new)
        days = columns["days"]
        local_columns = {
            "weights": array("d", columns["weights"]),
            "shape_idx": local_idx,
            "days": None if days is None else list(days),
        }
        # Shape indices were remapped, so the summary is rebuilt against
        # the local table rather than translated (same O(records) cost,
        # no translation bugs possible).
        local_columns["shape_summary"] = build_shape_summary(
            local_columns, local_shapes
        )
        out[_dt.date.fromordinal(month_ord)] = {
            "format": PARTITION_FORMAT,
            "shapes": local_shapes,
            "months": {month_ord: local_columns},
        }
    return out


def unpack_records(payload: dict) -> list[ConnectionRecord]:
    """Rebuild every record of a payload, grouped by ascending month."""
    dataset = PackedDataset(payload)
    records: list[ConnectionRecord] = []
    for month in dataset.months():
        records.extend(dataset.materialize(month))
    return records
