"""The engine scheduler: month-sharded expectation runs over pluggable
execution backends, resilient to worker crashes, hangs, and corrupted
partitions.

Months are independent in expectation mode — every record of month *m*
is a deterministic function of the populations and *m* alone (hello
seeds are stable across processes, see
:func:`repro.notary.generator._release_seed`) — so the full study
shards by month.  Months are split into small contiguous chunks (a few
per worker, so the pool balances dynamically and a lost chunk loses
little work); each worker runs its chunks with its own hello/result
caches, packs the resulting records into compact partitions
(:mod:`repro.engine.partition`), and the parent merges partitions into
one :class:`~repro.notary.store.NotaryStore`.  Because a month's
records always come from exactly one chunk, in generation order, the
merged store is *identical* to a serial run — including float summation
order in every aggregate — no matter how chunks are grouped, retried,
or resharded.

Failure handling, in escalation order:

* **Retry with backoff** — a chunk whose worker raises (or ships a
  partition that fails :func:`repro.engine.partition.validate_payload`)
  is re-queued with a capped exponential backoff between rounds.
* **Timeout, kill and reshard** — every chunk is collected through
  ``AsyncResult.get(timeout)`` (per-chunk submission rather than one
  ``map``, so one bad chunk cannot poison the batch); a round past its
  deadline terminates the pool — killing hung workers — and the
  unfinished chunks are split in half and re-queued.
* **Inline fallback** — a chunk that exhausts its pool attempts is
  re-run serially in the parent under :func:`repro.engine.faults.suppressed`,
  which is what guarantees termination even at 100% injected fault
  rates.

Finished chunks are immediately spilled as per-month checkpoint files
(:class:`repro.engine.cache.Checkpoint`), so a run killed outright can
resume (``resume=True`` / ``--resume`` / ``REPRO_RESUME=1``) and
re-simulate only the months that never completed.  Checkpoints are
cleared when a run finishes cleanly; ``REPRO_CHECKPOINT=0`` disables
the spill entirely.

This module is pure *policy*: chunking, sliding-window submission,
retry/backoff, deadlines with kill-and-reshard, checkpoint adoption,
and the fault-suppressed inline fallback.  *Placement* — where a chunk
actually executes — lives behind the executor interface
(:mod:`repro.engine.executors`): ``fork`` (pool workers inheriting
populations through fork memory), ``spawn`` (picklable payloads +
explicit worker init, the multi-node-shaped backend), or ``inline``
(synchronous in-parent execution).  Selection: ``backend=`` argument >
``REPRO_BACKEND`` > platform default.  The scheduling loop is
backend-agnostic; the differential and fault suites assert every
backend produces byte-identical stores.

Worker count resolution: explicit argument, else ``REPRO_WORKERS``,
else ``os.cpu_count()``.  ``0`` or ``1`` takes the serial fallback;
negative values are malformed and fall back to the CPU count.  A count
beyond twice the CPU count is honored but flagged — a diagnostic
warning plus the ``oversubscription_warnings`` counter — instead of
silently oversubscribing the host.
"""

from __future__ import annotations

import datetime as _dt
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.engine import executors, faults
from repro.engine.partition import (
    PackedDataset,
    StreamPacker,
    split_by_month,
    validate_payload,
)
from repro.engine.perf import PERF
from repro.notary.generator import TrafficGenerator
from repro.notary.monitor import PassiveMonitor
from repro.notary.store import NotaryStore, month_range

_log = obs.get_logger("repro.engine.runner")

#: Pool attempts per chunk before the inline fallback takes over.
DEFAULT_MAX_ATTEMPTS = 3

#: Per-round chunk deadline (seconds); ``REPRO_CHUNK_TIMEOUT`` overrides.
DEFAULT_CHUNK_TIMEOUT = 600.0

#: Capped exponential backoff between retry rounds.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


def fork_available() -> bool:
    return executors.fork_available()


#: The full study window (Jan 2012 – Apr 2018); the chunk-span sanity
#: bound below is "would leave fewer chunks than CPUs on the full run".
_STUDY_MONTHS = 76


def _warn_oversubscribed(knob: str, value: int, bound: int) -> None:
    """Flag an explicit knob value beyond the CPU-reasonable bound.

    Warn-only by design: the value is honored (an operator may know
    better — I/O-bound hosts, deliberate stress runs), but it is no
    longer *silent*: a diagnostic warning names the bound and the
    ``oversubscription_warnings`` counter makes it visible in
    ``stats --json`` and the JSONL sink.
    """
    PERF.oversubscription_warnings += 1
    _log.warning(
        "%s=%d exceeds the CPU-reasonable bound %d for %d CPU(s); "
        "honoring it, but expect oversubscription",
        knob,
        value,
        bound,
        os.cpu_count() or 1,
    )


def resolve_workers(explicit: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_WORKERS`` > ``os.cpu_count()``.

    Negative values — explicit or from the environment — are malformed,
    not "serial": silently clamping ``-3`` to 0 would hide a typo as a
    10x slowdown, so they fall through to the CPU-count default exactly
    like unparseable text.  Values beyond twice the CPU count (the
    headroom that tolerates I/O overlap) are honored but warned about —
    see :func:`_warn_oversubscribed`.
    """

    def checked(value: int) -> int:
        bound = 2 * (os.cpu_count() or 1)
        if value > bound:
            _warn_oversubscribed("workers", value, bound)
        return value

    if explicit is not None and int(explicit) >= 0:
        return checked(int(explicit))
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if explicit is None and env:
        try:
            value = int(env)
            if value >= 0:
                return checked(value)
        except ValueError:
            # A malformed env var must not kill a run; fall through to
            # the CPU-count default (same spirit as REPRO_CACHE parsing).
            pass
    return os.cpu_count() or 1


def resolve_scale(explicit: int | None = None) -> int:
    """Dataset scale: explicit > ``REPRO_SCALE`` > 1.

    The multiplier on per-month record counts (see
    :class:`repro.notary.generator.TrafficGenerator.scale`).  Values
    below 1 — explicit or from the environment — are malformed and fall
    through to the unscaled default, same policy as ``REPRO_WORKERS``.
    """
    if explicit is not None and int(explicit) >= 1:
        return int(explicit)
    env = os.environ.get("REPRO_SCALE", "").strip()
    if explicit is None and env:
        try:
            value = int(env)
            if value >= 1:
                return value
        except ValueError:
            pass
    return 1


def resolve_chunk_timeout(explicit: float | None = None) -> float:
    """Per-round chunk deadline: explicit > ``REPRO_CHUNK_TIMEOUT`` > default."""
    if explicit is not None and explicit > 0:
        return float(explicit)
    env = os.environ.get("REPRO_CHUNK_TIMEOUT", "").strip()
    if env:
        try:
            value = float(env)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_CHUNK_TIMEOUT


def resolve_chunk_months(explicit: int | None = None) -> int | None:
    """Months per chunk override (``REPRO_CHUNK_MONTHS``); None = auto.

    A span so wide that even the full 76-month study would yield fewer
    chunks than CPUs defeats the load balancing the chunking exists
    for; such values are honored but warned about (same warn-don't-
    clamp policy as :func:`resolve_workers`).
    """

    def checked(value: int) -> int:
        bound = max(1, _STUDY_MONTHS // (os.cpu_count() or 1))
        if value > bound:
            _warn_oversubscribed("chunk_months", value, bound)
        return value

    if explicit is not None and explicit > 0:
        return checked(int(explicit))
    env = os.environ.get("REPRO_CHUNK_MONTHS", "").strip()
    if env:
        try:
            value = int(env)
            if value > 0:
                return checked(value)
        except ValueError:
            pass
    return None


def _resume_enabled(explicit: bool | None) -> bool:
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_RESUME", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _checkpoint_enabled() -> bool:
    return os.environ.get("REPRO_CHECKPOINT", "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


@dataclass
class _Chunk:
    """One unit of schedulable work: a contiguous span of months."""

    id: int
    months: list[_dt.date]
    attempts: int = 0

    @property
    def token(self) -> str:
        return f"c{self.id}.a{self.attempts}"


def _make_chunks(
    months: list[_dt.date], count: int, per_chunk: int | None, scale: int = 1
) -> list[list[_dt.date]]:
    """Contiguous chunks, a few per worker by default.

    Finer-than-worker granularity serves three masters at once: dynamic
    load balancing (record counts grow over the study), small blast
    radius on a crashed/hung chunk, and checkpoints that start landing
    early in the run instead of all at the end.

    Scaled runs shrink the month span further: the worker→parent
    transfer and the adoption transients (pickle bytes, checkpoint
    copies) are O(chunk rows), and rows grow ×``scale`` — dividing the
    span by the scale keeps a chunk's row count near the unscaled
    profile, which is what keeps peak RSS flat as ``--scale`` climbs.
    """
    if per_chunk is None:
        per_chunk = max(1, -(-len(months) // (count * 3)))
        if scale > 1:
            per_chunk = max(1, per_chunk // scale)
    return [months[i : i + per_chunk] for i in range(0, len(months), per_chunk)]


@dataclass
class _SpillState:
    """Out-of-core adoption state for one parallel run.

    ``spill`` is the :class:`repro.engine.cache.BlobSpill` month columns
    stream into as chunks finish (None after a region-write failure —
    the run then degrades to in-memory adoption); ``indexes`` collects
    each month's aggregate-index payload, built while the chunk's
    columns are still resident so nothing ever pages the mapped region
    back in.
    """

    spill: object = None
    indexes: dict = field(default_factory=dict)


def _spill_enabled() -> bool:
    """Whether adopted chunks spill to an mmap-backed region file.

    Follows the cache wire format: ``REPRO_CACHE_FORMAT=pickle`` keeps
    the legacy all-in-memory adoption (whose save path needs the
    materialized payload anyway).  The spill itself writes to an
    anonymous temp file, so it works with the dataset cache disabled.
    """
    from repro.engine import cache as dataset_cache

    return dataset_cache._mmap_format_enabled()


def _spill_or_attach(store: NotaryStore, state: _SpillState | None, payload: dict) -> None:
    """Adopt one packed payload: out-of-core when spilling, else attach.

    The month's aggregate indexes are built first, while the payload's
    columns are ordinary resident arrays.  A region-write failure
    (:class:`repro.engine.cache.SpillError`) salvages every month
    already spilled — their mapped columns re-attach as a dataset — and
    permanently degrades this run to in-memory adoption.
    """
    if state is not None and state.spill is not None:
        from repro.engine import cache as dataset_cache
        from repro.notary.store import build_index_payloads

        state.indexes.update(build_index_payloads(payload))
        try:
            state.spill.add_payload(payload)
            return
        except dataset_cache.SpillError as exc:
            PERF.cache_write_failures += 1
            _log.warning(
                "month spill failed (%s); salvaging spilled months and "
                "continuing in memory",
                exc,
            )
            obs.emit_event("spill_failed", error=str(exc))
            salvaged = state.spill.finish_payload()
            state.spill = None
            if salvaged["months"]:
                store.attach_packed(PackedDataset(salvaged), idempotent=True)
    store.attach_packed(PackedDataset(payload), idempotent=True)


# Worker-side state, installed by the pool initializer.  Under fork the
# arguments are inherited through fork memory, never pickled; under
# spawn they are pickled across the process boundary, which is why the
# active fault plan ships explicitly — a spawned child starts with a
# fresh interpreter, so the parent's module-global ``faults.configure``
# state would otherwise silently vanish.
_WORKER: dict = {}


def _init_worker(
    clients,
    servers,
    trace_id: str | None = None,
    scale: int = 1,
    fault_plan=None,
) -> None:
    _WORKER["clients"] = clients
    _WORKER["servers"] = servers
    _WORKER["scale"] = scale
    if fault_plan is not None:
        faults.configure(fault_plan)
    PERF.reset()
    obs.TRACE.reset()
    if trace_id is not None:
        obs.adopt_trace(trace_id)


def _run_chunk(job: tuple[int, int, list[_dt.date]]) -> dict:
    """Run one month chunk; return a packed partition + perf snapshot.

    Fault-injection sites live here: a hang/crash at chunk start, a
    crash between months, and payload corruption after packing — each
    drawn deterministically from the (chunk, attempt) token so retries
    re-draw and schedules reproduce exactly.
    """
    chunk_id, attempt, months = job
    token = f"c{chunk_id}.a{attempt}"
    faults.hang_point(token)
    faults.crash_point("worker_crash", token)
    started = time.perf_counter()
    PERF.reset()
    obs.reset_spans()  # one snapshot per chunk, even when a worker reruns
    with obs.span("run_chunk", chunk=chunk_id, attempt=attempt, months=len(months)):
        generator = TrafficGenerator(
            _WORKER["clients"],
            _WORKER["servers"],
            PassiveMonitor(),
            scale=_WORKER.get("scale", 1),
        )
        # Records stream straight into the packer: a month's record
        # objects never coexist, so worker RSS stays bounded at any
        # --scale (the store-then-pack round trip would be O(records)).
        packer = StreamPacker()
        for month in months:
            faults.crash_point("month_crash", f"{token}.m{month.isoformat()}")
            month_started = time.perf_counter()
            with obs.span("simulate_month", month=month.isoformat()):
                packer.extend(generator.stream_expectation_month(month))
            # Worker-side duration histogram: ships in the perf snapshot
            # and folds bucket-by-bucket in the parent's merge, so the
            # fleet's per-month latency *distribution* survives into
            # stats --json (schema 6) instead of only chunk totals.
            PERF.observe_duration(
                "simulate_month_seconds",
                time.perf_counter() - month_started,
            )
        packed = packer.finish()
    if faults.fires("pack_corrupt", token):
        packed = faults.corrupt_partition(packed, token)
    return {
        "packed": packed,
        "perf": PERF.snapshot(),
        "spans": obs.snapshot_spans(),
        "wall": time.perf_counter() - started,
        # Attribution the trace analyzer joins on: which process ran
        # which chunk attempt over which months.
        "chunk": chunk_id,
        "attempt": attempt,
        "months": [m.isoformat() for m in months],
        "pid": os.getpid(),
        "worker": multiprocessing.current_process().name,
    }


def _run_chunk_inline(clients, servers, months: list[_dt.date], scale: int = 1) -> dict:
    """Last-resort serial re-run of one chunk in the parent process.

    Runs with fault injection suppressed — this is the path that makes
    recovery terminate no matter what the fault plan throws — and
    increments the parent's PERF counters directly (no snapshot merge).
    """
    started = time.perf_counter()
    with faults.suppressed(), obs.span("run_chunk_inline", months=len(months)):
        generator = TrafficGenerator(clients, servers, PassiveMonitor(), scale=scale)
        packer = StreamPacker()
        for month in months:
            month_started = time.perf_counter()
            with obs.span("simulate_month", month=month.isoformat()):
                packer.extend(generator.stream_expectation_month(month))
            PERF.observe_duration(
                "simulate_month_seconds",
                time.perf_counter() - month_started,
            )
    return {
        "packed": packer.finish(),
        "perf": None,
        "wall": time.perf_counter() - started,
        "chunk": None,
        "attempt": None,
        "months": [m.isoformat() for m in months],
        "pid": os.getpid(),
        "worker": "inline",
    }


def run_expectation(
    clients,
    servers,
    start: _dt.date,
    end: _dt.date,
    workers: int | None = None,
    *,
    resume: bool | None = None,
    chunk_timeout: float | None = None,
    chunk_months: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    faults_spec: str | None = None,
    scale: int | None = None,
    backend: str | None = None,
) -> NotaryStore:
    """Full expectation run, sharded across workers; returns the store."""
    if faults_spec is not None:
        faults.configure(faults_spec)
    months = month_range(start, end)
    count = resolve_workers(workers)
    factor = resolve_scale(scale)
    chosen = executors.resolve_backend(backend)
    serial = count <= 1 or len(months) < 2
    obs.begin_run(
        "expectation",
        start=start.isoformat(),
        end=end.isoformat(),
        months=len(months),
        workers=0 if serial else count,
        scale=factor,
        backend="serial" if serial else chosen,
    )
    _log.info(
        "expectation run %s..%s: %d month(s), %s, scale %d",
        start.isoformat(), end.isoformat(), len(months),
        "serial" if serial else f"{count} workers ({chosen})", factor,
    )
    with obs.profiled("run_expectation"), obs.span(
        "run_expectation", months=len(months), workers=0 if serial else count
    ):
        if serial:
            store = _run_serial(clients, servers, start, end, scale=factor)
        else:
            store = _run_parallel(
                clients,
                servers,
                start,
                end,
                months,
                count,
                resume=_resume_enabled(resume),
                timeout=resolve_chunk_timeout(chunk_timeout),
                per_chunk=resolve_chunk_months(chunk_months),
                max_attempts=max(1, max_attempts),
                scale=factor,
                backend=chosen,
            )
    obs.end_run(
        "expectation",
        records=len(store),
        run_seconds=PERF.run_seconds,
        chunk_retries=PERF.chunk_retries,
        chunk_timeouts=PERF.chunk_timeouts,
        inline_fallbacks=PERF.inline_fallbacks,
        worker_errors=PERF.worker_errors,
        resumed_months=PERF.resumed_months,
        faults_injected=PERF.faults_injected,
    )
    return store


def _run_parallel(
    clients,
    servers,
    start: _dt.date,
    end: _dt.date,
    months: list[_dt.date],
    count: int,
    *,
    resume: bool,
    timeout: float,
    per_chunk: int | None,
    max_attempts: int,
    scale: int = 1,
    backend: str = "fork",
) -> NotaryStore:
    started = time.perf_counter()
    PERF.workers = count
    PERF.worker_wall_times = []
    PERF.chunk_attribution = []
    store = NotaryStore()

    checkpoint = None
    if _checkpoint_enabled():
        from repro.engine import cache as dataset_cache

        checkpoint = dataset_cache.Checkpoint(
            dataset_cache.dataset_key(clients, servers, start, end, scale=scale)
        )

    state = None
    if _spill_enabled():
        from repro.engine import cache as dataset_cache

        state = _SpillState(spill=dataset_cache.BlobSpill())

    done: set[_dt.date] = set()
    if checkpoint is not None and resume:
        with obs.span("resume_checkpoints"):
            for month, payload in checkpoint.load_months(months):
                _spill_or_attach(store, state, payload)
                done.add(month)
                PERF.resumed_months += 1
                obs.emit_event("resume_month", month=month.isoformat())
        if done:
            _log.info("resumed %d month(s) from checkpoints", len(done))
    remaining = [m for m in months if m not in done]

    if remaining:
        if len(remaining) == 1 or count < 2:
            _adopt(
                store, checkpoint,
                _run_chunk_inline(clients, servers, remaining, scale=scale),
                inline=True, state=state,
            )
        else:
            _run_chunked(
                clients, servers, store, checkpoint, remaining,
                count=count, timeout=timeout, per_chunk=per_chunk,
                max_attempts=max_attempts, scale=scale, state=state,
                backend=backend,
            )

    if state is not None:
        if state.spill is not None:
            payload = state.spill.finish_payload()
            if payload["months"]:
                store.attach_packed(PackedDataset(payload), idempotent=True)
        if state.indexes:
            store.install_index_payloads(state.indexes)

    if checkpoint is not None:
        checkpoint.clear()
    PERF.run_seconds = time.perf_counter() - started
    return store


def _run_chunked(
    clients,
    servers,
    store: NotaryStore,
    checkpoint,
    months: list[_dt.date],
    *,
    count: int,
    timeout: float,
    per_chunk: int | None,
    max_attempts: int,
    scale: int = 1,
    state: _SpillState | None = None,
    backend: str = "fork",
) -> None:
    """The retry/timeout/reshard scheduling loop, one executor per round.

    Backend-agnostic by construction: the loop submits chunk jobs and
    collects results through :mod:`repro.engine.executors`; the only
    backend property it reads is ``preemptible`` (an inline executor
    cannot be killed past a deadline, so nothing here assumes timeouts
    fire).
    """
    next_id = 0

    def new_chunk(span: list[_dt.date], attempts: int = 0) -> _Chunk:
        nonlocal next_id
        chunk = _Chunk(id=next_id, months=span, attempts=attempts)
        next_id += 1
        return chunk

    def run_job_inline(job: tuple[int, int, list[_dt.date]]) -> dict:
        # The inline backend's parent-process twin of _run_chunk: the
        # fault-suppressed serial path with the job's attribution
        # grafted on (perf stays None — counters were incremented in
        # the parent directly, so there is no snapshot to merge).
        chunk_id, attempt, span = job
        part = _run_chunk_inline(clients, servers, span, scale=scale)
        part["chunk"] = chunk_id
        part["attempt"] = attempt
        return part

    spec = executors.WorkSpec(
        pool_fn=_run_chunk,
        initializer=_init_worker,
        initargs=(clients, servers, obs.trace_id(), scale, faults.shippable_plan()),
        inline_fn=run_job_inline,
    )

    queue: deque[_Chunk] = deque(
        new_chunk(span) for span in _make_chunks(months, count, per_chunk, scale)
    )

    while queue:
        batch: list[_Chunk] = []
        while queue:
            chunk = queue.popleft()
            if chunk.attempts >= max_attempts:
                # Out of pool attempts: this chunk's months are computed
                # inline, fault-free, before anything else is scheduled.
                PERF.inline_fallbacks += 1
                _log.warning(
                    "chunk %d (months %s..%s) out of pool attempts; "
                    "re-running inline with faults suppressed",
                    chunk.id,
                    chunk.months[0].isoformat(),
                    chunk.months[-1].isoformat(),
                )
                obs.emit_event(
                    "inline_fallback",
                    chunk=chunk.id,
                    months=[m.isoformat() for m in chunk.months],
                )
                _adopt(
                    store, checkpoint,
                    _run_chunk_inline(clients, servers, chunk.months, scale=scale),
                    inline=True, state=state,
                )
            else:
                batch.append(chunk)
        if not batch:
            break

        failed: list[_Chunk] = []
        timed_out: list[_Chunk] = []
        executor = executors.create_executor(
            backend, spec, slots=min(count, len(batch))
        )
        try:
            # Submission is a sliding window, not the whole batch: the
            # pool's result thread unpickles every finished chunk the
            # moment it arrives, so when workers outpace adoption an
            # eager submit buffers nearly the whole dataset in the
            # parent.  Capping in-flight chunks at ~2 per worker keeps
            # workers busy while bounding that backlog to O(window).
            window = max(2, 2 * min(count, len(batch)))
            to_submit = deque(batch)
            pending: deque[tuple[_Chunk, object]] = deque()
            deadline = time.monotonic() + timeout

            def top_up() -> None:
                while (
                    to_submit
                    and len(pending) < window
                    and time.monotonic() < deadline
                ):
                    chunk = to_submit.popleft()
                    pending.append(
                        (
                            chunk,
                            executor.submit(
                                (chunk.id, chunk.attempts, chunk.months)
                            ),
                        )
                    )

            top_up()
            while pending:
                chunk, result = pending.popleft()
                wait = max(0.001, deadline - time.monotonic())
                try:
                    part = result.result(wait)
                except executors.ChunkTimeout:
                    timed_out.append(chunk)
                    PERF.chunk_timeouts += 1
                    _log.warning(
                        "chunk %d (months %s..%s, attempt %d) timed out after %.1fs; "
                        "will kill and reshard",
                        chunk.id,
                        chunk.months[0].isoformat(),
                        chunk.months[-1].isoformat(),
                        chunk.attempts,
                        timeout,
                    )
                    obs.emit_event(
                        "chunk_timeout",
                        chunk=chunk.id,
                        attempt=chunk.attempts,
                        months=[m.isoformat() for m in chunk.months],
                        timeout=timeout,
                    )
                except Exception as exc:
                    # The worker's exception crossed the pipe; the chunk
                    # is re-queued, but the cause must not vanish.
                    failed.append(chunk)
                    PERF.worker_errors += 1
                    _log.warning(
                        "chunk %d (months %s..%s, attempt %d) failed in worker: %s: %s",
                        chunk.id,
                        chunk.months[0].isoformat(),
                        chunk.months[-1].isoformat(),
                        chunk.attempts,
                        type(exc).__name__,
                        exc,
                    )
                    obs.emit_event(
                        "chunk_failed",
                        chunk=chunk.id,
                        attempt=chunk.attempts,
                        months=[m.isoformat() for m in chunk.months],
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    if validate_payload(part["packed"], chunk.months):
                        # A part without a perf snapshot ran in the
                        # parent (inline backend): its counters are
                        # already live, only its wall gets recorded.
                        _adopt(
                            store, checkpoint, part,
                            inline=part.get("perf") is None, state=state,
                        )
                    else:
                        failed.append(chunk)
                        _log.warning(
                            "chunk %d (months %s..%s, attempt %d) shipped an "
                            "invalid partition; re-queued",
                            chunk.id,
                            chunk.months[0].isoformat(),
                            chunk.months[-1].isoformat(),
                            chunk.attempts,
                        )
                        obs.emit_event(
                            "chunk_invalid",
                            chunk=chunk.id,
                            attempt=chunk.attempts,
                            months=[m.isoformat() for m in chunk.months],
                        )
                top_up()
            # Chunks never submitted before the deadline expired go back
            # untouched: they did not run, so they cost no attempt and
            # are not resharded.
            queue.extend(to_submit)
        finally:
            # Closing the executor terminates pool workers, killing any
            # still hung past the deadline (a no-op for inline).
            executor.close()

        for chunk in failed:
            PERF.chunk_retries += 1
            obs.emit_event("chunk_retry", chunk=chunk.id, attempt=chunk.attempts + 1)
            queue.append(new_chunk(chunk.months, chunk.attempts + 1))
        for chunk in timed_out:
            # Kill-and-reshard: halve the span so a systematic hang
            # converges on single-month chunks (and then inline).
            PERF.chunk_retries += 1
            obs.emit_event(
                "chunk_retry", chunk=chunk.id, attempt=chunk.attempts + 1,
                resharded=True,
            )
            halves = [chunk.months[: len(chunk.months) // 2 or 1], chunk.months[len(chunk.months) // 2 or 1 :]]
            for half in halves:
                if half:
                    queue.append(new_chunk(half, chunk.attempts + 1))
        if (failed or timed_out) and queue:
            worst = max(c.attempts for c in queue)
            delay = min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** worst))
            _log.debug("backing off %.2fs before retry round", delay)
            time.sleep(delay)


def _adopt(
    store: NotaryStore,
    checkpoint,
    part: dict,
    inline: bool = False,
    state: _SpillState | None = None,
) -> None:
    """Merge one finished chunk: perf fold, span fold, attribution,
    checkpoint spill, then out-of-core spill (or lazy in-memory attach)."""
    if not inline and part["perf"] is not None:
        PERF.merge_worker(part["perf"], part["wall"])
    elif inline:
        PERF.worker_wall_times.append(part["wall"])
    PERF.observe_duration("chunk_seconds", part["wall"])
    if part.get("spans"):
        obs.merge_worker_spans(part["spans"])
    attribution = {
        "chunk": part.get("chunk"),
        "attempt": part.get("attempt"),
        "months": part.get("months", []),
        "pid": part.get("pid"),
        "worker": part.get("worker"),
        "wall": part["wall"],
        "inline": inline,
    }
    PERF.chunk_attribution.append(attribution)
    obs.emit_event("chunk_done", **attribution)
    if checkpoint is not None:
        checkpoint.save_months(split_by_month(part["packed"]))
    _spill_or_attach(store, state, part["packed"])


def _run_serial(
    clients, servers, start: _dt.date, end: _dt.date, scale: int = 1
) -> NotaryStore:
    """The zero-worker fallback: one generator, shared caches.

    Streams months straight into packed columnar form like the workers
    do, so serial runs keep the same bounded-memory profile at any
    ``scale`` — and the returned store answers from the same fast tiers
    a parallel (or cache-loaded) store does.
    """
    started = time.perf_counter()
    PERF.workers = 0
    PERF.worker_wall_times = []
    PERF.chunk_attribution = []
    with obs.span("run_serial"):
        generator = TrafficGenerator(clients, servers, PassiveMonitor(), scale=scale)
        packer = StreamPacker()
        for month in month_range(start, end):
            month_started = time.perf_counter()
            packer.extend(generator.stream_expectation_month(month))
            PERF.observe_duration(
                "simulate_month_seconds",
                time.perf_counter() - month_started,
            )
        store = NotaryStore()
        store.attach_packed(PackedDataset(packer.finish()))
    PERF.run_seconds = time.perf_counter() - started
    return store
