"""Month-sharded expectation runs across multiprocessing workers.

Months are independent in expectation mode — every record of month *m*
is a deterministic function of the populations and *m* alone (hello
seeds are stable across processes, see
:func:`repro.notary.generator._release_seed`) — so the full study
shards by month.  Each worker runs its chunk with its own hello/result
caches, packs the resulting records into a compact partition
(:mod:`repro.engine.partition`), and the parent merges partitions into
one :class:`~repro.notary.store.NotaryStore` month by month.  Because a
month's records always come from exactly one worker, in generation
order, the merged store is *identical* to a serial run — including
float summation order in every aggregate.

Worker count resolution: explicit argument, else ``REPRO_WORKERS``,
else ``os.cpu_count()``.  ``0`` or ``1`` (or platforms without the
``fork`` start method) take the serial fallback.
"""

from __future__ import annotations

import datetime as _dt
import multiprocessing
import os
import time

from repro.engine.partition import PackedDataset, pack_records
from repro.engine.perf import PERF
from repro.notary.generator import TrafficGenerator
from repro.notary.monitor import PassiveMonitor
from repro.notary.store import NotaryStore, month_range


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(explicit: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_WORKERS`` > ``os.cpu_count()``."""
    if explicit is not None:
        return max(0, int(explicit))
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            # A malformed env var must not kill a run; fall through to
            # the CPU-count default (same spirit as REPRO_CACHE parsing).
            pass
    return os.cpu_count() or 1


# Worker-side state, installed by the pool initializer after the fork
# (populations are inherited through fork memory, never pickled).
_WORKER: dict = {}


def _init_worker(clients, servers) -> None:
    _WORKER["clients"] = clients
    _WORKER["servers"] = servers
    PERF.reset()


def _run_chunk(months: list[_dt.date]) -> dict:
    """Run one month chunk; return a packed partition + perf snapshot."""
    started = time.perf_counter()
    PERF.reset()
    monitor = PassiveMonitor()
    generator = TrafficGenerator(_WORKER["clients"], _WORKER["servers"], monitor)
    for month in months:
        generator.run_expectation_month(month)
    return {
        "packed": pack_records(monitor.store.records()),
        "perf": PERF.snapshot(),
        "wall": time.perf_counter() - started,
    }


def _merge_partition(store: NotaryStore, packed: dict) -> None:
    """Adopt one partition's months (lazily — no record materialization)."""
    store.attach_packed(PackedDataset(packed))


def run_expectation(
    clients,
    servers,
    start: _dt.date,
    end: _dt.date,
    workers: int | None = None,
) -> NotaryStore:
    """Full expectation run, sharded across workers; returns the store."""
    months = month_range(start, end)
    count = resolve_workers(workers)
    if count <= 1 or len(months) < 2 or not fork_available():
        return _run_serial(clients, servers, start, end)

    count = min(count, len(months))
    started = time.perf_counter()
    PERF.workers = count
    PERF.worker_wall_times = []
    # Strided chunks balance the load: record counts grow over the study
    # (new releases accumulate), so contiguous spans would skew late
    # chunks heavy.
    chunks = [months[i::count] for i in range(count)]
    context = multiprocessing.get_context("fork")
    with context.Pool(
        processes=count, initializer=_init_worker, initargs=(clients, servers)
    ) as pool:
        partitions = pool.map(_run_chunk, chunks)
    store = NotaryStore()
    for part in partitions:
        PERF.merge_worker(part["perf"], part["wall"])
        _merge_partition(store, part["packed"])
    PERF.run_seconds = time.perf_counter() - started
    return store


def _run_serial(clients, servers, start: _dt.date, end: _dt.date) -> NotaryStore:
    """The zero-worker fallback: one generator, shared caches."""
    started = time.perf_counter()
    PERF.workers = 0
    PERF.worker_wall_times = []
    monitor = PassiveMonitor()
    generator = TrafficGenerator(clients, servers, monitor)
    generator.run_expectation(start, end)
    PERF.run_seconds = time.perf_counter() - started
    return monitor.store
