"""The run engine: parallel sharding, columnar aggregation, caching.

The expectation-mode dataset is the hot path of every figure and table:
it is recomputed constantly as calibration inputs change and new months
land.  This package makes that path fast three ways at once:

* :mod:`repro.engine.runner` — months are independent in expectation
  mode, so the full 2012–2018 run shards across ``multiprocessing``
  workers (``REPRO_WORKERS`` / ``--workers``; ``0`` forces the serial
  fallback).  Workers ship compact serialized month partitions back to
  the parent, which merges them into one :class:`~repro.notary.store.NotaryStore`.
* :mod:`repro.notary.store` + :mod:`repro.notary.query` — a per-month
  aggregate index answers the standard figure predicates from O(1)
  weight counters instead of re-scanning every record.
* :mod:`repro.engine.cache` — the finished store is persisted under
  ``~/.cache/repro`` (``REPRO_CACHE_DIR``) keyed by a content hash of
  the populations and date range, so repeat CLI invocations load
  instead of re-simulating.  Blobs carry an integrity footer (corrupt
  files are deleted, not retried forever), builds coordinate through an
  advisory lockfile, the population is LRU-evicted under a size cap,
  and finished months are checkpointed so killed runs resume.

The runner survives partial failure by design: failed chunks retry
with capped backoff, hung chunks are killed on a per-chunk timeout and
resharded, and a chunk out of attempts re-runs inline in the parent.
:mod:`repro.engine.faults` injects deterministic, seedable faults
(``REPRO_FAULTS`` / ``--faults``) at every one of those seams so the
recovery machinery is exercised constantly, not trusted.

:mod:`repro.engine.perf` instruments all of it; ``python -m repro
stats`` renders the counters.

This module deliberately imports only :mod:`repro.engine.perf` so that
``repro.notary`` can increment counters without an import cycle; pull
the heavier pieces in explicitly (``from repro.engine import runner``).
"""

from repro.engine.perf import PERF, PerfCounters

__all__ = ["PERF", "PerfCounters"]
