"""Lightweight perf counters for the run engine.

One process-global :data:`PERF` instance collects negotiation and cache
statistics as the substrate runs.  Worker processes reset their copy
after the fork, run their month chunk, and ship a snapshot back with
the month partition; the parent folds those into its own counters so a
parallel run reports fleet-wide totals.

Almost no imports from the rest of :mod:`repro` — the generator and
monitor increment these counters from the hot loop, and this module
sitting at the bottom of the import graph keeps that cycle-free.  The
one exception is :mod:`repro.obs.live` (the histogram primitive behind
the route ledger and duration counters), which itself imports nothing
from :mod:`repro` and sits at the same bottom layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.live import Histogram


#: Fields scoped to the parent run as a whole — never folded from a
#: worker snapshot.  ``workers`` and the wall clocks describe the merged
#: run, and ``worker_wall_times`` is appended explicitly by
#: :meth:`PerfCounters.merge_worker`.  Every field NOT named here is a
#: summable fleet counter and merges from every worker by default, so a
#: newly added counter is fleet-accurate without touching the merge
#: (the old hand-kept six-name list silently dropped everything else).
#: ``duration_histograms`` is NOT parent-only: histogram snapshots are
#: mergeable by design, and :meth:`PerfCounters.merge_worker` folds them
#: bucket-by-bucket instead of summing them as ints.
PARENT_ONLY_FIELDS = frozenset(
    {
        "run_seconds",
        "load_seconds",
        "workers",
        "worker_wall_times",
        "chunk_attribution",
        "http_route_latency",
    }
)

#: Fields holding name -> :class:`Histogram` dicts.  These DO merge
#: from workers — bucket-by-bucket via :meth:`Histogram.merge_snapshot`
#: rather than as summed ints.  The classification test in
#: ``tests/test_obs.py`` enforces every dataclass field is exactly one
#: of: summable int, parent-only, or histogram-valued.
HISTOGRAM_FIELDS = frozenset({"duration_histograms"})


@dataclass
class PerfCounters:
    """Counters for one process (or one merged fleet)."""

    #: Real ``ServerProfile.respond`` negotiations performed.
    negotiations: int = 0
    #: Handshakes answered from the generator's result cache.
    handshake_cache_hits: int = 0
    #: Client Hellos actually built.
    hello_builds: int = 0
    #: Hellos answered from the generator's hello cache.
    hello_cache_hits: int = 0
    #: Connection records observed into stores.
    records: int = 0
    #: Records attached from a persistent-cache load (a warm run
    #: observes nothing, so this is its throughput numerator).
    records_loaded: int = 0
    #: Persistent dataset-cache hits / misses (load attempts).
    dataset_cache_hits: int = 0
    dataset_cache_misses: int = 0
    #: Chunk attempts re-queued after a worker failure or bad partition.
    chunk_retries: int = 0
    #: Chunks killed by the per-chunk timeout (then resharded).
    chunk_timeouts: int = 0
    #: Chunks that exhausted pool attempts and re-ran inline in the parent.
    inline_fallbacks: int = 0
    #: Months restored from checkpoint files instead of re-simulated.
    resumed_months: int = 0
    #: Months spilled to checkpoint files as their chunks finished.
    checkpointed_months: int = 0
    #: Cache blobs evicted by the size-capped LRU sweep.
    cache_evictions: int = 0
    #: Corrupt/stale cache and checkpoint files deleted on rejection.
    cache_corrupt_deleted: int = 0
    #: Cache writes that failed (disk errors are swallowed, counted).
    cache_write_failures: int = 0
    #: Faults fired by the injection plan (parent-side sites only count
    #: here; a crashed worker's counters die with it).
    faults_injected: int = 0
    #: Worker exceptions observed by the parent scheduler (each one is
    #: logged with its chunk context and re-queued as a retry).
    worker_errors: int = 0
    #: Partition payloads whose structural validation itself raised
    #: (damage severe enough to explode the checks, not just fail them).
    validation_errors: int = 0
    #: Sealed blobs that failed the read/verify path (then culled).
    cache_read_errors: int = 0
    #: Predicate/value evaluations against shape templates (one per
    #: template per compilation; memoization keeps this O(shapes) per
    #: distinct callable per dataset, not per month).
    shape_evals: int = 0
    #: Aggregate queries answered by the shape-compiled tier.
    shape_path_hits: int = 0
    #: Aggregate queries on packed months that fell back to a record
    #: scan (predicate or value function not shape-evaluable).
    scan_fallbacks: int = 0
    #: Aggregate queries answered by the vectorized (numpy) tier.
    vector_path_hits: int = 0
    #: Vector-tier attempts that didn't compile and dropped to the
    #: shape tier (numpy-absent months never count; the tier was off).
    vector_compile_misses: int = 0
    #: Explicit worker/chunk-span knob values beyond the CPU-reasonable
    #: bound (honored, but no longer silent — see
    #: :func:`repro.engine.runner._warn_oversubscribed`).
    oversubscription_warnings: int = 0
    #: HTTP requests answered by the resident server (any status).
    http_requests: int = 0
    #: HTTP responses with status >= 400 (client and server errors).
    http_errors: int = 0
    #: Served queries dispatched to the multi-process query-worker pool
    #: (``repro serve --query-workers``); 0 means the threaded path.
    query_pool_dispatches: int = 0
    #: Query-pool dispatches that failed and fell back to in-thread
    #: evaluation (a replica died or timed out; the answer is still
    #: served, byte-identically, by the parent).
    query_pool_fallbacks: int = 0
    #: Per-route latency ledger of the resident server: route ->
    #: ``{count, errors, total_seconds, max_seconds, histogram}`` where
    #: ``histogram`` is a bounded :class:`repro.obs.live.Histogram`
    #: (O(buckets) state forever — the fix for the old grow-per-request
    #: samples list).  Parent-only: a served process never merges
    #: another fleet's ledger.
    http_route_latency: dict = field(default_factory=dict)
    #: Named duration histograms: name -> :class:`Histogram`.  The batch
    #: runner observes ``simulate_month_seconds`` / ``chunk_seconds``
    #: here; workers ship snapshots and :meth:`merge_worker` folds them
    #: bucket-by-bucket, so ``stats --json`` reports fleet-wide latency
    #: *distributions*, not just totals.
    duration_histograms: dict = field(default_factory=dict)
    #: Wall seconds of the last full expectation run (serial or merged).
    run_seconds: float = 0.0
    #: Wall seconds of the last persistent-cache load.
    load_seconds: float = 0.0
    #: Workers used by the last engine run (0 = serial fallback).
    workers: int = 0
    #: Per-chunk wall seconds of the last parallel run (one entry per
    #: successfully merged chunk, in merge order).
    worker_wall_times: list[float] = field(default_factory=list)
    #: Which process ran which chunk attempt over which months (one
    #: entry per merged chunk: ``{chunk, attempt, months, pid, worker,
    #: wall, inline}``) — the parent-side join table the trace analyzer
    #: and ``stats --json`` consumers use for worker attribution.
    chunk_attribution: list[dict] = field(default_factory=list)

    # ---- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        fresh = PerfCounters()
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(fresh, name))

    def snapshot(self) -> dict:
        """A picklable copy of the counters (workers ship these back).

        Histogram values flatten to their :meth:`Histogram.snapshot`
        dicts, so the result stays pure JSON-safe data — what the pickle
        channel, ``stats --json``, and :meth:`merge_worker` all expect.
        """

        def _copy(value):
            if isinstance(value, Histogram):
                return value.snapshot()
            if isinstance(value, list):
                return [_copy(v) for v in value]
            if isinstance(value, dict):
                return {k: _copy(v) for k, v in value.items()}
            return value

        return {
            name: _copy(getattr(self, name))
            for name in self.__dataclass_fields__
        }

    def snapshot_ints(self) -> dict:
        """Just the summable int counters (the non-parent-only, non-
        histogram fields).  The serve-path query pool samples this
        before and after each dispatched query; the delta ships back
        and :meth:`add_ints` folds it, so pooled counters reconcile
        exactly with what an in-thread evaluation would have counted.
        """
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name not in PARENT_ONLY_FIELDS and name not in HISTOGRAM_FIELDS
        }

    def add_ints(self, delta: dict) -> None:
        """Fold a per-query int-counter delta from a pool replica."""
        for name, value in delta.items():
            if (
                name in self.__dataclass_fields__
                and name not in PARENT_ONLY_FIELDS
                and name not in HISTOGRAM_FIELDS
            ):
                setattr(self, name, getattr(self, name) + int(value))

    def observe_http(
        self,
        route: str,
        seconds: float,
        status: int,
        exemplar: dict | None = None,
    ) -> None:
        """Fold one served request into the counters and route ledger.

        Callers serialize (the server holds its perf lock); this method
        itself does no locking, matching every other counter here.  An
        ``exemplar`` (trace/span identity of this request) is pinned to
        the histogram bucket the duration lands in, most-recent-wins.
        """
        self.http_requests += 1
        error = status >= 400
        if error:
            self.http_errors += 1
        ledger = self.http_route_latency.get(route)
        if ledger is None:
            ledger = self.http_route_latency[route] = {
                "count": 0,
                "errors": 0,
                "total_seconds": 0.0,
                "max_seconds": 0.0,
                "histogram": Histogram(),
            }
        ledger["count"] += 1
        if error:
            ledger["errors"] += 1
        ledger["total_seconds"] += seconds
        if seconds > ledger["max_seconds"]:
            ledger["max_seconds"] = seconds
        ledger["histogram"].observe(seconds, exemplar=exemplar)

    def observe_duration(self, name: str, seconds: float) -> None:
        """Fold one duration into the named histogram (creating it on
        first sight).  Engine callers are single-threaded per process;
        like every other counter here, no locking."""
        hist = self.duration_histograms.get(name)
        if hist is None:
            hist = self.duration_histograms[name] = Histogram()
        hist.observe(seconds)

    def merge_worker(self, snap: dict, wall: float) -> None:
        """Fold one worker's snapshot into the fleet totals.

        Every summable field merges by default; only
        :data:`PARENT_ONLY_FIELDS` are excluded.  Summing by exclusion
        rather than inclusion is the fix for a long-standing accounting
        hole: the old explicit six-name list silently dropped worker-side
        ``cache_write_failures``, ``dataset_cache_hits``/``misses``,
        ``cache_corrupt_deleted`` — and every counter added since.
        ``duration_histograms`` merges bucket-by-bucket (histogram
        snapshots are mergeable by construction) instead of as an int.
        """
        for name in self.__dataclass_fields__:
            if name in PARENT_ONLY_FIELDS:
                continue
            if name in HISTOGRAM_FIELDS:
                for hist_name, hist_snap in (snap.get(name) or {}).items():
                    mine = self.duration_histograms.get(hist_name)
                    if mine is None:
                        mine = self.duration_histograms[hist_name] = Histogram(
                            tuple(hist_snap["bounds"])
                        )
                    mine.merge_snapshot(hist_snap)
                continue
            setattr(self, name, getattr(self, name) + int(snap.get(name, 0)))
        self.worker_wall_times.append(wall)

    # ---- derived ------------------------------------------------------------

    def records_per_second(self) -> float | None:
        """Throughput of however the records actually arrived.

        A simulated run reports against ``run_seconds``; a warm-cache
        run has ``run_seconds == 0`` but a real load wall, so it reports
        load-path throughput instead of hiding the number entirely.
        """
        if self.records > 0 and self.run_seconds > 0:
            return self.records / self.run_seconds
        loaded = self.records or self.records_loaded
        if loaded > 0 and self.load_seconds > 0:
            return loaded / self.load_seconds
        return None

    def render(self) -> str:
        """Human-readable block for ``python -m repro stats``."""
        lines = ["ENGINE PERF COUNTERS", "--------------------"]
        lines.append(f"workers             : {self.workers}")
        lines.append(f"negotiations        : {self.negotiations}")
        lines.append(f"handshake cache hits: {self.handshake_cache_hits}")
        lines.append(f"hello builds        : {self.hello_builds}")
        lines.append(f"hello cache hits    : {self.hello_cache_hits}")
        lines.append(f"records observed    : {self.records}")
        if self.records_loaded:
            lines.append(f"records loaded      : {self.records_loaded}")
        lines.append(f"dataset cache hits  : {self.dataset_cache_hits}")
        lines.append(f"dataset cache misses: {self.dataset_cache_misses}")
        lines.append(f"chunk retries       : {self.chunk_retries}")
        lines.append(f"chunk timeouts      : {self.chunk_timeouts}")
        lines.append(f"inline fallbacks    : {self.inline_fallbacks}")
        lines.append(f"resumed months      : {self.resumed_months}")
        lines.append(f"checkpointed months : {self.checkpointed_months}")
        lines.append(f"cache evictions     : {self.cache_evictions}")
        if self.cache_corrupt_deleted:
            lines.append(f"corrupt blobs culled: {self.cache_corrupt_deleted}")
        if self.cache_write_failures:
            lines.append(f"cache write failures: {self.cache_write_failures}")
        if self.faults_injected:
            lines.append(f"faults injected     : {self.faults_injected}")
        if self.worker_errors:
            lines.append(f"worker errors       : {self.worker_errors}")
        if self.validation_errors:
            lines.append(f"validation errors   : {self.validation_errors}")
        if self.cache_read_errors:
            lines.append(f"cache read errors   : {self.cache_read_errors}")
        if self.shape_evals or self.shape_path_hits or self.scan_fallbacks:
            lines.append(f"shape evals         : {self.shape_evals}")
            lines.append(f"shape path hits     : {self.shape_path_hits}")
            lines.append(f"scan fallbacks      : {self.scan_fallbacks}")
        if self.vector_path_hits or self.vector_compile_misses:
            lines.append(f"vector path hits    : {self.vector_path_hits}")
            lines.append(f"vector compile miss : {self.vector_compile_misses}")
        if self.http_requests:
            lines.append(f"http requests       : {self.http_requests}")
            lines.append(f"http errors         : {self.http_errors}")
            for route in sorted(self.http_route_latency):
                ledger = self.http_route_latency[route]
                mean_ms = ledger["total_seconds"] / ledger["count"] * 1e3
                hist = ledger["histogram"]
                lines.append(
                    f"  {route:<18}: {ledger['count']} req, "
                    f"mean {mean_ms:.2f} ms, "
                    f"p50 {hist.percentile(50) * 1e3:.2f} ms, "
                    f"p99 {hist.percentile(99) * 1e3:.2f} ms, "
                    f"max {ledger['max_seconds'] * 1e3:.2f} ms"
                )
        if self.duration_histograms:
            lines.append("duration histograms :")
            for name in sorted(self.duration_histograms):
                hist = self.duration_histograms[name]
                lines.append(
                    f"  {name:<18}: {hist.count} obs, "
                    f"p50 {hist.percentile(50) * 1e3:.2f} ms, "
                    f"p99 {hist.percentile(99) * 1e3:.2f} ms, "
                    f"max {hist.max * 1e3:.2f} ms"
                )
        if self.load_seconds > 0:
            lines.append(f"cache load seconds  : {self.load_seconds:.3f}")
        if self.run_seconds > 0:
            lines.append(f"run seconds         : {self.run_seconds:.3f}")
        rps = self.records_per_second()
        if rps is not None:
            lines.append(f"records/s           : {rps:,.0f}")
        if self.worker_wall_times:
            walls = ", ".join(f"{w:.2f}s" for w in self.worker_wall_times)
            lines.append(f"chunk wall times    : {walls}")
        return "\n".join(lines)


#: The process-global counter set.
PERF = PerfCounters()
