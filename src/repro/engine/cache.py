"""Persistent dataset cache + month checkpoints for expectation runs.

A full expectation run is a pure function of (client population, server
population, date range), so the finished store is cached on disk keyed
by a content hash of exactly those inputs.  Repeat CLI invocations —
the common case when iterating on figures — load the packed store in
milliseconds-to-tens-of-milliseconds instead of re-simulating 76
months.

Layout under the cache directory (``REPRO_CACHE_DIR``, default
``~/.cache/repro``):

* ``expectation-<key>.bin`` — one blob per dataset: a zlib-compressed
  pickle of a :mod:`repro.engine.partition` payload plus metadata,
  sealed by a 16-byte integrity footer (magic, CRC32, length).  Any
  truncation, bit flip, or format skew fails the footer or payload
  check, the file is **deleted**, and the load degrades to a miss —
  a bad blob is never left to fail every future run.
* ``expectation-<key>.lock`` — advisory build lock: two processes
  racing to build the same dataset coordinate so one simulates and the
  other waits for the blob (stale locks from dead builders are broken
  after ``REPRO_CACHE_LOCK_STALE`` seconds).
* ``checkpoints/<key>/<YYYY-MM-DD>.bin`` — one footer-sealed blob per
  finished month, spilled by the parallel runner as chunks complete so
  a killed run resumes instead of restarting (cleared on success).

The blob population is kept under ``REPRO_CACHE_MAX_BYTES`` (default
512 MB) by LRU eviction: loads refresh a blob's mtime, and every save
sweeps oldest-first until the total fits.

Because blobs are whole partition payloads, everything the payload
carries rides the cache for free — including the per-month *shape
summaries* (record-order per-shape weight sums) that feed the
shape-compiled query tier, and the int-coded *shape matrix* (per-field
value vocabularies + per-shape codes) that the vectorized tier compiles
its numpy masks against.  A warm load is therefore fast-path-ready with
zero recomputation: summaries and the matrix persisted at pack time are
exactly the ones the packing process computed, and payloads from before
either field are rebuilt lazily on first use.

Invalidation is entirely key-based: any change to the population
description, the date range, or the on-disk format version produces a
different key / rejects the blob.
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import hashlib
import os
import pickle
import shutil
import struct
import time
import zlib
from pathlib import Path

from repro.engine import faults
from repro.engine.partition import (
    PARTITION_FORMAT,
    PackedDataset,
    pack_records,
    validate_payload,
)
from repro.engine.perf import PERF
from repro.obs import emit_event, get_logger, span

_log = get_logger("repro.engine.cache")

#: Bump to invalidate every cached dataset (e.g. when negotiation logic
#: changes in a way the population description cannot see).  3 added
#: the integrity footer.
CACHE_FORMAT = 3

#: Integrity footer: magic + CRC32 of the blob body + body length.
_FOOTER_MAGIC = b"RPRC"
_FOOTER = struct.Struct("<4sIQ")

#: Default LRU size cap for ``expectation-*.bin`` blobs.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: A build lock older than this is assumed to belong to a dead process.
DEFAULT_LOCK_STALE_SECONDS = 600.0


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def dataset_key(clients, servers, start: _dt.date, end: _dt.date) -> str:
    """Content hash of everything the expectation dataset depends on.

    Population objects are plain dataclass trees of primitives, so their
    ``repr`` is a deterministic, address-free description; the server
    side additionally hashes the archetype table and share curves, which
    live as module constants outside the ``ServerPopulation`` instance.
    """
    from repro.servers import archetypes as arch
    from repro.servers.population import _HOST_SHARES, _TRAFFIC_SHARES

    digest = hashlib.sha256()
    for part in (
        f"cache-format:{CACHE_FORMAT}",
        f"partition-format:{PARTITION_FORMAT}",
        start.isoformat(),
        end.isoformat(),
        repr(clients),
        repr(servers),
        repr(arch.ALL_ARCHETYPES),
        repr(sorted(_TRAFFIC_SHARES.items())),
        repr(sorted(_HOST_SHARES.items())),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def store_path(key: str) -> Path:
    return cache_dir() / f"expectation-{key[:40]}.bin"


# ---- sealed blob I/O --------------------------------------------------------


def _write_blob(path: Path, obj: dict, fault_token: str) -> Path | None:
    """Atomically write a footer-sealed blob; None on (swallowed) failure."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        body = zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        footer = _FOOTER.pack(_FOOTER_MAGIC, zlib.crc32(body), len(body))
        if faults.fires("cache_write", fault_token):
            # Simulated mid-write corruption: a truncated body under a
            # footer for the full one — exactly what a torn write looks
            # like, and exactly what the CRC check must catch.
            body = faults.corrupt_blob(body)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_bytes(body + footer)
        os.replace(tmp, path)
        return path
    except OSError as exc:
        PERF.cache_write_failures += 1
        _log.warning("cache write of %s failed: %s", path, exc)
        emit_event("cache_write_failure", path=str(path), error=str(exc))
        return None


def _read_blob(path: Path, fault_token: str) -> dict | None:
    """Read and verify a sealed blob; on any damage, delete it and
    return None (missing file also returns None, without a delete)."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        _log.warning("cache blob %s unreadable: %s", path, exc)
        return None
    try:
        if faults.fires("cache_read", fault_token):
            raise faults.InjectedFault(f"injected cache_read at {path.name}")
        if len(raw) < _FOOTER.size:
            raise ValueError("blob shorter than its footer")
        body, footer = raw[: -_FOOTER.size], raw[-_FOOTER.size :]
        magic, crc, length = _FOOTER.unpack(footer)
        if magic != _FOOTER_MAGIC or length != len(body) or crc != zlib.crc32(body):
            raise ValueError("blob failed integrity footer")
        return pickle.loads(zlib.decompress(body))
    except Exception as exc:
        # Leaving a bad blob on disk makes every future run pay the
        # read-decompress-fail cost forever; delete it so the next run
        # rebuilds once and re-seals.
        PERF.cache_read_errors += 1
        _log.warning(
            "cache blob %s rejected (%s: %s); deleting",
            path,
            type(exc).__name__,
            exc,
        )
        _delete_corrupt(path)
        return None


def _delete_corrupt(path: Path) -> None:
    try:
        path.unlink()
        PERF.cache_corrupt_deleted += 1
        emit_event("cache_corrupt_deleted", path=str(path))
    except OSError as exc:
        _log.warning("could not delete corrupt blob %s: %s", path, exc)


# ---- dataset blobs ----------------------------------------------------------


def save_store(store, key: str, meta: dict | None = None) -> Path | None:
    """Atomically persist a finished store under its dataset key.

    Disk failures are swallowed (counted in PERF): a cache that cannot
    be written must never take the computed result down with it.  Every
    successful save triggers the LRU size sweep.
    """
    with span("cache_save", key=key[:16]):
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "meta": dict(meta or {}),
            "records": pack_records(store.records()),
            # Aggregate indexes ride along so a warm load answers the
            # standard figure queries without touching a single record.
            "indexes": store.index_payloads(),
        }
        path = _write_blob(store_path(key), payload, f"save:{key[:16]}")
        if path is not None:
            _log.debug("dataset cached at %s", path)
            emit_event("cache_save", key=key[:16], path=str(path))
            evict_lru(keep=path)
    return path


def load_store(key: str):
    """Load a cached store, or None on miss/corruption/format skew.

    Corrupt and format-skewed blobs are deleted on rejection; a hit
    refreshes the blob's mtime so the LRU sweep sees it as recent.
    """
    from repro.notary.store import NotaryStore

    path = store_path(key)
    started = time.perf_counter()
    with span("cache_load", key=key[:16]):
        payload = _read_blob(path, f"load:{key[:16]}")
        if payload is not None:
            if (
                payload.get("format") != CACHE_FORMAT
                or payload.get("key") != key
                or not validate_payload(payload.get("records", {}))
            ):
                _log.warning(
                    "cached dataset %s failed format/key/payload checks; culling",
                    path,
                )
                _delete_corrupt(path)
                payload = None
        if payload is None:
            PERF.dataset_cache_misses += 1
            _log.debug("dataset cache miss for key %s", key[:16])
            emit_event("cache_miss", key=key[:16])
            return None
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload["records"]))
        store.install_index_payloads(payload.get("indexes", {}))
        with contextlib.suppress(OSError):
            os.utime(path)
        PERF.dataset_cache_hits += 1
        PERF.records_loaded += len(store)
        PERF.load_seconds = time.perf_counter() - started
        _log.debug(
            "dataset cache hit for key %s (%.3fs)", key[:16], PERF.load_seconds
        )
        emit_event("cache_hit", key=key[:16], seconds=PERF.load_seconds)
    return store


# ---- LRU eviction -----------------------------------------------------------


def max_cache_bytes() -> int:
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


def evict_lru(max_bytes: int | None = None, keep: Path | None = None) -> int:
    """Delete oldest dataset blobs until the population fits the cap.

    Only ``expectation-*.bin`` blobs count (checkpoints are transient
    and cleared by the runner).  The just-written blob (``keep``) is
    never evicted, even if it alone exceeds the cap.  Returns the
    number of evicted files.
    """
    cap = max_cache_bytes() if max_bytes is None else max_bytes
    if cap <= 0:
        return 0
    entries = []
    try:
        for path in cache_dir().glob("expectation-*.bin"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
    except OSError:
        return 0
    total = sum(size for _, size, _ in entries)
    evicted = 0
    for _, size, path in sorted(entries):
        if total <= cap:
            break
        if keep is not None and path == keep:
            continue
        with contextlib.suppress(OSError):
            path.unlink()
            total -= size
            evicted += 1
            PERF.cache_evictions += 1
            _log.info("evicted cache blob %s (%d bytes, LRU)", path.name, size)
            emit_event("cache_evict", path=str(path), bytes=size)
    return evicted


# ---- advisory build lock ----------------------------------------------------


def _lock_path(key: str) -> Path:
    return cache_dir() / f"expectation-{key[:40]}.lock"


def _lock_stale_seconds() -> float:
    env = os.environ.get("REPRO_CACHE_LOCK_STALE", "").strip()
    if env:
        try:
            return max(1.0, float(env))
        except ValueError:
            pass
    return DEFAULT_LOCK_STALE_SECONDS


@contextlib.contextmanager
def build_lock(key: str):
    """Advisory per-key build lock; yields True when this process holds it.

    Best-effort by design: on any filesystem trouble the caller simply
    builds anyway (duplicate work beats no work).  A lock file older
    than the stale threshold is assumed orphaned by a killed builder
    and broken.
    """
    path = _lock_path(key)
    acquired = False
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                os.close(fd)
                acquired = True
                break
            except FileExistsError:
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # holder vanished between open and stat; retry
                if age > _lock_stale_seconds():
                    _log.warning(
                        "breaking stale build lock %s (age %.0fs)", path, age
                    )
                    emit_event("lock_stale_broken", path=str(path), age=age)
                    with contextlib.suppress(OSError):
                        path.unlink()
                    continue
                break
            except OSError:
                break
    except OSError:
        pass
    try:
        yield acquired
    finally:
        if acquired:
            with contextlib.suppress(OSError):
                path.unlink()


def wait_for_store(key: str, timeout: float = 30.0, poll: float = 0.2):
    """Poll for another process's build of ``key`` to land.

    Returns the loaded store, or None if the blob never appeared (or
    the other builder's lock vanished without a blob) — the caller
    then builds itself.
    """
    deadline = time.monotonic() + timeout
    while True:
        store = load_store(key)
        if store is not None:
            return store
        if not _lock_path(key).exists():
            return load_store(key)
        if time.monotonic() >= deadline:
            return None
        time.sleep(poll)


# ---- month checkpoints ------------------------------------------------------


class Checkpoint:
    """Per-month spill files that let a killed parallel run resume.

    Each finished chunk's months are written as standalone sealed
    blobs; a resuming run adopts every valid month and re-simulates
    only the rest.  Corrupt or mismatched files are deleted and their
    months rebuilt — resume can only ever help, never poison a run.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self.dir = cache_dir() / "checkpoints" / key[:40]

    def _month_path(self, month: _dt.date) -> Path:
        return self.dir / f"{month.isoformat()}.bin"

    def save_months(self, split: dict[_dt.date, dict]) -> int:
        """Persist single-month payloads; returns months written."""
        written = 0
        for month, payload in split.items():
            blob = {"format": CACHE_FORMAT, "key": self.key, "records": payload}
            token = f"ckpt:{self.key[:8]}:{month.isoformat()}"
            if _write_blob(self._month_path(month), blob, token) is not None:
                written += 1
        PERF.checkpointed_months += written
        if written:
            _log.debug("checkpointed %d month(s) under %s", written, self.dir)
            emit_event(
                "checkpoint_save",
                key=self.key[:16],
                months=[m.isoformat() for m in split],
            )
        return written

    def load_months(self, months):
        """Yield (month, payload) for every valid checkpointed month."""
        for month in months:
            path = self._month_path(month)
            token = f"ckpt:{self.key[:8]}:{month.isoformat()}"
            blob = _read_blob(path, token)
            if blob is None:
                continue
            if blob.get("format") != CACHE_FORMAT or blob.get("key") != self.key:
                _log.warning("checkpoint %s has format/key skew; culling", path)
                _delete_corrupt(path)
                continue
            payload = blob.get("records")
            if not validate_payload(payload, [month]):
                _log.warning("checkpoint %s failed validation; culling", path)
                _delete_corrupt(path)
                continue
            emit_event("checkpoint_load", key=self.key[:16], month=month.isoformat())
            yield month, payload

    def clear(self) -> None:
        """Remove the checkpoint directory (run finished cleanly)."""
        shutil.rmtree(self.dir, ignore_errors=True)
