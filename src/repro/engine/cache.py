"""Persistent dataset cache for finished expectation stores.

A full expectation run is a pure function of (client population, server
population, date range), so the finished store is cached on disk keyed
by a content hash of exactly those inputs.  Repeat CLI invocations —
the common case when iterating on figures — load the packed store in
milliseconds-to-tens-of-milliseconds instead of re-simulating 76
months.

Layout: one ``expectation-<key>.bin`` file per dataset under the cache
directory (``REPRO_CACHE_DIR``, default ``~/.cache/repro``), holding a
zlib-compressed pickle of a :mod:`repro.engine.partition` payload plus
metadata.  Invalidation is entirely key-based: any change to the
population description, the date range, or the on-disk format version
produces a different key / rejects the blob, and a stale file is simply
never read again.  Corrupt or truncated files degrade to a cache miss.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import os
import pickle
import time
import zlib
from pathlib import Path

from repro.engine.partition import PARTITION_FORMAT, PackedDataset, pack_records
from repro.engine.perf import PERF

#: Bump to invalidate every cached dataset (e.g. when negotiation logic
#: changes in a way the population description cannot see).
CACHE_FORMAT = 2


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def dataset_key(clients, servers, start: _dt.date, end: _dt.date) -> str:
    """Content hash of everything the expectation dataset depends on.

    Population objects are plain dataclass trees of primitives, so their
    ``repr`` is a deterministic, address-free description; the server
    side additionally hashes the archetype table and share curves, which
    live as module constants outside the ``ServerPopulation`` instance.
    """
    from repro.servers import archetypes as arch
    from repro.servers.population import _HOST_SHARES, _TRAFFIC_SHARES

    digest = hashlib.sha256()
    for part in (
        f"cache-format:{CACHE_FORMAT}",
        f"partition-format:{PARTITION_FORMAT}",
        start.isoformat(),
        end.isoformat(),
        repr(clients),
        repr(servers),
        repr(arch.ALL_ARCHETYPES),
        repr(sorted(_TRAFFIC_SHARES.items())),
        repr(sorted(_HOST_SHARES.items())),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def store_path(key: str) -> Path:
    return cache_dir() / f"expectation-{key[:40]}.bin"


def save_store(store, key: str, meta: dict | None = None) -> Path:
    """Atomically persist a finished store under its dataset key."""
    path = store_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": CACHE_FORMAT,
        "key": key,
        "meta": dict(meta or {}),
        "records": pack_records(store.records()),
        # Aggregate indexes ride along so a warm load answers the
        # standard figure queries without touching a single record.
        "indexes": store.index_payloads(),
    }
    blob = zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return path


def load_store(key: str):
    """Load a cached store, or None on miss/corruption/format skew."""
    from repro.notary.store import NotaryStore

    path = store_path(key)
    started = time.perf_counter()
    try:
        payload = pickle.loads(zlib.decompress(path.read_bytes()))
        if payload.get("format") != CACHE_FORMAT or payload.get("key") != key:
            raise ValueError("dataset cache format/key mismatch")
        dataset = PackedDataset(payload["records"])
        indexes = payload.get("indexes", {})
    except FileNotFoundError:
        PERF.dataset_cache_misses += 1
        return None
    except Exception:
        # A corrupt blob is a miss, never an error: the engine rebuilds
        # and overwrites it.
        PERF.dataset_cache_misses += 1
        return None
    store = NotaryStore()
    store.attach_packed(dataset)
    store.install_index_payloads(indexes)
    PERF.dataset_cache_hits += 1
    PERF.load_seconds = time.perf_counter() - started
    return store
