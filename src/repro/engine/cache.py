"""Persistent dataset cache + month checkpoints for expectation runs.

A full expectation run is a pure function of (client population, server
population, date range), so the finished store is cached on disk keyed
by a content hash of exactly those inputs.  Repeat CLI invocations —
the common case when iterating on figures — load the packed store in
milliseconds-to-tens-of-milliseconds instead of re-simulating 76
months.

Layout under the cache directory (``REPRO_CACHE_DIR``, default
``~/.cache/repro``):

* ``expectation-<key>.bin`` — one blob per dataset.  Two wire formats
  share the name:

  - **mmap format** (default for new saves, magic ``RPM1``): a fixed
    header, a zlib-compressed pickle of the *metadata envelope* (key,
    run meta, aggregate indexes, shape table/matrix, per-month shape
    summaries, column descriptors), then the month columns as raw
    little-endian bytes.  Loads ``mmap`` the file and cast
    ``memoryview`` slices over the column region — a 100×-scale
    dataset opens in O(metadata) time and the OS pages column bytes
    in only as queries touch them.  The envelope carries its own
    CRC32 (always verified); the column region's CRC is verified
    eagerly only when the region is small (or ``REPRO_CACHE_VERIFY=1``
    forces it), because checksumming gigabytes would page everything
    in and defeat the point of mapping.
  - **legacy pickle format** (magic-less, footer-sealed): a
    zlib-compressed pickle of the whole payload plus a 16-byte
    integrity footer (magic, CRC32, length).  Still written for
    payloads the raw layout cannot carry (day columns) or when
    ``REPRO_CACHE_FORMAT=pickle``, and still read forever — old blobs
    keep loading without a rebuild.

  Either way, any truncation, bit flip, or format skew fails a CRC or
  payload check, the file is **deleted**, and the load degrades to a
  miss — a bad blob is never left to fail every future run.
  :func:`peek_meta` reads just the envelope (header + a small pickle
  for mmap blobs; whole-blob fallback for legacy ones) so callers
  needing only summaries/metadata never inflate month columns.
* ``expectation-<key>.lock`` — advisory build lock: two processes
  racing to build the same dataset coordinate so one simulates and the
  other waits for the blob (stale locks from dead builders are broken
  after ``REPRO_CACHE_LOCK_STALE`` seconds).
* ``checkpoints/<key>/<YYYY-MM-DD>.bin`` — one footer-sealed blob per
  finished month, spilled by the parallel runner as chunks complete so
  a killed run resumes instead of restarting (cleared on success).

The blob population is kept under ``REPRO_CACHE_MAX_BYTES`` (default
512 MB) by LRU eviction: loads refresh a blob's mtime, and every save
sweeps oldest-first until the total fits.

Because blobs are whole partition payloads, everything the payload
carries rides the cache for free — including the per-month *shape
summaries* (record-order per-shape weight sums) that feed the
shape-compiled query tier, and the int-coded *shape matrix* (per-field
value vocabularies + per-shape codes) that the vectorized tier compiles
its numpy masks against.  A warm load is therefore fast-path-ready with
zero recomputation: summaries and the matrix persisted at pack time are
exactly the ones the packing process computed, and payloads from before
either field are rebuilt lazily on first use.

Invalidation is entirely key-based: any change to the population
description, the date range, or the on-disk format version produces a
different key / rejects the blob.
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import gc
import hashlib
import os
import pickle
import shutil
import struct
import time
import zlib
from pathlib import Path

from repro.engine import faults
from repro.engine.partition import (
    PARTITION_FORMAT,
    PackedDataset,
    pack_records,
    remap_month,
    validate_payload,
)
from repro.engine.perf import PERF
from repro.obs import emit_event, get_logger, span

_log = get_logger("repro.engine.cache")

#: Bump to invalidate every cached dataset (e.g. when negotiation logic
#: changes in a way the population description cannot see).  3 added
#: the integrity footer.
CACHE_FORMAT = 3

#: Integrity footer: magic + CRC32 of the blob body + body length.
_FOOTER_MAGIC = b"RPRC"
_FOOTER = struct.Struct("<4sIQ")

#: mmap-format blob: magic + cache format + envelope length + envelope
#: CRC32, followed by the compressed envelope pickle, followed by the
#: raw column region (descriptor offsets are relative to region start).
_MMAP_MAGIC = b"RPM1"
_MMAP_HEADER = struct.Struct("<4sIQI")

#: Column regions up to this size get their CRC verified at load time;
#: larger regions skip the eager check (it would page the whole file
#: in) unless ``REPRO_CACHE_VERIFY=1`` insists.
_EAGER_VERIFY_BYTES = 64 * 1024 * 1024

#: Default LRU size cap for ``expectation-*.bin`` blobs.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: A build lock older than this is assumed to belong to a dead process.
DEFAULT_LOCK_STALE_SECONDS = 600.0


@contextlib.contextmanager
def _gc_paused():
    """Pause the cyclic GC for the duration of a blob unpickle.

    Inflating a cached dataset allocates tens of thousands of objects
    in one burst; every allocation-threshold crossing runs a collection
    whose cost scales with the *resident* object population, not the
    garbage — in a process that just finished a run this doubles or
    triples load time.  The cache graph is pure acyclic data (arrays,
    dicts, tuples, bytes), so deferring collection is safe: anything
    cyclic elsewhere is picked up by the next natural collection after
    re-enabling.  If a concurrent pause re-enables early we merely lose
    the optimisation, never correctness.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def dataset_key(
    clients, servers, start: _dt.date, end: _dt.date, scale: int = 1
) -> str:
    """Content hash of everything the expectation dataset depends on.

    Population objects are plain dataclass trees of primitives, so their
    ``repr`` is a deterministic, address-free description; the server
    side additionally hashes the archetype table and share curves, which
    live as module constants outside the ``ServerPopulation`` instance.
    The dataset scale joins the hash only when it is not 1, so every
    pre-``--scale`` blob (and checkpoint tree) keeps its key.
    """
    from repro.servers import archetypes as arch
    from repro.servers.population import _HOST_SHARES, _TRAFFIC_SHARES

    parts = [
        f"cache-format:{CACHE_FORMAT}",
        f"partition-format:{PARTITION_FORMAT}",
        start.isoformat(),
        end.isoformat(),
        repr(clients),
        repr(servers),
        repr(arch.ALL_ARCHETYPES),
        repr(sorted(_TRAFFIC_SHARES.items())),
        repr(sorted(_HOST_SHARES.items())),
    ]
    if scale != 1:
        parts.append(f"scale:{scale}")
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def store_path(key: str) -> Path:
    return cache_dir() / f"expectation-{key[:40]}.bin"


# ---- sealed blob I/O --------------------------------------------------------


def _write_blob(path: Path, obj: dict, fault_token: str) -> Path | None:
    """Atomically write a footer-sealed blob; None on (swallowed) failure."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        body = zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        footer = _FOOTER.pack(_FOOTER_MAGIC, zlib.crc32(body), len(body))
        if faults.fires("cache_write", fault_token):
            # Simulated mid-write corruption: a truncated body under a
            # footer for the full one — exactly what a torn write looks
            # like, and exactly what the CRC check must catch.
            body = faults.corrupt_blob(body)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_bytes(body + footer)
        os.replace(tmp, path)
        return path
    except OSError as exc:
        PERF.cache_write_failures += 1
        _log.warning("cache write of %s failed: %s", path, exc)
        emit_event("cache_write_failure", path=str(path), error=str(exc))
        return None


def _read_blob(path: Path, fault_token: str) -> dict | None:
    """Read and verify a sealed blob; on any damage, delete it and
    return None (missing file also returns None, without a delete)."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        _log.warning("cache blob %s unreadable: %s", path, exc)
        return None
    try:
        if faults.fires("cache_read", fault_token):
            raise faults.InjectedFault(f"injected cache_read at {path.name}")
        if len(raw) < _FOOTER.size:
            raise ValueError("blob shorter than its footer")
        body, footer = raw[: -_FOOTER.size], raw[-_FOOTER.size :]
        magic, crc, length = _FOOTER.unpack(footer)
        if magic != _FOOTER_MAGIC or length != len(body) or crc != zlib.crc32(body):
            raise ValueError("blob failed integrity footer")
        return pickle.loads(zlib.decompress(body))
    except Exception as exc:
        # Leaving a bad blob on disk makes every future run pay the
        # read-decompress-fail cost forever; delete it so the next run
        # rebuilds once and re-seals.
        PERF.cache_read_errors += 1
        _log.warning(
            "cache blob %s rejected (%s: %s); deleting",
            path,
            type(exc).__name__,
            exc,
        )
        _delete_corrupt(path)
        return None


def _delete_corrupt(path: Path) -> None:
    try:
        path.unlink()
        PERF.cache_corrupt_deleted += 1
        emit_event("cache_corrupt_deleted", path=str(path))
    except OSError as exc:
        _log.warning("could not delete corrupt blob %s: %s", path, exc)


# ---- mmap-format blob I/O ---------------------------------------------------


def _mmap_format_enabled() -> bool:
    return os.environ.get("REPRO_CACHE_FORMAT", "").strip().lower() != "pickle"


def _mmap_packable(records: dict) -> bool:
    """Whether the payload fits the raw column layout.

    Day columns (Monte-Carlo months) are ragged ``None``-bearing lists
    with no fixed-width representation; such payloads stay on the
    legacy pickle format.
    """
    return all(
        columns.get("days") is None for columns in records["months"].values()
    )


def _column_bytes(column) -> tuple[bytes, str, int]:
    """Raw bytes + typecode + itemsize of an array or memoryview column."""
    if isinstance(column, memoryview):
        return column.tobytes(), column.format, column.itemsize
    return column.tobytes(), column.typecode, column.itemsize


class _PayloadSource:
    """Adapts an in-memory packed payload to the streaming blob writer."""

    def __init__(self, records: dict) -> None:
        self._records = records
        self.partition_format = records["format"]
        self.shapes = records["shapes"]

    def months(self):
        for month_ord in sorted(self._records["months"]):
            yield month_ord, self._records["months"][month_ord]

    def shape_matrix(self):
        return self._records.get("shape_matrix")


class _MergeSource:
    """Adapts a streaming :class:`~repro.engine.partition.PackedMerge`.

    ``shapes`` is the merge's live table — complete once ``months()``
    is exhausted, which is exactly when the writer reads it.
    """

    def __init__(self, merge) -> None:
        from repro.engine.partition import PARTITION_FORMAT

        self._merge = merge
        self.partition_format = PARTITION_FORMAT
        self.shapes = merge.shapes

    def months(self):
        return self._merge.months()

    def shape_matrix(self):
        from repro.engine.partition import build_shape_matrix

        return build_shape_matrix(self._merge.shapes)


def _seal_mmap_blob(
    path: Path, key: str, meta: dict, indexes: dict, partition_env: dict,
    descriptors: dict, columns_len: int, columns_crc: int, splice,
    fault_token: str,
) -> Path | None:
    """Write header + envelope, then let ``splice(out)`` append the raw
    column region; atomic rename at the end.  None on (swallowed)
    failure — a cache that cannot be written must never take the
    computed result down with it."""
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "format": CACHE_FORMAT,
            "key": key,
            "meta": meta,
            "indexes": indexes,
            "partition": partition_env,
            "columns": descriptors,
            "columns_len": columns_len,
            "columns_crc": columns_crc,
        }
        meta_blob = zlib.compress(
            pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        )
        header = _MMAP_HEADER.pack(
            _MMAP_MAGIC, CACHE_FORMAT, len(meta_blob), zlib.crc32(meta_blob)
        )
        if faults.fires("cache_write", fault_token):
            # Header CRC was computed from the intact envelope, so the
            # torn write this simulates must fail the meta CRC check.
            meta_blob = faults.corrupt_blob(meta_blob)
        with open(tmp, "wb") as out:
            out.write(header)
            out.write(meta_blob)
            splice(out)
        os.replace(tmp, path)
        return path
    except OSError as exc:
        PERF.cache_write_failures += 1
        _log.warning("cache write of %s failed: %s", path, exc)
        emit_event("cache_write_failure", path=str(path), error=str(exc))
        return None


def _write_mmap_blob(
    path: Path, key: str, meta: dict, source, indexes: dict,
    fault_token: str,
) -> Path | None:
    """Atomically write an mmap-format blob; None on (swallowed) failure.

    The metadata envelope (everything except raw column bytes) is one
    compressed pickle up front, so readers that only need summaries or
    run metadata never touch the column region.

    ``source`` yields months one at a time (``months()``) and exposes
    ``shapes`` / ``shape_matrix()`` once exhausted.  Column bytes
    stream through a sibling temp file as each month arrives — peak
    resident cost is one month's columns, never the dataset — and the
    region is then spliced behind the envelope in bounded chunks.
    """
    region_tmp = path.with_name(path.name + f".col{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptors: dict[int, dict] = {}
        summaries: dict[int, dict] = {}
        offset = 0
        crc = 0
        with open(region_tmp, "wb") as region:
            for month_ord, columns in source.months():
                descr: dict[str, dict] = {}
                for name in ("weights", "shape_idx"):
                    raw, typecode, itemsize = _column_bytes(columns[name])
                    descr[name] = {
                        "offset": offset,
                        "typecode": typecode,
                        "itemsize": itemsize,
                        "count": len(columns[name]),
                    }
                    region.write(raw)
                    crc = zlib.crc32(raw, crc)
                    offset += len(raw)
                descriptors[month_ord] = descr
                summaries[month_ord] = columns.get("shape_summary")

        def splice(out) -> None:
            with open(region_tmp, "rb") as region:
                shutil.copyfileobj(region, out, 8 * 1024 * 1024)

        return _seal_mmap_blob(
            path, key, meta, indexes,
            {
                "format": source.partition_format,
                "shapes": source.shapes,
                "shape_matrix": source.shape_matrix(),
                "summaries": summaries,
            },
            descriptors, offset, crc, splice, fault_token,
        )
    except OSError as exc:
        PERF.cache_write_failures += 1
        _log.warning("cache write of %s failed: %s", path, exc)
        emit_event("cache_write_failure", path=str(path), error=str(exc))
        return None
    finally:
        with contextlib.suppress(OSError):
            region_tmp.unlink()


class SpillError(OSError):
    """A month failed to reach the spill region (disk trouble).

    The spill truncates itself back to the last sealed month before
    raising, so the caller can salvage everything already spilled and
    continue in memory.
    """


class BlobSpill:
    """Out-of-core sink for sealed month partitions.

    The parallel runner feeds finished chunk payloads in as they
    arrive: each month's shape indices are remapped into one growing
    shape table (:func:`repro.engine.partition.remap_month` — weights
    carry float for float, summaries translate bit for bit) and its
    raw column bytes are appended to an anonymous temp file with an
    incremental CRC.  Only the shape table, per-month summaries, and
    column descriptors stay resident; the columns themselves live on
    disk from the moment the chunk is adopted.

    :meth:`finish_payload` then mmaps the region and returns a payload
    whose columns are ``memoryview`` casts over the map — the run's
    store is out-of-core from the moment it exists, and nothing during
    the run reads the mapped bytes back (indexes are prebuilt from the
    resident chunk, queries come later, in other processes).
    :func:`save_store` recognizes a spill-backed store and splices the
    region file behind a metadata envelope fd-to-fd, so sealing the
    cache blob never pages a column byte in either.
    """

    def __init__(self) -> None:
        import tempfile

        # Unlinked on creation: a killed run leaks nothing, and the
        # mmap (plus our fd) keeps the bytes alive as long as needed.
        self._region = tempfile.TemporaryFile()
        self.shapes: list = []
        self._shape_index: dict = {}
        self.descriptors: dict[int, dict] = {}
        self.summaries: dict[int, dict] = {}
        self.columns_len = 0
        self.columns_crc = 0
        self._mapped = None
        self._payload: dict | None = None

    def add_payload(self, payload: dict) -> None:
        """Spill every month of one packed payload (idempotent per month).

        Raises :class:`SpillError` (after truncating back to the last
        sealed month) if the region write fails, and ``ValueError`` for
        payloads the raw layout cannot carry (day columns) — the
        expectation runner never produces those.
        """
        if payload.get("format") != PARTITION_FORMAT:
            raise ValueError(
                f"unsupported partition format: {payload.get('format')!r}"
            )
        for month_ord in sorted(payload["months"]):
            columns = payload["months"][month_ord]
            if month_ord in self.descriptors:
                continue  # idempotent re-adoption (resume/retry overlap)
            if columns["days"] is not None:
                raise ValueError("day-carrying months cannot spill")
            merged = remap_month(
                columns, payload["shapes"], self.shapes, self._shape_index
            )
            raws = {
                name: merged[name].tobytes()
                for name in ("weights", "shape_idx")
            }
            descr: dict[str, dict] = {}
            offset = self.columns_len
            crc = self.columns_crc
            try:
                for name in ("weights", "shape_idx"):
                    raw = raws[name]
                    column = merged[name]
                    descr[name] = {
                        "offset": offset,
                        "typecode": column.typecode,
                        "itemsize": column.itemsize,
                        "count": len(column),
                    }
                    self._region.write(raw)
                    crc = zlib.crc32(raw, crc)
                    offset += len(raw)
            except OSError as exc:
                # Roll back to the last sealed month: descriptors/CRC
                # were not advanced, so everything spilled so far stays
                # consistent and salvageable.
                with contextlib.suppress(OSError):
                    self._region.truncate(self.columns_len)
                    self._region.seek(self.columns_len)
                raise SpillError(str(exc)) from exc
            self.descriptors[month_ord] = descr
            self.summaries[month_ord] = merged["shape_summary"]
            self.columns_len = offset
            self.columns_crc = crc

    def finish_payload(self) -> dict:
        """The spilled dataset as a payload over mmap-backed columns.

        Mirrors the month structure :func:`_read_mmap_blob` builds, so
        the store (and every query tier) cannot tell a just-simulated
        spill-backed dataset from a cache-loaded one.  Memoized: the
        runner and any salvage path see the same object.
        """
        import mmap as _mmap_mod

        from repro.engine.partition import build_shape_matrix

        if self._payload is not None:
            return self._payload
        self._region.flush()
        months: dict[int, dict] = {}
        region = None
        if self.columns_len:
            self._mapped = _mmap_mod.mmap(
                self._region.fileno(), self.columns_len,
                access=_mmap_mod.ACCESS_READ,
            )
            region = memoryview(self._mapped)
        for month_ord, descr in self.descriptors.items():
            columns: dict = {"days": None}
            for name, spec in descr.items():
                end = spec["offset"] + spec["count"] * spec["itemsize"]
                columns[name] = region[spec["offset"]:end].cast(
                    spec["typecode"]
                )
            columns["shape_summary"] = self.summaries[month_ord]
            months[month_ord] = columns
        self._payload = {
            "format": PARTITION_FORMAT,
            "shapes": self.shapes,
            "months": months,
            "shape_matrix": build_shape_matrix(self.shapes),
            "_mmap": self._mapped,
            "_spill": self,
        }
        return self._payload

    def splice_into(self, out) -> None:
        """Append the raw column region to ``out``, fd to fd — file
        pages flow through the page cache, not this process's heap."""
        self._region.flush()
        self._region.seek(0)
        shutil.copyfileobj(self._region, out, 8 * 1024 * 1024)
        self._region.seek(0, os.SEEK_END)


def _write_spill_blob(
    path: Path, key: str, meta: dict, spill: BlobSpill, indexes: dict,
    fault_token: str,
) -> Path | None:
    """Seal a spill-backed store's blob by splicing its region file.

    The envelope fields (shapes, summaries, descriptors, CRC) were all
    accumulated while chunks were still resident, so this never reads
    the mapped columns — peak cost is the envelope pickle.
    """
    from repro.engine.partition import build_shape_matrix

    return _seal_mmap_blob(
        path, key, meta, indexes,
        {
            "format": PARTITION_FORMAT,
            "shapes": spill.shapes,
            "shape_matrix": build_shape_matrix(spill.shapes),
            "summaries": spill.summaries,
        },
        spill.descriptors, spill.columns_len, spill.columns_crc,
        spill.splice_into, fault_token,
    )


def _sniff_magic(path: Path) -> bytes | None:
    try:
        with open(path, "rb") as handle:
            return handle.read(len(_MMAP_MAGIC))
    except OSError:
        return None


def _unpack_meta_blob(header: bytes, meta_blob: bytes) -> dict:
    """Verify and decode an mmap blob's metadata envelope (raises on damage)."""
    magic, fmt, meta_len, meta_crc = _MMAP_HEADER.unpack(header)
    if magic != _MMAP_MAGIC:
        raise ValueError("mmap blob lost its magic")
    if fmt != CACHE_FORMAT:
        raise ValueError(f"mmap blob has cache format {fmt}")
    if len(meta_blob) != meta_len or zlib.crc32(meta_blob) != meta_crc:
        raise ValueError("mmap blob failed envelope CRC")
    return pickle.loads(zlib.decompress(meta_blob))


def _verify_columns_eagerly(region_len: int) -> bool:
    env = os.environ.get("REPRO_CACHE_VERIFY", "").strip()
    if env == "1":
        return True
    if env == "0":
        return False
    return region_len <= _EAGER_VERIFY_BYTES


def _read_mmap_blob(path: Path, fault_token: str) -> dict | None:
    """Map an mmap-format blob; on any damage, delete it and return None.

    The returned dict mirrors the legacy envelope (``format``/``key``/
    ``meta``/``indexes``/``records``), but the records payload's month
    columns are ``memoryview`` casts over the mapped file — ``_mmap``
    inside the payload keeps the map alive as long as the payload is.
    """
    import mmap as _mmap_mod

    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        return None
    except OSError as exc:
        _log.warning("cache blob %s unreadable: %s", path, exc)
        return None
    mapped = None
    try:
        try:
            if faults.fires("cache_read", fault_token):
                raise faults.InjectedFault(
                    f"injected cache_read at {path.name}"
                )
            mapped = _mmap_mod.mmap(
                handle.fileno(), 0, access=_mmap_mod.ACCESS_READ
            )
            view = memoryview(mapped)
            header = bytes(view[: _MMAP_HEADER.size])
            if len(header) < _MMAP_HEADER.size:
                raise ValueError("mmap blob shorter than its header")
            _, _, meta_len, _ = _MMAP_HEADER.unpack(header)
            meta_end = _MMAP_HEADER.size + meta_len
            envelope = _unpack_meta_blob(header, bytes(view[_MMAP_HEADER.size:meta_end]))
            region = view[meta_end:]
            if len(region) != envelope["columns_len"]:
                raise ValueError("mmap blob column region truncated")
            if _verify_columns_eagerly(len(region)):
                if zlib.crc32(region) != envelope["columns_crc"]:
                    raise ValueError("mmap blob failed column CRC")
            partition = envelope["partition"]
            months: dict[int, dict] = {}
            for month_ord, descr in envelope["columns"].items():
                columns: dict = {"days": None}
                for name, spec in descr.items():
                    end = spec["offset"] + spec["count"] * spec["itemsize"]
                    columns[name] = region[spec["offset"]:end].cast(
                        spec["typecode"]
                    )
                summary = partition["summaries"].get(month_ord)
                if summary is not None:
                    columns["shape_summary"] = summary
                months[month_ord] = columns
            records = {
                "format": partition["format"],
                "shapes": partition["shapes"],
                "months": months,
                "shape_matrix": partition.get("shape_matrix"),
                # Keeps the map (and the casts into it) alive for the
                # payload's lifetime; everything else ignores the key.
                "_mmap": mapped,
            }
            return {
                "format": envelope["format"],
                "key": envelope["key"],
                "meta": envelope.get("meta", {}),
                "indexes": envelope.get("indexes", {}),
                "records": records,
            }
        except Exception as exc:
            if mapped is not None:
                with contextlib.suppress(Exception):
                    mapped.close()
            PERF.cache_read_errors += 1
            _log.warning(
                "cache blob %s rejected (%s: %s); deleting",
                path,
                type(exc).__name__,
                exc,
            )
            _delete_corrupt(path)
            return None
    finally:
        handle.close()


def peek_meta(key: str) -> dict | None:
    """Load only a cached dataset's metadata: never inflates columns.

    For mmap-format blobs this reads the header plus the compressed
    envelope and stops — month columns stay on disk untouched.  Legacy
    pickle blobs cannot be partially decoded, so they fall back to a
    full (verified) read and the columns are simply dropped.  Returns
    ``{"format", "key", "meta", "indexes", "months"}`` (months as
    dates, ascending) or None on miss/corruption.
    """
    path = store_path(key)
    token = f"peek:{key[:16]}"
    magic = _sniff_magic(path)
    if magic is None:
        return None
    if magic == _MMAP_MAGIC:
        try:
            with open(path, "rb") as handle:
                if faults.fires("cache_read", token):
                    raise faults.InjectedFault(
                        f"injected cache_read at {path.name}"
                    )
                header = handle.read(_MMAP_HEADER.size)
                if len(header) < _MMAP_HEADER.size:
                    raise ValueError("mmap blob shorter than its header")
                _, _, meta_len, _ = _MMAP_HEADER.unpack(header)
                envelope = _unpack_meta_blob(header, handle.read(meta_len))
        except FileNotFoundError:
            return None
        except Exception as exc:
            PERF.cache_read_errors += 1
            _log.warning(
                "cache blob %s rejected (%s: %s); deleting",
                path,
                type(exc).__name__,
                exc,
            )
            _delete_corrupt(path)
            return None
        months = sorted(envelope["columns"])
    else:
        envelope = _read_blob(path, token)
        if envelope is None:
            return None
        months = sorted(envelope.get("records", {}).get("months", ()))
    return {
        "format": envelope.get("format"),
        "key": envelope.get("key"),
        "meta": envelope.get("meta", {}),
        "indexes": envelope.get("indexes", {}),
        "months": [_dt.date.fromordinal(o) for o in months],
    }


# ---- dataset blobs ----------------------------------------------------------


def save_store(store, key: str, meta: dict | None = None) -> Path | None:
    """Atomically persist a finished store under its dataset key.

    Disk failures are swallowed (counted in PERF): a cache that cannot
    be written must never take the computed result down with it.  Every
    successful save triggers the LRU size sweep.
    """
    with span("cache_save", key=key[:16]):
        # Aggregate indexes ride along so a warm load answers the
        # standard figure queries without touching a single record.
        indexes = store.index_payloads()
        token = f"save:{key[:16]}"
        path = None
        wrote = False
        if _mmap_format_enabled():
            # Spill-backed stores (the parallel runner's out-of-core
            # path) already hold their column bytes in a region file:
            # seal the blob by splicing it, never paging columns in.
            spill = getattr(store, "packed_spill", lambda: None)()
            if spill is not None:
                path = _write_spill_blob(
                    store_path(key), key, dict(meta or {}), spill,
                    indexes, token,
                )
                wrote = True
        if not wrote and _mmap_format_enabled():
            # The fully-columnar fast path: stream the store's merged
            # months straight to the blob — no record round trip, no
            # whole-dataset merged copy.  At scale the alternative
            # would dwarf the dataset itself.
            merge = getattr(store, "packed_merge", lambda: None)()
            if merge is not None and not merge.has_days:
                path = _write_mmap_blob(
                    store_path(key), key, dict(meta or {}),
                    _MergeSource(merge), indexes, token,
                )
                wrote = True
        if not wrote:
            packed = None
            packed_payload = getattr(store, "packed_payload", None)
            if packed_payload is not None:
                packed = packed_payload()
            if packed is None:
                packed = pack_records(store.records())
            if _mmap_format_enabled() and _mmap_packable(packed):
                path = _write_mmap_blob(
                    store_path(key), key, dict(meta or {}),
                    _PayloadSource(packed), indexes, token,
                )
            else:
                payload = {
                    "format": CACHE_FORMAT,
                    "key": key,
                    "meta": dict(meta or {}),
                    "records": packed,
                    "indexes": indexes,
                }
                path = _write_blob(store_path(key), payload, token)
        if path is not None:
            _log.debug("dataset cached at %s", path)
            emit_event("cache_save", key=key[:16], path=str(path))
            evict_lru(keep=path)
    return path


def load_store(key: str):
    """Load a cached store, or None on miss/corruption/format skew.

    Corrupt and format-skewed blobs are deleted on rejection; a hit
    refreshes the blob's mtime so the LRU sweep sees it as recent.
    """
    from repro.notary.store import NotaryStore

    path = store_path(key)
    started = time.perf_counter()
    with span("cache_load", key=key[:16]), _gc_paused():
        if _sniff_magic(path) == _MMAP_MAGIC:
            payload = _read_mmap_blob(path, f"load:{key[:16]}")
        else:
            payload = _read_blob(path, f"load:{key[:16]}")
        if payload is not None:
            if (
                payload.get("format") != CACHE_FORMAT
                or payload.get("key") != key
                or not validate_payload(payload.get("records", {}))
            ):
                _log.warning(
                    "cached dataset %s failed format/key/payload checks; culling",
                    path,
                )
                _delete_corrupt(path)
                payload = None
        if payload is None:
            PERF.dataset_cache_misses += 1
            _log.debug("dataset cache miss for key %s", key[:16])
            emit_event("cache_miss", key=key[:16])
            return None
        store = NotaryStore()
        store.attach_packed(PackedDataset(payload["records"]))
        store.install_index_payloads(payload.get("indexes", {}))
        with contextlib.suppress(OSError):
            os.utime(path)
        PERF.dataset_cache_hits += 1
        PERF.records_loaded += len(store)
        PERF.load_seconds = time.perf_counter() - started
        _log.debug(
            "dataset cache hit for key %s (%.3fs)", key[:16], PERF.load_seconds
        )
        emit_event("cache_hit", key=key[:16], seconds=PERF.load_seconds)
    return store


# ---- LRU eviction -----------------------------------------------------------


def max_cache_bytes() -> int:
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


def evict_lru(max_bytes: int | None = None, keep: Path | None = None) -> int:
    """Delete oldest dataset blobs until the population fits the cap.

    Only ``expectation-*.bin`` blobs count (checkpoints are transient
    and cleared by the runner).  The just-written blob (``keep``) is
    never evicted, even if it alone exceeds the cap.  Returns the
    number of evicted files.
    """
    cap = max_cache_bytes() if max_bytes is None else max_bytes
    if cap <= 0:
        return 0
    entries = []
    try:
        for path in cache_dir().glob("expectation-*.bin"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
    except OSError:
        return 0
    total = sum(size for _, size, _ in entries)
    evicted = 0
    for _, size, path in sorted(entries):
        if total <= cap:
            break
        if keep is not None and path == keep:
            continue
        with contextlib.suppress(OSError):
            path.unlink()
            total -= size
            evicted += 1
            PERF.cache_evictions += 1
            _log.info("evicted cache blob %s (%d bytes, LRU)", path.name, size)
            emit_event("cache_evict", path=str(path), bytes=size)
    return evicted


# ---- advisory build lock ----------------------------------------------------


def _lock_path(key: str) -> Path:
    return cache_dir() / f"expectation-{key[:40]}.lock"


def _lock_stale_seconds() -> float:
    env = os.environ.get("REPRO_CACHE_LOCK_STALE", "").strip()
    if env:
        try:
            return max(1.0, float(env))
        except ValueError:
            pass
    return DEFAULT_LOCK_STALE_SECONDS


@contextlib.contextmanager
def build_lock(key: str):
    """Advisory per-key build lock; yields True when this process holds it.

    Best-effort by design: on any filesystem trouble the caller simply
    builds anyway (duplicate work beats no work).  A lock file older
    than the stale threshold is assumed orphaned by a killed builder
    and broken.
    """
    path = _lock_path(key)
    acquired = False
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                os.close(fd)
                acquired = True
                break
            except FileExistsError:
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # holder vanished between open and stat; retry
                if age > _lock_stale_seconds():
                    _log.warning(
                        "breaking stale build lock %s (age %.0fs)", path, age
                    )
                    emit_event("lock_stale_broken", path=str(path), age=age)
                    with contextlib.suppress(OSError):
                        path.unlink()
                    continue
                break
            except OSError:
                break
    except OSError:
        pass
    try:
        yield acquired
    finally:
        if acquired:
            with contextlib.suppress(OSError):
                path.unlink()


def wait_for_store(key: str, timeout: float = 30.0, poll: float = 0.2):
    """Poll for another process's build of ``key`` to land.

    Returns the loaded store, or None if the blob never appeared (or
    the other builder's lock vanished without a blob) — the caller
    then builds itself.
    """
    deadline = time.monotonic() + timeout
    while True:
        store = load_store(key)
        if store is not None:
            return store
        if not _lock_path(key).exists():
            return load_store(key)
        if time.monotonic() >= deadline:
            return None
        time.sleep(poll)


# ---- month checkpoints ------------------------------------------------------


class Checkpoint:
    """Per-month spill files that let a killed parallel run resume.

    Each finished chunk's months are written as standalone sealed
    blobs; a resuming run adopts every valid month and re-simulates
    only the rest.  Corrupt or mismatched files are deleted and their
    months rebuilt — resume can only ever help, never poison a run.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self.dir = cache_dir() / "checkpoints" / key[:40]

    def _month_path(self, month: _dt.date) -> Path:
        return self.dir / f"{month.isoformat()}.bin"

    def save_months(self, split: dict[_dt.date, dict]) -> int:
        """Persist single-month payloads; returns months written."""
        written = 0
        for month, payload in split.items():
            blob = {"format": CACHE_FORMAT, "key": self.key, "records": payload}
            token = f"ckpt:{self.key[:8]}:{month.isoformat()}"
            if _write_blob(self._month_path(month), blob, token) is not None:
                written += 1
        PERF.checkpointed_months += written
        if written:
            _log.debug("checkpointed %d month(s) under %s", written, self.dir)
            emit_event(
                "checkpoint_save",
                key=self.key[:16],
                months=[m.isoformat() for m in split],
            )
        return written

    def load_months(self, months):
        """Yield (month, payload) for every valid checkpointed month."""
        for month in months:
            path = self._month_path(month)
            token = f"ckpt:{self.key[:8]}:{month.isoformat()}"
            blob = _read_blob(path, token)
            if blob is None:
                continue
            if blob.get("format") != CACHE_FORMAT or blob.get("key") != self.key:
                _log.warning("checkpoint %s has format/key skew; culling", path)
                _delete_corrupt(path)
                continue
            payload = blob.get("records")
            if not validate_payload(payload, [month]):
                _log.warning("checkpoint %s failed validation; culling", path)
                _delete_corrupt(path)
                continue
            emit_event("checkpoint_load", key=self.key[:16], month=month.isoformat())
            yield month, payload

    def clear(self) -> None:
        """Remove the checkpoint directory (run finished cleanly)."""
        shutil.rmtree(self.dir, ignore_errors=True)
