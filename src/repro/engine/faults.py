"""Deterministic, seedable fault injection for the run engine.

The engine's resilience paths (retry, timeout-and-reshard, inline
fallback, checkpoint resume, cache integrity) are only trustworthy if
they are exercised constantly, so faults are injectable at every layer
the engine touches:

* ``worker_crash`` — raise at worker chunk start (the whole chunk dies
  exactly as if the simulation code had thrown).
* ``chunk_hang`` — sleep ``hang_seconds`` at worker chunk start, so the
  parent's per-chunk timeout must fire and kill-and-reshard.
* ``month_crash`` — raise between months inside a chunk (partial work
  is lost; the retry must regenerate the full chunk).
* ``pack_corrupt`` — mutilate the packed partition a worker ships back
  (format skew, truncated column, or a dropped month); the parent's
  partition validation must reject it and retry the chunk.
* ``cache_read`` / ``cache_write`` — corrupt a cache blob as it is read
  or written; the integrity footer must detect it and degrade to a
  rebuild, never an error.

Faults are configured by a spec string — CLI ``--faults`` or the
``REPRO_FAULTS`` env var — of comma-separated ``kind:rate`` entries
plus the optional ``seed:N`` and ``hang_seconds:X`` knobs::

    REPRO_FAULTS=worker_crash:0.1,chunk_hang:0.05,seed:42,hang_seconds:5

Every draw is a pure function of ``(seed, kind, token)`` — no RNG
state, no wall clock — so a fault schedule is exactly reproducible
across processes and runs.  Injection sites build tokens that include
the attempt number, so a retried chunk draws fresh: a 100% crash rate
still terminates because the inline fallback runs under
:func:`suppressed`.

Like :mod:`repro.engine.perf`, this module imports only the bottom
layer (:mod:`repro.engine.perf`, :mod:`repro.obs`) so any layer can
call into it without cycles.  Every fired fault is logged and emitted
to the JSONL metrics sink, so a fault schedule leaves an auditable
trail even when the process it fired in dies.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import time
from dataclasses import dataclass, field

from repro.engine.perf import PERF
from repro.obs import emit_event, get_logger

_log = get_logger("repro.engine.faults")

#: Fault kinds with a rate; anything else in a spec is ignored (a
#: malformed env var must degrade, never kill a run).
KINDS = (
    "worker_crash",
    "chunk_hang",
    "month_crash",
    "pack_corrupt",
    "cache_read",
    "cache_write",
)

#: Spec knobs that are not rates.
_KNOBS = ("seed", "hang_seconds")


class InjectedFault(RuntimeError):
    """An injected failure — indistinguishable from a real crash to the
    recovery machinery, but recognizable in test assertions."""


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault schedule: per-kind rates plus the draw seed."""

    rates: dict[str, float] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = 3600.0

    @classmethod
    def parse(cls, spec: str | None) -> "FaultPlan":
        """Parse a ``kind:rate,...`` spec; malformed entries are skipped."""
        rates: dict[str, float] = {}
        seed = 0
        hang_seconds = 3600.0
        for entry in (spec or "").split(","):
            entry = entry.strip()
            if not entry or ":" not in entry:
                continue
            name, _, raw = entry.partition(":")
            name = name.strip()
            try:
                if name == "seed":
                    seed = int(raw)
                elif name == "hang_seconds":
                    hang_seconds = max(0.0, float(raw))
                elif name in KINDS:
                    rates[name] = min(1.0, max(0.0, float(raw)))
            except ValueError:
                continue
        return cls(rates=rates, seed=seed, hang_seconds=hang_seconds)

    def active(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())

    def fires(self, kind: str, token: str) -> bool:
        """Deterministic Bernoulli draw for one (kind, token) site."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{token}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < rate


_NO_FAULTS = FaultPlan()

#: Explicit override (CLI ``--faults``); wins over the environment.
_CONFIGURED: FaultPlan | None = None
#: Cache of the last env parse, keyed by the raw spec string.
_ENV_CACHE: tuple[str, FaultPlan] | None = None
#: Suppression depth — the inline serial fallback must always succeed.
_SUPPRESS = 0


def configure(spec: str | FaultPlan | None) -> FaultPlan:
    """Install an explicit fault plan (``None`` clears the override)."""
    global _CONFIGURED
    if spec is None:
        _CONFIGURED = None
        return current()
    _CONFIGURED = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    return _CONFIGURED


def clear() -> None:
    """Drop the explicit override and the env parse cache (tests)."""
    global _CONFIGURED, _ENV_CACHE
    _CONFIGURED = None
    _ENV_CACHE = None


def current() -> FaultPlan:
    """The active plan: explicit override, else ``REPRO_FAULTS``."""
    if _CONFIGURED is not None:
        return _CONFIGURED
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return _NO_FAULTS
    global _ENV_CACHE
    if _ENV_CACHE is None or _ENV_CACHE[0] != spec:
        _ENV_CACHE = (spec, FaultPlan.parse(spec))
    return _ENV_CACHE[1]


def shippable_plan() -> FaultPlan | None:
    """The active plan, for explicit delivery to pool workers.

    Fork workers inherit ``_CONFIGURED`` through process memory, but a
    spawned worker starts a fresh interpreter where only the
    environment survives — a plan installed via :func:`configure` (the
    CLI ``--faults`` flag, the test suites' programmatic specs) would
    silently stop firing.  The scheduler therefore ships this through
    the worker initializer on every backend; :class:`FaultPlan` is a
    frozen dataclass of primitives, so it pickles cleanly.  ``None``
    when no plan is active — workers then fall back to their own
    environment parse, same as today.
    """
    plan = current()
    return plan if plan.active() else None


@contextlib.contextmanager
def suppressed():
    """Disable every injection site inside the block.

    The engine's last-resort paths (inline chunk re-run, the plain
    serial fallback of a resumed month) run under this, which is what
    makes recovery terminate even at 100% fault rates.
    """
    global _SUPPRESS
    _SUPPRESS += 1
    try:
        yield
    finally:
        _SUPPRESS -= 1


def fires(kind: str, token: str) -> bool:
    """True when the active plan injects a fault at this site."""
    if _SUPPRESS > 0:
        return False
    if current().fires(kind, token):
        PERF.faults_injected += 1
        # Emit before the caller raises/hangs/corrupts: a crashed
        # worker's counters die with it, but this line survives.
        _log.debug("injected fault %s at %s", kind, token)
        emit_event("fault", kind=kind, token=token)
        return True
    return False


def crash_point(kind: str, token: str) -> None:
    """Raise :class:`InjectedFault` when the site draws a failure."""
    if fires(kind, token):
        raise InjectedFault(f"injected {kind} at {token}")


def hang_point(token: str) -> None:
    """Sleep past any reasonable chunk timeout when the site fires."""
    if fires("chunk_hang", token):
        time.sleep(current().hang_seconds)


def corrupt_partition(payload: dict, token: str) -> dict:
    """Mutilate a packed partition in one of three detectable ways.

    The style is drawn deterministically from the token so a fault
    schedule reproduces exactly: format skew, a truncated weight
    column, or a dropped month.
    """
    digest = hashlib.sha256(f"corrupt|{token}".encode("utf-8")).digest()
    style = digest[0] % 3
    if style == 0 or not payload.get("months"):
        payload["format"] = -1
    elif style == 1:
        columns = next(iter(payload["months"].values()))
        if len(columns["weights"]):
            columns["weights"].pop()
        else:
            payload["format"] = -1
    else:
        payload["months"].pop(next(iter(payload["months"])))
    return payload


def corrupt_blob(blob: bytes) -> bytes:
    """Truncate a cache blob body (its footer stays intact, so the
    integrity check — not the pickle parser — must catch it)."""
    return blob[: max(1, len(blob) // 2)]
