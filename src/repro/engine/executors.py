"""Pluggable execution backends behind the engine scheduler.

The scheduler in :mod:`repro.engine.runner` owns *policy* — month
chunking, sliding-window submission, retry/backoff, per-round deadlines
with kill-and-reshard, checkpoint adoption, and the fault-suppressed
inline fallback.  This module owns *placement*: where a submitted chunk
(or, on the serve path, a query job) actually executes.  The split is
what lets the same byte-identical engine run on one process, a fork
pool, or spawned workers without the scheduling loop knowing which.

Backends (``repro run --backend`` / ``REPRO_BACKEND``):

* ``fork`` — a ``multiprocessing`` fork pool, the historical default.
  Worker state (populations, the active fault plan) is inherited
  through fork memory; initargs are never pickled.
* ``spawn`` — freshly spawned interpreters.  Everything a worker needs
  crosses the process boundary explicitly: chunk payloads and init
  arguments must be picklable, and the worker initializer re-installs
  the parent's fault plan (module-global ``configure()`` state does not
  survive a spawn) plus the trace identity.  This is the prerequisite
  shape for any multi-node dispatcher: nothing is inherited, everything
  is shipped.
* ``inline`` — the serial last-resort path promoted to a first-class
  backend: jobs execute synchronously in the parent at submit time.
  No process isolation means no preemption, so inline executors never
  raise :class:`ChunkTimeout` (``preemptible`` is False) and the
  scheduler's kill-and-reshard escalation simply never triggers.

The executor contract (DESIGN.md §6k), what every backend guarantees:

1. **Determinism** — a job's result depends only on the job payload
   and the :class:`WorkSpec` init arguments, never on which backend or
   worker ran it.  The differential suites enforce this: every backend
   must produce byte-identical stores and figures.
2. **Result fidelity** — results cross the boundary by pickle (or by
   reference, inline), both of which preserve float bit patterns, so
   worker→parent perf-counter, span, and histogram shipping reconciles
   exactly regardless of backend.
3. **Failure transparency** — a worker exception propagates out of
   :meth:`_Pending.result` unchanged in type and message; a deadline
   miss raises :class:`ChunkTimeout`; :meth:`Executor.close` reclaims
   every worker, including hung ones, for preemptible backends.
4. **No parent-state mutation** — pool initializers run only in worker
   processes; the inline backend routes through ``inline_fn``, which
   must not reset parent counters or trace state.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable

from repro import obs

_log = obs.get_logger("repro.engine.executors")

#: Selectable backend names, in documentation order.
BACKENDS = ("fork", "inline", "spawn")


class ChunkTimeout(Exception):
    """A submitted job missed the scheduler's per-round deadline."""


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def default_backend() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    return "fork" if fork_available() else "spawn"


def resolve_backend(explicit: str | None = None) -> str:
    """Backend selection: explicit > ``REPRO_BACKEND`` > platform default.

    An explicit name must be a usable backend — a typo'd ``--backend``
    raises instead of silently running somewhere else.  A malformed or
    unusable environment value degrades to the default with a warning,
    the same policy every other ``REPRO_*`` knob follows: a stale env
    var must not kill a run.
    """
    if explicit is not None:
        name = str(explicit).strip().lower()
        if name not in BACKENDS:
            raise ValueError(
                f"unknown backend {explicit!r}; choose from {BACKENDS}"
            )
        if name == "fork" and not fork_available():
            raise ValueError(
                "the fork start method is unavailable on this platform; "
                "use --backend spawn"
            )
        return name
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if env:
        if env in BACKENDS and (env != "fork" or fork_available()):
            return env
        _log.warning(
            "REPRO_BACKEND=%r is not a usable backend; using %s",
            env,
            default_backend(),
        )
    return default_backend()


@dataclass(frozen=True)
class WorkSpec:
    """What an executor runs and how its workers are prepared.

    ``pool_fn`` is a module-level function (picklable by reference for
    the spawn backend) taking one job argument and returning one
    result.  ``initializer``/``initargs`` prepare worker-process state
    before the first job; under spawn every element of ``initargs``
    must be picklable, under fork they travel through fork memory.
    ``inline_fn`` is the parent-process twin used by non-isolating
    backends — it may be a closure, and it must leave parent counters
    and trace state intact (no ``PERF.reset()``); when omitted,
    ``pool_fn`` runs in the parent directly.
    """

    pool_fn: Callable
    initializer: Callable | None = None
    initargs: tuple = ()
    inline_fn: Callable | None = None


class _PoolPending:
    """One in-flight pool job; maps the pool's timeout onto the contract."""

    __slots__ = ("_async",)

    def __init__(self, async_result) -> None:
        self._async = async_result

    def result(self, timeout: float | None = None):
        try:
            return self._async.get(timeout)
        except multiprocessing.TimeoutError as exc:
            raise ChunkTimeout() from exc


class _PoolExecutor:
    """Fork or spawn ``multiprocessing`` pool behind the interface."""

    preemptible = True

    def __init__(self, name: str, spec: WorkSpec, slots: int) -> None:
        self.name = name
        context = multiprocessing.get_context(name)
        self._spec = spec
        self._pool = context.Pool(
            processes=max(1, slots),
            initializer=spec.initializer,
            initargs=spec.initargs,
        )

    def submit(self, job) -> _PoolPending:
        return _PoolPending(self._pool.apply_async(self._spec.pool_fn, (job,)))

    def close(self) -> None:
        # terminate, not close+drain: a round past its deadline must
        # kill workers still hung mid-chunk, exactly like the old
        # ``with context.Pool(...)`` exit did.
        self._pool.terminate()
        self._pool.join()


class _InlinePending:
    """A job that already ran; ``result`` replays its outcome."""

    __slots__ = ("_value", "_error")

    def __init__(self, value, error) -> None:
        self._value = value
        self._error = error

    def result(self, timeout: float | None = None):
        if self._error is not None:
            raise self._error
        return self._value


class InlineExecutor:
    """Synchronous in-parent execution; never preempts, never times out."""

    name = "inline"
    preemptible = False

    def __init__(self, spec: WorkSpec, slots: int) -> None:
        self._fn = spec.inline_fn if spec.inline_fn is not None else spec.pool_fn

    def submit(self, job) -> _InlinePending:
        try:
            return _InlinePending(self._fn(job), None)
        except Exception as exc:  # lint: allow-swallow — replayed from result()
            return _InlinePending(None, exc)

    def close(self) -> None:
        pass


def create_executor(backend: str, spec: WorkSpec, slots: int):
    """One executor for one scheduling round (or one server lifetime)."""
    if backend == "inline":
        return InlineExecutor(spec, slots)
    if backend in ("fork", "spawn"):
        return _PoolExecutor(backend, spec, slots)
    raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
