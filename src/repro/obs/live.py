"""Continuous telemetry for long-running processes (``repro.obs.live``).

PRs 3–4 built *batch* observability: spans and JSONL events that become
useful after a run ends.  The resident server (PR 7) runs indefinitely,
so this module adds the live half — telemetry you can watch and alert
on while the process is up, at a cost small enough to leave on always:

* :class:`Histogram` — fixed-bucket log-scale latency histograms.  The
  bucket boundaries are process-wide constants, which is what makes two
  histograms **mergeable** (fold counts slot by slot) and snapshots
  comparable across processes, scrapes, and runs.  Nearest-rank
  percentiles read from the buckets are bounded within one bucket width
  of the exact sample percentile (property-tested).
* **Trace exemplars** — each bucket retains the most recent exemplar
  (trace id, span id, route, value, timestamp) that landed in it, so a
  tail-latency spike on a dashboard links straight to its span in the
  JSONL sink instead of being an anonymous count.
* :class:`WindowedHistogram` — sliding time-window aggregation: a ring
  of N slots × W seconds, each slot a histogram plus request/error
  counts.  Reading the window merges only the unexpired slots, so rates
  and percentiles reflect the last ~N·W seconds, not process lifetime.
* :class:`LiveTelemetry` — the serve-facing bundle: a per-route and a
  global window, tier totals, and the ``window`` payload rendered into
  ``/stats`` and ``stats --json`` (schema 6).
* :func:`render_prometheus` / :func:`parse_prometheus` — hand-rolled
  Prometheus text exposition (version 0.0.4) and the matching parser
  used by ``repro top`` and the CI validator
  (``scripts/check_prometheus_text.py``).

Like the rest of :mod:`repro.obs`, this module imports **nothing** from
the rest of :mod:`repro` — :mod:`repro.engine.perf` itself imports the
histogram primitive for its route ledger and duration counters, so this
file has to sit at the very bottom of the import graph beside it.
Thread-safety: every mutating or reading method on a histogram/window
takes that object's lock; callers never need their own.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left

#: Log-scale bucket upper bounds (seconds): 100 µs doubling up to ~52 s.
#: 20 finite bounds + one overflow slot = 21 counters per histogram —
#: the whole point is that this is O(buckets) state no matter how many
#: observations land (the fix for the unbounded per-route sample list).
#: Fixed process-wide so any two histograms (across threads, processes,
#: scrapes) merge slot-by-slot without rebinning.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(1e-4 * 2**i for i in range(20))

#: Sliding window defaults: 12 slots × 5 s = the last minute.
DEFAULT_WINDOW_SLOTS = 12
DEFAULT_SLOT_SECONDS = 5.0

#: The quantiles every window payload and ``/metrics`` exposition carry.
WINDOW_QUANTILES = (0.5, 0.95, 0.99)

#: Content type of the ``/metrics`` exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def bucket_index(value: float, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> int:
    """The slot a value lands in: first bound with ``value <= bound``
    (Prometheus ``le`` semantics); ``len(bounds)`` is the overflow slot."""
    return bisect_left(bounds, value)


def bucket_width(
    value: float, bounds: tuple[float, ...] = DEFAULT_BOUNDS
) -> float:
    """Width of the bucket containing ``value`` (the agreement unit the
    acceptance criterion is phrased in).  The overflow bucket has no
    finite width; callers comparing against it get the last finite one."""
    i = min(bucket_index(value, bounds), len(bounds) - 1)
    lower = bounds[i - 1] if i > 0 else 0.0
    return bounds[i] - lower


class Histogram:
    """A fixed-bucket log-scale histogram with per-bucket exemplars.

    State is O(buckets) forever: ``counts`` (one int per slot), scalar
    ``count``/``sum``/``max``/``min``, and at most one exemplar dict per
    bucket (the most recent observation that landed there, replacing the
    previous one).  ``merge`` requires identical bounds — guaranteed by
    everything in-repo using :data:`DEFAULT_BOUNDS` — and is exactly
    equivalent to having observed both streams into one histogram
    (property-tested in ``tests/test_live.py``).
    """

    __slots__ = (
        "bounds", "counts", "count", "sum", "max", "min", "exemplars",
        "_lock",
    )

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.min: float | None = None
        self.exemplars: list[dict | None] = [None] * (len(self.bounds) + 1)
        self._lock = threading.Lock()

    # ---- recording ----------------------------------------------------------

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        """Fold one observation in; optionally pin it as the bucket's
        exemplar (most-recent-wins)."""
        i = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value
            if self.min is None or value < self.min:
                self.min = value
            if exemplar is not None:
                self.exemplars[i] = exemplar

    def merge(self, other: "Histogram") -> None:
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict in (the worker → parent path)."""
        if tuple(snap["bounds"]) != self.bounds:
            raise ValueError(
                "histogram bounds differ; fixed process-wide bounds are "
                "what makes snapshots mergeable"
            )
        with self._lock:
            for i, n in enumerate(snap["counts"]):
                self.counts[i] += n
            self.count += snap["count"]
            self.sum += snap["sum"]
            if snap["max"] > self.max:
                self.max = snap["max"]
            if snap["min"] is not None and (
                self.min is None or snap["min"] < self.min
            ):
                self.min = snap["min"]
            for i, exemplar in enumerate(snap.get("exemplars") or []):
                if exemplar is None:
                    continue
                mine = self.exemplars[i]
                if mine is None or exemplar.get("ts", 0) >= mine.get("ts", 0):
                    self.exemplars[i] = dict(exemplar)

    # ---- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe, picklable copy (what workers ship and sinks get)."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.sum,
                "max": self.max,
                "min": self.min,
                "exemplars": [
                    dict(e) if e is not None else None for e in self.exemplars
                ],
            }

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative bucket counts (``+Inf`` last)."""
        with self._lock:
            total, out = 0, []
            for n in self.counts:
                total += n
                out.append(total)
            return out

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile from the buckets (q in 0..100).

        Returns the *upper bound* of the bucket holding the nearest-rank
        sample, clamped to the observed max — still >= the exact value
        and within one bucket width of it by construction (the clamp
        only tightens the bound, and keeps ``p99 <= max`` in every
        rendering; the overflow bucket reports the observed max, which
        is exact).  0.0 on an empty histogram.
        """
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, -(-self.count * q // 100))  # ceil without floats
            cumulative = 0
            for i, n in enumerate(self.counts):
                cumulative += n
                if cumulative >= rank:
                    if i >= len(self.bounds):
                        return self.max
                    return min(self.bounds[i], self.max)
            return self.max


def percentile_from_snapshot(snap: dict, q: float) -> float:
    """:meth:`Histogram.percentile` over a snapshot dict."""
    if snap["count"] == 0:
        return 0.0
    rank = max(1, -(-snap["count"] * q // 100))
    cumulative = 0
    for i, n in enumerate(snap["counts"]):
        cumulative += n
        if cumulative >= rank:
            if i >= len(snap["bounds"]):
                return snap["max"]
            return min(snap["bounds"][i], snap["max"])
    return snap["max"]


class WindowedHistogram:
    """A ring of N slots × W seconds over :class:`Histogram`.

    ``observe`` lands in the slot for the current epoch (``now // W``),
    lazily resetting a slot whose epoch has rotated out.  ``window()``
    merges only slots whose epoch is within the last N, so the snapshot
    reflects the trailing ~N·W seconds.  State stays O(slots × buckets)
    no matter the request rate — this is the bounded replacement for
    the grow-forever per-route sample ledger.
    """

    def __init__(
        self,
        slots: int = DEFAULT_WINDOW_SLOTS,
        slot_seconds: float = DEFAULT_SLOT_SECONDS,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        if slots < 1 or slot_seconds <= 0:
            raise ValueError("window needs >= 1 slot of positive width")
        self.slots = slots
        self.slot_seconds = float(slot_seconds)
        self.bounds = tuple(bounds)
        self._lock = threading.Lock()
        #: slot index -> (epoch, Histogram, errors)
        self._ring: list[list] = [
            [None, Histogram(self.bounds), 0] for _ in range(slots)
        ]

    @property
    def window_seconds(self) -> float:
        return self.slots * self.slot_seconds

    def _slot(self, now: float) -> list:
        """The (reset-if-stale) ring slot for ``now``; caller holds lock."""
        epoch = int(now // self.slot_seconds)
        slot = self._ring[epoch % self.slots]
        if slot[0] != epoch:
            slot[0] = epoch
            slot[1] = Histogram(self.bounds)
            slot[2] = 0
        return slot

    def observe(
        self,
        value: float,
        error: bool = False,
        exemplar: dict | None = None,
        now: float | None = None,
    ) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            slot = self._slot(now)
        slot[1].observe(value, exemplar=exemplar)
        if error:
            with self._lock:
                slot[2] += 1

    def window(self, now: float | None = None) -> dict:
        """Merge the live slots into one summary of the trailing window.

        Returns ``{seconds, count, errors, rps, error_rate, histogram,
        p50, p95, p99}`` where ``seconds`` is the full ring span (the
        denominator for the rate) and the percentiles are bucket-bound
        nearest-rank reads over the merged histogram.
        """
        now = time.monotonic() if now is None else now
        epoch = int(now // self.slot_seconds)
        merged = Histogram(self.bounds)
        errors = 0
        with self._lock:
            live = [
                (slot_epoch, hist, errs)
                for slot_epoch, hist, errs in self._ring
                if slot_epoch is not None and epoch - slot_epoch < self.slots
            ]
        for _slot_epoch, hist, errs in live:
            merged.merge(hist)
            errors += errs
        seconds = self.window_seconds
        count = merged.count
        return {
            "seconds": seconds,
            "count": count,
            "errors": errors,
            "rps": count / seconds if seconds > 0 else 0.0,
            "error_rate": errors / count if count else 0.0,
            "histogram": merged.snapshot(),
            "p50": merged.percentile(50),
            "p95": merged.percentile(95),
            "p99": merged.percentile(99),
        }


class LiveTelemetry:
    """The resident server's continuous-telemetry bundle.

    One global window plus one per route (created on first sight; route
    cardinality is bounded by the server's route patterns), and a
    cumulative tier tally.  ``observe`` is the single entry point the
    serve path calls per request; ``window_payload`` is the ``window``
    section of ``/stats`` and ``stats --json`` schema 6.
    """

    def __init__(
        self,
        slots: int = DEFAULT_WINDOW_SLOTS,
        slot_seconds: float = DEFAULT_SLOT_SECONDS,
    ) -> None:
        self.slots = slots
        self.slot_seconds = slot_seconds
        self.total = WindowedHistogram(slots, slot_seconds)
        self.routes: dict[str, WindowedHistogram] = {}
        self.tier_totals: dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(
        self,
        route: str,
        seconds: float,
        status: int,
        tier: str | None = None,
        exemplar: dict | None = None,
        now: float | None = None,
    ) -> None:
        now = time.monotonic() if now is None else now
        error = status >= 400
        with self._lock:
            window = self.routes.get(route)
            if window is None:
                window = self.routes[route] = WindowedHistogram(
                    self.slots, self.slot_seconds
                )
            if tier is not None:
                self.tier_totals[tier] = self.tier_totals.get(tier, 0) + 1
        window.observe(seconds, error=error, exemplar=exemplar, now=now)
        self.total.observe(seconds, error=error, exemplar=exemplar, now=now)

    def window_payload(self, now: float | None = None) -> dict:
        """The JSON ``window`` section: global rates/percentiles plus a
        per-route breakdown (milliseconds, the operator-facing unit)."""
        now = time.monotonic() if now is None else now
        total = self.total.window(now)
        with self._lock:
            routes = dict(self.routes)
            tiers = dict(self.tier_totals)
        payload_routes = {}
        for route, window in sorted(routes.items()):
            w = window.window(now)
            payload_routes[route] = {
                "count": w["count"],
                "errors": w["errors"],
                "rps": w["rps"],
                "p50_ms": w["p50"] * 1e3,
                "p95_ms": w["p95"] * 1e3,
                "p99_ms": w["p99"] * 1e3,
            }
        return {
            "seconds": total["seconds"],
            "slots": self.slots,
            "slot_seconds": self.slot_seconds,
            "count": total["count"],
            "errors": total["errors"],
            "rps": total["rps"],
            "error_rate": total["error_rate"],
            "p50_ms": total["p50"] * 1e3,
            "p95_ms": total["p95"] * 1e3,
            "p99_ms": total["p99"] * 1e3,
            "routes": payload_routes,
            "tier_totals": tiers,
        }


# ---- Prometheus text exposition ---------------------------------------------


def _format_value(value: float) -> str:
    """Prometheus sample values: integers bare, floats via repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


class MetricFamily:
    """One exposition family: name, type, help, and its samples."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        if kind not in ("counter", "gauge", "histogram", "untyped"):
            raise ValueError(f"unknown metric type {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        #: (suffix, labels-dict-or-None, value)
        self.samples: list[tuple[str, dict | None, float]] = []

    def add(self, value: float, labels: dict | None = None, suffix: str = "") -> None:
        self.samples.append((suffix, labels, value))

    def add_histogram(self, snap: dict, labels: dict | None = None) -> None:
        """A full histogram snapshot as ``_bucket``/``_sum``/``_count``
        series (cumulative counts, ``le`` labels, ``+Inf`` last)."""
        labels = dict(labels or {})
        total = 0
        for bound, n in zip(snap["bounds"], snap["counts"]):
            total += n
            self.add(total, {**labels, "le": _format_value(float(bound))}, "_bucket")
        total += snap["counts"][len(snap["bounds"])]
        self.add(total, {**labels, "le": "+Inf"}, "_bucket")
        self.add(snap["sum"], labels, "_sum")
        self.add(snap["count"], labels, "_count")


def render_prometheus(families: list[MetricFamily]) -> str:
    """The families as Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for suffix, labels, value in family.samples:
            lines.append(
                f"{family.name}{suffix}{_labels_text(labels)} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


class PrometheusParseError(ValueError):
    """A line the text-format grammar rejects."""


def _parse_labels(text: str) -> dict:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip()
        if not name or text[eq + 1] != '"':
            raise PrometheusParseError(f"malformed label at {text[i:]!r}")
        j = eq + 2
        value: list[str] = []
        while True:
            if j >= len(text):
                raise PrometheusParseError(f"unterminated label value in {text!r}")
            ch = text[j]
            if ch == "\\":
                escaped = text[j + 1]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escaped, escaped)
                )
                j += 2
                continue
            if ch == '"':
                break
            value.append(ch)
            j += 1
        labels[name] = "".join(value)
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{metric_name: {"type", "help",
    "samples": [(labels, value)]}}``.

    Samples are keyed by their *family* name (``_bucket``/``_sum``/
    ``_count`` suffixes fold into the histogram family when its TYPE
    line declared one).  Raises :class:`PrometheusParseError` on any
    line the grammar rejects — ``repro top`` and the CI validator both
    run on this parser, so a malformed exposition fails loudly.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                family = families.setdefault(
                    name, {"type": "untyped", "help": "", "samples": []}
                )
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        raise PrometheusParseError(
                            f"line {lineno}: unknown TYPE {kind!r}"
                        )
                    family["type"] = kind
                    types[name] = kind
                else:
                    family["help"] = parts[3] if len(parts) > 3 else ""
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise PrometheusParseError(f"line {lineno}: unbalanced braces")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1:close])
            rest = line[close + 1:].strip()
        else:
            fields = line.split()
            if len(fields) < 2:
                raise PrometheusParseError(f"line {lineno}: no sample value")
            name, rest = fields[0], " ".join(fields[1:])
            labels = {}
        value_text = rest.split()[0] if rest.split() else ""
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise PrometheusParseError(
                f"line {lineno}: sample value {value_text!r} is not a number"
            ) from None
        family_name = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family_name = base
                labels = {**labels, "__suffix__": suffix}
                break
        family = families.setdefault(
            family_name, {"type": types.get(family_name, "untyped"),
                          "help": "", "samples": []}
        )
        family["samples"].append((labels, value))
    return families


def sample_value(
    families: dict, name: str, labels: dict | None = None, default: float = 0.0
) -> float:
    """First sample of ``name`` whose labels include ``labels``."""
    family = families.get(name)
    if not family:
        return default
    want = labels or {}
    for sample_labels, value in family["samples"]:
        if all(sample_labels.get(k) == v for k, v in want.items()):
            return value
    return default
