"""Trace analysis: turn a JSONL metrics sink back into knowledge.

PR 3 made the engine *narrate* — spans, one JSON line per event — and
this module is the consumer: it reconstructs the run's full span tree
from the sink, walks it, and answers the questions a parallel faulted
run raises:

* **Tree reconstruction** — ``span`` events carry a deterministic
  per-process ``(span_pid, id)`` identity and a ``parent_id``, so
  sibling spans with repeated names (per-chunk, per-month) rebuild
  unambiguously.  Worker subtrees are rooted at their ``run_chunk``
  span (each worker's stack starts fresh); the analyzer grafts them
  onto the parent's root, which is how one rooted tree covers the
  whole fleet.  A span whose recorded parent is missing is *adopted*
  by the root and counted in ``orphans`` — zero for any run the
  engine completed, because only successful chunks ship spans.
* **Critical path** — the chain of spans that actually bounded the
  run's wall time: from the root, repeatedly descend into the child
  that finished last.
* **Utilization** — a per-worker occupancy ledger: busy seconds (chunk
  spans), retry seconds (chunk attempts > 0), idle share of the run
  window, and the straggler that finished last.
* **Fault attribution** — retries, timeouts, failures, inline
  fallbacks, and injected faults rolled up per month-shard and per
  chunk, joined from the event stream's chunk→months mapping.
* **Chrome-trace export** — the whole tree as ``chrome://tracing`` /
  Perfetto JSON (``X`` duration events per span, one lane per process,
  instant markers for retries/timeouts/faults).

Everything here is a pure function of the sink file — no simulation
imports, no engine state — so post-mortems work on any machine the
JSONL lands on.  CLI: ``python -m repro trace <metrics.jsonl>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Span names that represent one unit of scheduled chunk work.
CHUNK_SPANS = ("run_chunk", "run_chunk_inline")

#: Events that carry both ``chunk`` and ``months`` — the join table for
#: per-month fault attribution.
_CHUNK_MONTH_EVENTS = (
    "chunk_done",
    "chunk_failed",
    "chunk_timeout",
    "chunk_invalid",
    "inline_fallback",
)


class TraceError(ValueError):
    """A sink file the analyzer cannot work with (empty, malformed)."""


# ---- loading ----------------------------------------------------------------


def load_events(path: str | Path) -> list[dict]:
    """Parse a JSONL sink; raises :class:`TraceError` with the line
    number on malformed input (a half-written final line from a killed
    run is tolerated and skipped)."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"metrics sink {path} does not exist")
    events: list[dict] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                continue  # torn final write from a killed process
            raise TraceError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        if isinstance(record, dict) and "event" in record:
            events.append(record)
    if not events:
        raise TraceError(f"metrics sink {path} contains no events")
    return events


def available_traces(events: list[dict]) -> list[str]:
    """Trace IDs in first-seen order."""
    seen: dict[str, None] = {}
    for event in events:
        tid = event.get("trace_id")
        if tid and tid not in seen:
            seen[tid] = None
    return list(seen)


def select_trace(events: list[dict], trace_id: str | None = None) -> str:
    """The trace to analyze: explicit ID, else the last started run."""
    if trace_id is not None:
        if trace_id not in available_traces(events):
            raise TraceError(f"trace {trace_id!r} not present in sink")
        return trace_id
    for event in reversed(events):
        if event.get("event") == "run_start" and event.get("trace_id"):
            return event["trace_id"]
    traces = available_traces(events)
    if not traces:
        raise TraceError("no trace IDs in sink")
    return traces[-1]


# ---- the span tree ----------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span, with its children resolved."""

    pid: int
    id: int
    name: str
    start: float
    duration: float
    depth: int
    origin: str = "parent"
    attrs: dict = field(default_factory=dict)
    parent_key: tuple[int, int] | None = None
    children: list["SpanNode"] = field(default_factory=list)
    #: True when the recorded parent was missing and the root adopted
    #: this span (counts toward ``TraceAnalysis.orphans``).
    adopted: bool = False

    @property
    def key(self) -> tuple[int, int]:
        return (self.pid, self.id)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceAnalysis:
    """One trace's reconstructed tree plus its raw event stream."""

    trace_id: str
    events: list[dict]
    root: SpanNode | None
    spans: dict[tuple[int, int], SpanNode]
    orphans: int
    run_pid: int | None

    def span_count(self) -> int:
        return len(self.spans)


def _span_node(event: dict) -> SpanNode:
    parent_id = event.get("parent_id")
    pid = int(event.get("span_pid", event.get("pid", 0)))
    return SpanNode(
        pid=pid,
        id=int(event["id"]),
        name=str(event.get("name", "?")),
        start=float(event.get("start", event.get("ts", 0.0))),
        duration=float(event.get("duration", 0.0)),
        depth=int(event.get("depth", 0)),
        origin=str(event.get("origin", "parent")),
        attrs=event.get("attrs") or {},
        parent_key=(pid, int(parent_id)) if parent_id is not None else None,
    )


def analyze(events: list[dict], trace_id: str | None = None) -> TraceAnalysis:
    """Reconstruct one trace's rooted span tree from the event stream."""
    tid = select_trace(events, trace_id)
    trace_events = [e for e in events if e.get("trace_id") == tid]
    run_pid = None
    for event in trace_events:
        if event.get("event") == "run_start":
            run_pid = event.get("pid")
            break

    spans = {
        node.key: node
        for node in (
            _span_node(e) for e in trace_events if e.get("event") == "span"
        )
    }

    # Root: the *effectively* parentless span in the run's own process
    # that covers the most wall time.  "Effectively" because the run
    # root's own ancestors (e.g. the CLI's ``passive_store`` span) are
    # still open when ``end_run`` persists the trace, so they never
    # reach the sink: the root legitimately records a parent_id that no
    # sink event carries.
    parentless = [
        n for n in spans.values()
        if n.parent_key is None or n.parent_key not in spans
    ]
    candidates = [n for n in parentless if run_pid is None or n.pid == run_pid]
    root = max(candidates or parentless, key=lambda n: n.duration, default=None)
    if root is not None:
        root.parent_key = None

    orphans = 0
    for node in spans.values():
        if node is root:
            continue
        if node.parent_key is None:
            # A worker subtree root (its process's stack started fresh):
            # grafting it onto the run root is the expected join.
            if root is not None:
                root.children.append(node)
            continue
        parent = spans.get(node.parent_key)
        if parent is not None:
            parent.children.append(node)
        elif root is not None:
            node.adopted = True
            orphans += 1
            root.children.append(node)
        else:
            orphans += 1
    for node in spans.values():
        node.children.sort(key=lambda n: (n.start, n.id))

    return TraceAnalysis(
        trace_id=tid,
        events=trace_events,
        root=root,
        spans=spans,
        orphans=orphans,
        run_pid=run_pid,
    )


# ---- critical path ----------------------------------------------------------


def critical_path(analysis: TraceAnalysis) -> list[SpanNode]:
    """The chain of spans that bounded the run's wall time.

    From the root, descend into the child that *finished last* — in a
    parallel run that is the straggling chunk, then its straggling
    month, which is exactly the work one would need to speed up to
    shorten the run.
    """
    if analysis.root is None:
        return []
    path = [analysis.root]
    node = analysis.root
    while node.children:
        node = max(node.children, key=lambda n: (n.end, n.duration))
        path.append(node)
    return path


# ---- worker utilization -----------------------------------------------------


def utilization(analysis: TraceAnalysis) -> dict:
    """Per-worker occupancy over the run window.

    ``busy`` sums chunk spans, ``retry`` the subset with attempt > 0,
    ``idle`` is the remainder of the run window (a worker only exists
    while its pool round runs, so idle time includes waiting for the
    round to be scheduled — which is what occupancy means to the
    scheduler).  The straggler is the worker whose last chunk finished
    latest.
    """
    root = analysis.root
    if root is not None and root.duration > 0:
        window_start, window = root.start, root.duration
    elif analysis.events:
        times = [e["ts"] for e in analysis.events if "ts" in e]
        window_start = min(times)
        window = max(times) - window_start
    else:
        window_start, window = 0.0, 0.0

    rows: dict[tuple[int, str], dict] = {}
    for node in analysis.spans.values():
        if node.name not in CHUNK_SPANS:
            continue
        kind = "inline" if node.name == "run_chunk_inline" else "worker"
        row = rows.setdefault(
            (node.pid, kind),
            {
                "pid": node.pid,
                "kind": kind,
                "chunks": 0,
                "busy_seconds": 0.0,
                "retry_seconds": 0.0,
                "last_end_offset": 0.0,
            },
        )
        row["chunks"] += 1
        row["busy_seconds"] += node.duration
        if int(node.attrs.get("attempt", 0) or 0) > 0:
            row["retry_seconds"] += node.duration
        row["last_end_offset"] = max(
            row["last_end_offset"], node.end - window_start
        )

    workers = sorted(rows.values(), key=lambda r: (r["kind"], r["pid"]))
    for row in workers:
        row["idle_seconds"] = max(0.0, window - row["busy_seconds"])
        row["utilization"] = row["busy_seconds"] / window if window > 0 else 0.0

    pool = [r for r in workers if r["kind"] == "worker"]
    straggler = max(pool, key=lambda r: r["last_end_offset"], default=None)
    busy_total = sum(r["busy_seconds"] for r in workers)
    return {
        "window_seconds": window,
        "workers": workers,
        "straggler_pid": straggler["pid"] if straggler else None,
        "effective_parallelism": busy_total / window if window > 0 else 0.0,
    }


# ---- fault / retry attribution ----------------------------------------------


def _chunk_months(events: list[dict]) -> dict[int, list[str]]:
    """chunk id -> month ISO list, joined from every event that names both."""
    mapping: dict[int, list[str]] = {}
    for event in events:
        if event.get("event") in _CHUNK_MONTH_EVENTS and "months" in event:
            months = event["months"]
            # Inline-fallback work records chunk=None (the parent ran
            # it outside the pool's chunk numbering) — skip the join.
            if isinstance(months, list) and event.get("chunk") is not None:
                mapping.setdefault(int(event["chunk"]), months)
    return mapping


def _fault_token_site(token: str) -> tuple[int | None, str | None]:
    """Parse a fault token (``c3.a1`` / ``c3.a1.m2014-06-01``)."""
    chunk = None
    month = None
    for part in str(token).split("."):
        if part.startswith("c") and part[1:].isdigit():
            chunk = int(part[1:])
        elif part.startswith("m") and len(part) > 1:
            month = part[1:]
    return chunk, month


def fault_attribution(analysis: TraceAnalysis) -> dict:
    """Retries/timeouts/failures/faults rolled up per month and chunk."""
    months: dict[str, dict] = {}
    chunks: dict[int, dict] = {}
    mapping = _chunk_months(analysis.events)

    def month_row(iso: str) -> dict:
        return months.setdefault(
            iso,
            {"retries": 0, "timeouts": 0, "failures": 0, "invalid": 0,
             "inline": 0, "faults": 0},
        )

    def chunk_row(cid: int) -> dict:
        return chunks.setdefault(
            cid,
            {"retries": 0, "timeouts": 0, "failures": 0, "invalid": 0,
             "inline": 0, "faults": 0, "months": mapping.get(cid, [])},
        )

    counter_for = {
        "chunk_retry": "retries",
        "chunk_timeout": "timeouts",
        "chunk_failed": "failures",
        "chunk_invalid": "invalid",
        "inline_fallback": "inline",
    }
    for event in analysis.events:
        name = event.get("event")
        if name in counter_for and event.get("chunk") is not None:
            cid = int(event["chunk"])
            key = counter_for[name]
            chunk_row(cid)[key] += 1
            for iso in event.get("months", mapping.get(cid, [])):
                month_row(iso)[key] += 1
        elif name == "fault":
            cid, month = _fault_token_site(event.get("token", ""))
            if cid is not None:
                chunk_row(cid)["faults"] += 1
            if month is not None:
                month_row(month)["faults"] += 1
            elif cid is not None:
                for iso in mapping.get(cid, []):
                    month_row(iso)["faults"] += 1
    return {"months": months, "chunks": chunks}


# ---- summary ----------------------------------------------------------------


def summarize(analysis: TraceAnalysis) -> dict:
    """A one-screen digest of the trace."""
    from collections import Counter

    counts = Counter(e.get("event") for e in analysis.events)
    complete = next(
        (e for e in reversed(analysis.events) if e.get("event") == "run_complete"),
        None,
    )
    util = utilization(analysis)
    return {
        "trace_id": analysis.trace_id,
        "events": dict(sorted(counts.items())),
        "spans": analysis.span_count(),
        "orphans": analysis.orphans,
        "root": analysis.root.name if analysis.root else None,
        "wall_seconds": analysis.root.duration if analysis.root else None,
        "workers": len([r for r in util["workers"] if r["kind"] == "worker"]),
        "effective_parallelism": util["effective_parallelism"],
        "records": complete.get("records") if complete else None,
        "retries": counts.get("chunk_retry", 0),
        "timeouts": counts.get("chunk_timeout", 0),
        "inline_fallbacks": counts.get("inline_fallback", 0),
        "faults": counts.get("fault", 0),
    }


# ---- Chrome-trace export ----------------------------------------------------


def chrome_trace(analysis: TraceAnalysis) -> dict:
    """The trace as Chrome/Perfetto ``traceEvents`` JSON.

    One lane (pid/tid) per process, ``X`` complete events for spans
    (microsecond offsets from the run start so Perfetto's timeline
    starts at zero), ``M`` metadata naming each process, and ``i``
    instant markers for retries, timeouts, and injected faults.
    """
    t0 = analysis.root.start if analysis.root else min(
        (e["ts"] for e in analysis.events if "ts" in e), default=0.0
    )

    def us(seconds: float) -> int:
        return max(0, int(round((seconds) * 1_000_000)))

    trace_events: list[dict] = []
    pids = sorted({node.pid for node in analysis.spans.values()})
    for pid in pids:
        label = "parent" if pid == analysis.run_pid else f"worker-{pid}"
        trace_events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": pid,
             "args": {"name": label}}
        )
    for node in sorted(analysis.spans.values(), key=lambda n: (n.start, n.depth)):
        trace_events.append(
            {
                "ph": "X",
                "cat": "span",
                "name": node.name,
                "pid": node.pid,
                "tid": node.pid,
                "ts": us(node.start - t0),
                "dur": us(node.duration),
                "args": dict(node.attrs, span_id=node.id, origin=node.origin),
            }
        )
    marker_names = {"chunk_retry", "chunk_timeout", "chunk_failed", "fault"}
    for event in analysis.events:
        if event.get("event") in marker_names and "ts" in event:
            args = {
                k: v for k, v in event.items()
                if k not in ("ts", "event", "trace_id", "pid")
            }
            trace_events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "cat": "engine",
                    "name": event["event"],
                    "pid": int(event.get("pid", 0)),
                    "tid": int(event.get("pid", 0)),
                    "ts": us(float(event["ts"]) - t0),
                    "args": args,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": analysis.trace_id, "tool": "repro trace"},
    }


def write_chrome_trace(analysis: TraceAnalysis, out: str | Path) -> Path:
    out = Path(out)
    out.write_text(json.dumps(chrome_trace(analysis)), encoding="utf-8")
    return out


# ---- text rendering (the CLI's output) --------------------------------------


def render_summary(analysis: TraceAnalysis) -> str:
    s = summarize(analysis)
    lines = ["TRACE SUMMARY", "-------------"]
    lines.append(f"trace id            : {s['trace_id']}")
    lines.append(f"root span           : {s['root']}")
    if s["wall_seconds"] is not None:
        lines.append(f"wall seconds        : {s['wall_seconds']:.3f}")
    lines.append(f"spans               : {s['spans']} (orphans adopted: {s['orphans']})")
    lines.append(f"pool workers        : {s['workers']}")
    lines.append(f"effective parallel  : {s['effective_parallelism']:.2f}x")
    if s["records"] is not None:
        lines.append(f"records             : {s['records']}")
    lines.append(
        "recovery            : "
        f"{s['retries']} retries, {s['timeouts']} timeouts, "
        f"{s['inline_fallbacks']} inline fallbacks, {s['faults']} faults"
    )
    lines.append("events              : " + ", ".join(
        f"{name}={count}" for name, count in s["events"].items()
    ))
    return "\n".join(lines)


def render_critical_path(analysis: TraceAnalysis) -> str:
    path = critical_path(analysis)
    lines = ["CRITICAL PATH", "-------------"]
    if not path:
        lines.append("(no spans)")
        return "\n".join(lines)
    t0 = path[0].start
    for i, node in enumerate(path):
        attrs = ""
        if node.attrs:
            attrs = " " + ", ".join(f"{k}={v}" for k, v in node.attrs.items())
        lines.append(
            f"{'  ' * i}{node.name:<20} pid={node.pid:<8} "
            f"+{node.start - t0:7.3f}s  {node.duration:8.3f}s{attrs}"
        )
    return "\n".join(lines)


def render_utilization(analysis: TraceAnalysis) -> str:
    util = utilization(analysis)
    lines = ["WORKER UTILIZATION", "------------------"]
    lines.append(f"run window          : {util['window_seconds']:.3f}s")
    lines.append(f"effective parallel  : {util['effective_parallelism']:.2f}x")
    for row in util["workers"]:
        flag = ""
        if row["pid"] == util["straggler_pid"] and row["kind"] == "worker":
            flag = "  <- straggler"
        lines.append(
            f"{row['kind']:<7} pid={row['pid']:<8} chunks={row['chunks']:<3} "
            f"busy={row['busy_seconds']:7.3f}s retry={row['retry_seconds']:6.3f}s "
            f"idle={row['idle_seconds']:7.3f}s util={row['utilization'] * 100:5.1f}%{flag}"
        )
    if not util["workers"]:
        lines.append("(serial run: no chunk spans)")
    return "\n".join(lines)


def render_faults(analysis: TraceAnalysis) -> str:
    attribution = fault_attribution(analysis)
    lines = ["FAULT / RETRY ATTRIBUTION", "-------------------------"]
    if not attribution["months"] and not attribution["chunks"]:
        lines.append("(clean run: nothing to attribute)")
        return "\n".join(lines)
    for iso in sorted(attribution["months"]):
        row = attribution["months"][iso]
        parts = ", ".join(f"{k}={v}" for k, v in row.items() if v)
        lines.append(f"month {iso}: {parts or 'clean'}")
    for cid in sorted(attribution["chunks"]):
        row = attribution["chunks"][cid]
        parts = ", ".join(
            f"{k}={v}" for k, v in row.items() if k != "months" and v
        )
        lines.append(f"chunk {cid}: {parts or 'clean'}")
    return "\n".join(lines)
