"""The ``repro.*`` diagnostic logging channel.

Every module that used to swallow a failure silently now reports it
through a named stdlib logger under the ``repro`` hierarchy
(``repro.engine.runner``, ``repro.engine.cache``, …), so a degraded run
is attributable: which chunk failed, which blob was culled, which lock
was broken stale.

Library code only ever calls :func:`get_logger` — no handlers, no
levels — which keeps imports side-effect free and lets the embedding
application (or pytest's ``caplog``) own the configuration.  The CLI
calls :func:`configure_logging` once at startup: it attaches a single
stderr handler to the ``repro`` root logger and resolves the level from
``--verbose`` / ``REPRO_LOG_LEVEL`` / a ``WARNING`` default.  Handlers
write to stderr, never stdout, so piped figure/table output stays
machine-clean.
"""

from __future__ import annotations

import logging
import os

#: Root of the diagnostic logger hierarchy.
ROOT_LOGGER = "repro"

#: Level used when neither the caller nor the environment says otherwise.
DEFAULT_LEVEL = logging.WARNING


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (prefix added if missing)."""
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def resolve_level(explicit: int | str | None = None) -> int:
    """Level precedence: explicit > ``REPRO_LOG_LEVEL`` > WARNING.

    Accepts standard level names (``DEBUG``) or numbers (``10``);
    malformed values fall through — a bad env var must degrade to the
    default, never kill a run.
    """
    for candidate in (explicit, os.environ.get("REPRO_LOG_LEVEL")):
        if candidate is None:
            continue
        if isinstance(candidate, int):
            return candidate
        text = str(candidate).strip()
        if not text:
            continue
        if text.lstrip("-").isdigit():
            return int(text)
        value = logging.getLevelName(text.upper())
        if isinstance(value, int):
            return value
    return DEFAULT_LEVEL


def configure_logging(
    level: int | str | None = None, stream=None
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root logger.

    Idempotent: repeat calls re-resolve the level but never stack a
    second handler (chained in-process CLI commands would otherwise
    print every message once per invocation).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(resolve_level(level))
    if not any(getattr(h, "_repro_diag", False) for h in logger.handlers):
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        handler._repro_diag = True
        logger.addHandler(handler)
    return logger
