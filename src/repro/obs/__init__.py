"""``repro.obs`` — structured tracing, JSONL metrics, diagnostic logging.

The engine runs parallel, fault-injected, checkpointed simulations;
this package is how those runs stay auditable.  Three channels, all
observation-only (an instrumented run is byte-identical to a bare one):

* **Spans** (:mod:`repro.obs.trace`) — nested timing records
  (``with obs.span("simulate_month", month=...)``) collected per
  process and shipped back from workers next to their perf counters;
  every span carries the run's trace ID.
* **Metrics** (:mod:`repro.obs.metrics`) — one JSON line per engine
  event (run/chunk/retry/timeout/fault/cache) appended to
  ``REPRO_METRICS_PATH``; disabled when the variable is unset.
* **Diagnostics** (:mod:`repro.obs.diag`) — ``repro.*`` stdlib loggers
  replacing the old silent failure paths; the CLI wires a stderr
  handler via ``--verbose`` / ``REPRO_LOG_LEVEL``.

Two consumers sit on top of the channels:

* **Analysis** (:mod:`repro.obs.analyze`) — reconstructs the rooted
  span tree from a JSONL sink, computes the critical path, per-worker
  utilization, and fault attribution, and exports Chrome-trace JSON
  (``python -m repro trace``).
* **Profiling** (:mod:`repro.obs.profile`) — opt-in cProfile /
  tracemalloc hooks around engine phases (``--profile`` /
  ``REPRO_PROFILE``), surfaced in ``stats --json`` and the bench
  trajectory.
* **Live telemetry** (:mod:`repro.obs.live`) — continuous telemetry
  for long-running processes: mergeable fixed-bucket log-scale latency
  histograms with per-bucket trace exemplars, sliding time-window
  aggregation, and Prometheus text exposition (``GET /metrics`` on the
  resident server, ``repro top`` on the client side).

This package imports nothing from the rest of :mod:`repro` (it sits at
the bottom of the import graph beside :mod:`repro.engine.perf`), so any
layer — faults, partition codec, cache, runner, simulation, CLI — can
instrument itself without creating a cycle.
"""

from __future__ import annotations

from repro.obs import live
from repro.obs import metrics as _metrics
from repro.obs import profile
from repro.obs.diag import configure_logging, get_logger, resolve_level
from repro.obs.metrics import emit as emit_event
from repro.obs.metrics import enabled as metrics_enabled
from repro.obs.metrics import metrics_path, rotate_existing
from repro.obs.profile import profiled
from repro.obs.trace import MAX_SPANS, TRACE, SpanCollector

__all__ = [
    "configure_logging",
    "get_logger",
    "resolve_level",
    "emit_event",
    "metrics_enabled",
    "metrics_path",
    "rotate_existing",
    "TRACE",
    "SpanCollector",
    "MAX_SPANS",
    "span",
    "reset_spans",
    "snapshot_spans",
    "merge_worker_spans",
    "trace_id",
    "new_trace",
    "adopt_trace",
    "begin_run",
    "end_run",
    "profile",
    "profiled",
    "live",
]


# ---- span facade (delegates to the process-global collector) ----------------


def span(name: str, **attrs):
    """Context manager: time a block on the process-global collector."""
    return TRACE.span(name, **attrs)


def reset_spans() -> None:
    TRACE.reset_spans()


def snapshot_spans() -> list[dict]:
    return TRACE.snapshot()


def merge_worker_spans(spans: list[dict], origin: str = "worker") -> None:
    TRACE.merge_worker(spans, origin=origin)


def trace_id() -> str:
    return TRACE.ensure_trace()


def new_trace() -> str:
    return TRACE.new_trace()


def adopt_trace(value: str) -> None:
    TRACE.adopt_trace(value)


# ---- run lifecycle ----------------------------------------------------------


def begin_run(name: str, **fields) -> str:
    """Open a run: fresh trace ID + a ``run_start`` metrics event.

    Returns the trace ID so callers can hand it to worker processes.
    """
    tid = TRACE.new_trace()
    _metrics.emit("run_start", run=name, **fields)
    return tid


def _emit_trace_spans(tid: str) -> None:
    """Persist the current trace's spans as ``span`` events.

    Called once per run, at the end, from the parent: by then the
    collector holds the parent's own spans *and* every snapshot merged
    back from successful workers, so the sink receives only complete
    subtrees (a crashed worker's half-finished spans never shipped).
    The span's own process is ``span_pid``; the envelope ``pid`` is the
    parent doing the emitting.
    """
    if not _metrics.enabled():
        return
    for span in TRACE.spans:
        if span.get("trace_id") != tid:
            continue  # a previous run's spans, already emitted
        _metrics.emit(
            "span",
            id=span["id"],
            parent_id=span["parent_id"],
            name=span["name"],
            start=span["ts"],
            duration=span["duration"],
            depth=span["depth"],
            span_pid=span["pid"],
            origin=span.get("origin", "parent"),
            attrs=span.get("attrs"),
        )
    if TRACE.dropped:
        _metrics.emit("spans_dropped", count=TRACE.dropped)


def end_run(name: str, **fields) -> None:
    """Close a run: persist its span tree, then a ``run_complete``."""
    _emit_trace_spans(TRACE.ensure_trace())
    _metrics.emit("run_complete", run=name, **fields)
