"""Machine-readable metrics: a JSONL event sink behind ``REPRO_METRICS_PATH``.

When the environment variable is set, every notable engine event —
run start/complete, chunk retry/timeout/failure, inline fallback,
checkpoint spill/adoption, cache hit/miss/eviction/corruption, injected
fault — is appended to the file as one JSON object per line::

    {"ts": 1754400000.123, "event": "chunk_retry", "trace_id": "9f2c...",
     "chunk": 3, "attempt": 1}

Field contract (stable; ``tests/test_obs.py`` pins it):

* ``ts`` — epoch seconds (float) at emission.
* ``event`` — the event name.
* ``trace_id`` — the current run's trace ID (shared with spans).
* ``pid`` — the emitting process (parent vs. pool workers; per-process
  ``ts`` monotonicity is what the CI gate checks, since lines from
  different processes may interleave out of order).
* everything else — event-specific context, JSON scalars only
  (non-scalar values are stringified).

The sink is **append-only and fork-safe**: each event opens the file in
append mode and writes one line, so worker processes (which inherit the
environment) interleave whole lines rather than corrupting each other.
Rotation is explicit: :func:`rotate_existing` moves a pre-existing file
aside (``<path>.1``, ``<path>.2``, …) and is called once per process by
the CLI entry point, so each invocation's history starts clean while
library callers simply append.

Emission failures are logged and swallowed — metrics must never take a
computed result down with them.  Unset ``REPRO_METRICS_PATH`` means
every call here is a cheap no-op.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.obs.trace import TRACE

_log = logging.getLogger("repro.obs.metrics")

#: Serializes timestamp capture + append within one process.  Handler
#: threads of the resident server emit concurrently; without the lock a
#: thread could capture an earlier ``ts`` yet write its line *after* a
#: later one, breaking the per-pid ts monotonicity the JSONL validator
#: checks.  (Across processes, fork-atomic appends already suffice.)
_EMIT_LOCK = threading.Lock()

#: Process-global guard: rotate at most once per process, so chained
#: CLI commands in one interpreter share a single sink file.
_ROTATED = False


def metrics_path() -> Path | None:
    """The configured sink path, or None when the sink is disabled."""
    env = os.environ.get("REPRO_METRICS_PATH", "").strip()
    return Path(env) if env else None


def enabled() -> bool:
    return metrics_path() is not None


def rotate_existing() -> Path | None:
    """Move an existing sink file aside; returns the rotated path.

    Picks the first free ``<path>.N`` suffix so earlier rotations are
    never clobbered.  Idempotent per process: only the first call can
    rotate, which keeps chained in-process runs appending to one file
    and keeps forked workers (which inherit the flag) from rotating the
    parent's sink mid-run.
    """
    global _ROTATED
    path = metrics_path()
    if path is None or _ROTATED:
        return None
    _ROTATED = True
    if not path.exists():
        return None
    n = 1
    while (rotated := path.with_name(f"{path.name}.{n}")).exists():
        n += 1
    try:
        os.replace(path, rotated)
    except OSError as exc:
        _log.warning("metrics sink rotation of %s failed: %s", path, exc)
        return None
    return rotated


def emit(event: str, **fields) -> None:
    """Append one event line to the sink (no-op when disabled)."""
    path = metrics_path()
    if path is None:
        return
    with _EMIT_LOCK:
        record: dict = {
            "ts": time.time(),
            "event": event,
            "trace_id": TRACE.ensure_trace(),
            "pid": os.getpid(),
        }
        record.update(fields)
        try:
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            line = json.dumps(record, default=str)
            with open(path, "a", encoding="utf-8") as sink:
                sink.write(line + "\n")
        except (OSError, TypeError, ValueError) as exc:
            _log.warning(
                "metrics event %r not written to %s: %s", event, path, exc
            )
