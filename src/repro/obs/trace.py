"""Process-local structured tracing: nested timing spans + trace IDs.

One :class:`SpanCollector` per process (:data:`TRACE`) records finished
spans in completion order.  A span is a plain dict — picklable, JSON-safe
— so worker processes can snapshot their collector and ship it back to
the parent alongside their perf counters, and ``stats --json`` can emit
the whole tree without conversion.

Every span carries the current **trace ID**: a random token minted once
per engine run (:meth:`SpanCollector.new_trace`) and handed to workers
through the pool initializer, so every span and every JSONL metrics
event of one run — across all its processes — shares one correlator.

Tracing is observation only: spans read the clock and append to a list.
They never touch an RNG, a store, or a record, which is what keeps an
instrumented run byte-identical to a bare one (regression-tested in
``tests/test_obs.py``).

Spans carry a deterministic identity: ``id`` is a per-process counter
(0, 1, 2, ... in span *entry* order) and ``parent_id`` is the enclosing
span's id, so sibling spans with the same name — per-chunk spans, one
``simulate_month`` per month — reconstruct into an unambiguous tree.
Because a counter restarts in every process, identity is only unique
per process; every span therefore also records its ``pid``, and the
analyzer (:mod:`repro.obs.analyze`) keys spans by ``(pid, id)``.
``name``/``depth``/``parent`` stay for backward compatibility.

Like :mod:`repro.engine.perf`, this module imports nothing from the
rest of :mod:`repro`, so any layer can use it without cycles.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager

#: Retained finished spans per process; a runaway loop degrades to a
#: drop counter instead of unbounded memory.
MAX_SPANS = 20_000


def _attr_value(value):
    """A JSON-safe scalar for a span attribute (dates become ISO text)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class SpanCollector:
    """Collects finished spans in completion order, tracking nesting."""

    def __init__(self) -> None:
        self.spans: list[dict] = []
        self.dropped: int = 0
        self._stack: list[tuple[str, int]] = []
        self._trace_id: str | None = None
        self._next_id: int = 0
        #: Guards id allocation + span append for :meth:`record_complete`
        #: callers on concurrent threads.  The nesting-stack path
        #: (:meth:`span`) stays lock-free — it is single-threaded by
        #: construction (one engine run per process).
        self._lock = threading.Lock()

    # ---- trace identity -----------------------------------------------------

    def new_trace(self) -> str:
        """Mint a fresh per-run trace ID and make it current."""
        self._trace_id = uuid.uuid4().hex[:16]
        return self._trace_id

    def adopt_trace(self, trace_id: str) -> None:
        """Join an existing trace (workers adopt the parent's ID)."""
        self._trace_id = trace_id

    def ensure_trace(self) -> str:
        """The current trace ID, minting one lazily if none is active."""
        if self._trace_id is None:
            return self.new_trace()
        return self._trace_id

    # ---- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Forget everything, trace identity included (fresh process)."""
        self.spans = []
        self.dropped = 0
        self._stack = []
        self._trace_id = None
        self._next_id = 0

    def reset_spans(self) -> None:
        """Drop recorded spans but keep the trace identity (a worker
        clears between chunks without leaving its run's trace).

        The id counter deliberately keeps counting: ``(pid, id)`` must
        stay unique across every chunk one worker process ever runs, or
        a rebuilt tree would alias spans from different chunks.
        """
        self.spans = []
        self.dropped = 0
        self._stack = []

    # ---- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a block; record it (with nesting depth) on exit.

        Spans close even when the block raises — the duration of a
        failed chunk is exactly what a post-mortem wants to see.
        """
        started_ts = time.time()
        started = time.perf_counter()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        self._stack.append((name, span_id))
        try:
            yield
        finally:
            self._stack.pop()
            record = {
                "name": name,
                "id": span_id,
                "parent_id": self._stack[-1][1] if self._stack else None,
                "pid": os.getpid(),
                "trace_id": self.ensure_trace(),
                "ts": started_ts,
                "duration": time.perf_counter() - started,
                "depth": len(self._stack),
                "parent": self._stack[-1][0] if self._stack else None,
            }
            if attrs:
                record["attrs"] = {k: _attr_value(v) for k, v in attrs.items()}
            with self._lock:
                if len(self.spans) >= MAX_SPANS:
                    self.dropped += 1
                else:
                    self.spans.append(record)

    def record_complete(
        self, name: str, started_ts: float, duration: float, **attrs
    ) -> int:
        """Record an already-finished span, thread-safely.

        The server's handler threads time their own requests and call
        this with the result; unlike :meth:`span` it never touches the
        nesting stack (concurrent requests are not nested in each
        other), so spans land flat at depth 0 with no parent.

        Returns the span's per-process id so callers can reference the
        span elsewhere — histogram exemplars store ``(trace_id,
        span_id)`` to link a latency bucket back to its span in the
        JSONL sink.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            record = {
                "name": name,
                "id": span_id,
                "parent_id": None,
                "pid": os.getpid(),
                "trace_id": self.ensure_trace(),
                "ts": started_ts,
                "duration": duration,
                "depth": 0,
                "parent": None,
            }
            if attrs:
                record["attrs"] = {
                    k: _attr_value(v) for k, v in attrs.items()
                }
            if len(self.spans) >= MAX_SPANS:
                self.dropped += 1
            else:
                self.spans.append(record)
            return span_id

    # ---- worker round-trip --------------------------------------------------

    def snapshot(self) -> list[dict]:
        """A picklable copy of the finished spans (workers ship these)."""
        return [dict(span) for span in self.spans]

    def merge_worker(self, spans: list[dict], origin: str = "worker") -> None:
        """Adopt spans shipped back by a worker, tagged with origin."""
        for span in spans:
            if len(self.spans) >= MAX_SPANS:
                self.dropped += 1
                continue
            adopted = dict(span)
            adopted["origin"] = origin
            self.spans.append(adopted)


#: The process-global collector.
TRACE = SpanCollector()
