"""Opt-in deep profiling hooks: cProfile hotspots / tracemalloc peaks.

Spans answer *where the wall time went between phases*; this module
answers *what a phase spent it on*.  It is off by default — profiling
is the one observability channel with a real runtime tax — and is
enabled per process by the CLI ``--profile cprofile|tracemalloc`` flag
or the ``REPRO_PROFILE`` environment variable.

Usage is one context manager around a phase::

    with profile.profiled("run_expectation"):
        ...

When disabled, ``profiled`` is a bare ``yield``.  When enabled, the
phase's top-N hotspots (cProfile, by cumulative time) or its memory
high-water mark plus top allocation sites (tracemalloc) are appended to
a process-local registry that ``snapshot()`` returns as a JSON-safe
document; ``stats --json`` folds it in under ``"profile"`` and
``repro bench`` folds it into its trajectory records.

Phases never nest: an inner ``profiled`` inside an active one is a
no-op, because neither cProfile nor tracemalloc tolerates reentrant
sessions (and a nested report would double-count anyway).

Profiling observes control flow, not simulation state — a profiled run
still produces a byte-identical dataset (regression-tested in
``tests/test_obs.py``).

Like the rest of :mod:`repro.obs`, this module imports nothing from the
wider :mod:`repro` tree.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

#: Supported modes, in the order the CLI advertises them.
MODES = ("cprofile", "tracemalloc")

#: Hotspots / allocation sites retained per phase.
TOP_N = 10


def resolve_mode(explicit: str | None = None) -> str | None:
    """Profiling mode: explicit arg > ``REPRO_PROFILE`` > disabled.

    Unknown values degrade to disabled — a typo in an env var must not
    kill a run (same contract as every other ``REPRO_*`` knob).
    """
    for candidate in (explicit, os.environ.get("REPRO_PROFILE", "")):
        candidate = (candidate or "").strip().lower()
        if candidate in MODES:
            return candidate
    return None


class _ProfileState:
    """Process-local registry of profiled phases."""

    def __init__(self) -> None:
        self.mode: str | None = None
        self.phases: list[dict] = []
        self.active: bool = False


PROFILE = _ProfileState()


def configure(mode: str | None = None) -> str | None:
    """Resolve and install the process profiling mode; returns it."""
    PROFILE.mode = resolve_mode(mode)
    PROFILE.phases = []
    return PROFILE.mode


def enabled() -> bool:
    return PROFILE.mode is not None


def reset() -> None:
    PROFILE.phases = []
    PROFILE.active = False


def snapshot() -> dict | None:
    """The JSON-safe profile document, or None when profiling is off."""
    if PROFILE.mode is None:
        return None
    return {"mode": PROFILE.mode, "phases": [dict(p) for p in PROFILE.phases]}


def _cprofile_phase(name: str, top: int):
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        hotspots = []
        for func in stats.fcn_list[:top]:  # (file, line, name), sorted
            cc, nc, tt, ct, _callers = stats.stats[func]
            filename, lineno, funcname = func
            hotspots.append(
                {
                    "func": f"{os.path.basename(filename)}:{lineno}({funcname})",
                    "calls": nc,
                    "tottime": round(tt, 6),
                    "cumtime": round(ct, 6),
                }
            )
        PROFILE.phases.append(
            {
                "name": name,
                "mode": "cprofile",
                "wall_seconds": time.perf_counter() - started,
                "top": hotspots,
            }
        )


def _tracemalloc_phase(name: str, top: int):
    import tracemalloc

    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    started = time.perf_counter()
    try:
        yield
    finally:
        current, peak = tracemalloc.get_traced_memory()
        snapshot_ = tracemalloc.take_snapshot()
        if not already_tracing:
            tracemalloc.stop()
        sites = []
        for stat in snapshot_.statistics("lineno")[:top]:
            frame = stat.traceback[0]
            sites.append(
                {
                    "site": f"{os.path.basename(frame.filename)}:{frame.lineno}",
                    "size_bytes": stat.size,
                    "count": stat.count,
                }
            )
        PROFILE.phases.append(
            {
                "name": name,
                "mode": "tracemalloc",
                "wall_seconds": time.perf_counter() - started,
                "peak_bytes": peak,
                "current_bytes": current,
                "top": sites,
            }
        )


@contextmanager
def profiled(name: str, top: int = TOP_N):
    """Profile a phase under the configured mode (no-op when disabled
    or when another phase is already being profiled in this process)."""
    if PROFILE.mode is None or PROFILE.active:
        yield
        return
    PROFILE.active = True
    try:
        if PROFILE.mode == "cprofile":
            yield from _cprofile_phase(name, top)
        else:
            yield from _tracemalloc_phase(name, top)
    finally:
        PROFILE.active = False
