"""Server configuration archetypes.

A dozen named configurations cover the behaviours the paper observes on
the supply side: RC4-enforcing post-BEAST servers (§5.2), CBC-preferring
TLS 1.2 deployments (the 54% of Censys-probed servers choosing CBC in
2015, §5.2), modern AEAD-first deployments, the RC4-preferring outliers
of §5.3 (bankmellat.ir), GRID and Nagios endpoints (§6.1, §6.2), the
Interwise and GOST protocol violators (§5.5, §7.3), and TLS 1.3 draft
deployments (§6.4).
"""

from __future__ import annotations

from repro.clients import suites as cs
from repro.servers.config import ServerProfile
from repro.tls.extensions import ExtensionType as ET
from repro.tls.handshake import SelectionAnomaly, SelectionPolicy
from repro.tls.versions import SSL3, TLS10, TLS11, TLS12, TLS13, tls13_draft, tls13_google_experiment

_SSL3 = SSL3.wire
_T10 = TLS10.wire
_T11 = TLS11.wire
_T12 = TLS12.wire

_ECHO_BASIC = (int(ET.RENEGOTIATION_INFO), int(ET.SESSION_TICKET))
_ECHO_MODERN = _ECHO_BASIC + (
    int(ET.EXTENDED_MASTER_SECRET),
    int(ET.STATUS_REQUEST),
    int(ET.EC_POINT_FORMATS),
    # OpenSSL-based servers acknowledge Encrypt-then-MAC when offered;
    # uptake stays tiny because almost no client offers it (§9).
    int(ET.ENCRYPT_THEN_MAC),
)

GROUPS_NIST = (23, 24)
GROUPS_X25519 = (29, 23, 24)

# RC4-enforcing legacy host: the post-BEAST "use RC4 with TLS <= 1.0"
# guidance (§2.2) baked into a config that was then never revisited.
LEGACY_SSL3_RC4 = ServerProfile(
    name="legacy-ssl3-rc4",
    supported_versions=frozenset({_SSL3, _T10}),
    suite_preference=(
        cs.RSA_RC4_128_SHA,
        cs.RSA_RC4_128_MD5,
        cs.RSA_3DES_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_DES_SHA,
        cs.EXP_RSA_RC4_40_MD5,
        cs.EXP_RSA_DES40_SHA,
    ),
    echo_extensions=_ECHO_BASIC,
)

# TLS 1.0 host preferring AES-CBC; still accepts SSL 3 for old clients.
TLS10_CBC = ServerProfile(
    name="tls10-cbc",
    supported_versions=frozenset({_SSL3, _T10, _T11}),
    suite_preference=(
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.DHE_RSA_AES128_SHA,
        cs.DHE_RSA_AES256_SHA,
        cs.RSA_3DES_SHA,
        cs.RSA_RC4_128_SHA,
        cs.RSA_RC4_128_MD5,
    ),
    echo_extensions=_ECHO_BASIC,
)

# TLS 1.2 host that kept RSA key transport + CBC at the top — the
# pre-Snowden default (§6.3.1: servers chose not to negotiate FS for a
# long time even when clients supported it).
TLS12_RSA_CBC = ServerProfile(
    name="tls12-rsa-cbc",
    supported_versions=frozenset({_SSL3, _T10, _T11, _T12}),
    suite_preference=(
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_AES128_SHA256,
        cs.RSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_SHA,
        cs.ECDHE_RSA_AES128_GCM,
        cs.RSA_3DES_SHA,
        cs.RSA_RC4_128_SHA,
    ),
    supported_groups=GROUPS_NIST,
    echo_extensions=_ECHO_BASIC,
)

# Apache-style host preferring finite-field DHE — the "DHE never found
# much use" population of §6.3.1, visible but minor in Figure 8.
TLS10_DHE_CBC = ServerProfile(
    name="tls10-dhe-cbc",
    supported_versions=frozenset({_SSL3, _T10, _T11, _T12}),
    suite_preference=(
        cs.DHE_RSA_AES128_SHA,
        cs.DHE_RSA_AES256_SHA,
        cs.DHE_RSA_AES128_GCM,
        cs.DHE_RSA_3DES_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_3DES_SHA,
        cs.RSA_RC4_128_SHA,
    ),
    echo_extensions=_ECHO_BASIC,
)

# Forward-secret but CBC-first TLS 1.2 host: picks ECDHE-CBC over GCM.
# Prefers secp384r1 (a common "high-security" configuration), the source
# of §6.3.3's 8.6% secp384r1 share.
TLS12_ECDHE_CBC = ServerProfile(
    name="tls12-ecdhe-cbc",
    supported_versions=frozenset({_T10, _T11, _T12}),
    suite_preference=(
        cs.ECDHE_RSA_AES128_SHA,
        cs.ECDHE_RSA_AES256_SHA,
        cs.ECDHE_RSA_AES128_SHA256,
        cs.ECDHE_RSA_AES128_GCM,
        cs.ECDHE_RSA_AES256_GCM,
        cs.RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_AES128_GCM,
        cs.RSA_3DES_SHA,
        # RC4 kept at the very bottom: never preferred, but an RC4-only
        # client still connects — the SSL Pulse "supports RC4" bucket.
        cs.RSA_RC4_128_SHA,
    ),
    supported_groups=(24, 23),
    echo_extensions=_ECHO_BASIC,
)

# Modern AEAD-first deployment (nginx/cloud front-end style).
TLS12_ECDHE_GCM = ServerProfile(
    name="tls12-ecdhe-gcm",
    supported_versions=frozenset({_T10, _T11, _T12}),
    suite_preference=(
        cs.ECDHE_ECDSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_GCM,
        cs.CHACHA_ECDHE_ECDSA,
        cs.CHACHA_ECDHE_RSA,
        cs.ECDHE_ECDSA_AES256_GCM,
        cs.ECDHE_RSA_AES256_GCM,
        cs.ECDHE_RSA_AES128_SHA,
        cs.ECDHE_RSA_AES256_SHA,
        cs.RSA_AES128_GCM,
        cs.RSA_AES128_SHA,
        cs.RSA_3DES_SHA,
    ),
    supported_groups=GROUPS_NIST,
    echo_extensions=_ECHO_MODERN,
)

# Same, preferring x25519 — the mid-2017 shift of §6.3.3.  These CDN
# front ends honor the client's cipher order within the AEAD tier
# (BoringSSL equal-preference groups), which is how ChaCha20 gets
# negotiated by AES-NI-less mobile clients (§6.3.2).
TLS12_ECDHE_GCM_X25519 = ServerProfile(
    name="tls12-ecdhe-gcm-x25519",
    supported_versions=frozenset({_T10, _T11, _T12}),
    suite_preference=TLS12_ECDHE_GCM.suite_preference,
    supported_groups=GROUPS_X25519,
    echo_extensions=_ECHO_MODERN,
    policy=SelectionPolicy(server_preference=False),
)

# TLS 1.3 draft deployment (Google-style front end plus draft servers).
TLS13_DRAFTS = ServerProfile(
    name="tls13-drafts",
    supported_versions=frozenset(
        {
            _T10,
            _T11,
            _T12,
            TLS13.wire,
            tls13_draft(18),
            tls13_draft(23),
            tls13_draft(28),
            tls13_google_experiment(2),
        }
    ),
    suite_preference=cs.TLS13_SUITES + TLS12_ECDHE_GCM.suite_preference,
    supported_groups=GROUPS_X25519,
    echo_extensions=_ECHO_MODERN,
)

# Misconfigured host that still picks RC4 despite stronger offers (§5.3).
TLS12_RC4_PREF = ServerProfile(
    name="tls12-rc4-pref",
    supported_versions=frozenset({_SSL3, _T10, _T11, _T12}),
    suite_preference=(
        cs.RSA_RC4_128_SHA,
        cs.RSA_RC4_128_MD5,
        cs.ECDHE_RSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_AES128_GCM,
        cs.RSA_3DES_SHA,
    ),
    supported_groups=GROUPS_NIST,
    echo_extensions=_ECHO_BASIC,
)

# Host that supports nothing but RC4 — SSL Pulse's "sites supporting
# only RC4" population (4,248 sites in Oct 2013, 1 in 2018; §5.3).
RC4_ONLY = ServerProfile(
    name="rc4-only",
    supported_versions=frozenset({_SSL3, _T10}),
    suite_preference=(cs.RSA_RC4_128_SHA, cs.RSA_RC4_128_MD5),
    echo_extensions=(),
)

# Host whose only 64-bit-block offer wins for 3DES-leading clients: a
# TLS 1.0 box with 3DES at the top (the Sweet32 population, §5.6).
TLS10_3DES_PREF = ServerProfile(
    name="tls10-3des-pref",
    supported_versions=frozenset({_SSL3, _T10}),
    suite_preference=(
        cs.RSA_3DES_SHA,
        cs.RSA_AES128_SHA,
        cs.RSA_RC4_128_SHA,
    ),
    echo_extensions=(),
)

# GRID storage endpoint: mutual auth only, NULL cipher preferred (§6.1).
GRID_SERVER = ServerProfile(
    name="grid-server",
    supported_versions=frozenset({_T10, _T11, _T12}),
    suite_preference=(
        cs.RSA_NULL_SHA,
        cs.RSA_NULL_MD5,
        cs.RSA_AES128_SHA,
        cs.RSA_3DES_SHA,
    ),
    echo_extensions=(),
)

# Nagios NRPE endpoint: anonymous DH, application-layer auth (§6.2);
# also accepts the export-ADH and NULL_NULL probes seen at one
# university (§5.5, §6.1).
NAGIOS_SERVER = ServerProfile(
    name="nagios-server",
    supported_versions=frozenset({_SSL3, _T10, _T11, _T12}),
    suite_preference=(
        cs.ADH_AES256_SHA,
        cs.ADH_AES128_SHA,
        cs.ADH_3DES_SHA,
        cs.ADH_DES_SHA,
        cs.EXP_ADH_DES40_SHA,
        cs.EXP_ADH_RC4_40_MD5,
        cs.NULL_NULL,
    ),
    echo_extensions=(),
)

# Interwise conferencing server: chooses an export RC4 suite the client
# never offered — the protocol violation of §5.5.
INTERWISE_SERVER = ServerProfile(
    name="interwise-server",
    supported_versions=frozenset({_SSL3, _T10}),
    suite_preference=(cs.EXP_RSA_RC4_40_MD5,),
    policy=SelectionPolicy(
        anomaly=SelectionAnomaly.CHOOSE_UNOFFERED,
        anomaly_suite=cs.EXP_RSA_RC4_40_MD5,
    ),
)

# Splunk indexer endpoint (port 9997): static ECDH — nearly the only
# source of non-ephemeral ECDH in the dataset (§6.3.1: "ECDH nearly
# exclusively at Splunk servers on port 9997").
SPLUNK_SERVER = ServerProfile(
    name="splunk-server",
    supported_versions=frozenset({_T10, _T11, _T12}),
    suite_preference=(
        cs.ECDH_RSA_AES256_SHA,
        cs.ECDH_RSA_AES128_SHA,
        cs.RSA_AES256_SHA,
        cs.RSA_AES128_SHA,
    ),
    supported_groups=GROUPS_NIST,
    echo_extensions=_ECHO_BASIC,
)

# Host answering with GOST suites regardless of the offer (§7.3).
GOST_SERVER = ServerProfile(
    name="gost-server",
    supported_versions=frozenset({_T10, _T11, _T12}),
    suite_preference=(cs.GOST_R341001,),
    policy=SelectionPolicy(
        anomaly=SelectionAnomaly.CHOOSE_GOST,
        anomaly_suite=cs.GOST_R341001,
    ),
)

ALL_ARCHETYPES: tuple[ServerProfile, ...] = (
    LEGACY_SSL3_RC4,
    TLS10_CBC,
    TLS10_DHE_CBC,
    TLS12_RSA_CBC,
    TLS12_ECDHE_CBC,
    TLS12_ECDHE_GCM,
    TLS12_ECDHE_GCM_X25519,
    TLS13_DRAFTS,
    TLS12_RC4_PREF,
    RC4_ONLY,
    TLS10_3DES_PREF,
    GRID_SERVER,
    NAGIOS_SERVER,
    INTERWISE_SERVER,
    SPLUNK_SERVER,
    GOST_SERVER,
)
