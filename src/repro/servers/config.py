"""Server profiles: the supply side of the TLS ecosystem.

A :class:`ServerProfile` bundles everything :func:`repro.tls.handshake.negotiate`
needs — supported versions, suite preference, groups, echoable
extensions, selection policy — plus scan-relevant attributes
(Heartbleed vulnerability).  Profiles are archetypes: the population
model weights them over time rather than enumerating 46M hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.tls.extensions import ExtensionType
from repro.tls.handshake import HandshakeResult, SelectionPolicy, negotiate
from repro.tls.messages import ClientHello


@dataclass(frozen=True)
class ServerProfile:
    """One server configuration archetype."""

    name: str
    supported_versions: frozenset[int]
    suite_preference: tuple[int, ...]
    supported_groups: tuple[int, ...] = ()
    echo_extensions: tuple[int, ...] = ()
    policy: SelectionPolicy = field(default_factory=SelectionPolicy)
    heartbeat: bool = False
    heartbleed_vulnerable: bool = False
    # Version intolerance: instead of negotiating down, the server
    # aborts any hello whose version exceeds this — the broken behaviour
    # that forced browsers into the downgrade dance (POODLE's enabler).
    intolerant_above: int | None = None

    def __post_init__(self) -> None:
        if not self.supported_versions:
            raise ValueError(f"server {self.name} supports no versions")

    @property
    def effective_echo_extensions(self) -> tuple[int, ...]:
        if self.heartbeat:
            return self.echo_extensions + (int(ExtensionType.HEARTBEAT),)
        return self.echo_extensions

    def respond(self, hello: ClientHello, strict: bool = False) -> HandshakeResult:
        """Negotiate against a Client Hello with this configuration."""
        if (
            self.intolerant_above is not None
            and hello.legacy_version > self.intolerant_above
        ):
            from repro.tls.messages import Alert, AlertDescription

            result = HandshakeResult(
                client_hello=hello,
                alert=Alert(AlertDescription.PROTOCOL_VERSION),
                reason="version-intolerant server",
            )
            if strict:
                from repro.tls.handshake import HandshakeFailure

                raise HandshakeFailure(result.alert, result.reason)
            return result
        return negotiate(
            hello,
            supported_versions=self.supported_versions,
            suite_preference=self.suite_preference,
            supported_groups=self.supported_groups,
            echo_extensions=self.effective_echo_extensions,
            policy=self.policy,
            strict=strict,
        )

    def supports_version(self, wire: int) -> bool:
        return wire in self.supported_versions

    def supports_suite(self, code: int) -> bool:
        return code in self.suite_preference

    def with_heartbeat(self, vulnerable: bool = False) -> "ServerProfile":
        """A copy of this profile with the Heartbeat extension enabled."""
        return replace(
            self,
            name=f"{self.name}+hb",
            heartbeat=True,
            heartbleed_vulnerable=vulnerable,
        )

    def without_version(self, wire: int) -> "ServerProfile":
        """A copy of this profile with one protocol version removed."""
        remaining = frozenset(v for v in self.supported_versions if v != wire)
        return replace(self, name=f"{self.name}-nov{wire:x}", supported_versions=remaining)

    def without_suites(self, predicate, tag: str) -> "ServerProfile":
        """A copy of this profile with matching suites removed."""
        remaining = tuple(
            code
            for code in self.suite_preference
            if not predicate(_suite(code))
        )
        return replace(self, name=f"{self.name}-no{tag}", suite_preference=remaining)


def _suite(code: int):
    from repro.tls.ciphers import REGISTRY

    suite = REGISTRY.get(code)
    if suite is None:
        raise KeyError(f"unregistered suite {code:#06x} in server preference")
    return suite
