"""The server population: archetype weights over time.

Two weightings cover the paper's two datasets:

* ``traffic`` — connection-weighted, what the passive Notary sees:
  popular services dominate, and they modernize fast (§3.1: the Notary
  "emphasizes connections to services that users commonly use").
* ``hosts`` — host-weighted, what a Censys IPv4 sweep sees: a far
  heavier legacy tail (§5.1: 45% of hosts still accepted SSL 3 in 2015).

On top of the base archetype weights, two orthogonal attribute splits
are applied per date: SSL 3 removal (POODLE-triggered patch curve) and
Heartbeat support / Heartbleed vulnerability (§5.4).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.clients.population import ShareCurve
from repro.servers import archetypes as arch
from repro.servers.config import ServerProfile
from repro.servers.curves import AdoptionCurve, PatchCurve
from repro.tls.versions import SSL3

_POODLE = _dt.date(2014, 10, 14)
_HEARTBLEED = _dt.date(2014, 4, 7)


def _curve(*points: tuple[str, float]) -> ShareCurve:
    return ShareCurve(tuple((_dt.date.fromisoformat(d), s) for d, s in points))


# Connection-weighted archetype shares (relative weights, normalized).
# Calibration targets (§5, Figures 1, 2, 8): RC4-choosing traffic peaks
# around 60% in mid-2013 (post-BEAST RC4 enforcement) and dies by 2016;
# CBC holds ~50-60% until Aug 2015, then drops to ~10% by 2018; ECDHE
# takes off after the Snowden revelations (June 2013).
_TRAFFIC_SHARES: dict[str, ShareCurve] = {
    arch.LEGACY_SSL3_RC4.name: _curve(
        ("2012-01-01", 20.0), ("2013-06-01", 18.0), ("2014-06-01", 11.0),
        ("2015-06-01", 4.5), ("2016-06-01", 1.2), ("2018-04-01", 0.2),
    ),
    arch.TLS10_CBC.name: _curve(
        ("2012-01-01", 22.0), ("2013-06-01", 14.0), ("2014-06-01", 8.0),
        ("2015-06-01", 4.0), ("2016-06-01", 1.5), ("2018-04-01", 0.4),
    ),
    arch.TLS10_DHE_CBC.name: _curve(
        ("2012-01-01", 9.0), ("2013-06-01", 7.0), ("2014-06-01", 4.5),
        ("2015-06-01", 2.5), ("2016-06-01", 1.2), ("2018-04-01", 0.3),
    ),
    arch.TLS12_RSA_CBC.name: _curve(
        ("2012-01-01", 9.0), ("2013-06-01", 11.0), ("2014-06-01", 13.0),
        ("2015-06-01", 11.0), ("2016-06-01", 6.0), ("2018-04-01", 1.5),
    ),
    arch.TLS12_ECDHE_CBC.name: _curve(
        ("2012-01-01", 6.0), ("2013-06-01", 8.0), ("2014-06-01", 12.0),
        ("2015-06-01", 15.0), ("2016-06-01", 12.0), ("2017-06-01", 7.0),
        ("2018-04-01", 4.0),
    ),
    arch.TLS12_ECDHE_GCM.name: _curve(
        ("2012-01-01", 3.0), ("2013-06-01", 7.0), ("2014-06-01", 26.0),
        ("2015-06-01", 48.0), ("2016-06-01", 68.0), ("2017-06-01", 62.0),
        ("2018-04-01", 55.0),
    ),
    arch.TLS12_ECDHE_GCM_X25519.name: _curve(
        ("2016-01-01", 0.0), ("2016-06-01", 4.0), ("2017-06-01", 16.0),
        ("2018-04-01", 28.0),
    ),
    arch.TLS13_DRAFTS.name: _curve(
        ("2016-06-01", 0.3), ("2017-06-01", 2.0), ("2018-04-01", 6.0),
    ),
    arch.TLS12_RC4_PREF.name: _curve(
        ("2012-01-01", 32.0), ("2013-08-01", 52.0), ("2014-06-01", 34.0),
        ("2015-06-01", 13.0), ("2016-06-01", 3.5), ("2018-04-01", 0.5),
    ),
    arch.TLS10_3DES_PREF.name: _curve(
        ("2012-01-01", 0.7), ("2014-06-01", 0.5), ("2018-04-01", 0.25),
    ),
    # RC4-only sites: 2.6% of SSL Pulse's popular sites in Oct 2013,
    # one site by 2018 (§5.3).
    arch.RC4_ONLY.name: _curve(
        ("2012-01-01", 2.4), ("2013-10-01", 2.0), ("2015-06-01", 0.4),
        ("2016-06-01", 0.05), ("2018-04-01", 0.002),
    ),
    # Custom stacks answering with GOST suites regardless of the offer
    # (§7.3); standard clients abort these handshakes.
    arch.GOST_SERVER.name: _curve(
        ("2012-01-01", 0.02), ("2018-04-01", 0.03),
    ),
}

# Host-weighted shares for Internet-wide scans: the legacy tail is much
# heavier and moves much more slowly.
_HOST_SHARES: dict[str, ShareCurve] = {
    arch.LEGACY_SSL3_RC4.name: _curve(
        ("2012-01-01", 22.0), ("2015-09-01", 9.0), ("2018-05-01", 3.0),
    ),
    arch.TLS10_CBC.name: _curve(
        ("2012-01-01", 32.0), ("2015-09-01", 20.0), ("2018-05-01", 12.0),
    ),
    arch.TLS10_DHE_CBC.name: _curve(
        ("2012-01-01", 8.0), ("2015-09-01", 5.0), ("2018-05-01", 2.5),
    ),
    arch.TLS12_RSA_CBC.name: _curve(
        ("2012-01-01", 14.0), ("2015-09-01", 20.0), ("2018-05-01", 14.0),
    ),
    arch.TLS12_ECDHE_CBC.name: _curve(
        ("2012-01-01", 6.0), ("2015-09-01", 12.0), ("2016-10-01", 12.0),
        ("2017-07-01", 9.5), ("2018-05-01", 9.0),
    ),
    arch.TLS12_ECDHE_GCM.name: _curve(
        ("2012-01-01", 4.0), ("2015-09-01", 28.0), ("2017-06-01", 42.0),
        ("2018-05-01", 50.0),
    ),
    arch.TLS12_ECDHE_GCM_X25519.name: _curve(
        ("2016-01-01", 0.0), ("2017-06-01", 4.0), ("2018-05-01", 8.0),
    ),
    arch.TLS13_DRAFTS.name: _curve(
        ("2016-06-01", 0.1), ("2018-05-01", 1.5),
    ),
    arch.TLS12_RC4_PREF.name: _curve(
        ("2012-01-01", 9.0), ("2015-09-01", 4.5), ("2018-05-01", 1.5),
    ),
    arch.TLS10_3DES_PREF.name: _curve(
        ("2012-01-01", 0.9), ("2015-09-01", 0.55), ("2018-05-01", 0.28),
    ),
    arch.RC4_ONLY.name: _curve(
        ("2012-01-01", 2.6), ("2015-09-01", 0.8), ("2018-05-01", 0.05),
    ),
}

_BY_NAME = {p.name: p for p in arch.ALL_ARCHETYPES}

# Dedicated endpoints niche clients route to (affinity, see
# repro.simulation.ecosystem).
DEDICATED = {
    "grid": arch.GRID_SERVER,
    "nagios": arch.NAGIOS_SERVER,
    "interwise": arch.INTERWISE_SERVER,
    "splunk": arch.SPLUNK_SERVER,
    "gost": arch.GOST_SERVER,
}

#: TCP ports of the dedicated endpoints (the paper identifies several
#: niche populations by port: Nagios 5666, Splunk 9997, GridFTP 2811).
DEDICATED_PORTS = {
    "grid": 2811,
    "nagios": 5666,
    "interwise": 443,
    "splunk": 9997,
    "gost": 443,
}


# Archetypes whose non-preferred RC4 tail gets configured away by the
# post-RFC-7465 wave; RC4-*preferring* archetypes are exactly the
# operators who never revisit their configuration (§5.3, §7.3).
_RC4_TAIL_REMOVABLE = frozenset(
    {
        arch.TLS10_CBC.name,
        arch.TLS10_DHE_CBC.name,
        arch.TLS12_RSA_CBC.name,
        arch.TLS12_ECDHE_CBC.name,
    }
)

_RFC_7465 = _dt.date(2015, 2, 1)


@dataclass(frozen=True)
class ServerAttributeCurves:
    """Population-wide attribute dynamics applied on top of the shares."""

    # POODLE-triggered SSL 3 removal among servers that had it enabled.
    # The high never_patched floor is the paper's §5.1 finding: server
    # SSL 3 support is "still embarrassingly high" in 2018.
    ssl3_removal: PatchCurve = PatchCurve(
        disclosed=_POODLE, half_life_days=420.0, never_patched=0.55
    )
    # Heartbeat extension deployment (OpenSSL 1.0.1 uptake): ~24% of
    # hosts at the Heartbleed disclosure, 34% by May 2018 (§5.4).
    heartbeat_support: AdoptionCurve = AdoptionCurve(
        midpoint=_dt.date(2013, 9, 1), scale_days=500.0, floor=0.05, ceiling=0.36
    )
    # Among heartbeat-enabled hosts, the vulnerable fraction: nearly all
    # before disclosure (23.7% of all servers, §5.4), then a very fast
    # patch wave ("less than 2% in a month") with a 0.3%-scale tail.
    heartbleed_vulnerable_base: float = 0.95
    heartbleed_patch: PatchCurve = PatchCurve(
        disclosed=_HEARTBLEED, half_life_days=8.0, never_patched=0.010
    )
    # RFC 7465-driven removal of non-preferred RC4 from server configs:
    # the SSL Pulse decline from 92.8% RC4 support to 19.1% (§5.3).
    rc4_tail_removal: PatchCurve = PatchCurve(
        disclosed=_RFC_7465, half_life_days=500.0, never_patched=0.25
    )
    # Version intolerance: the fraction of *legacy* hosts that abort
    # hellos above TLS 1.0 instead of negotiating down — the brokenness
    # that forced browsers into the downgrade dance (repro.tls.fallback).
    # Fixed slowly after the TLS 1.2 rollout exposed it.
    intolerance_base: float = 0.15
    intolerance_fix: PatchCurve = PatchCurve(
        disclosed=_dt.date(2012, 1, 1), half_life_days=650.0, never_patched=0.04
    )

    def intolerant_fraction(self, on: _dt.date) -> float:
        return self.intolerance_base * self.intolerance_fix.unpatched(on)

    def heartbeat_fraction(self, on: _dt.date) -> float:
        return self.heartbeat_support.value(on)

    def vulnerable_fraction_of_heartbeat(self, on: _dt.date) -> float:
        return self.heartbleed_vulnerable_base * self.heartbleed_patch.unpatched(on)


@dataclass
class ServerPopulation:
    """Time-varying weighted mixture of server archetypes."""

    attributes: ServerAttributeCurves = ServerAttributeCurves()

    def base_mix(self, on: _dt.date, weighting: str = "traffic") -> list[tuple[ServerProfile, float]]:
        """Archetype weights before attribute splits; weights sum to 1."""
        shares = _TRAFFIC_SHARES if weighting == "traffic" else _HOST_SHARES
        if weighting not in ("traffic", "hosts"):
            raise ValueError(f"unknown weighting {weighting!r}")
        weighted = [
            (_BY_NAME[name], curve.at(on)) for name, curve in shares.items()
        ]
        weighted = [(p, w) for p, w in weighted if w > 0]
        total = sum(w for _, w in weighted)
        return [(p, w / total) for p, w in weighted]

    def mix(self, on: _dt.date, weighting: str = "traffic") -> list[tuple[ServerProfile, float]]:
        """Full mixture with SSL 3-removal and Heartbeat splits applied.

        Each base archetype is split into up to four variants
        (ssl3-kept/removed x heartbeat on/off); Heartbleed vulnerability
        rides on the heartbeat-on variants.  Weights sum to 1.
        """
        import dataclasses

        from repro.tls.versions import TLS10

        ssl3_patched = self.attributes.ssl3_removal.patched(on)
        rc4_patched = self.attributes.rc4_tail_removal.patched(on)
        hb = self.attributes.heartbeat_fraction(on)
        vuln = self.attributes.vulnerable_fraction_of_heartbeat(on)
        intolerant = self.attributes.intolerant_fraction(on)

        result: list[tuple[ServerProfile, float]] = []
        for base_archetype, base_archetype_weight in self.base_mix(on, weighting):
            # Version-intolerance split for the legacy archetypes.
            intolerance_variants: list[tuple[ServerProfile, float]] = []
            if (
                base_archetype.name in (arch.LEGACY_SSL3_RC4.name, arch.TLS10_CBC.name)
                and intolerant > 0
            ):
                broken = dataclasses.replace(
                    base_archetype,
                    name=f"{base_archetype.name}-intolerant",
                    intolerant_above=TLS10.wire,
                )
                intolerance_variants.append((broken, base_archetype_weight * intolerant))
                intolerance_variants.append(
                    (base_archetype, base_archetype_weight * (1.0 - intolerant))
                )
            else:
                intolerance_variants.append((base_archetype, base_archetype_weight))
            result.extend(
                self._attribute_variants(
                    intolerance_variants, ssl3_patched, rc4_patched, hb, vuln
                )
            )
        return [(p, w) for p, w in result if w > 0]

    def _attribute_variants(
        self, profiles, ssl3_patched, rc4_patched, hb, vuln
    ) -> list[tuple[ServerProfile, float]]:
        result: list[tuple[ServerProfile, float]] = []
        for profile, weight in profiles:
            rc4_variants: list[tuple[ServerProfile, float]] = []
            if profile.name in _RC4_TAIL_REMOVABLE and rc4_patched > 0:
                rc4_variants.append(
                    (
                        profile.without_suites(lambda s: s.is_rc4, "rc4"),
                        weight * rc4_patched,
                    )
                )
                rc4_variants.append((profile, weight * (1.0 - rc4_patched)))
            else:
                rc4_variants.append((profile, weight))

            variants: list[tuple[ServerProfile, float]] = []
            for base_profile, base_weight in rc4_variants:
                if SSL3.wire in base_profile.supported_versions and ssl3_patched > 0:
                    variants.append(
                        (base_profile.without_version(SSL3.wire), base_weight * ssl3_patched)
                    )
                    variants.append((base_profile, base_weight * (1.0 - ssl3_patched)))
                else:
                    variants.append((base_profile, base_weight))
            for variant, vweight in variants:
                if hb > 0:
                    hb_on = variant.with_heartbeat(vulnerable=False)
                    hb_vuln = variant.with_heartbeat(vulnerable=True)
                    result.append((variant, vweight * (1.0 - hb)))
                    result.append((hb_on, vweight * hb * (1.0 - vuln)))
                    result.append((hb_vuln, vweight * hb * vuln))
                else:
                    result.append((variant, vweight))
        return [(p, w) for p, w in result if w > 0]

    def dedicated(self, tag: str) -> ServerProfile:
        """The dedicated endpoint for an affinity tag (grid, nagios, ...)."""
        try:
            return DEDICATED[tag]
        except KeyError:
            raise KeyError(f"no dedicated server for tag {tag!r}") from None

    def support_fraction(self, on: _dt.date, predicate, weighting: str = "hosts") -> float:
        """Fraction of the population whose profile satisfies ``predicate``."""
        return sum(w for p, w in self.mix(on, weighting) if predicate(p))
