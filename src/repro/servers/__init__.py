"""Server substrate: configuration archetypes and the evolving population."""

from repro.servers.config import ServerProfile
from repro.servers.curves import AdoptionCurve, PatchCurve
from repro.servers.population import ServerAttributeCurves, ServerPopulation

__all__ = [
    "ServerProfile",
    "AdoptionCurve",
    "PatchCurve",
    "ServerAttributeCurves",
    "ServerPopulation",
]
