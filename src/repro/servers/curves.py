"""Deployment and remediation curves for the server population.

Two shapes cover everything the paper's server-side stories need:

* :class:`AdoptionCurve` — logistic uptake of a capability (TLS 1.2
  deployment, ECDHE preference, x25519 preference).
* :class:`PatchCurve` — attack-triggered remediation: nothing happens
  before the disclosure date, then an exponential approach to a ceiling
  that deliberately stays below 1.0 — the never-patching long tail the
  paper finds everywhere (SSL 3 at 25% in 2018, Heartbleed at 0.32%).
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AdoptionCurve:
    """Logistic deployment curve.

    ``value(t) = floor + (ceiling - floor) / (1 + exp(-(t - midpoint)/scale))``
    with ``scale`` in days.
    """

    midpoint: _dt.date
    scale_days: float
    floor: float = 0.0
    ceiling: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor <= self.ceiling <= 1.0:
            raise ValueError("need 0 <= floor <= ceiling <= 1")
        if self.scale_days <= 0:
            raise ValueError("scale_days must be positive")

    def value(self, on: _dt.date) -> float:
        x = (on - self.midpoint).days / self.scale_days
        logistic = 1.0 / (1.0 + math.exp(-x))
        return self.floor + (self.ceiling - self.floor) * logistic


@dataclass(frozen=True)
class PatchCurve:
    """Attack-triggered remediation with a long tail.

    Before ``disclosed`` nothing is patched; ``half_life_days`` after it,
    half of the reachable population has remediated; ``never_patched``
    remains unpatched forever.

    ``patched(t)`` is the remediated fraction, ``unpatched(t)`` its
    complement.
    """

    disclosed: _dt.date
    half_life_days: float
    never_patched: float = 0.0

    def __post_init__(self) -> None:
        if self.half_life_days <= 0:
            raise ValueError("half_life_days must be positive")
        if not 0.0 <= self.never_patched < 1.0:
            raise ValueError("never_patched must be in [0, 1)")

    def patched(self, on: _dt.date) -> float:
        delta = (on - self.disclosed).days
        if delta <= 0:
            return 0.0
        fraction = 1.0 - math.pow(0.5, delta / self.half_life_days)
        return (1.0 - self.never_patched) * fraction

    def unpatched(self, on: _dt.date) -> float:
        return 1.0 - self.patched(on)
