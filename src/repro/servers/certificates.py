"""Synthetic X.509 certificate metadata for the server substrate.

The ICSI SSL *Notary* is, at heart, a certificate notary (§3.1: 31.5M
unique certificates over six years), and Censys collected 535M unique
certificates (§3.2).  The paper's analysis deliberately excludes
certificate content (§7.5), but the collection machinery is part of the
system; this module provides the metadata layer at the fidelity the
pipelines need: deterministic per-host certificates whose key type,
key size, signature algorithm and validity follow the well-documented
deployment trends of the period (1024→2048-bit RSA, SHA-1→SHA-256
signatures, the slow arrival of ECDSA).
"""

from __future__ import annotations

import datetime as _dt
import hashlib
from dataclasses import dataclass

# Deployment milestones (CA/Browser Forum baseline requirements).
_RSA1024_SUNSET = _dt.date(2014, 1, 1)   # CAs stopped issuing 1024-bit RSA
_SHA1_ISSUANCE_SUNSET = _dt.date(2016, 1, 1)  # SHA-1 issuance ban
_TYPICAL_VALIDITY_DAYS = 365 * 2


@dataclass(frozen=True)
class Certificate:
    """Summary metadata of one leaf certificate."""

    fingerprint: str          # SHA-256 hex digest (synthetic)
    subject: str
    key_type: str             # "RSA" | "ECDSA"
    key_bits: int
    signature_algorithm: str  # "sha1WithRSA" | "sha256WithRSA" | "ecdsa-with-SHA256"
    not_before: _dt.date
    not_after: _dt.date

    @property
    def validity_days(self) -> int:
        return (self.not_after - self.not_before).days

    def valid_at(self, on: _dt.date) -> bool:
        return self.not_before <= on <= self.not_after

    @property
    def weak_key(self) -> bool:
        """RSA below 2048 bits (or toy ECDSA curves)."""
        if self.key_type == "RSA":
            return self.key_bits < 2048
        return self.key_bits < 256

    @property
    def sha1_signed(self) -> bool:
        return self.signature_algorithm.startswith("sha1")


def _digest(*parts) -> str:
    payload = "|".join(str(p) for p in parts).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def issue_certificate(
    host_address: int,
    profile_name: str,
    on: _dt.date,
) -> Certificate:
    """Deterministically derive the certificate a host serves at a date.

    The same host keeps its certificate until it expires; re-issuance
    rolls the serial (so longitudinal scans see realistic certificate
    churn, and unique-certificate counts grow with both hosts and time).
    """
    # Issuance epoch: the start of the current validity period.
    epoch_index = (on.toordinal() // _TYPICAL_VALIDITY_DAYS)
    not_before = _dt.date.fromordinal(epoch_index * _TYPICAL_VALIDITY_DAYS)
    not_after = _dt.date.fromordinal(
        min((epoch_index + 1) * _TYPICAL_VALIDITY_DAYS, _dt.date.max.toordinal())
    )

    # Stable per-host randomness.
    seed = int(_digest(host_address, epoch_index)[:8], 16)

    # ECDSA arrives with the modern archetypes, mostly post-2015.
    modern = "gcm" in profile_name or "tls13" in profile_name
    ecdsa = modern and not_before >= _dt.date(2015, 1, 1) and seed % 5 == 0

    if ecdsa:
        key_type, key_bits = "ECDSA", 256
        signature = "ecdsa-with-SHA256"
    else:
        key_type = "RSA"
        if not_before < _RSA1024_SUNSET and seed % 4 == 0:
            key_bits = 1024
        elif seed % 10 == 0:
            key_bits = 4096
        else:
            key_bits = 2048
        if not_before < _SHA1_ISSUANCE_SUNSET and seed % 3 != 0:
            signature = "sha1WithRSA"
        else:
            signature = "sha256WithRSA"

    return Certificate(
        fingerprint=_digest(host_address, profile_name, epoch_index, key_type),
        subject=f"CN=host-{host_address & 0xFFFFFF:06x}.example",
        key_type=key_type,
        key_bits=key_bits,
        signature_algorithm=signature,
        not_before=not_before,
        not_after=not_after,
    )


@dataclass
class CertificateObservatory:
    """Accumulates unique certificates the way the Notary does (§3.1)."""

    def __post_init__(self) -> None:
        self._seen: dict[str, Certificate] = {}

    def observe(self, certificate: Certificate) -> bool:
        """Record a certificate; True if it was new."""
        if certificate.fingerprint in self._seen:
            return False
        self._seen[certificate.fingerprint] = certificate
        return True

    def __len__(self) -> int:
        return len(self._seen)

    def unique_certificates(self) -> list[Certificate]:
        return list(self._seen.values())

    def weak_key_share(self) -> float:
        if not self._seen:
            return 0.0
        weak = sum(1 for c in self._seen.values() if c.weak_key)
        return weak / len(self._seen)

    def sha1_share(self) -> float:
        if not self._seen:
            return 0.0
        sha1 = sum(1 for c in self._seen.values() if c.sha1_signed)
        return sha1 / len(self._seen)

    def key_type_shares(self) -> dict[str, float]:
        if not self._seen:
            return {}
        counts: dict[str, int] = {}
        for certificate in self._seen.values():
            counts[certificate.key_type] = counts.get(certificate.key_type, 0) + 1
        return {k: v / len(self._seen) for k, v in counts.items()}
