"""Module entry point: ``python -m repro``.

Diagnostic logging is configured before the CLI parses anything so
import-time and argument errors are reported through the same
``repro.*`` channel (``REPRO_LOG_LEVEL`` controls the level; the CLI's
``--verbose`` re-resolves it to DEBUG).
"""

from repro.cli import main
from repro.obs import configure_logging

configure_logging()

raise SystemExit(main())
