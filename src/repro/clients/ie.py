"""Internet Explorer / Edge release history (SChannel-based).

Encodes Table 4 (all RC4 suites removed with the 2015-05-20 update,
except on Windows XP) and Table 6 (TLS 1.1/1.2 enabled by default with
IE 11, 2013-11-01).  The XP-era SChannel stack still offered export and
single-DES suites, one of the drivers of the export-advertisement tail
in Figure 7.
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    EXT_2012,
    EXT_2013,
    EXT_2016,
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
)
from repro.clients.profile import (
    CATEGORY_BROWSERS,
    AdoptionModel,
    ClientFamily,
    ClientRelease,
)

# Windows XP SChannel list: RC4-first with export and DES stragglers.
_XP_SUITES = (
    cs.RSA_RC4_128_MD5,
    cs.RSA_RC4_128_SHA,
    cs.RSA_3DES_SHA,
    cs.RSA_DES_SHA,
    cs.EXP_RSA_RC4_40_MD5,
    cs.EXP_RSA_RC2_40_MD5,
    cs.DHE_DSS_3DES_SHA,
    cs.DHE_DSS_DES_SHA,
    cs.EXP_DHE_DSS_DES40_SHA,
)

# Windows 7 / IE9 era: AES first, no export, RC4 retained.
_WIN7_SUITES = (
    cs.RSA_AES128_SHA,
    cs.RSA_AES256_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_3DES_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_RSA_AES256_SHA,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.DHE_DSS_AES256_SHA,
    cs.DHE_DSS_3DES_SHA,
    cs.RSA_RC4_128_MD5,
)

# IE 11 (Win 8.1): TLS 1.2 with GCM (ECDSA) and SHA-2 CBC suites.
_IE11_SUITES = (
    cs.ECDHE_RSA_AES256_SHA384,
    cs.ECDHE_RSA_AES128_SHA256,
    cs.ECDHE_RSA_AES256_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_SHA384,
    cs.ECDHE_ECDSA_AES128_SHA256,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.RSA_AES256_SHA256,
    cs.RSA_AES128_SHA256,
    cs.RSA_AES256_SHA,
    cs.RSA_AES128_SHA,
    cs.RSA_3DES_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_RC4_128_MD5,
    cs.DHE_DSS_AES256_SHA256,
    cs.DHE_DSS_AES128_SHA256,
    cs.DHE_DSS_AES256_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.DHE_DSS_3DES_SHA,
)

# Post-2015-05-20 update (IE 11 / Edge 13): RC4 gone, RSA GCM added.
_EDGE13_SUITES = (
    cs.ECDHE_RSA_AES256_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_RSA_AES256_SHA384,
    cs.ECDHE_RSA_AES128_SHA256,
    cs.ECDHE_RSA_AES256_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_SHA384,
    cs.ECDHE_ECDSA_AES128_SHA256,
    cs.RSA_AES256_GCM,
    cs.RSA_AES128_GCM,
    cs.RSA_AES256_SHA256,
    cs.RSA_AES128_SHA256,
    cs.RSA_AES256_SHA,
    cs.RSA_AES128_SHA,
    cs.RSA_3DES_SHA,
)

# IE adoption is tied to the OS upgrade cycle: slower, heavier tail
# (the Windows XP population the paper's Table 4 footnote alludes to).
_IE_ADOPTION = AdoptionModel(fast_days=120.0, tail=0.12, slow_days=1300.0)


def family() -> ClientFamily:
    """IE/Edge release history as a :class:`ClientFamily`."""

    def release(version, date, **kw):
        return ClientRelease(
            family="IE/Edge",
            version=version,
            released=date,
            category=CATEGORY_BROWSERS,
            library="SChannel",
            **kw,
        )

    return ClientFamily(
        name="IE/Edge",
        category=CATEGORY_BROWSERS,
        adoption=_IE_ADOPTION,
        releases=[
            release(
                "8 (XP)", _dt.date(2009, 3, 19),
                max_version=V_TLS10,
                cipher_suites=_XP_SUITES,
                extensions=(),
                ssl3_fallback=True,
            ),
            release(
                "9 (Win7)", _dt.date(2011, 3, 14),
                max_version=V_TLS10,
                cipher_suites=_WIN7_SUITES,
                extensions=EXT_2012[:4],  # SNI, reneg, groups, point formats
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                ssl3_fallback=True,
            ),
            release(
                "11", _dt.date(2013, 11, 1),
                max_version=V_TLS12,
                cipher_suites=_IE11_SUITES,
                extensions=EXT_2013[:5] + (EXT_2013[6],),
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                ssl3_fallback=True,
            ),
            release(
                "13", _dt.date(2015, 5, 20),
                max_version=V_TLS12,
                cipher_suites=_EDGE13_SUITES,
                extensions=EXT_2016[:6] + (EXT_2016[8],),
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                rc4_policy="removed",
            ),
        ],
    )
