"""Client substrate: release-dated TLS client profiles and populations."""

from repro.clients.profile import (
    ALL_CATEGORIES,
    AdoptionModel,
    ClientFamily,
    ClientRelease,
)

__all__ = [
    "ALL_CATEGORIES",
    "AdoptionModel",
    "ClientFamily",
    "ClientRelease",
    "default_population",
    "ClientPopulation",
    "ShareCurve",
]


def __getattr__(name):
    # population imports the browser modules, which import this package;
    # lazy access avoids the cycle at import time.
    if name in ("default_population", "ClientPopulation", "ShareCurve"):
        from repro.clients import population

        return getattr(population, name)
    raise AttributeError(name)
