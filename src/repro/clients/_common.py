"""Shared extension layouts and ordering helpers for client histories."""

from __future__ import annotations

from repro.tls.extensions import ExtensionType as ET
from repro.tls.versions import TLS10, TLS11, TLS12, tls13_draft, tls13_google_experiment

# Wire versions used by release definitions.
V_TLS10 = TLS10.wire
V_TLS11 = TLS11.wire
V_TLS12 = TLS12.wire
DRAFT18 = tls13_draft(18)
DRAFT23 = tls13_draft(23)
DRAFT28 = tls13_draft(28)
GOOGLE_7E02 = tls13_google_experiment(2)

# Extension layouts by era.  Wire order is part of the fingerprint, so
# each layout is a tuple, not a set.
EXT_2012 = (
    int(ET.SERVER_NAME),
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
    int(ET.NEXT_PROTOCOL_NEGOTIATION),
)

EXT_2013 = (
    int(ET.SERVER_NAME),
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
    int(ET.NEXT_PROTOCOL_NEGOTIATION),
    int(ET.SIGNATURE_ALGORITHMS),
)

EXT_2014 = (
    int(ET.SERVER_NAME),
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
    int(ET.SIGNATURE_ALGORITHMS),
    int(ET.STATUS_REQUEST),
    int(ET.APPLICATION_LAYER_PROTOCOL_NEGOTIATION),
    int(ET.SIGNED_CERTIFICATE_TIMESTAMP),
)

# Chrome-era variant of the 2014 layout with Channel ID appended.
EXT_2014_CHROME = EXT_2014 + (int(ET.CHANNEL_ID),)

# Transitional 2015 layout: 2014 plus extended master secret.
EXT_2015 = EXT_2014 + (int(ET.EXTENDED_MASTER_SECRET),)

EXT_2016 = (
    int(ET.SERVER_NAME),
    int(ET.EXTENDED_MASTER_SECRET),
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
    int(ET.APPLICATION_LAYER_PROTOCOL_NEGOTIATION),
    int(ET.STATUS_REQUEST),
    int(ET.SIGNATURE_ALGORITHMS),
    int(ET.SIGNED_CERTIFICATE_TIMESTAMP),
)

EXT_TLS13 = EXT_2016 + (
    int(ET.KEY_SHARE),
    int(ET.PSK_KEY_EXCHANGE_MODES),
    int(ET.SUPPORTED_VERSIONS),
    int(ET.PADDING),
)

# Named-group layouts by era.
GROUPS_2012 = (23, 24, 25)          # secp256r1, secp384r1, secp521r1
GROUPS_LEGACY_WIDE = (23, 24, 25, 14, 13)  # + sect571r1, sect571k1
GROUPS_2016 = (29, 23, 24)          # x25519 first
POINT_FORMATS = (0,)                # uncompressed


def weave(head, insert, tail, last=()):
    """Assemble a preference list: ``head + insert + tail + last``.

    A tiny helper that makes the intent of the per-release orderings
    visible: ``weave(cbc_head, rc4_block, cbc_tail, des_block)``.
    """
    return tuple(head) + tuple(insert) + tuple(tail) + tuple(last)
