"""The client population: who originates the Notary's connections.

Combines every client family with a time-varying traffic-share curve
(piecewise-linear between control points, normalized per date) and each
family's internal release-adoption mix.  The result is, for any date, a
weighted list of :class:`ClientRelease` objects — the demand side of the
passive measurement simulation.

The share control points are calibration inputs (see DESIGN.md §5):
they encode coarse, public knowledge (browser market shares, the mobile
shift, the death of Windows XP) rather than the paper's output curves.
"""

from __future__ import annotations

import bisect
import datetime as _dt
from dataclasses import dataclass

from repro.clients import (
    chrome,
    firefox,
    ie,
    libraries,
    misc,
    mobile,
    opera,
    safari,
    tools,
)
from repro.clients.profile import ClientFamily, ClientRelease


@dataclass(frozen=True)
class ShareCurve:
    """Piecewise-linear relative traffic share over time.

    Points are ``(date, share)``; the share is held constant before the
    first and after the last point.  Shares are *relative* weights —
    :class:`ClientPopulation` normalizes across families per date.
    """

    points: tuple[tuple[_dt.date, float], ...]

    def __post_init__(self) -> None:
        dates = [d for d, _ in self.points]
        if dates != sorted(dates):
            raise ValueError("share-curve points must be date-ordered")
        if not self.points:
            raise ValueError("share curve needs at least one point")
        if any(s < 0 for _, s in self.points):
            raise ValueError("shares must be non-negative")

    def at(self, on: _dt.date) -> float:
        dates = [d for d, _ in self.points]
        i = bisect.bisect_right(dates, on)
        if i == 0:
            return self.points[0][1]
        if i == len(self.points):
            return self.points[-1][1]
        d0, s0 = self.points[i - 1]
        d1, s1 = self.points[i]
        span = (d1 - d0).days
        if span <= 0:
            return s1
        frac = (on - d0).days / span
        return s0 + (s1 - s0) * frac


def _curve(*points: tuple[str, float]) -> ShareCurve:
    return ShareCurve(
        tuple((_dt.date.fromisoformat(d), s) for d, s in points)
    )


@dataclass
class ClientPopulation:
    """A set of client families with traffic-share curves."""

    members: list[tuple[ClientFamily, ShareCurve]]

    def families(self) -> list[ClientFamily]:
        return [family for family, _ in self.members]

    def family(self, name: str) -> ClientFamily:
        for candidate, _ in self.members:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no client family named {name!r}")

    def mix(self, on: _dt.date) -> list[tuple[ClientRelease, float]]:
        """Weighted releases active at a date; weights sum to 1."""
        weighted: list[tuple[ClientRelease, float]] = []
        for family, curve in self.members:
            share = curve.at(on)
            if share <= 0:
                continue
            for release, frac in family.release_weights(on).items():
                weighted.append((release, share * frac))
        total = sum(w for _, w in weighted)
        if total <= 0:
            raise ValueError(f"no client traffic at {on}")
        return [(r, w / total) for r, w in weighted]

    def advertised_fraction(self, on: _dt.date, predicate) -> float:
        """Traffic fraction whose client advertises a matching suite.

        This is the exact (expectation) version of Figures 3, 6, 7, 10:
        no sampling noise, weighted by traffic share.
        """
        return sum(
            weight
            for release, weight in self.mix(on)
            if release.advertises(predicate)
        )


def default_population() -> ClientPopulation:
    """The calibrated 2012–2018 client population."""
    sec_apps = misc.security_apps()
    lookout, craftar, kaspersky, avast = sec_apps
    email = misc.email_families()
    cloud = misc.cloud_families()
    dev = misc.devtool_families()
    mal = misc.malware_families()
    os_tools = misc.os_tool_families()

    members: list[tuple[ClientFamily, ShareCurve]] = [
        # Browsers (desktop): ~33% of connections in 2012 tapering as
        # mobile libraries take over.
        (chrome.family(), _curve(("2012-01-01", 9.0), ("2014-06-01", 10.0), ("2016-06-01", 11.0), ("2018-04-01", 12.0))),
        (firefox.family(), _curve(("2012-01-01", 7.0), ("2014-06-01", 6.0), ("2016-06-01", 4.5), ("2018-04-01", 4.0))),
        (ie.family(), _curve(("2012-01-01", 5.0), ("2014-06-01", 4.0), ("2016-06-01", 2.5), ("2018-04-01", 2.0))),
        (safari.family(), _curve(("2012-01-01", 4.0), ("2014-06-01", 4.0), ("2018-04-01", 3.5))),
        (opera.family(), _curve(("2012-01-01", 1.2), ("2014-06-01", 0.9), ("2018-04-01", 0.9))),
        # OS / mobile libraries: the dominant, slow-moving mass.
        (mobile.android_family(), _curve(("2012-01-01", 9.0), ("2014-06-01", 13.5), ("2016-06-01", 16.0), ("2018-04-01", 17.0))),
        (mobile.apple_family(), _curve(("2012-01-01", 7.0), ("2014-06-01", 10.0), ("2016-06-01", 12.0), ("2018-04-01", 13.0))),
        # Unlabeled mainstream traffic — the ~30% no database covers.
        (misc.unknown_longtail_family(), _curve(("2012-01-01", 9.0), ("2014-06-01", 10.0), ("2018-04-01", 10.5))),
        (libraries.mscrypto_family(), _curve(("2012-01-01", 10.0), ("2014-06-01", 8.0), ("2016-06-01", 5.5), ("2018-04-01", 4.0))),
        (libraries.openssl_family(), _curve(("2012-01-01", 9.0), ("2018-04-01", 9.0))),
        (libraries.java_family(), _curve(("2012-01-01", 6.0), ("2014-06-01", 4.0), ("2016-06-01", 3.0), ("2018-04-01", 2.0))),
        # Niche populations behind specific findings.
        (misc.grid_family(), _curve(("2012-01-01", 3.2), ("2015-01-01", 2.6), ("2017-01-01", 1.0), ("2018-04-01", 0.45))),
        (misc.nagios_family(), _curve(("2012-01-01", 0.45), ("2018-04-01", 0.62))),
        (misc.interwise_family(), _curve(("2012-01-01", 0.05), ("2018-04-01", 0.02))),
        (misc.splunk_family(), _curve(("2013-10-01", 0.1), ("2016-01-01", 0.3), ("2018-04-01", 0.3))),
        (misc.anon_sdk_family(), _curve(
            ("2012-01-01", 4.2),
            ("2015-04-01", 4.2),
            ("2015-06-15", 11.5),
            ("2016-02-01", 7.5),
            ("2018-04-01", 4.5),
        )),
        (misc.shuffler_family(), _curve(("2012-01-01", 0.25), ("2018-04-01", 0.25))),
        (misc.ssl3_only_family(), _curve(
            ("2012-01-01", 2.4),
            ("2013-06-01", 1.0),
            ("2014-07-01", 0.12),
            ("2015-06-01", 0.03),
            ("2018-04-01", 0.008),
        )),
        (misc.embedded_family(), _curve(("2012-01-01", 13.0), ("2015-06-01", 12.0), ("2018-04-01", 11.0))),
        (misc.iot_ccm_family(), _curve(("2016-06-01", 0.0), ("2017-06-01", 0.4), ("2018-04-01", 0.6))),
        # Smaller labelled categories (Table 2).
        (lookout, _curve(("2013-03-01", 0.3), ("2015-06-01", 0.5), ("2018-04-01", 0.4))),
        (craftar, _curve(("2014-02-01", 0.1), ("2018-04-01", 0.1))),
        (kaspersky, _curve(("2014-01-01", 0.3), ("2018-04-01", 0.3))),
        (avast, _curve(("2014-10-01", 0.4), ("2018-04-01", 0.4))),
        (email[0], _curve(("2012-01-01", 0.35), ("2018-04-01", 0.35))),  # Apple Mail
        (email[1], _curve(("2012-01-01", 0.25), ("2018-04-01", 0.25))),  # Thunderbird
        (cloud[0], _curve(("2013-02-01", 0.75), ("2018-04-01", 0.75))),  # Dropbox
        (dev[0], _curve(("2014-02-14", 0.6), ("2018-04-01", 0.7))),      # git
        (dev[1], _curve(("2013-01-01", 0.25), ("2018-04-01", 0.25))),    # Shodan
        (tools.curl_family(), _curve(("2013-02-06", 0.5), ("2018-04-01", 0.7))),
        (tools.python_family(), _curve(("2012-01-01", 0.8), ("2018-04-01", 1.2))),
        (tools.okhttp_family(), _curve(("2014-06-01", 0.4), ("2016-06-01", 1.2), ("2018-04-01", 1.8))),
        (mal[0], _curve(("2012-01-01", 0.35), ("2016-01-01", 0.2), ("2018-04-01", 0.1))),  # Zbot
        (mal[1], _curve(("2015-03-01", 0.3), ("2018-04-01", 0.25))),     # InstallMoney
        (os_tools[0], _curve(("2013-10-22", 2.2), ("2018-04-01", 2.3))),  # Spotlight
    ]
    return ClientPopulation(members=members)
