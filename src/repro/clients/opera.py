"""Opera release history.

Opera switched from its own Presto engine to Chromium with version 15,
which is why Table 3 records an *increase* from 25 to 29 CBC suites at
v15 (and Table 4 an increase from 2 to 6 RC4 suites) before the
Chromium-driven reductions: CBC 16 @16, 10 @18, 9 @28, 7 @30, 5 @43;
RC4 4 @16, removed @30; 3DES 8 -> 1 @16 (Table 5); TLS 1.1 @16 and
SSL3 fallback removed @27 (Table 6).
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    EXT_2012,
    EXT_2013,
    EXT_2014,
    EXT_2016,
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS11,
    V_TLS12,
    weave,
)
from repro.clients.profile import (
    BROWSER_ADOPTION,
    CATEGORY_BROWSERS,
    ClientFamily,
    ClientRelease,
)

# Presto-era Opera: 25 CBC (17 non-3DES + 8 3DES), 2 RC4, TLS 1.0.
_PRESTO_SUITES = weave(
    cs.LEGACY_CBC_21[:9],
    (cs.RSA_RC4_128_SHA, cs.RSA_RC4_128_MD5),
    cs.LEGACY_CBC_21[9:17],
    cs.LEGACY_3DES_8,
)

# Chromium-era lists mirror Chrome's but with Opera's extension layout.
_V15_SUITES = weave(
    cs.LEGACY_CBC_21[:12],
    cs.LEGACY_RC4_6,
    cs.LEGACY_CBC_21[12:],
    cs.LEGACY_3DES_8,
)

_V16_SUITES = weave(
    cs.REDUCED_CBC_15[:6],
    cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_15[6:],
    (cs.RSA_3DES_SHA,),
)

_V18_SUITES = weave(
    cs.GCM_FIRST_WAVE,
    cs.REDUCED_CBC_9[:4] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_9[4:],
    (cs.RSA_3DES_SHA,),
)

_V28_SUITES = weave(
    cs.GCM_FIRST_WAVE,
    cs.REDUCED_CBC_8[:4] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_8[4:],
    (cs.RSA_3DES_SHA,),
)

_MODERN_AEAD_OPERA = (
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES256_GCM,
    cs.CHACHA_ECDHE_ECDSA,
    cs.CHACHA_ECDHE_RSA,
    cs.RSA_AES128_GCM,
)

_V30_SUITES = weave(
    _MODERN_AEAD_OPERA,
    cs.REDUCED_CBC_6,
    (),
    (cs.RSA_3DES_SHA,),
)

_V43_SUITES = weave(
    _MODERN_AEAD_OPERA,
    cs.MODERN_CBC_4,
    (),
    (cs.RSA_3DES_SHA,),
)


def family() -> ClientFamily:
    """Opera's release history as a :class:`ClientFamily`."""

    def release(version, date, **kw):
        kw.setdefault("library", "BoringSSL")
        return ClientRelease(
            family="Opera",
            version=version,
            released=date,
            category=CATEGORY_BROWSERS,
            ec_point_formats=POINT_FORMATS,
            **kw,
        )

    return ClientFamily(
        name="Opera",
        category=CATEGORY_BROWSERS,
        adoption=BROWSER_ADOPTION,
        releases=[
            release(
                "12", _dt.date(2012, 6, 14),
                max_version=V_TLS10,
                cipher_suites=_PRESTO_SUITES,
                extensions=EXT_2012[:-1],  # Presto sent no NPN
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
                library="Presto-SSL",
            ),
            release(
                "15", _dt.date(2013, 7, 2),
                max_version=V_TLS10,
                cipher_suites=_V15_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            release(
                "16", _dt.date(2013, 8, 27),
                max_version=V_TLS11,
                cipher_suites=_V16_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            release(
                "18", _dt.date(2013, 11, 19),
                max_version=V_TLS12,
                cipher_suites=_V18_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            # SSL3 fallback removed (Table 6).
            release(
                "27", _dt.date(2015, 1, 22),
                max_version=V_TLS12,
                cipher_suites=_V18_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
            ),
            release(
                "28", _dt.date(2015, 3, 10),
                max_version=V_TLS12,
                cipher_suites=_V28_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
            ),
            release(
                "30", _dt.date(2015, 6, 9),
                max_version=V_TLS12,
                cipher_suites=_V30_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
                rc4_policy="removed",
            ),
            release(
                "43", _dt.date(2017, 2, 7),
                max_version=V_TLS12,
                cipher_suites=_V43_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
                rc4_policy="removed",
                grease=True,
            ),
        ],
    )
