"""Firefox release history.

Encodes: Table 3 (CBC: 29 -> 17 @27, 10 @33, 9 @37, 5 @60-beta),
Table 4 (RC4: 6 -> 4 @27, fallback-only @36, whitelist-only @38,
removed @44), Table 5 (3DES: 8 -> 3 @27, 1 @33), Table 6 (TLS 1.1/1.2
@27, SSL3 fallback removed @37, TLS 1.3 @60) — §6.4 notes TLS 1.3
shipped disabled in 52 and on-by-default in 60.
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    DRAFT28,
    EXT_2012,
    EXT_2013,
    EXT_2014,
    EXT_2015,
    EXT_2016,
    EXT_TLS13,
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
    weave,
)
from repro.clients.profile import (
    BROWSER_ADOPTION,
    CATEGORY_BROWSERS,
    ClientFamily,
    ClientRelease,
)

_LEGACY_SUITES = weave(
    cs.LEGACY_CBC_21[:10],
    cs.LEGACY_RC4_6,
    cs.LEGACY_CBC_21[10:],
    cs.LEGACY_3DES_8,
)

# Firefox 27: 17 CBC (14 non-3DES + 3 3DES), first GCM, 4 RC4.
_V27_CBC_14 = (
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES256_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.DHE_RSA_AES256_SHA,
    cs.DHE_RSA_CAMELLIA128_SHA,
    cs.DHE_RSA_CAMELLIA256_SHA,
    cs.RSA_AES128_SHA,
    cs.RSA_CAMELLIA128_SHA,
    cs.RSA_AES256_SHA,
    cs.RSA_CAMELLIA256_SHA,
    cs.DHE_DSS_AES256_SHA,
)
_V27_3DES_3 = (cs.ECDHE_RSA_3DES_SHA, cs.DHE_RSA_3DES_SHA, cs.RSA_3DES_SHA)
_V27_SUITES = weave(
    (cs.ECDHE_ECDSA_AES128_GCM, cs.ECDHE_RSA_AES128_GCM),
    _V27_CBC_14[:6] + cs.REDUCED_RC4_4,
    _V27_CBC_14[6:],
    _V27_3DES_3,
)

_V33_SUITES = weave(
    (cs.ECDHE_ECDSA_AES128_GCM, cs.ECDHE_RSA_AES128_GCM),
    cs.REDUCED_CBC_9[:4] + cs.REDUCED_RC4_4,
    cs.REDUCED_CBC_9[4:],
    (cs.RSA_3DES_SHA,),
)

# Firefox 36: RC4 only in the fallback hello, gone from the default one.
_V36_SUITES = weave(
    (cs.ECDHE_ECDSA_AES128_GCM, cs.ECDHE_RSA_AES128_GCM),
    cs.REDUCED_CBC_9,
    (),
    (cs.RSA_3DES_SHA,),
)

_V37_SUITES = weave(
    (cs.ECDHE_ECDSA_AES128_GCM, cs.ECDHE_RSA_AES128_GCM),
    cs.REDUCED_CBC_8,
    (),
    (cs.RSA_3DES_SHA,),
)

_V47_SUITES = weave(
    (
        cs.ECDHE_ECDSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_GCM,
        cs.CHACHA_ECDHE_ECDSA,
        cs.CHACHA_ECDHE_RSA,
        cs.ECDHE_ECDSA_AES256_GCM,
        cs.ECDHE_RSA_AES256_GCM,
    ),
    cs.REDUCED_CBC_8,
    (),
    (cs.RSA_3DES_SHA,),
)

_V60_SUITES = weave(
    cs.TLS13_SUITES,
    (
        cs.ECDHE_ECDSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_GCM,
        cs.CHACHA_ECDHE_ECDSA,
        cs.CHACHA_ECDHE_RSA,
        cs.ECDHE_ECDSA_AES256_GCM,
        cs.ECDHE_RSA_AES256_GCM,
    ),
    cs.MODERN_CBC_4,
    (cs.RSA_3DES_SHA,),
)


def family() -> ClientFamily:
    """Firefox's release history as a :class:`ClientFamily`."""

    def release(version, date, **kw):
        return ClientRelease(
            family="Firefox",
            version=version,
            released=date,
            category=CATEGORY_BROWSERS,
            library="NSS",
            ec_point_formats=POINT_FORMATS,
            **kw,
        )

    return ClientFamily(
        name="Firefox",
        category=CATEGORY_BROWSERS,
        adoption=BROWSER_ADOPTION,
        releases=[
            release(
                "10", _dt.date(2012, 1, 31),
                max_version=V_TLS10,
                cipher_suites=_LEGACY_SUITES,
                extensions=EXT_2012,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            release(
                "27", _dt.date(2014, 2, 4),
                max_version=V_TLS12,
                cipher_suites=_V27_SUITES,
                extensions=EXT_2013,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            # ALPN/SCT extension refresh, suites unchanged from 27.
            release(
                "29", _dt.date(2014, 4, 29),
                max_version=V_TLS12,
                cipher_suites=_V27_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            release(
                "33", _dt.date(2014, 10, 14),
                max_version=V_TLS12,
                cipher_suites=_V33_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            release(
                "36", _dt.date(2015, 2, 24),
                max_version=V_TLS12,
                cipher_suites=_V36_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
                rc4_policy="fallback_only",
            ),
            # SSL3 fallback removed (Table 6).
            release(
                "37", _dt.date(2015, 3, 31),
                max_version=V_TLS12,
                cipher_suites=_V37_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
                rc4_policy="fallback_only",
            ),
            release(
                "38", _dt.date(2015, 5, 12),
                max_version=V_TLS12,
                cipher_suites=_V37_SUITES,
                extensions=EXT_2014,
                supported_groups=GROUPS_2012,
                rc4_policy="whitelist_only",
            ),
            # Extended master secret rollout, still whitelist-only RC4.
            release(
                "40", _dt.date(2015, 8, 11),
                max_version=V_TLS12,
                cipher_suites=_V37_SUITES,
                extensions=EXT_2015,
                supported_groups=GROUPS_2012,
                rc4_policy="whitelist_only",
            ),
            release(
                "44", _dt.date(2016, 1, 26),
                max_version=V_TLS12,
                cipher_suites=_V37_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2012,
                rc4_policy="removed",
            ),
            release(
                "47", _dt.date(2016, 6, 7),
                max_version=V_TLS12,
                cipher_suites=_V47_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
                rc4_policy="removed",
            ),
            # TLS 1.3 shipped disabled by default (§6.4) — config unchanged.
            release(
                "52", _dt.date(2017, 3, 7),
                max_version=V_TLS12,
                cipher_suites=_V47_SUITES,
                extensions=EXT_2016,
                supported_groups=GROUPS_2016,
                rc4_policy="removed",
            ),
            # 60 beta (Table 3 row) started the CBC reduction and the
            # TLS 1.3 draft-28 rollout; 60 final made it default.
            release(
                "60b", _dt.date(2018, 3, 14),
                max_version=V_TLS12,
                cipher_suites=_V60_SUITES,
                extensions=EXT_TLS13,
                supported_groups=GROUPS_2016,
                supported_versions=(DRAFT28, V_TLS12, V_TLS10 + 1, V_TLS10),
                tls13_schedule=(
                    (_dt.date(2018, 3, 14), 0.3),
                    (_dt.date(2018, 4, 1), 0.8),
                ),
                rc4_policy="removed",
                weight=0.15,
            ),
            release(
                "60", _dt.date(2018, 5, 16),
                max_version=V_TLS12,
                cipher_suites=_V60_SUITES,
                extensions=EXT_TLS13,
                supported_groups=GROUPS_2016,
                supported_versions=(DRAFT28, V_TLS12, V_TLS10 + 1, V_TLS10),
                rc4_policy="removed",
            ),
        ],
    )
