"""Command-line and language-runtime TLS clients.

curl/wget (libcurl + OpenSSL), Python's ssl module (OpenSSL with its
own default cipher string), and OkHttp (Android's Conscrypt/BoringSSL
with a curated list) are all visible in research-network traffic and
all fingerprint distinctly from their underlying library because they
restrict or reorder the default suite list — which is exactly why the
paper's database needs program-level entries on top of library ones.
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
)
from repro.clients.profile import (
    CATEGORY_DEV_TOOLS,
    CATEGORY_LIBRARIES,
    AdoptionModel,
    ClientFamily,
    ClientRelease,
)
from repro.tls.extensions import ExtensionType as ET

_CURL_EXT = (
    int(ET.SERVER_NAME),
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SIGNATURE_ALGORITHMS),
)

_TOOL_ADOPTION = AdoptionModel(fast_days=260.0, tail=0.22, slow_days=1500.0)


def _release(family, version, date, category, **kw):
    return ClientRelease(
        family=family, version=version, released=date, category=category, **kw
    )


def curl_family() -> ClientFamily:
    """curl/libcurl with the distro OpenSSL, DEFAULT cipher string minus
    the low tier (curl sets its own floor)."""
    from repro.clients.libraries import _OPENSSL_101, _OPENSSL_110

    # DEFAULT through the 3DES tier, with the MD5-MACed RC4 dropped.
    old = tuple(c for c in _OPENSSL_101[:36] if c != cs.RSA_RC4_128_MD5)
    return ClientFamily(
        name="curl",
        category=CATEGORY_DEV_TOOLS,
        adoption=_TOOL_ADOPTION,
        releases=[
            _release(
                "curl", "7.29", _dt.date(2013, 2, 6), CATEGORY_DEV_TOOLS,
                max_version=V_TLS12,
                cipher_suites=old,
                extensions=_CURL_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
            _release(
                "curl", "7.52", _dt.date(2016, 12, 21), CATEGORY_DEV_TOOLS,
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_110[:18],
                extensions=_CURL_EXT + (int(ET.APPLICATION_LAYER_PROTOCOL_NEGOTIATION),),
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
                rc4_policy="removed",
            ),
        ],
    )


def python_family() -> ClientFamily:
    """CPython's ssl module: OpenSSL with Python's own default string
    (no RC4 since 2.7.9/3.4, no 3DES since 3.6)."""
    from repro.clients.libraries import _OPENSSL_101

    # Python's default string: DEFAULT minus MD5, no export, no single DES.
    py27 = tuple(
        c for c in _OPENSSL_101[:36] if c != cs.RSA_RC4_128_MD5
    )
    py279 = tuple(c for c in py27 if c not in (
        cs.ECDHE_RSA_RC4_SHA, cs.ECDHE_ECDSA_RC4_SHA, cs.RSA_RC4_128_SHA, cs.RSA_RC4_128_MD5,
    ))
    py36 = tuple(
        c for c in py279
        if c not in (cs.ECDHE_RSA_3DES_SHA, cs.ECDHE_ECDSA_3DES_SHA, cs.DHE_RSA_3DES_SHA, cs.RSA_3DES_SHA, cs.RSA_DES_SHA)
    )
    ext = (
        int(ET.SERVER_NAME),
        int(ET.RENEGOTIATION_INFO),
        int(ET.SUPPORTED_GROUPS),
        int(ET.EC_POINT_FORMATS),
        int(ET.SESSION_TICKET),
        int(ET.SIGNATURE_ALGORITHMS),
    )
    return ClientFamily(
        name="Python ssl",
        category=CATEGORY_LIBRARIES,
        adoption=_TOOL_ADOPTION,
        releases=[
            _release(
                "Python ssl", "2.7", _dt.date(2010, 7, 3), CATEGORY_LIBRARIES,
                max_version=V_TLS10,
                cipher_suites=py27,
                extensions=ext[:4],
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
            ),
            _release(
                "Python ssl", "2.7.9", _dt.date(2014, 12, 10), CATEGORY_LIBRARIES,
                max_version=V_TLS12,
                cipher_suites=py279,
                extensions=ext,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
                rc4_policy="removed",
            ),
            _release(
                "Python ssl", "3.6", _dt.date(2016, 12, 23), CATEGORY_LIBRARIES,
                max_version=V_TLS12,
                cipher_suites=py36,
                extensions=ext,
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                library="OpenSSL",
                rc4_policy="removed",
            ),
        ],
    )


def okhttp_family() -> ClientFamily:
    """OkHttp's curated MODERN_TLS list on Conscrypt/BoringSSL."""
    modern = (
        cs.ECDHE_ECDSA_AES128_GCM,
        cs.ECDHE_RSA_AES128_GCM,
        cs.ECDHE_ECDSA_AES256_GCM,
        cs.ECDHE_RSA_AES256_GCM,
        cs.ECDHE_ECDSA_AES128_SHA,
        cs.ECDHE_RSA_AES128_SHA,
        cs.RSA_AES128_GCM,
        cs.RSA_AES128_SHA,
        cs.RSA_3DES_SHA,
    )
    with_chacha = (
        cs.CHACHA_ECDHE_ECDSA,
        cs.CHACHA_ECDHE_RSA,
    ) + modern[:-1]
    ext = (
        int(ET.SERVER_NAME),
        int(ET.EXTENDED_MASTER_SECRET),
        int(ET.RENEGOTIATION_INFO),
        int(ET.SUPPORTED_GROUPS),
        int(ET.EC_POINT_FORMATS),
        int(ET.APPLICATION_LAYER_PROTOCOL_NEGOTIATION),
    )
    return ClientFamily(
        name="OkHttp",
        category=CATEGORY_LIBRARIES,
        adoption=AdoptionModel(fast_days=160.0, tail=0.15, slow_days=1100.0),
        releases=[
            _release(
                "OkHttp", "2", _dt.date(2014, 6, 1), CATEGORY_LIBRARIES,
                max_version=V_TLS12,
                cipher_suites=modern,
                extensions=ext[:1] + ext[2:],
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                library="Android SDK",
            ),
            _release(
                "OkHttp", "3.9", _dt.date(2017, 10, 1), CATEGORY_LIBRARIES,
                max_version=V_TLS12,
                cipher_suites=with_chacha,
                extensions=ext,
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                library="Android SDK",
            ),
        ],
    )
