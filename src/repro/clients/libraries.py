"""TLS library client families: OpenSSL, MS CryptoAPI (SChannel), Java JSSE.

Libraries are the largest fingerprint category in the paper (Table 2:
700 fingerprints, 46.49% coverage).  Their release histories drive
several of the paper's stories:

* OpenSSL 1.0.1–1.0.2 clients advertise the Heartbeat extension —
  the population behind the 3% of 2018 negotiations still using it (§5.4).
* Export-grade suites linger in OpenSSL ≤ 1.0.1, Java 6 and XP-era
  SChannel — the 28.19% → 1.03% export-advertisement decline of
  Figure 7 / §5.5.
* OS-tied libraries adopt slowly with heavy tails (§7.2's Android 2.3
  discussion).
"""

from __future__ import annotations

import datetime as _dt

from repro.clients import suites as cs
from repro.clients._common import (
    DRAFT28,
    GROUPS_2012,
    GROUPS_2016,
    POINT_FORMATS,
    V_TLS10,
    V_TLS12,
)
from repro.clients.ie import _EDGE13_SUITES, _IE11_SUITES, _WIN7_SUITES, _XP_SUITES
from repro.clients.profile import (
    CATEGORY_LIBRARIES,
    AdoptionModel,
    ClientFamily,
    ClientRelease,
)
from repro.tls.extensions import ExtensionType as ET

# OpenSSL extension layouts.  1.0.1+ sends Heartbeat (type 15).
_OPENSSL_EXT_OLD = (
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
)
_OPENSSL_EXT_101 = (
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
    int(ET.SIGNATURE_ALGORITHMS),
    int(ET.HEARTBEAT),
)
_OPENSSL_EXT_110 = (
    int(ET.RENEGOTIATION_INFO),
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SESSION_TICKET),
    int(ET.SIGNATURE_ALGORITHMS),
    int(ET.EXTENDED_MASTER_SECRET),
    # 1.1.0 offers Encrypt-then-MAC (RFC 7366), the Lucky 13
    # countermeasure whose "very limited take up" §9 notes.
    int(ET.ENCRYPT_THEN_MAC),
)

# OpenSSL 0.9.8 DEFAULT: a wide list with export and DES stragglers.
_OPENSSL_098 = (
    cs.DHE_RSA_AES256_SHA,
    cs.DHE_DSS_AES256_SHA,
    cs.RSA_AES256_SHA,
    cs.DHE_RSA_CAMELLIA256_SHA,
    cs.DHE_DSS_CAMELLIA256_SHA,
    cs.RSA_CAMELLIA256_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.RSA_AES128_SHA,
    cs.DHE_RSA_CAMELLIA128_SHA,
    cs.DHE_DSS_CAMELLIA128_SHA,
    cs.RSA_CAMELLIA128_SHA,
    cs.DHE_RSA_SEED_SHA,
    cs.RSA_SEED_SHA,
    cs.RSA_IDEA_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_RC4_128_MD5,
    cs.DHE_RSA_3DES_SHA,
    cs.DHE_DSS_3DES_SHA,
    cs.RSA_3DES_SHA,
    cs.DHE_RSA_DES_SHA,
    cs.DHE_DSS_DES_SHA,
    cs.RSA_DES_SHA,
    cs.EXP_DHE_RSA_DES40_SHA,
    cs.EXP_DHE_DSS_DES40_SHA,
    cs.EXP_RSA_DES40_SHA,
    cs.EXP_RSA_RC2_40_MD5,
    cs.EXP_RSA_RC4_40_MD5,
)

# OpenSSL 1.0.1 DEFAULT: adds ECDHE, GCM, SHA-2; export/DES still present.
_OPENSSL_101 = (
    cs.ECDHE_RSA_AES256_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.ECDHE_RSA_AES256_SHA384,
    cs.ECDHE_ECDSA_AES256_SHA384,
    cs.ECDHE_RSA_AES256_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.DHE_RSA_AES256_GCM,
    cs.DHE_RSA_AES256_SHA256,
    cs.DHE_RSA_AES256_SHA,
    cs.DHE_RSA_CAMELLIA256_SHA,
    cs.RSA_AES256_GCM,
    cs.RSA_AES256_SHA256,
    cs.RSA_AES256_SHA,
    cs.RSA_CAMELLIA256_SHA,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_SHA256,
    cs.ECDHE_ECDSA_AES128_SHA256,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.DHE_RSA_AES128_GCM,
    cs.DHE_RSA_AES128_SHA256,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_RSA_CAMELLIA128_SHA,
    cs.RSA_AES128_GCM,
    cs.RSA_AES128_SHA256,
    cs.RSA_AES128_SHA,
    cs.RSA_CAMELLIA128_SHA,
    cs.ECDHE_RSA_RC4_SHA,
    cs.ECDHE_ECDSA_RC4_SHA,
    cs.RSA_RC4_128_SHA,
    cs.RSA_RC4_128_MD5,
    cs.ECDHE_RSA_3DES_SHA,
    cs.ECDHE_ECDSA_3DES_SHA,
    cs.DHE_RSA_3DES_SHA,
    cs.RSA_3DES_SHA,
    cs.RSA_DES_SHA,
)

# Post-FREAK 1.0.1 update / 1.0.2: single-DES dropped.
_OPENSSL_102 = _OPENSSL_101[:-1]

# 1.1.0: RC4, 3DES out of DEFAULT; ChaCha20 in.
_OPENSSL_110 = (
    cs.ECDHE_RSA_AES256_GCM,
    cs.ECDHE_ECDSA_AES256_GCM,
    cs.CHACHA_ECDHE_RSA,
    cs.CHACHA_ECDHE_ECDSA,
    cs.CHACHA_DHE_RSA,
    cs.DHE_RSA_AES256_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.DHE_RSA_AES128_GCM,
    cs.ECDHE_RSA_AES256_SHA384,
    cs.ECDHE_ECDSA_AES256_SHA384,
    cs.ECDHE_RSA_AES256_SHA,
    cs.ECDHE_ECDSA_AES256_SHA,
    cs.ECDHE_RSA_AES128_SHA256,
    cs.ECDHE_ECDSA_AES128_SHA256,
    cs.ECDHE_RSA_AES128_SHA,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.RSA_AES256_GCM,
    cs.RSA_AES128_GCM,
    cs.RSA_AES256_SHA256,
    cs.RSA_AES128_SHA256,
    cs.RSA_AES256_SHA,
    cs.RSA_AES128_SHA,
)

_OPENSSL_111 = cs.TLS13_SUITES + _OPENSSL_110

# Deliberately slow: applications pin OpenSSL versions, and 1.0.2 was
# the long-term-support line well past 2018 — which keeps the Heartbeat
# extension on the wire (§5.4).
_OPENSSL_ADOPTION = AdoptionModel(fast_days=460.0, tail=0.30, slow_days=2000.0)


def openssl_family() -> ClientFamily:
    """OpenSSL-linked application traffic as one family."""

    def release(version, date, **kw):
        return ClientRelease(
            family="OpenSSL",
            version=version,
            released=date,
            category=CATEGORY_LIBRARIES,
            library="OpenSSL",
            ec_point_formats=POINT_FORMATS,
            **kw,
        )

    return ClientFamily(
        name="OpenSSL",
        category=CATEGORY_LIBRARIES,
        adoption=_OPENSSL_ADOPTION,
        releases=[
            release(
                "0.9.8", _dt.date(2008, 1, 1),
                max_version=V_TLS10,
                cipher_suites=_OPENSSL_098,
                extensions=_OPENSSL_EXT_OLD,
                supported_groups=GROUPS_2012,
                ssl3_fallback=True,
            ),
            release(
                "1.0.1", _dt.date(2012, 3, 14),
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_101,
                extensions=_OPENSSL_EXT_101,
                supported_groups=GROUPS_2012,
            ),
            # Heartbleed fix: same wire configuration, still heartbeats.
            release(
                "1.0.1g", _dt.date(2014, 4, 7),
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_101,
                extensions=_OPENSSL_EXT_101,
                supported_groups=GROUPS_2012,
            ),
            # FREAK response / 1.0.2: export and single DES dropped.
            release(
                "1.0.2", _dt.date(2015, 1, 22),
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_102,
                extensions=_OPENSSL_EXT_101,
                supported_groups=GROUPS_2012,
            ),
            release(
                "1.1.0", _dt.date(2016, 8, 25),
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_110,
                extensions=_OPENSSL_EXT_110,
                supported_groups=GROUPS_2016,
                rc4_policy="removed",
            ),
            release(
                "1.1.1-pre", _dt.date(2018, 2, 13),
                max_version=V_TLS12,
                cipher_suites=_OPENSSL_111,
                extensions=_OPENSSL_EXT_110 + (int(ET.SUPPORTED_VERSIONS), int(ET.KEY_SHARE)),
                supported_groups=GROUPS_2016,
                supported_versions=(DRAFT28, V_TLS12, V_TLS10 + 1, V_TLS10),
                tls13_fraction=0.3,
                rc4_policy="removed",
            ),
        ],
    )


def mscrypto_family() -> ClientFamily:
    """Windows system TLS (SChannel) used by non-browser software."""

    def release(version, date, **kw):
        return ClientRelease(
            family="MS CryptoAPI",
            version=version,
            released=date,
            category=CATEGORY_LIBRARIES,
            library="SChannel",
            **kw,
        )

    return ClientFamily(
        name="MS CryptoAPI",
        category=CATEGORY_LIBRARIES,
        adoption=AdoptionModel(fast_days=300.0, tail=0.20, slow_days=1600.0),
        releases=[
            release(
                "WinXP", _dt.date(2004, 8, 1),
                max_version=V_TLS10,
                cipher_suites=_XP_SUITES,
                extensions=(),
                ssl3_fallback=True,
            ),
            release(
                "Win7", _dt.date(2009, 10, 22),
                max_version=V_TLS10,
                cipher_suites=_WIN7_SUITES,
                extensions=(int(ET.RENEGOTIATION_INFO), int(ET.SUPPORTED_GROUPS), int(ET.EC_POINT_FORMATS)),
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                ssl3_fallback=True,
            ),
            release(
                "Win8.1", _dt.date(2013, 10, 17),
                max_version=V_TLS12,
                cipher_suites=_IE11_SUITES,
                extensions=(
                    int(ET.RENEGOTIATION_INFO),
                    int(ET.SUPPORTED_GROUPS),
                    int(ET.EC_POINT_FORMATS),
                    int(ET.SIGNATURE_ALGORITHMS),
                ),
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
            ),
            release(
                "Win10", _dt.date(2015, 7, 29),
                max_version=V_TLS12,
                cipher_suites=_EDGE13_SUITES,
                extensions=(
                    int(ET.RENEGOTIATION_INFO),
                    int(ET.SUPPORTED_GROUPS),
                    int(ET.EC_POINT_FORMATS),
                    int(ET.SIGNATURE_ALGORITHMS),
                    int(ET.EXTENDED_MASTER_SECRET),
                ),
                supported_groups=GROUPS_2016,
                ec_point_formats=POINT_FORMATS,
                rc4_policy="removed",
            ),
        ],
    )


_JAVA6_SUITES = (
    cs.RSA_RC4_128_MD5,
    cs.RSA_RC4_128_SHA,
    cs.RSA_AES128_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.RSA_3DES_SHA,
    cs.DHE_RSA_3DES_SHA,
    cs.DHE_DSS_3DES_SHA,
    cs.RSA_DES_SHA,
    cs.DHE_RSA_DES_SHA,
    cs.DHE_DSS_DES_SHA,
    cs.EXP_RSA_RC4_40_MD5,
    cs.EXP_RSA_DES40_SHA,
    cs.EXP_DHE_RSA_DES40_SHA,
    cs.EXP_DHE_DSS_DES40_SHA,
)

_JAVA7_SUITES = (
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.RSA_AES128_SHA,
    cs.ECDH_ECDSA_AES128_SHA,
    cs.ECDH_RSA_AES128_SHA,
    cs.DHE_RSA_AES128_SHA,
    cs.DHE_DSS_AES128_SHA,
    cs.ECDHE_ECDSA_RC4_SHA,
    cs.ECDHE_RSA_RC4_SHA,
    cs.RSA_RC4_128_SHA,
    cs.ECDH_ECDSA_RC4_SHA,
    cs.ECDH_RSA_RC4_SHA,
    cs.RSA_RC4_128_MD5,
    cs.ECDHE_ECDSA_3DES_SHA,
    cs.ECDHE_RSA_3DES_SHA,
    cs.RSA_3DES_SHA,
)

_JAVA8_SUITES = (
    cs.ECDHE_ECDSA_AES128_GCM,
    cs.ECDHE_RSA_AES128_GCM,
    cs.RSA_AES128_GCM,
    cs.ECDHE_ECDSA_AES128_SHA256,
    cs.ECDHE_RSA_AES128_SHA256,
    cs.RSA_AES128_SHA256,
    cs.ECDHE_ECDSA_AES128_SHA,
    cs.ECDHE_RSA_AES128_SHA,
    cs.RSA_AES128_SHA,
    cs.ECDHE_ECDSA_RC4_SHA,
    cs.ECDHE_RSA_RC4_SHA,
    cs.RSA_RC4_128_SHA,
    cs.ECDHE_ECDSA_3DES_SHA,
    cs.ECDHE_RSA_3DES_SHA,
    cs.RSA_3DES_SHA,
)

_JAVA8U60_SUITES = tuple(
    c for c in _JAVA8_SUITES
    if c not in (cs.ECDHE_ECDSA_RC4_SHA, cs.ECDHE_RSA_RC4_SHA, cs.RSA_RC4_128_SHA)
)

_JSSE_EXT = (
    int(ET.SUPPORTED_GROUPS),
    int(ET.EC_POINT_FORMATS),
    int(ET.SIGNATURE_ALGORITHMS),
    int(ET.SERVER_NAME),
)


def java_family() -> ClientFamily:
    """Java JSSE client stack (server-side tooling, long upgrade cycles)."""

    def release(version, date, **kw):
        return ClientRelease(
            family="Java JSSE",
            version=version,
            released=date,
            category=CATEGORY_LIBRARIES,
            library="JSSE",
            **kw,
        )

    return ClientFamily(
        name="Java JSSE",
        category=CATEGORY_LIBRARIES,
        adoption=AdoptionModel(fast_days=420.0, tail=0.30, slow_days=1800.0),
        releases=[
            release(
                "6", _dt.date(2006, 12, 11),
                max_version=V_TLS10,
                cipher_suites=_JAVA6_SUITES,
                extensions=(),
                ssl3_fallback=True,
            ),
            release(
                "7", _dt.date(2011, 7, 28),
                max_version=V_TLS10,
                cipher_suites=_JAVA7_SUITES,
                extensions=_JSSE_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
            ),
            release(
                "8", _dt.date(2014, 3, 18),
                max_version=V_TLS12,
                cipher_suites=_JAVA8_SUITES,
                extensions=_JSSE_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
            ),
            release(
                "8u60", _dt.date(2015, 8, 18),
                max_version=V_TLS12,
                cipher_suites=_JAVA8U60_SUITES,
                extensions=_JSSE_EXT,
                supported_groups=GROUPS_2012,
                ec_point_formats=POINT_FORMATS,
                rc4_policy="removed",
            ),
        ],
    )
